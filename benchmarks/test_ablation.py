"""Ablations: client_lock granularity, IPC queue placement, cache dedup."""

from repro.bench import (
    CacheDedupAblation,
    ClientLockAblation,
    IpcQueueAblation,
)


def test_client_lock_ablation(once):
    experiment = ClientLockAblation()
    result = once(experiment.run)
    print()
    print(result.report())
    coarse = result.value("throughput_mb_s", locking="client_lock")
    fine = result.value("throughput_mb_s", locking="fine-grained")
    # The paper's preliminary finding: removing the global lock improves
    # cached-read concurrency.
    assert fine > coarse, (
        "fine-grained %.1f !> coarse %.1f MB/s" % (fine, coarse)
    )
    coarse_wait = result.value("client_lock_wait_s", locking="client_lock")
    fine_wait = result.value("client_lock_wait_s", locking="fine-grained")
    assert coarse_wait > fine_wait


def test_cache_dedup_ablation(once):
    experiment = CacheDedupAblation()
    result = once(experiment.run)
    print()
    print(result.report())
    off = result.value("cache_mb", dedup="off")
    on = result.value("cache_mb", dedup="on")
    containers = result.value("containers", dedup="on")
    # N identical roots collapse to ~one cached copy.
    assert on < off / (containers - 1)
    assert result.value("saved_mb", dedup="on") > 0


def test_ipc_queue_ablation(once):
    experiment = IpcQueueAblation()
    result = once(experiment.run)
    print()
    print(result.report())
    single = result.value("nr_queues", queues="single")
    grouped = result.value("nr_queues", queues="per-core-group")
    assert single == 1
    assert grouped > 1
    # Per-group queues must not be slower, and threads get pinned.
    single_tp = result.value("throughput_mb_s", queues="single")
    grouped_tp = result.value("throughput_mb_s", queues="per-core-group")
    assert grouped_tp > 0.8 * single_tp
    assert result.value("threads_pinned", queues="per-core-group") > 0
