"""Fig. 11: Fileappend/Fileread scaleup — timespan and maximum memory."""

from repro.bench import FileScaleup


def test_fig11a_fileappend(once):
    experiment = FileScaleup(
        symbols=("D", "K/K", "F/F", "FP/FP"), clone_counts=(2, 8),
        mode="append",
    )
    result = once(experiment.run)
    print()
    print(result.report())
    clones = max(result.column("clones"))
    d = result.value("timespan_s", symbol="D", clones=clones)
    kk = result.value("timespan_s", symbol="K/K", clones=clones)
    ff = result.value("timespan_s", symbol="F/F", clones=clones)
    # Paper shape: D "tends to" the shortest timespan (its 46% edge over
    # K/K appears at 32 containers; at our 8-clone scale D and K/K are
    # close — we assert D stays competitive with K/K and beats F/F).
    assert d < kk * 1.5, "fileappend: D %.3fs vs K/K %.3fs" % (d, kk)
    assert d < ff, "fileappend: D %.3fs !< F/F %.3fs" % (d, ff)
    # Memory: FP/FP's double caching costs far more than D.
    d_mem = result.value("max_memory_mb", symbol="D", clones=clones)
    fpfp_mem = result.value("max_memory_mb", symbol="FP/FP", clones=clones)
    assert fpfp_mem > 1.4 * d_mem
    # Memory grows with the clone count for every config (linear-ish).
    for symbol in ("D", "K/K", "F/F"):
        small = result.value("max_memory_mb", symbol=symbol, clones=2)
        large = result.value("max_memory_mb", symbol=symbol, clones=clones)
        assert large > small


def test_fig11b_fileread(once):
    experiment = FileScaleup(
        symbols=("D", "K/K", "F/F", "FP/FP"), clone_counts=(2, 8),
        mode="read",
    )
    result = once(experiment.run)
    print()
    print(result.report())
    clones = max(result.column("clones"))
    d = result.value("timespan_s", symbol="D", clones=clones)
    kk = result.value("timespan_s", symbol="K/K", clones=clones)
    ff = result.value("timespan_s", symbol="F/F", clones=clones)
    # Paper shape: the kernel path wins shared sequential reads (1.2-4.9x).
    assert kk < d, "fileread: K/K %.2fs !< D %.2fs" % (kk, d)
    # F/F needs the same memory as D but is slower.
    d_mem = result.value("max_memory_mb", symbol="D", clones=clones)
    ff_mem = result.value("max_memory_mb", symbol="F/F", clones=clones)
    assert abs(ff_mem - d_mem) < 0.6 * max(d_mem, ff_mem)
    assert ff > d, "fileread: F/F %.2fs !> D %.2fs" % (ff, d)
    # FP/FP burns far more memory than D (paper: up to 30x).
    fpfp_mem = result.value("max_memory_mb", symbol="FP/FP", clones=clones)
    assert fpfp_mem > 1.4 * d_mem
