"""Fig. 10: Fileserver aggregate throughput at pool scaleout."""

from repro.bench import FileserverScaleout


def test_fig10_fileserver_scaleout(once):
    experiment = FileserverScaleout(
        symbols=("D", "F", "K"), pool_counts=(1, 4)
    )
    result = once(experiment.run)
    print()
    print(result.report())
    pools = max(result.column("pools"))
    d = result.value("total_ops_per_sec", symbol="D", pools=pools)
    k = result.value("total_ops_per_sec", symbol="K", pools=pools)
    # Paper shape: at growing pool counts D clearly outruns K (2.3x at 8).
    assert d > k, "fileserver: D %.0f !> K %.0f ops/s" % (d, k)
    # D's aggregate throughput grows with pools.
    d_single = result.value("total_ops_per_sec", symbol="D", pools=1)
    assert d > d_single
    # K leaves much more time in kernel lock waits.
    k_wait = result.value("kernel_lock_wait_s", symbol="K", pools=pools)
    d_wait = result.value("kernel_lock_wait_s", symbol="D", pools=pools)
    assert k_wait > d_wait
