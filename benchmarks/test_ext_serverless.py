"""Extension bench: serverless invocation tails under colocation (§9)."""

from repro.bench import ServerlessColocation


def test_ext_serverless_tail_isolation(once):
    experiment = ServerlessColocation(
        symbols=("K", "D"), n_tenants=2, duration=3.0
    )
    result = once(experiment.run)
    print()
    print(result.report())
    k_alone = result.value("warm_p99_ms", symbol="K", neighbor="-")
    k_coloc = result.value("warm_p99_ms", symbol="K", neighbor="RND")
    d_alone = result.value("warm_p99_ms", symbol="D", neighbor="-")
    d_coloc = result.value("warm_p99_ms", symbol="D", neighbor="RND")
    k_growth = k_coloc / k_alone if k_alone else float("inf")
    d_growth = d_coloc / d_alone if d_alone else float("inf")
    # The §9 prediction: Danaus keeps the tail flat, the kernel does not.
    assert d_growth < k_growth, (
        "warm p99 growth: D %.2fx !< K %.2fx" % (d_growth, k_growth)
    )
    assert d_growth < 2.0
    # Tenants keep serving invocations under colocation on D.
    d_rate = result.value("invocations_per_sec", symbol="D", neighbor="RND")
    assert d_rate > 0
