"""Fig. 6: workload interference under D vs K (the isolation result).

Three panels: Fileserver colocated with (a) RandomIO, (b) Webserver,
(c) Sysbench CPU. The paper's claim: the kernel client collapses by up to
16.5x next to a neighbour while Danaus loses at most ~16%, because Danaus
serves I/O strictly with the pool's own cores and user-level locks.
"""

from repro.bench import FlsColocation
from repro.bench.isolation import run_colocation


def _drop(result, symbol, n_fls, neighbor):
    alone = result.value("fls_ops_per_sec", symbol=symbol, n_fls=n_fls,
                         neighbor="-")
    coloc = result.value("fls_ops_per_sec", symbol=symbol, n_fls=n_fls,
                         neighbor=neighbor)
    return alone / coloc if coloc else float("inf")


def test_fig6a_randomio(once):
    experiment = FlsColocation(
        symbols=("K", "D"), fls_counts=(1, 3), neighbor="RND", duration=3.0
    )
    result = once(experiment.run)
    print()
    print(result.report())
    for n_fls in (1, 3):
        k_drop = _drop(result, "K", n_fls, "RND")
        d_drop = _drop(result, "D", n_fls, "RND")
        # Shape: K collapses, D barely moves.
        assert k_drop > 2.0, "K drop only %.2fx at %dFLS" % (k_drop, n_fls)
        assert d_drop < 1.5, "D drop %.2fx at %dFLS" % (d_drop, n_fls)
        assert k_drop > 2 * d_drop
    # Line chart: K-alone leans on the neighbour's reserved cores, D not.
    k_util = result.value("nbr_core_util_pct", symbol="K", n_fls=3,
                          neighbor="-")
    d_util = result.value("nbr_core_util_pct", symbol="D", n_fls=3,
                          neighbor="-")
    assert k_util > 4 * max(d_util, 0.5)


def test_fig6b_webserver(once):
    experiment = FlsColocation(
        symbols=("K", "D"), fls_counts=(1, 3), neighbor="WBS", duration=3.0
    )
    experiment.experiment_id = "fig6b"
    experiment.title = "Fileserver colocated with Webserver (D vs K)"
    experiment.paper_expectation = (
        "K drops 2.3x (1FLS+WBS) / 4.2x (7FLS+WBS); 7FLS/D+WBS is 3.2x "
        "faster than 7FLS/K+WBS."
    )
    result = once(experiment.run)
    print()
    print(result.report())
    # The WBS effect is milder than RND's in the paper too (2.3-4.2x vs
    # 7.4-16.5x); at our scale it shows at 1FLS and vanishes at 3FLS
    # where the backend, not stolen cores, bounds the kernel client (see
    # EXPERIMENTS.md). Assert the robust direction: K degrades, D not.
    k_drop = _drop(result, "K", 1, "WBS")
    d_drop = _drop(result, "D", 1, "WBS")
    assert k_drop > 1.2, "K drop only %.2fx at 1FLS" % k_drop
    assert d_drop < 1.1
    assert k_drop > d_drop
    assert _drop(result, "D", 3, "WBS") < 1.1
    # Colocated, D beats K (paper: 3.2x at 7FLS).
    k_coloc = result.value("fls_ops_per_sec", symbol="K", n_fls=3,
                           neighbor="WBS")
    d_coloc = result.value("fls_ops_per_sec", symbol="D", n_fls=3,
                           neighbor="WBS")
    assert d_coloc > k_coloc


def test_fig6c_sysbench(once):
    def sweep():
        from repro.bench.harness import ExperimentResult

        result = ExperimentResult(
            "fig6c", "Sysbench p99 and Fileserver latency under colocation",
            "SSB p99 +93% and FLS +28% on K, only +27% and +2% on D.",
        )
        for symbol in ("K", "D"):
            for neighbor in (None, "SSB"):
                row = run_colocation(symbol, 1, neighbor, duration=3.0)
                result.add_row(**row)
        return result

    result = once(sweep)
    print()
    print(result.report())
    # The kernel-served FLS inflates SSB's p99 more than Danaus does.
    k_ssb = result.value("ssb_p99_ms", symbol="K", neighbor="SSB")
    d_ssb = result.value("ssb_p99_ms", symbol="D", neighbor="SSB")
    assert k_ssb > d_ssb, "SSB p99: K %.2fms vs D %.2fms" % (k_ssb, d_ssb)
    # FLS latency suffers less from SSB on D than on K.
    for symbol in ("K", "D"):
        alone = result.value("fls_mean_latency", symbol=symbol, neighbor="-")
        coloc = result.value("fls_mean_latency", symbol=symbol, neighbor="SSB")
        result.note(
            "%s: FLS latency +%.0f%% under SSB"
            % (symbol, 100 * (coloc / alone - 1) if alone else 0)
        )
    k_rise = (
        result.value("fls_mean_latency", symbol="K", neighbor="SSB")
        / result.value("fls_mean_latency", symbol="K", neighbor="-")
    )
    d_rise = (
        result.value("fls_mean_latency", symbol="D", neighbor="SSB")
        / result.value("fls_mean_latency", symbol="D", neighbor="-")
    )
    assert d_rise < k_rise * 1.2
