"""Fig. 8: real time and context switches to start N Lighttpd clones."""

from repro.bench import LighttpdStartup


def test_fig8_container_startup(once):
    experiment = LighttpdStartup(
        symbols=("D", "K/K", "F/K", "F/F"), container_counts=(1, 8)
    )
    result = once(experiment.run)
    print()
    print(result.report())
    count = max(result.column("containers"))
    d = result.value("real_time_s", symbol="D", containers=count)
    kk = result.value("real_time_s", symbol="K/K", containers=count)
    fk = result.value("real_time_s", symbol="F/K", containers=count)
    ff = result.value("real_time_s", symbol="F/F", containers=count)
    # Paper shape (Fig. 8a): the mature kernel path wins startup —
    # K/K fastest, then F/K, and D clearly beats F/F.
    assert kk < d, "startup: K/K %.3fs !< D %.3fs" % (kk, d)
    assert fk < d, "startup: F/K %.3fs !< D %.3fs" % (fk, d)
    assert d < ff, "startup: D %.3fs !< F/F %.3fs" % (d, ff)
    # Fig. 8b: D does several times fewer context switches than F/F.
    d_ctx = result.value("ctx_switches", symbol="D", containers=count)
    ff_ctx = result.value("ctx_switches", symbol="F/F", containers=count)
    assert ff_ctx > 3 * d_ctx, (
        "ctx switches: F/F %d !>> D %d" % (ff_ctx, d_ctx)
    )
