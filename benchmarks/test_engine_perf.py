"""Engine wall-clock benchmark: reference scenarios + determinism check.

Runs the same harness as ``scripts/bench_engine.py`` under
pytest-benchmark, writes ``BENCH_engine.json`` at the repo root, and
asserts every scenario fingerprint matches the committed baseline
(``benchmarks/BENCH_engine_baseline.json``) — i.e. the engine schedules
byte-identically to the run that produced the baseline. Wall-clock is
reported but only *gated* here when the calibration-normalized total
regresses past the harness threshold, mirroring the CI job.
"""

import importlib.util
import json
import os

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_BASELINE = os.path.join(_ROOT, "benchmarks", "BENCH_engine_baseline.json")
_OUT = os.path.join(_ROOT, "BENCH_engine.json")


def _load_harness():
    path = os.path.join(_ROOT, "scripts", "bench_engine.py")
    spec = importlib.util.spec_from_file_location("bench_engine", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_engine_bench_reference_scenarios(once):
    harness = _load_harness()
    record = once(harness.run_bench)

    with open(_OUT, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print()
    for name, cell in sorted(record["scenarios"].items()):
        print("  %-14s wall=%7.3fs fingerprint=%s"
              % (name, cell["wall_s"], cell["fingerprint"]))
    print("  %-14s wall=%7.3fs (calibration %.4fs)"
          % ("total", record["total_wall_s"], record["calibration_s"]))

    with open(_BASELINE) as handle:
        baseline = json.load(handle)
    failures = harness.check_against(record, baseline, threshold=0.25)
    assert not failures, "; ".join(failures)
