"""Fig. 7: RocksDB latency — scaleout (a: put, b: get) and scaleup
(c: put, d: get)."""

from repro.bench import RocksDbScaleout, RocksDbScaleup


def test_fig7a_put_scaleout(once):
    experiment = RocksDbScaleout(
        symbols=("D", "F", "K"), pool_counts=(1, 4), mode="put"
    )
    result = once(experiment.run)
    print()
    print(result.report())
    # Paper shape: D < F < K. The D-F gap is a few percent at our pool
    # counts (the paper's 5.9x appears at 32 pools); the D-K gap is the
    # load-bearing one and must hold strictly at scale.
    d1 = result.value("mean_latency_ms", symbol="D", pools=1)
    f1 = result.value("mean_latency_ms", symbol="F", pools=1)
    k1 = result.value("mean_latency_ms", symbol="K", pools=1)
    assert d1 < f1 < k1, (
        "put@1: want D<F<K, got %.2f/%.2f/%.2f" % (d1, f1, k1)
    )
    pools = max(result.column("pools"))
    d = result.value("mean_latency_ms", symbol="D", pools=pools)
    f = result.value("mean_latency_ms", symbol="F", pools=pools)
    k = result.value("mean_latency_ms", symbol="K", pools=pools)
    assert d <= f * 1.05, "put: D %.2fms !<= F %.2fms" % (d, f)
    assert d < k, "put: D %.2fms !< K %.2fms" % (d, k)
    # K's disadvantage grows with pool count (the paper's divergence).
    assert (k / d) > (k1 / d1)


def test_fig7b_get_scaleout(once):
    experiment = RocksDbScaleout(
        symbols=("D", "F", "K"), pool_counts=(1, 4), mode="get"
    )
    result = once(experiment.run)
    print()
    print(result.report())
    pools = max(result.column("pools"))
    d = result.value("mean_latency_ms", symbol="D", pools=pools)
    f = result.value("mean_latency_ms", symbol="F", pools=pools)
    k = result.value("mean_latency_ms", symbol="K", pools=pools)
    # Paper shape: D up to 1.4x over F and 2.2x over K (milder than put).
    assert d < f
    assert d < k * 1.1


def test_fig7c_put_scaleup(once):
    experiment = RocksDbScaleup(
        symbols=("D", "F/F", "F/K", "K/K"), clone_counts=(2, 6), mode="put"
    )
    result = once(experiment.run)
    print()
    print(result.report())
    clones = max(result.column("clones"))
    d = result.value("mean_latency_ms", symbol="D", clones=clones)
    ff = result.value("mean_latency_ms", symbol="F/F", clones=clones)
    fk = result.value("mean_latency_ms", symbol="F/K", clones=clones)
    kk = result.value("mean_latency_ms", symbol="K/K", clones=clones)
    # Paper shape: D fastest put scaleup (12.6x/3.9x/3.6x over F/F, F/K, K/K).
    assert d < ff
    assert d < fk
    assert d < kk


def test_fig7d_get_scaleup(once):
    experiment = RocksDbScaleup(
        symbols=("D", "F/F", "K/K"), clone_counts=(2, 6), mode="get"
    )
    result = once(experiment.run)
    print()
    print(result.report())
    # Paper shape: mixed results — D beats F/F at scale, K/K can beat D
    # at few clones (the shared-client crossover).
    clones = max(result.column("clones"))
    d = result.value("mean_latency_ms", symbol="D", clones=clones)
    ff = result.value("mean_latency_ms", symbol="F/F", clones=clones)
    assert d < ff, "get scaleup: D %.2fms !< F/F %.2fms" % (d, ff)
    few = min(result.column("clones"))
    d_few = result.value("mean_latency_ms", symbol="D", clones=few)
    kk_few = result.value("mean_latency_ms", symbol="K/K", clones=few)
    # K/K is at least competitive with D at few clones.
    assert kk_few < d_few * 2.5
