"""Fig. 9: Seqwrite (top) and Seqread (bottom) at pool scaleout."""

from repro.bench import SequentialScaleout


def test_fig9_seqwrite(once):
    experiment = SequentialScaleout(
        symbols=("D", "F", "K"), pool_counts=(1, 4), mode="write"
    )
    result = once(experiment.run)
    print()
    print(result.report())
    pools = max(result.column("pools"))
    d = result.value("throughput_mb_s", symbol="D", pools=pools)
    f = result.value("throughput_mb_s", symbol="F", pools=pools)
    k = result.value("throughput_mb_s", symbol="K", pools=pools)
    # Paper shape: D and F beat K on sequential writes (up to 2.8x).
    assert d > k, "seqwrite: D %.1f !> K %.1f MB/s" % (d, k)
    assert f > k * 0.8
    # K's kernel lock wait dwarfs the user-level clients'.
    k_wait = result.value("kernel_lock_wait_s", symbol="K", pools=pools)
    d_wait = result.value("kernel_lock_wait_s", symbol="D", pools=pools)
    assert k_wait > d_wait


def test_fig9_seqread(once):
    experiment = SequentialScaleout(
        symbols=("D", "F", "K"), pool_counts=(1, 4), mode="read"
    )
    result = once(experiment.run)
    print()
    print(result.report())
    pools = min(result.column("pools"))
    d = result.value("throughput_mb_s", symbol="D", pools=pools)
    f = result.value("throughput_mb_s", symbol="F", pools=pools)
    k = result.value("throughput_mb_s", symbol="K", pools=pools)
    # Paper shape: cached reads — K beats D (client_lock, up to 37%),
    # D beats F (up to 75%).
    assert k > d, "seqread: K %.1f !> D %.1f MB/s" % (k, d)
    assert d > f, "seqread: D %.1f !> F %.1f MB/s" % (d, f)
