"""Benchmark-suite helpers.

Every benchmark target regenerates one table or figure of the paper. The
experiments are deterministic simulations, so each runs exactly once
(``rounds=1``) — the interesting output is the printed experiment report
(paper expectation vs measured rows), not timing jitter statistics.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
