"""Fig. 1 (motivation): Fileserver collapses under kernel I/O contention.

Regenerates both panels for the kernel client only (the motivation section
predates Danaus in the paper's narrative):

* Fig. 1a — FLS throughput alone vs colocated with RandomIO, plus the
  utilisation of the (reserved, idle) RandomIO pool cores;
* Fig. 1b — average kernel lock wait/hold time per lock request.
"""

from repro.bench import FlsColocation


def test_fig1_kernel_contention(once):
    experiment = FlsColocation(
        symbols=("K",), fls_counts=(1, 3), neighbor="RND", duration=3.0
    )
    experiment.experiment_id = "fig1"
    experiment.title = "Motivation: kernel core and lock contention"
    experiment.paper_expectation = (
        "FLS drops 7.4x (1FLS+RND) / 16.5x (7FLS+RND); RND cores used "
        "87-122% by FLS alone; lock wait grows 2.3x-5.2x."
    )
    result = once(experiment.run)
    print()
    print(result.report())

    for n_fls in (1, 3):
        alone = result.value("fls_ops_per_sec", n_fls=n_fls, neighbor="-")
        coloc = result.value("fls_ops_per_sec", n_fls=n_fls, neighbor="RND")
        # Fig. 1a shape: colocation with RND collapses the kernel client.
        assert coloc < alone / 2, (
            "expected >2x drop for %dFLS, got %.0f -> %.0f"
            % (n_fls, alone, coloc)
        )
    # Fig. 1a line: FLS alone leans on the idle neighbour pool's cores.
    util_alone = result.value("nbr_core_util_pct", n_fls=3, neighbor="-")
    assert util_alone > 10.0
    # Fig. 1b shape: colocation with RND inflates the per-request kernel
    # lock wait (the paper: 2.3x at 1FLS).
    wait_alone = result.value("lock_wait_us", n_fls=1, neighbor="-")
    wait_coloc = result.value("lock_wait_us", n_fls=1, neighbor="RND")
    assert wait_coloc > wait_alone, (
        "lock wait: 1FLS+RND %.3fus !> 1FLS %.3fus" % (wait_coloc, wait_alone)
    )
