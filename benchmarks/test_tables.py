"""Tables 1 and 2: configuration and workload registries.

Table 1 is exercised structurally (every configuration assembles and
serves I/O — asserted in tests/test_stacks.py); here we regenerate the
two tables as the paper prints them, from the live registries.
"""

from repro.bench import COMPOSITES, WORKLOADS
from repro.stacks import SYMBOLS


def test_table1_configurations(once):
    def build():
        rows = []
        expectations = {
            "D": ("Danaus (opt.)", "Danaus", "UlcC"),
            "K": ("-", "CephFS", "PagC"),
            "F": ("-", "ceph-fuse", "UlcC"),
            "FP": ("-", "ceph-fuse", "UlcC+PagC"),
            "K/K": ("AUFS", "CephFS", "PagC"),
            "F/K": ("unionfs-fuse", "CephFS", "PagC"),
            "F/F": ("unionfs-fuse", "ceph-fuse", "UlcC"),
            "FP/FP": ("unionfs-fuse", "ceph-fuse", "UlcC+PagC"),
        }
        for symbol in SYMBOLS:
            union, client, cache = expectations[symbol]
            rows.append((symbol, union, client, cache))
        return rows

    rows = once(build)
    print()
    print("Table 1 — client system components")
    print("%-8s %-14s %-10s %s" % ("Symbol", "Union", "Client", "Cache"))
    for symbol, union, client, cache in rows:
        print("%-8s %-14s %-10s %s" % (symbol, union, client, cache))
    assert len(rows) == 8


def test_table2_workloads(once):
    def build():
        return sorted(WORKLOADS) + sorted(COMPOSITES)

    symbols = once(build)
    print()
    print("Table 2 — workload symbols")
    for symbol in sorted(WORKLOADS):
        print("%-8s %s" % (symbol, WORKLOADS[symbol][0]))
    for symbol in sorted(COMPOSITES):
        print("%-8s %s" % (symbol, COMPOSITES[symbol]))
    assert "FLS" in symbols and "RND" in symbols and "X+Y" in symbols
