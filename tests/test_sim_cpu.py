"""Unit tests for the CPU core model."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Core, SimThread, UtilizationProbe


def make_cores(sim, n):
    return [Core(sim, i) for i in range(n)]


def test_thread_run_consumes_time(sim):
    cores = make_cores(sim, 1)
    thread = SimThread(sim, "t", cores)

    def proc():
        yield from thread.run(0.01)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(0.01)
    assert thread.cpu_time == pytest.approx(0.01)
    assert cores[0].busy_time == pytest.approx(0.01)


def test_two_threads_share_one_core(sim):
    cores = make_cores(sim, 1)
    done = {}

    def proc(name):
        thread = SimThread(sim, name, cores)
        yield from thread.run(0.01)
        done[name] = sim.now

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.run()
    # A single core serialises 20ms of total work.
    assert max(done.values()) == pytest.approx(0.02)


def test_two_threads_spread_over_two_cores(sim):
    cores = make_cores(sim, 2)
    done = {}

    def proc(name):
        thread = SimThread(sim, name, cores)
        yield from thread.run(0.01)
        done[name] = sim.now

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.run()
    # Least-loaded selection should put them on different cores.
    assert max(done.values()) == pytest.approx(0.01, rel=0.2)


def test_pinned_thread_stays_on_core(sim):
    cores = make_cores(sim, 2)
    thread = SimThread(sim, "t", cores)
    thread.pin(cores[1])

    def proc():
        yield from thread.run(0.01)

    sim.run_process(proc())
    assert cores[1].busy_time == pytest.approx(0.01)
    assert cores[0].busy_time == 0


def test_pin_outside_cpuset_rejected(sim):
    cores = make_cores(sim, 3)
    thread = SimThread(sim, "t", cores[:2])
    with pytest.raises(SimulationError):
        thread.pin(cores[2])


def test_set_cpuset_clears_stale_pin(sim):
    cores = make_cores(sim, 3)
    thread = SimThread(sim, "t", cores[:2])
    thread.pin(cores[0])
    thread.set_cpuset(cores[1:])
    assert thread.pinned is None


def test_empty_cpuset_rejected(sim):
    with pytest.raises(SimulationError):
        SimThread(sim, "t", [])


def test_negative_cpu_time_rejected(sim):
    cores = make_cores(sim, 1)
    thread = SimThread(sim, "t", cores)

    def proc():
        yield from thread.run(-1)

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_context_switches_counted(sim):
    cores = make_cores(sim, 1)
    t1 = SimThread(sim, "a", cores)
    t2 = SimThread(sim, "b", cores)

    def proc(thread):
        yield from thread.run(0.002, quantum=0.001)

    sim.spawn(proc(t1))
    sim.spawn(proc(t2))
    sim.run()
    # Interleaving on one core forces each thread to switch in at least once.
    assert t1.ctx_switches + t2.ctx_switches >= 2


def test_utilization_probe_full_busy(sim):
    cores = make_cores(sim, 1)
    thread = SimThread(sim, "t", cores)
    probe = UtilizationProbe(sim, cores)

    def proc():
        yield from thread.run(0.05)

    sim.run_process(proc())
    assert probe.utilization() == pytest.approx(1.0, rel=0.01)


def test_utilization_probe_idle_cores(sim):
    cores = make_cores(sim, 2)
    thread = SimThread(sim, "t", [cores[0]])
    probe = UtilizationProbe(sim, cores)

    def proc():
        yield from thread.run(0.05)

    sim.run_process(proc())
    # One of two cores busy -> 50% mean, 100% summed-over-busy-core.
    assert probe.utilization() == pytest.approx(0.5, rel=0.01)
    assert probe.total_utilization() == pytest.approx(1.0, rel=0.01)


def test_utilization_probe_reset(sim):
    cores = make_cores(sim, 1)
    thread = SimThread(sim, "t", cores)
    probe = UtilizationProbe(sim, cores)

    def busy():
        yield from thread.run(0.05)

    sim.run_process(busy())
    probe.reset()

    def idle():
        yield sim.timeout(0.05)

    sim.run_process(idle())
    assert probe.utilization() == pytest.approx(0.0, abs=1e-9)
