"""Tests for the command-line interface."""

import pytest

from repro.cli import experiment_names, main


def test_list_runs(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig6a" in out
    assert "FLS" in out
    assert "D, K, F" in out


def test_list_specs_dumps_resolved_specs(capsys):
    import json

    assert main(["list", "--specs"]) == 0
    specs = json.loads(capsys.readouterr().out)
    assert "fig6a" in specs
    assert specs["fig6a"]["kind"] == "colocation"
    assert specs["fig6a"]["sweep"]["symbol"] == ["K", "D"]
    assert specs["chaos-corruption"]["faults"]["bitrot"] == 2


def test_run_all_excludes_nightly_specs():
    from repro.experiments import registry

    specs = registry.discover()
    nightly = [n for n, s in specs.items() if "nightly" in s["tags"]]
    assert "chaos-corruption" in nightly and "chaos-churn" in nightly


def test_experiment_names_cover_every_figure():
    names = experiment_names()
    for expected in ("fig1", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b",
                     "fig7c", "fig7d", "fig8", "fig9w", "fig9r", "fig10",
                     "fig11a", "fig11b", "abl-lock", "abl-ipc"):
        assert expected in names


def test_run_unknown_experiment_errors(capsys):
    assert main(["run", "fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_run_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


@pytest.mark.slow
def test_run_quick_fig11a(capsys):
    assert main(["run", "fig11a", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "fig11a" in out
    assert "timespan_s" in out


def test_chart_for_picks_primary_metric():
    from repro.bench.harness import ExperimentResult
    from repro.cli import _chart_for

    result = ExperimentResult("x", "t")
    result.add_row(symbol="K", neighbor="-", fls_ops_per_sec=22171.0)
    result.add_row(symbol="D", neighbor="-", fls_ops_per_sec=7243.0)
    chart = _chart_for(result)
    assert chart.startswith("fls_ops_per_sec:")
    assert "█" in chart
    assert "K" in chart and "D" in chart


def test_chart_for_handles_unchartable_results():
    from repro.bench.harness import ExperimentResult
    from repro.cli import _chart_for

    empty = ExperimentResult("x", "t")
    assert _chart_for(empty) is None
    no_metric = ExperimentResult("y", "t")
    no_metric.add_row(symbol="K", note="text only")
    assert _chart_for(no_metric) is None
