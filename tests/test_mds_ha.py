"""Tests for metadata high availability.

Three layers:

* the :class:`MdsMap` routing arithmetic (pure);
* journal-before-apply, torn tails, crash recovery, heartbeat-driven
  standby promotion, epoch fencing and exactly-once resends against a
  live cluster;
* the end-to-end failover chaos runs (marked ``chaos``): SIGKILL the
  active MDS under a metadata-heavy multi-tenant workload and assert
  zero lost acked mutations plus a deterministic fingerprint per seed.
"""

import pytest

from repro.common import units
from repro.common.errors import FileExists, OldEpoch, OpTimeout
from repro.costs import CostModel
from repro.faults.chaos import ChaosConfig
from repro.net import Fabric
from repro.storage import CephCluster
from repro.storage.mdsmap import MdsMap
from tests.conftest import run


# --- MdsMap routing (pure) ---------------------------------------------------

def test_single_rank_map_routes_everything_to_zero():
    mdsmap = MdsMap(1, ranks=[0], standbys=[1])
    assert mdsmap.rank_for("create", ("/a/b",)) == 0
    assert mdsmap.rank_for("readdir", ("/a",)) == 0
    assert mdsmap.rank_for("caps_commit", (12345,)) == 0
    assert mdsmap.gid_of(0) == 0


def test_multi_rank_map_partitions_by_parent_directory():
    mdsmap = MdsMap(3, ranks=[0, 1], standbys=[])
    # Entries of the same directory share a rank (dentry + dir journal
    # locality); the mapping itself is deterministic.
    rank = mdsmap.rank_for("create", ("/proj/a",))
    assert mdsmap.rank_for("unlink", ("/proj/b",)) == rank
    assert mdsmap.rank_for("readdir", ("/proj",)) == mdsmap.rank_of_dir("/proj")
    assert mdsmap.rank_for("create", ("/proj/a",)) == rank  # stable
    # Inode-addressed ops route by ino, spanning both ranks.
    assert {mdsmap.rank_for("caps_commit", (n,)) for n in range(4)} == {0, 1}


def test_rename_routes_by_source_path():
    mdsmap = MdsMap(3, ranks=[0, 1], standbys=[])
    rank = mdsmap.rank_of_path("/src/f")
    assert mdsmap.rank_for("rename", ("/src/f", "/dst/f")) == rank


# --- cluster-level HA machinery ---------------------------------------------

@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(64))


@pytest.fixture
def cluster(sim, costs):
    return CephCluster(sim, Fabric(sim), costs, num_osds=4, replicas=2)


def test_mutations_journal_before_ack(sim, cluster):
    service = cluster.enable_mds_ha(standbys=1)

    def proc():
        yield from cluster.mds_call("create", "/a", exclusive=True,
                                    client_id=1, op_id=1)
        yield from cluster.mds_call("mkdir", "/d", client_id=1, op_id=2)
        yield from cluster.mds_call("rename", "/a", "/d/a",
                                    client_id=1, op_id=3)

    run(sim, proc())
    journal = service.journals[0]
    assert journal.entries == 3
    assert journal.length > 0
    # The journal is real object data on the OSDs, not bookkeeping.
    assert cluster.stored_bytes >= journal.length
    # Reads never journal.
    assert cluster.mds.metrics.counter("journal_entries").value == 3


def test_torn_journal_tail_is_dropped_by_replay(sim, cluster):
    service = cluster.enable_mds_ha(standbys=0)
    journal = service.journals[0]

    def proc():
        yield from cluster.mds_call("create", "/whole", exclusive=True,
                                    client_id=1, op_id=1)
        # A SIGKILL mid-append leaves a torn, newline-less tail.
        torn = b'{"op":"create","path":"/torn","seq":'
        yield from cluster.write_extent(journal.ino, journal.length, torn)
        journal.length += len(torn)
        return (yield from journal.read_from(0))

    records, consumed = run(sim, proc())
    assert [r["path"] for r in records] == ["/whole"]
    assert consumed < journal.length  # the torn suffix was not trusted


def test_crash_then_recover_local_replays_the_journal(sim, cluster):
    cluster.enable_mds_ha(standbys=0)

    def proc():
        yield from cluster.mds_call("mkdir", "/kept", client_id=1, op_id=1)
        yield from cluster.mds_call("create", "/kept/f", exclusive=True,
                                    client_id=1, op_id=2)
        mds = cluster.mds
        epoch_before = mds.session_epoch
        mds.crash()
        # SIGKILL answers nothing: a bare op times out.
        with pytest.raises(OpTimeout):
            yield from mds.lookup("/kept/f")
        yield from mds.recover_local()
        assert mds.session_epoch == epoch_before + 1
        info = yield from mds.lookup("/kept/f")
        return info, mds

    info, mds = run(sim, proc())
    assert not info.is_dir
    # The dedup table was rebuilt from the journal, not lost.
    assert (1, 2) in mds.dedup
    assert mds.sessions.get(1) == 2


def test_heartbeats_promote_standby_and_ops_continue(sim, cluster):
    service = cluster.enable_mds_ha(standbys=1)
    cluster.monitor.start_heartbeats()

    def proc():
        yield from cluster.mds_call("mkdir", "/t", client_id=1, op_id=1)
        yield from cluster.mds_call("create", "/t/a", exclusive=True,
                                    client_id=1, op_id=2)
        old_gid = service.active_gids[0]
        service.active_daemon(0).crash()
        # The next op rides detection + promotion + replay transparently.
        info = yield from cluster.mds_call("lookup", "/t/a")
        return old_gid, info

    old_gid, info = run(sim, proc())
    assert service.active_gids[0] != old_gid
    assert service.daemons[old_gid].state in ("stopped", "standby")
    assert service.metrics.counter("failovers").value == 1
    assert not info.is_dir
    # The promoted standby holds the journaled namespace.
    assert cluster.mds.path_exists("/t/a")


def test_resent_mutation_is_exactly_once_across_failover(sim, cluster):
    """A rename whose ack died with the old active must not double-apply:
    the resend carries the same (client_id, op_id) and dedups against
    the table the standby rebuilt during replay."""
    service = cluster.enable_mds_ha(standbys=1)
    cluster.monitor.start_heartbeats()

    def proc():
        yield from cluster.mds_call("mkdir", "/d", client_id=9, op_id=1)
        yield from cluster.mds_call("create", "/src", exclusive=True,
                                    client_id=9, op_id=2)
        yield from cluster.mds_call("rename", "/src", "/d/dst",
                                    client_id=9, op_id=3)
        service.active_daemon(0).crash()
        # The ack above was delivered, but pretend the client never saw
        # it: resend with the identical op id after the failover.
        yield from cluster.mds_call("rename", "/src", "/d/dst",
                                    client_id=9, op_id=3)
        # Resending the original create dedups too: it must NOT
        # resurrect /src, which the (applied) rename already moved.
        yield from cluster.mds_call("create", "/src", exclusive=True,
                                    client_id=9, op_id=2)
        assert not cluster.mds.path_exists("/src")
        # A genuinely new create of the now-free name is not confused
        # with the replayed one.
        yield from cluster.mds_call("create", "/src", exclusive=True,
                                    client_id=9, op_id=99)
        with pytest.raises(FileExists):
            yield from cluster.mds_call("create", "/src", exclusive=True,
                                        client_id=9, op_id=100)

    run(sim, proc())
    active = cluster.mds
    assert active.metrics.counter("dedup_hits").value >= 2
    assert active.path_exists("/d/dst")
    assert active.path_exists("/src")


def test_deposed_active_fences_stale_epoch_ops(sim, cluster):
    service = cluster.enable_mds_ha(standbys=1)

    def proc():
        yield from cluster.mds_call("mkdir", "/pre", client_id=1, op_id=1)
        old = service.active_daemon(0)
        stale_epoch = old.map_epoch
        yield from service.failover(0)
        # The deposed daemon is alive but must reject everything: both
        # stale-stamped ops and current-stamped ones (it holds no rank).
        with pytest.raises(OldEpoch):
            yield from old.mkdir("/rogue", client_id=1, op_id=2,
                                 map_epoch=stale_epoch)
        return old

    old = run(sim, proc())
    assert old.metrics.counter("fenced_ops").value >= 1
    assert not cluster.mds.path_exists("/rogue")
    assert cluster.mds is not old


def test_rank_split_repartitions_and_keeps_namespace(sim, cluster):
    service = cluster.enable_mds_ha(standbys=1)

    def proc():
        yield from cluster.mds_call("mkdir", "/a", client_id=1, op_id=1)
        yield from cluster.mds_call("mkdir", "/b", client_id=1, op_id=2)
        service.split_rank()
        assert service.num_ranks == 2
        # Ops now route across both ranks; everything stays visible.
        for index, path in enumerate(("/a/x", "/b/y")):
            yield from cluster.mds_call("create", path, exclusive=True,
                                        client_id=1, op_id=10 + index)
        infos = []
        for path in ("/a/x", "/b/y"):
            infos.append((yield from cluster.mds_call("lookup", path)))
        return infos

    infos = run(sim, proc())
    assert all(not info.is_dir for info in infos)
    assert service.metrics.counter("rank_splits").value == 1
    mdsmap = cluster.monitor.mdsmap
    assert mdsmap.num_ranks == 2
    # Each creation journaled on the rank owning its parent directory.
    ranks_used = {mdsmap.rank_of_path(p) for p in ("/a/x", "/b/y")}
    for rank in ranks_used:
        assert service.journals[rank].entries >= 1


def test_disarmed_cluster_keeps_single_mds_surface(sim, cluster):
    """No service, no journal, no op ids: the legacy single-MDS shape."""
    assert cluster.mds_service is None
    assert cluster.mds is cluster._mds
    assert cluster.mds.journal is None
    assert cluster.mds_healthy()

    def proc():
        yield from cluster.mds_call("create", "/plain", exclusive=True)
        return (yield from cluster.mds_call("lookup", "/plain"))

    info = run(sim, proc())
    assert info.nlink == 1
    assert cluster.mds.metrics.counter("journal_entries").value == 0


# --- end-to-end failover chaos ----------------------------------------------

_CHAOS_KW = dict(
    duration=8.0,
    replicas=2,
    threads=3,        # multiple tenants mutating concurrently
    nfiles=36,
    mean_size=8 * 1024,   # metadata-heavy: many small files
    mds_crashes=1,
    mds_failovers=1,
    mds_standbys=2,
    osd_crashes=0,
    partitions=0,
    service_crashes=0,
)


@pytest.mark.chaos
def test_chaos_mds_failover_loses_no_acked_mutations():
    result = ChaosConfig(seed=7, **_CHAOS_KW).run()
    assert result.ok
    assert result.mismatches == []
    assert result.read_mismatches == []
    kinds = {entry[2] for entry in result.plan_log}
    assert "mds_crash" in kinds and "mds_failover" in kinds


@pytest.mark.chaos
@pytest.mark.parametrize("seed", [3, 7, 11])
def test_chaos_mds_failover_is_deterministic_per_seed(seed):
    one = ChaosConfig(seed=seed, **_CHAOS_KW).run()
    two = ChaosConfig(seed=seed, **_CHAOS_KW).run()
    assert one.ok and two.ok
    assert one.fingerprint() == two.fingerprint()
    assert one.plan_log == two.plan_log
