"""Tests for ``repro.obs``: spans, registries, profiles, exporters."""

import json

from repro import obs
from repro.common import units
from repro.obs import Observer
from repro.sim import Simulator, SimThread
from repro.sim.cpu import Core
from repro.stacks import StackFactory
from repro.world import World
from tests.conftest import run


def make_observed_world(categories=None):
    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(4)
    world.observe(categories=categories)
    return world


def run_workload(world, symbol, data=b"x" * 65536):
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, symbol).mount_root("c0")
    task = pool.new_task()

    def proc():
        yield from mount.fs.write_file(task, "/f", data, sync=True)
        yield from mount.fs.read_file(task, "/f")

    run(world.sim, proc())
    return world.sim.observer


# -- spans ------------------------------------------------------------------


def test_span_timing_rides_the_sim_clock():
    sim = Simulator()
    obs_ = Observer(sim=sim)
    sim.observer = obs_
    core = Core(sim, 0)
    thread = SimThread(sim, "t0", [core])

    def proc():
        span = obs_.span(thread, "outer", "test")
        yield sim.timeout(1.0)
        span.end()

    run(sim, proc())
    (span,) = obs_.spans
    assert span.name == "outer"
    assert abs(span.duration - 1.0) < 1e-9
    assert span.t0 == 0.0 and span.t1 == 1.0


def test_span_nesting_records_parents_and_self_cpu():
    sim = Simulator()
    obs_ = Observer(sim=sim)
    sim.observer = obs_
    core = Core(sim, 0)
    thread = SimThread(sim, "t0", [core])

    def proc():
        with obs_.span(thread, "outer", "test"):
            yield from thread.run(0.002)
            with obs_.span(thread, "inner", "test"):
                yield from thread.run(0.003)

    run(sim, proc())
    spans = {span.name: span for span in obs_.spans}
    inner, outer = spans["inner"], spans["outer"]
    assert inner.parent is outer
    assert inner.path == ("outer", "inner")
    assert abs(inner.cpu - 0.003) < 1e-9
    assert abs(outer.cpu - 0.005) < 1e-9
    assert abs(outer.self_cpu - 0.002) < 1e-9  # child CPU subtracted


def test_spans_emitted_by_instrumented_layers():
    observer = run_workload(make_observed_world(), "D")
    names = {span.name for span in observer.spans}
    assert "ipc.submit" in names
    assert "svc.handle" in names
    assert "client.write" in names
    # Nesting across layers: the service handler parents the client span.
    client_spans = [s for s in observer.spans if s.name == "client.write"]
    assert any(
        s.parent is not None and s.parent.name == "svc.handle"
        for s in client_spans
    )


def test_fuse_and_vfs_spans_on_kernel_paths():
    observer = run_workload(make_observed_world(), "F")
    names = {span.name for span in observer.spans}
    assert "fuse.call" in names
    assert "vfs.write" in names


# -- registries ----------------------------------------------------------------


def test_metric_registry_get_or_create():
    observer = Observer()
    registry = observer.metrics("pool0")
    assert observer.metrics("pool0") is registry
    counter = registry.counter("ops")
    counter.add(2)
    assert registry.counter("ops") is counter
    assert registry.counter("ops").value == 2
    assert observer.metrics("pool1") is not registry
    assert observer.scopes() == ["pool0", "pool1"]


# -- profiles -------------------------------------------------------------------


def test_cpu_attribution_and_lock_table():
    world = make_observed_world()
    observer = run_workload(world, "K")
    profile = observer.cpu_profile()
    assert profile, "expected per-core CPU attribution"
    threads = {name for per in profile.values() for name in per}
    assert any(name.startswith("p.") for name in threads)
    table = observer.lock_table()
    classes = {row["lock_class"] for row in table}
    assert "i_mutex_key" in classes
    imutex = [row for row in table if row["lock_class"] == "i_mutex_key"]
    assert any(row["pool"] == "p" for row in imutex)
    assert all(row["acquisitions"] > 0 for row in imutex)


def test_lock_table_attributes_client_lock_per_pool():
    world = make_observed_world()
    observer = run_workload(world, "D")
    table = observer.lock_table()
    client_rows = [r for r in table if r["lock_class"] == "client_lock"]
    assert client_rows and client_rows[0]["pool"] == "p"


def test_timelines_record_queue_depth_and_dirty_bytes():
    observer = run_workload(make_observed_world(), "D")
    qdepth = [name for name in observer.timelines()
              if name.startswith("qdepth:")]
    assert qdepth
    series = observer.timeline(qdepth[0])
    assert series and all(isinstance(t, float) for t, _v in series)


# -- exporters -------------------------------------------------------------------


def test_chrome_trace_round_trip(tmp_path):
    observer = run_workload(make_observed_world(), "D")
    path = tmp_path / "trace.json"
    count = observer.write_chrome_trace(str(path))
    trace = json.loads(path.read_text())
    assert len(trace["traceEvents"]) == count
    spans = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
    assert spans
    for event in spans[:50]:
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert event["dur"] >= 0
    metas = [ev for ev in trace["traceEvents"] if ev["ph"] == "M"]
    assert any(ev["name"] == "thread_name" for ev in metas)


def test_fold_output_shape():
    observer = run_workload(make_observed_world(), "D")
    fold = observer.fold()
    assert fold
    for line in fold:
        path, _space, value = line.rpartition(" ")
        assert path and int(value) >= 0
    assert any(";" in line for line in fold)  # nested stacks present


def test_merge_profiles_tags_worlds():
    first = run_workload(make_observed_world(), "D")
    second = run_workload(make_observed_world(), "K")
    merged = obs.merge_profiles([first, second])
    worlds = {row["world"] for row in merged["lock_contention"]}
    assert worlds == {"w0", "w1"}
    classes = {row["lock_class"] for row in merged["lock_contention"]}
    assert "client_lock" in classes and "i_mutex_key" in classes


# -- no-op path ----------------------------------------------------------------


def test_no_observer_means_no_recording():
    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(4)
    assert world.sim.observer is None
    run_workload(world, "D")
    # Locks still register (creation-time, always on) but nothing records.
    assert world.sim.observer is None
    assert world.sim.tracer is None


def test_default_spec_auto_attaches_new_worlds():
    obs.reset_attached()
    obs.set_default(categories={"wb"})
    try:
        world = World(num_cores=4, ram_bytes=units.gib(4))
        assert world.sim.observer is not None
        assert world.sim.observer.categories == {"wb"}
        assert obs.attached() == [world.sim.observer]
    finally:
        obs.clear_default()
        obs.reset_attached()
    later = World(num_cores=4, ram_bytes=units.gib(4))
    assert later.sim.observer is None
