"""Tests for the serverless workload (§9 extension)."""

import pytest

from repro.common import units
from repro.stacks import StackFactory
from repro.workloads import ServerlessTenant
from repro.world import World
from tests.conftest import run


@pytest.fixture
def world():
    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(4)
    return world


@pytest.fixture
def tenant(world):
    pool = world.engine.create_pool("fn", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    return ServerlessTenant(
        mount, pool, duration=2.0, threads=2, n_functions=3,
        handler_size=units.kib(16), state_size=units.kib(4),
        warm_fraction=0.5, seed=7,
    )


def test_invocations_complete_and_split_cold_warm(world, tenant):
    result = run(world.sim, tenant.run(), until=120)
    assert result.ops > 10
    assert tenant.cold_latency.count >= 3  # first touch of each function
    assert tenant.warm_latency.count > 0
    total = tenant.cold_latency.count + tenant.warm_latency.count
    assert total == result.ops


def test_cold_invocations_slower_than_warm(world, tenant):
    run(world.sim, tenant.run(), until=120)
    assert tenant.cold_latency.mean > tenant.warm_latency.mean


def test_cold_starts_use_legacy_path(world, tenant):
    run(world.sim, tenant.run(), until=120)
    # exec of the handler binary crossed the Danaus legacy FUSE endpoint.
    assert tenant.mount.ctx_switches() > 0


def test_results_are_persisted(world, tenant):
    result = run(world.sim, tenant.run(), until=120)
    task = tenant.pool.new_task("audit")

    def audit():
        names = yield from tenant.mount.fs.readdir(task, "/invocations")
        return names

    names = run(world.sim, audit())
    assert len(names) == result.ops
