"""Unit tests for the Ceph-like storage backend."""

import pytest

from repro.common import units
from repro.common.errors import ConfigError, FileNotFound
from repro.costs import CostModel
from repro.net import Fabric
from repro.storage import CephCluster, CrushMap
from tests.conftest import run


@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(256))


@pytest.fixture
def cluster(sim, costs):
    fabric = Fabric(sim)
    return CephCluster(sim, fabric, costs, num_osds=4)


# --- CRUSH ------------------------------------------------------------------

def test_crush_is_deterministic():
    crush = CrushMap(6)
    assert crush.placement(42, 0) == crush.placement(42, 0)


def test_crush_spreads_objects():
    crush = CrushMap(6)
    primaries = {crush.primary(1, index) for index in range(100)}
    assert len(primaries) >= 4  # objects land on most OSDs


def test_crush_replicas_distinct():
    crush = CrushMap(6, replicas=3)
    for index in range(50):
        placement = crush.placement(7, index)
        assert len(placement) == 3
        assert len(set(placement)) == 3


def test_crush_invalid_config():
    with pytest.raises(ConfigError):
        CrushMap(0)
    with pytest.raises(ConfigError):
        CrushMap(2, replicas=3)


# --- striping ------------------------------------------------------------------

def test_object_extents_single(cluster, costs):
    assert cluster.object_extents(0, 100) == [(0, 0, 100)]


def test_object_extents_spanning(cluster, costs):
    osz = costs.object_size
    extents = cluster.object_extents(osz - 10, 20)
    assert extents == [(0, osz - 10, 10), (1, 0, 10)]


def test_object_extents_multiple_objects(cluster, costs):
    osz = costs.object_size
    extents = cluster.object_extents(0, 3 * osz)
    assert [e[0] for e in extents] == [0, 1, 2]


# --- data path --------------------------------------------------------------------

def test_write_read_roundtrip(sim, cluster):
    payload = bytes(range(256)) * 1024  # 256 KiB

    def proc():
        yield from cluster.write_extent(1, 0, payload)
        data = yield from cluster.read_extent(1, 0, len(payload))
        return data

    assert run(sim, proc()) == payload


def test_write_spanning_objects(sim, cluster, costs):
    osz = costs.object_size
    payload = b"ab" * osz  # 2 objects worth

    def proc():
        yield from cluster.write_extent(2, 0, payload)
        return (yield from cluster.read_extent(2, osz - 4, 8))

    middle = run(sim, proc())
    assert middle == payload[osz - 4:osz + 4]


def test_read_hole_returns_short(sim, cluster):
    def proc():
        yield from cluster.write_extent(3, 0, b"x" * 100)
        return (yield from cluster.read_extent(3, 1000, 100))

    assert run(sim, proc()) == b""


def test_peek_zero_fills_holes(sim, cluster):
    def proc():
        yield from cluster.write_extent(4, 10, b"abc")
        return cluster.peek(4, 0, 13)

    assert run(sim, proc()) == b"\x00" * 10 + b"abc"


def test_replicated_write_lands_on_all_replicas(sim, costs):
    fabric = Fabric(sim)
    cluster = CephCluster(sim, fabric, costs, num_osds=4, replicas=2)

    def proc():
        yield from cluster.write_extent(5, 0, b"replica-data")

    run(sim, proc())
    holders = [
        osd for osd in cluster.osds if osd.object_size(5, 0) == len(b"replica-data")
    ]
    assert len(holders) == 2


def test_purge_removes_objects(sim, cluster):
    def proc():
        yield from cluster.write_extent(6, 0, b"x" * 1000)

    run(sim, proc())
    assert cluster.stored_bytes == 1000
    cluster.purge(6)
    assert cluster.stored_bytes == 0


def test_truncate_drops_tail_objects(sim, cluster, costs):
    osz = costs.object_size

    def proc():
        yield from cluster.write_extent(7, 0, b"z" * (2 * osz))
        yield from cluster.truncate(7, osz // 2)
        return cluster.file_bytes(7)

    assert run(sim, proc()) == osz // 2


# --- MDS --------------------------------------------------------------------------

def test_mds_create_lookup(sim, cluster):
    def proc():
        info = yield from cluster.mds_call("create", "/f")
        found = yield from cluster.mds_call("lookup", "/f")
        return info.ino, found.ino

    ino_a, ino_b = run(sim, proc())
    assert ino_a == ino_b


def test_mds_lookup_missing_raises(sim, cluster):
    def proc():
        with pytest.raises(FileNotFound):
            yield from cluster.mds_call("lookup", "/missing")
        return True

    assert run(sim, proc())


def test_mds_setattr_size_bumps_version(sim, cluster):
    def proc():
        info = yield from cluster.mds_call("create", "/f")
        updated = yield from cluster.mds_call("setattr_size", "/f", 12345)
        return info.version, updated.version, updated.size

    v_before, v_after, size = run(sim, proc())
    assert v_after > v_before
    assert size == 12345


def test_mds_stores_no_file_bytes(sim, cluster):
    def proc():
        yield from cluster.mds_call("create", "/f")
        yield from cluster.mds_call("setattr_size", "/f", units.mib(100))

    run(sim, proc())
    node = cluster.mds.node_of("/f")
    assert node.data is None
    assert node.size == units.mib(100)


def test_mds_namespace_shared_between_callers(sim, cluster):
    def writer():
        yield from cluster.mds_call("mkdir", "/shared")
        yield from cluster.mds_call("create", "/shared/f")

    def reader():
        yield sim.timeout(1)
        names = yield from cluster.mds_call("readdir", "/shared")
        return names

    sim.spawn(writer())
    proc = sim.spawn(reader())
    sim.run(until=10)
    assert proc.value == ["f"]


def test_mds_unlink_returns_ino(sim, cluster):
    def proc():
        info = yield from cluster.mds_call("create", "/f")
        ino, _size = yield from cluster.mds_call("unlink", "/f")
        return info.ino, ino

    ino_a, ino_b = run(sim, proc())
    assert ino_a == ino_b


def test_osd_concurrency_limits_parallelism(sim, costs):
    fabric = Fabric(sim)
    cluster = CephCluster(sim, fabric, costs, num_osds=1)
    osd = cluster.osds[0]
    finish = []

    def writer(tag):
        yield from cluster.write_extent(tag, 0, b"y" * units.kib(64))
        finish.append(sim.now)

    for tag in range(20):
        sim.spawn(writer(tag))
    sim.run(until=60)
    assert len(finish) == 20
    assert osd.metrics.counter("writes").value == 20
