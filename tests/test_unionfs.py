"""Integration tests for the union filesystem."""

import pytest

from repro.common.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    ReadOnlyFilesystem,
)
from repro.costs import CostModel
from repro.fs.api import OpenFlags
from repro.fs.memtree import MemTree
from repro.hw import RamDisk
from repro.kernel import LocalFs
from repro.unionfs import Branch, UnionFs
from tests.conftest import make_task, run


@pytest.fixture
def setup(sim, kernel, machine):
    """Two-branch union: writable /upper over read-only /lower."""
    fs = LocalFs(kernel, RamDisk(sim), name="backing")
    task = make_task(sim, machine, "setup")

    def populate():
        yield from fs.makedirs(task, "/upper")
        yield from fs.makedirs(task, "/lower/etc")
        yield from fs.write_file(task, "/lower/base.txt", b"base content")
        yield from fs.write_file(task, "/lower/etc/conf", b"setting=1")

    run(sim, populate())
    union = UnionFs(
        sim, CostModel(),
        [Branch(fs, "/upper", writable=True), Branch(fs, "/lower")],
    )
    return fs, union, task


def test_read_from_lower_branch(sim, setup):
    fs, union, task = setup

    def proc():
        return (yield from union.read_file(task, "/base.txt"))

    assert run(sim, proc()) == b"base content"


def test_create_goes_to_upper(sim, setup):
    fs, union, task = setup

    def proc():
        yield from union.write_file(task, "/new.txt", b"fresh")
        upper = yield from fs.read_file(task, "/upper/new.txt")
        return upper

    assert run(sim, proc()) == b"fresh"


def test_write_to_lower_file_copies_up(sim, setup):
    fs, union, task = setup

    def proc():
        handle = yield from union.open(task, "/base.txt", OpenFlags.RDWR)
        yield from union.write(task, handle, 0, b"MOD!")
        yield from union.close(task, handle)
        merged = yield from union.read_file(task, "/base.txt")
        lower = yield from fs.read_file(task, "/lower/base.txt")
        upper = yield from fs.read_file(task, "/upper/base.txt")
        return merged, lower, upper

    merged, lower, upper = run(sim, proc())
    assert merged == b"MOD! content"
    assert lower == b"base content"  # the read-only branch is untouched
    assert upper == b"MOD! content"
    assert setup[1].metrics.counter("copy_ups").value == 1


def test_copy_up_preserves_whole_file(sim, setup):
    fs, union, task = setup

    def proc():
        handle = yield from union.open(
            task, "/base.txt", OpenFlags.WRONLY | OpenFlags.APPEND
        )
        yield from union.write(task, handle, 0, b"+tail")
        yield from union.close(task, handle)
        return (yield from union.read_file(task, "/base.txt"))

    assert run(sim, proc()) == b"base content+tail"


def test_trunc_open_skips_copy_up(sim, setup):
    fs, union, task = setup

    def proc():
        handle = yield from union.open(
            task, "/base.txt", OpenFlags.WRONLY | OpenFlags.TRUNC
        )
        yield from union.write(task, handle, 0, b"new")
        yield from union.close(task, handle)
        return (yield from union.read_file(task, "/base.txt"))

    assert run(sim, proc()) == b"new"
    assert setup[1].metrics.counter("copy_ups").value == 0


def test_unlink_lower_creates_whiteout(sim, setup):
    fs, union, task = setup

    def proc():
        yield from union.unlink(task, "/base.txt")
        exists = yield from union.exists(task, "/base.txt")
        whiteout = yield from fs.exists(task, "/upper/.wh.base.txt")
        return exists, whiteout

    exists, whiteout = run(sim, proc())
    assert not exists
    assert whiteout


def test_whiteout_hides_lower_in_readdir(sim, setup):
    fs, union, task = setup

    def proc():
        yield from union.write_file(task, "/mine.txt", b"x")
        yield from union.unlink(task, "/base.txt")
        return (yield from union.readdir(task, "/"))

    names = run(sim, proc())
    assert "base.txt" not in names
    assert "mine.txt" in names
    assert "etc" in names
    assert not any(name.startswith(".wh.") for name in names)


def test_recreate_after_whiteout(sim, setup):
    fs, union, task = setup

    def proc():
        yield from union.unlink(task, "/base.txt")
        yield from union.write_file(task, "/base.txt", b"reborn")
        return (yield from union.read_file(task, "/base.txt"))

    assert run(sim, proc()) == b"reborn"


def test_readdir_merges_branches(sim, setup):
    fs, union, task = setup

    def proc():
        yield from union.write_file(task, "/upper_only.txt", b"u")
        return (yield from union.readdir(task, "/"))

    names = run(sim, proc())
    assert "base.txt" in names
    assert "upper_only.txt" in names


def test_readdir_dedupes_same_name(sim, setup):
    fs, union, task = setup

    def proc():
        yield from union.write_file(task, "/base.txt", b"shadow")
        return (yield from union.readdir(task, "/"))

    names = run(sim, proc())
    assert names.count("base.txt") == 1


def test_upper_shadows_lower(sim, setup):
    fs, union, task = setup

    def proc():
        yield from fs.write_file(task, "/upper/base.txt", b"shadow")
        return (yield from union.read_file(task, "/base.txt"))

    assert run(sim, proc()) == b"shadow"


def test_stat_missing_raises(sim, setup):
    fs, union, task = setup

    def proc():
        with pytest.raises(FileNotFound):
            yield from union.stat(task, "/ghost")
        return True

    assert run(sim, proc())


def test_mkdir_existing_lower_raises(sim, setup):
    fs, union, task = setup

    def proc():
        with pytest.raises(FileExists):
            yield from union.mkdir(task, "/etc")
        return True

    assert run(sim, proc())


def test_rmdir_nonempty_union_dir_raises(sim, setup):
    fs, union, task = setup

    def proc():
        with pytest.raises(DirectoryNotEmpty):
            yield from union.rmdir(task, "/etc")
        return True

    assert run(sim, proc())


def test_rename_lower_copies_and_whiteouts(sim, setup):
    fs, union, task = setup

    def proc():
        yield from union.rename(task, "/base.txt", "/renamed.txt")
        old_exists = yield from union.exists(task, "/base.txt")
        data = yield from union.read_file(task, "/renamed.txt")
        lower_still = yield from fs.exists(task, "/lower/base.txt")
        return old_exists, data, lower_still

    old_exists, data, lower_still = run(sim, proc())
    assert not old_exists
    assert data == b"base content"
    assert lower_still  # lower branch untouched


def test_exclusive_create_on_lower_file_raises(sim, setup):
    fs, union, task = setup

    def proc():
        with pytest.raises(FileExists):
            yield from union.open(
                task, "/base.txt",
                OpenFlags.CREAT | OpenFlags.EXCL | OpenFlags.WRONLY,
            )
        return True

    assert run(sim, proc())


def test_single_readonly_branch_rejects_writes(sim, kernel, machine):
    fs = LocalFs(kernel, RamDisk(sim), name="ro")
    task = make_task(sim, machine)

    def populate():
        yield from fs.write_file(task, "/f", b"x")

    run(sim, populate())
    union = UnionFs(sim, CostModel(), [Branch(fs, "/", writable=False)])

    def proc():
        with pytest.raises(ReadOnlyFilesystem):
            yield from union.open(task, "/g", OpenFlags.CREAT | OpenFlags.WRONLY)
        with pytest.raises(ReadOnlyFilesystem):
            yield from union.unlink(task, "/f")
        return True

    assert run(sim, proc())


def test_top_branch_must_be_writable(sim, kernel):
    fs = LocalFs(kernel, RamDisk(sim), name="b")
    with pytest.raises(InvalidArgument):
        UnionFs(sim, CostModel(), [Branch(fs, "/a"), Branch(fs, "/b")])


def test_peek_respects_whiteouts(sim, setup):
    fs, union, task = setup

    def proc():
        yield from union.unlink(task, "/base.txt")

    run(sim, proc())
    assert union.peek("/base.txt", 0, 100) is None
    assert union.peek("/etc/conf", 0, 100) == b"setting=1"
