"""Unit tests for the network fabric model."""

import pytest

from repro.common import units
from repro.net import Fabric, Link


def test_link_transfer_time_includes_latency(sim):
    link = Link(sim, bandwidth=units.mib(100), latency=0.01)

    def proc():
        yield from link.transfer(units.mib(10))
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(0.11)


def test_link_zero_bytes_costs_only_latency(sim):
    link = Link(sim, bandwidth=units.mib(100), latency=0.01)

    def proc():
        yield from link.transfer(0)
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(0.01)


def test_concurrent_transfers_share_bandwidth(sim):
    link = Link(sim, bandwidth=units.mib(100), latency=0)
    finish = []

    def proc():
        yield from link.transfer(units.mib(10))
        finish.append(sim.now)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    # Two 10MiB flows over 100MiB/s: fair sharing -> both need ~0.2s.
    assert max(finish) == pytest.approx(0.2, rel=0.05)
    assert min(finish) > 0.15


def test_link_records_metrics(sim):
    link = Link(sim, bandwidth=units.mib(100), latency=0)

    def proc():
        yield from link.transfer(units.kib(4))

    sim.run_process(proc())
    assert link.metrics.counter("bytes").value == units.kib(4)
    assert link.metrics.counter("transfers").value == 1


def test_fabric_rpc_runs_server_logic(sim):
    fabric = Fabric(sim, bandwidth=units.mib(100), latency=0.001)

    def server():
        yield sim.timeout(0.005)
        return "stored"

    def client():
        result = yield from fabric.rpc(
            server(), send_bytes=units.kib(64), recv_bytes=0
        )
        return result, sim.now

    result, elapsed = sim.run_process(client())
    assert result == "stored"
    # two latencies + server time + payload transfer time
    assert elapsed > 0.001 * 2 + 0.005
