"""Tests for library pipes and directory streams (§4.1)."""

import pytest

from repro.common import units
from repro.common.errors import BadFileDescriptor, InvalidArgument
from repro.core import FilesystemLibrary
from repro.core.streams import DirStream, LibraryPipe
from repro.stacks import StackFactory
from repro.world import World
from tests.conftest import make_task, run


# --- LibraryPipe (unit) -----------------------------------------------------

def test_pipe_write_then_read(sim, machine):
    pipe = LibraryPipe(sim)
    task = make_task(sim, machine)

    def proc():
        yield from pipe.write(task, b"hello through shm")
        return (yield from pipe.read(task, 100))

    assert run(sim, proc()) == b"hello through shm"


def test_pipe_read_blocks_until_write(sim, machine):
    pipe = LibraryPipe(sim)
    task = make_task(sim, machine)
    log = []

    def consumer():
        data = yield from pipe.read(task, 10)
        log.append((data, sim.now))

    def producer():
        yield sim.timeout(2)
        yield from pipe.write(task, b"late")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run(until=10)
    assert log == [(b"late", 2)]


def test_pipe_write_blocks_when_full(sim, machine):
    pipe = LibraryPipe(sim, capacity=4)
    task = make_task(sim, machine)
    times = []

    def producer():
        yield from pipe.write(task, b"aaaa")
        times.append(sim.now)
        yield from pipe.write(task, b"bb")  # must wait for space
        times.append(sim.now)

    def consumer():
        yield sim.timeout(3)
        yield from pipe.read(task, 4)

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run(until=10)
    assert times[0] == 0
    assert times[1] == 3


def test_pipe_eof_after_write_close(sim, machine):
    pipe = LibraryPipe(sim)
    task = make_task(sim, machine)

    def proc():
        yield from pipe.write(task, b"last")
        pipe.close_write()
        first = yield from pipe.read(task, 10)
        eof = yield from pipe.read(task, 10)
        return first, eof

    assert run(sim, proc()) == (b"last", b"")


def test_pipe_broken_after_read_close(sim, machine):
    pipe = LibraryPipe(sim)
    task = make_task(sim, machine)

    def proc():
        pipe.close_read()
        with pytest.raises(InvalidArgument):
            yield from pipe.write(task, b"x")
        return True

    assert run(sim, proc())


def test_pipe_partial_reads(sim, machine):
    pipe = LibraryPipe(sim)
    task = make_task(sim, machine)

    def proc():
        yield from pipe.write(task, b"abcdef")
        first = yield from pipe.read(task, 2)
        second = yield from pipe.read(task, 10)
        return first, second

    assert run(sim, proc()) == (b"ab", b"cdef")


# --- DirStream (unit) ----------------------------------------------------------

def test_dirstream_iterates_and_rewinds():
    stream = DirStream(None, "/d", ["a", "b"])
    assert stream.next_entry() == "a"
    assert stream.tell() == 1
    assert stream.next_entry() == "b"
    assert stream.next_entry() is None
    stream.rewind()
    assert stream.next_entry() == "a"
    stream.seek(2)
    assert stream.next_entry() is None
    with pytest.raises(InvalidArgument):
        stream.seek(5)
    stream.close()
    with pytest.raises(BadFileDescriptor):
        stream.next_entry()


# --- through the Danaus library ---------------------------------------------------

@pytest.fixture
def setup():
    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(4)
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    return world, pool, mount


def test_library_pipe_descriptors(setup):
    world, pool, mount = setup
    library = mount.library
    task = pool.new_task()
    read_end, write_end = library.pipe()
    assert read_end.fd != write_end.fd

    def proc():
        yield from library.pipe_write(task, write_end, b"ipc payload")
        data = yield from library.pipe_read(task, read_end, 100)
        library.pipe_close(write_end)
        eof = yield from library.pipe_read(task, read_end, 10)
        library.pipe_close(read_end)
        return data, eof

    data, eof = run(world.sim, proc())
    assert data == b"ipc payload"
    assert eof == b""
    assert len(library.files) == 0  # descriptors released


def test_library_pipe_between_processes(setup):
    """Producer and consumer threads of the pool share the pipe."""
    world, pool, mount = setup
    library = mount.library
    read_end, write_end = library.pipe(capacity=64)
    producer_task = pool.new_task("producer")
    consumer_task = pool.new_task("consumer")
    received = []

    def producer():
        for index in range(8):
            chunk = b"msg-%03d;" % index
            yield from library.pipe_write(producer_task, write_end, chunk)
        library.pipe_close(write_end)

    def consumer():
        while True:
            data = yield from library.pipe_read(consumer_task, read_end, 16)
            if not data:
                break
            received.append(data)
        library.pipe_close(read_end)

    world.sim.spawn(producer())
    proc = world.sim.spawn(consumer())
    world.sim.run_until(proc, 100)
    assert b"".join(received) == b"".join(b"msg-%03d;" % i for i in range(8))


def test_library_directory_stream(setup):
    world, pool, mount = setup
    library = mount.library
    task = pool.new_task()

    def proc():
        yield from mount.fs.makedirs(task, "/data")
        for name in ("x", "y", "z"):
            yield from mount.fs.write_file(task, "/data/" + name, b"1")
        stream = yield from library.opendir(task, "/data")
        names = []
        while True:
            name = yield from library.readdir_next(task, stream)
            if name is None:
                break
            names.append(name)
        library.rewinddir(stream)
        first_again = yield from library.readdir_next(task, stream)
        library.closedir(stream)
        return names, first_again

    names, first_again = run(world.sim, proc())
    assert names == ["x", "y", "z"]
    assert first_again == "x"


def test_dir_stream_snapshot_is_stable(setup):
    """Entries added after opendir do not appear mid-iteration (POSIX
    allows either; we provide the stable snapshot)."""
    world, pool, mount = setup
    library = mount.library
    task = pool.new_task()

    def proc():
        yield from mount.fs.makedirs(task, "/snap")
        yield from mount.fs.write_file(task, "/snap/a", b"1")
        stream = yield from library.opendir(task, "/snap")
        yield from mount.fs.write_file(task, "/snap/b", b"2")
        names = []
        while True:
            name = yield from library.readdir_next(task, stream)
            if name is None:
                break
            names.append(name)
        library.closedir(stream)
        return names

    assert run(world.sim, proc()) == ["a"]
