"""Unit tests for the page cache."""

import pytest

from repro.common import units
from repro.hw import RamAccount
from repro.kernel import PageCache

PAGE = 4096


@pytest.fixture
def ram():
    return RamAccount(units.mib(1), name="test-ram")


@pytest.fixture
def cache(ram):
    return PageCache(PAGE, ram)


def flushless(nbytes, pages):
    return iter(())  # never called in these tests


def test_scan_all_missing(cache):
    cf = cache.file("f")
    hits, misses = cache.scan(cf, 0, 3 * PAGE)
    assert hits == 0
    assert misses == [(0, 3 * PAGE)]


def test_insert_then_scan_hits(cache, ram):
    cf = cache.file("f")
    cache.insert(cf, 0, 3 * PAGE, ram)
    hits, misses = cache.scan(cf, 0, 3 * PAGE)
    assert hits == 3
    assert misses == []
    assert ram.used == 3 * PAGE


def test_scan_partial_miss_in_middle(cache, ram):
    cf = cache.file("f")
    cache.insert(cf, 0, PAGE, ram)          # page 0
    cache.insert(cf, 2 * PAGE, PAGE, ram)   # page 2
    hits, misses = cache.scan(cf, 0, 3 * PAGE)
    assert hits == 2
    assert misses == [(PAGE, PAGE)]


def test_scan_unaligned_range(cache, ram):
    cf = cache.file("f")
    hits, misses = cache.scan(cf, 100, 50)
    assert hits == 0
    assert misses == [(0, PAGE)]  # page-aligned fetch


def test_insert_is_idempotent(cache, ram):
    cf = cache.file("f")
    assert cache.insert(cf, 0, PAGE, ram) == 1
    assert cache.insert(cf, 0, PAGE, ram) == 0
    assert ram.used == PAGE


def test_mark_dirty_accounting(cache, ram):
    cf = cache.file("f")
    cache.mark_dirty(cf, 0, 2 * PAGE, now=1.0, account=ram)
    assert cache.dirty_bytes == 2 * PAGE
    assert cache.account_dirty(ram) == 2 * PAGE
    assert cf.nr_dirty == 2


def test_clean_restores_accounting(cache, ram):
    cf = cache.file("f")
    cache.mark_dirty(cf, 0, 2 * PAGE, now=1.0, account=ram)
    cleaned = cache.clean(cf, [0, 1])
    assert cleaned == 2 * PAGE
    assert cache.dirty_bytes == 0
    assert cache.account_dirty(ram) == 0
    assert cf.nr_dirty == 0
    # pages stay cached as clean
    hits, _ = cache.scan(cf, 0, 2 * PAGE)
    assert hits == 2


def test_dirty_pages_not_evictable(cache, ram):
    cf = cache.file("f")
    capacity_pages = ram.capacity // PAGE
    cache.mark_dirty(cf, 0, capacity_pages * PAGE, now=0.0, account=ram)
    other = cache.file("g")
    inserted = cache.insert(other, 0, PAGE, ram)
    assert inserted == 0  # nothing evictable, page served uncached


def test_eviction_reclaims_cold_clean_pages(cache, ram):
    cf = cache.file("f")
    capacity_pages = ram.capacity // PAGE
    cache.insert(cf, 0, capacity_pages * PAGE, ram)
    assert ram.available == 0
    other = cache.file("g")
    assert cache.insert(other, 0, PAGE, ram) == 1
    assert cache.evictions == 1
    assert ram.used == ram.capacity  # still full, coldest page replaced


def test_lru_eviction_order(cache, ram):
    cf = cache.file("f")
    capacity_pages = ram.capacity // PAGE
    cache.insert(cf, 0, capacity_pages * PAGE, ram)
    # Touch page 0 so it becomes hottest.
    cache.scan(cf, 0, PAGE)
    other = cache.file("g")
    cache.insert(other, 0, PAGE, ram)
    # Page 0 survived; page 1 (coldest untouched) went.
    hits, _ = cache.scan(cf, 0, PAGE)
    assert hits == 1
    hits, _ = cache.scan(cf, PAGE, PAGE)
    assert hits == 0


def test_drop_file_releases_memory(cache, ram):
    cf = cache.file("f")
    cache.insert(cf, 0, 4 * PAGE, ram)
    cache.mark_dirty(cf, 0, PAGE, now=0.0, account=ram)
    cache.drop_file("f")
    assert ram.used == 0
    assert cache.dirty_bytes == 0
    assert cache.peek("f") is None


def test_pick_flush_batch_respects_age(cache, ram):
    cf = cache.file("f")
    cache.mark_dirty(cf, 0, PAGE, now=0.0, account=ram)
    cache.mark_dirty(cf, PAGE, PAGE, now=10.0, account=ram)
    picked = cache.pick_flush_batch(cf, 10, now=11.0, min_age=5.0)
    assert picked == [0]


def test_pick_flush_batch_skips_under_writeback(cache, ram):
    cf = cache.file("f")
    cache.mark_dirty(cf, 0, 2 * PAGE, now=0.0, account=ram)
    first = cache.pick_flush_batch(cf, 1)
    second = cache.pick_flush_batch(cf, 10)
    assert first == [0]
    assert second == [1]


def test_cancel_writeback_allows_repick(cache, ram):
    cf = cache.file("f")
    cache.mark_dirty(cf, 0, PAGE, now=0.0, account=ram)
    picked = cache.pick_flush_batch(cf, 10)
    cache.cancel_writeback(cf, picked)
    assert cache.pick_flush_batch(cf, 10) == picked


def test_dirty_files_listing(cache, ram):
    cf = cache.file("f")
    cache.insert(cf, 0, PAGE, ram)
    assert cache.dirty_files() == []
    cache.mark_dirty(cf, 0, PAGE, now=0.0, account=ram)
    assert cache.dirty_files() == [cf]


def test_stats_snapshot(cache, ram):
    cf = cache.file("f")
    cache.insert(cf, 0, 2 * PAGE, ram)
    stats = cache.stats()
    assert stats["cached_bytes"] == 2 * PAGE
    assert stats["files"] == 1
