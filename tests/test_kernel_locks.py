"""Unit tests for the kernel lock registry."""

from repro.kernel import GLOBAL_INSTANCE, LockRegistry
from tests.conftest import make_task, run


def test_same_key_returns_same_lock(sim):
    registry = LockRegistry(sim)
    a = registry.get("i_mutex_key", 1)
    b = registry.get("i_mutex_key", 1)
    c = registry.get("i_mutex_key", 2)
    assert a is b
    assert a is not c


def test_global_instance_is_shared(sim):
    registry = LockRegistry(sim)
    assert registry.get("lru_lock") is registry.get("lru_lock", GLOBAL_INSTANCE)


def test_class_stats_merge_instances(sim, machine):
    registry = LockRegistry(sim)
    task = make_task(sim, machine)

    def proc():
        for ino in (1, 2):
            lock = registry.get("i_mutex_key", ino)
            yield from registry.locked_section(task, lock, 0.001)

    run(sim, proc())
    stats = registry.class_stats("i_mutex_key")
    assert stats.acquisitions == 2
    assert stats.total_hold > 0


def test_locked_section_records_contention(sim, machine):
    registry = LockRegistry(sim)
    lock = registry.get("sb_lock")

    def proc(name):
        task = make_task(sim, machine, name)
        yield from registry.locked_section(task, lock, 0.01)

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.run(until=10)
    assert lock.stats.acquisitions == 2
    assert lock.stats.contended == 1
    assert lock.stats.total_wait > 0


def test_hottest_ranks_by_wait(sim, machine):
    registry = LockRegistry(sim)
    hot = registry.get("hot_lock")
    cold = registry.get("cold_lock")

    def proc(lock, hold):
        task = make_task(sim, machine)
        yield from registry.locked_section(task, lock, hold)

    for _ in range(3):
        sim.spawn(proc(hot, 0.05))
    sim.spawn(proc(cold, 0.001))
    sim.run(until=10)
    ranked = registry.hottest()
    assert ranked[0][0] == "hot_lock"


def test_total_stats_covers_all_classes(sim, machine):
    registry = LockRegistry(sim)

    def proc():
        task = make_task(sim, machine)
        yield from registry.locked_section(task, registry.get("a"), 0.001)
        yield from registry.locked_section(task, registry.get("b"), 0.001)

    run(sim, proc())
    assert registry.total_stats().acquisitions == 2
