"""Tests for the capabilities-based consistency mode."""

import pytest

from repro.cephclient import CephLibClient
from repro.common import units
from repro.common.errors import InvalidArgument
from repro.costs import CostModel
from repro.fs.api import OpenFlags
from repro.net import Fabric
from repro.storage import CephCluster
from repro.storage.caps import (
    CAP_READ_CACHE,
    CAP_WRITE_BUFFER,
    CapsTable,
)
from tests.conftest import make_task, run


# --- the caps table (pure logic) -------------------------------------------

def test_concurrent_readers_do_not_conflict():
    table = CapsTable()
    table.grant(1, 10, CAP_READ_CACHE)
    table.grant(1, 11, CAP_READ_CACHE)
    assert table.conflicts(1, 12, CAP_READ_CACHE) == []


def test_writer_revokes_everyone():
    table = CapsTable()
    table.grant(1, 10, CAP_READ_CACHE)
    table.grant(1, 11, CAP_READ_CACHE | CAP_WRITE_BUFFER)
    conflicts = dict(table.conflicts(1, 12, CAP_WRITE_BUFFER))
    assert conflicts[10] == CAP_READ_CACHE
    assert conflicts[11] == CAP_READ_CACHE | CAP_WRITE_BUFFER


def test_reader_revokes_only_write_caps():
    table = CapsTable()
    table.grant(1, 10, CAP_READ_CACHE | CAP_WRITE_BUFFER)
    conflicts = dict(table.conflicts(1, 11, CAP_READ_CACHE))
    assert conflicts == {10: CAP_WRITE_BUFFER}


def test_own_caps_never_conflict():
    table = CapsTable()
    table.grant(1, 10, CAP_WRITE_BUFFER)
    assert table.conflicts(1, 10, CAP_WRITE_BUFFER | CAP_READ_CACHE) == []


def test_revoke_and_cleanup():
    table = CapsTable()
    table.grant(1, 10, CAP_READ_CACHE | CAP_WRITE_BUFFER)
    table.revoke(1, 10, CAP_WRITE_BUFFER)
    assert table.held(1, 10) == CAP_READ_CACHE
    table.revoke(1, 10, CAP_READ_CACHE)
    assert table.held(1, 10) == 0
    assert table.holders(1) == {}


def test_drop_client_clears_all_inos():
    table = CapsTable()
    table.grant(1, 10, CAP_READ_CACHE)
    table.grant(2, 10, CAP_WRITE_BUFFER)
    table.drop_client(10)
    assert table.holders(1) == {}
    assert table.holders(2) == {}


# --- end-to-end coherence ----------------------------------------------------

@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(256))


@pytest.fixture
def cluster(sim, costs):
    return CephCluster(sim, Fabric(sim), costs, num_osds=4)


def make_caps_client(sim, machine, cluster, costs, name):
    account = machine.ram.child(units.mib(64), name + ".ram")
    return CephLibClient(
        sim, cluster, costs, account, machine.activated, name=name,
        consistency="caps",
    )


def test_unknown_consistency_rejected(sim, machine, cluster, costs):
    account = machine.ram.child(units.mib(8), "bad.ram")
    with pytest.raises(InvalidArgument):
        CephLibClient(
            sim, cluster, costs, account, machine.activated,
            consistency="eventual",
        )


def test_caps_reader_sees_unflushed_writer_data(sim, machine, cluster, costs):
    """The coherence upgrade: opening a file a writer is buffering forces
    the writer's flush, so the reader sees the bytes immediately — no
    fsync needed (contrast tests/test_cephclient.py's close-to-open
    behaviour)."""
    writer = make_caps_client(sim, machine, cluster, costs, "w")
    reader = make_caps_client(sim, machine, cluster, costs, "r")
    task = make_task(sim, machine)

    def proc():
        handle = yield from writer.open(
            task, "/doc", OpenFlags.CREAT | OpenFlags.RDWR
        )
        yield from writer.write(task, handle, 0, b"unflushed brilliance")
        # No fsync, no close: the data only lives in w's write buffer.
        assert cluster.stored_bytes == 0
        data = yield from reader.read_file(task, "/doc")
        yield from writer.close(task, handle)
        return data

    assert run(sim, proc()) == b"unflushed brilliance"
    assert writer.metrics.counter("caps_revoked").value >= 1


def test_caps_writer_invalidates_stale_reader(sim, machine, cluster, costs):
    reader = make_caps_client(sim, machine, cluster, costs, "r2")
    writer = make_caps_client(sim, machine, cluster, costs, "w2")
    task = make_task(sim, machine)

    def proc():
        yield from writer.write_file(task, "/state", b"version-1", sync=True)
        first = yield from reader.read_file(task, "/state")
        # Writer updates; the write-open revokes the reader's caps.
        yield from writer.write_file(task, "/state", b"version-2")
        second = yield from reader.read_file(task, "/state")
        return first, second

    first, second = run(sim, proc())
    assert first == b"version-1"
    assert second == b"version-2"
    assert reader.metrics.counter("caps_revoked").value >= 1


def test_caps_grant_latency_includes_flush(sim, machine, cluster, costs):
    """The conflicting open pays for the writer's flush — coherence is
    not free, which is why it is opt-in."""
    writer = make_caps_client(sim, machine, cluster, costs, "w3")
    reader = make_caps_client(sim, machine, cluster, costs, "r3")
    task = make_task(sim, machine)
    payload = b"h" * units.mib(2)

    def proc():
        handle = yield from writer.open(
            task, "/big", OpenFlags.CREAT | OpenFlags.RDWR
        )
        yield from writer.write(task, handle, 0, payload)
        start = sim.now
        read_handle = yield from reader.open(task, "/big")
        open_latency = sim.now - start
        yield from reader.close(task, read_handle)
        yield from writer.close(task, handle)
        return open_latency

    open_latency = run(sim, proc())
    # 2 MiB must cross the network during the open.
    assert open_latency > units.mib(2) / (4 * units.GIB)


def test_cap_revoke_racing_client_crash_does_not_block(sim, machine, cluster,
                                                       costs):
    """A revoke aimed at a client that died mid-protocol must neither
    block the conflicting open nor resurrect the dead client's unflushed
    buffer; its stale cap records are cleaned up by the grant commit."""
    writer = make_caps_client(sim, machine, cluster, costs, "wc")
    reader = make_caps_client(sim, machine, cluster, costs, "rc")
    task = make_task(sim, machine)

    def proc():
        yield from writer.write_file(task, "/race", b"durable!", sync=True)
        handle = yield from writer.open(task, "/race", OpenFlags.RDWR)
        yield from writer.write(task, handle, 0, b"buffered")
        # SIGKILL between the conflict computation and the revoke
        # delivery: the client vanishes from the registry while its cap
        # records linger at the MDS.
        del cluster._cap_clients[writer.client_id]
        return (yield from reader.read_file(task, "/race"))

    data = run(sim, proc())
    # The dirty buffer died with the process; only durable bytes remain.
    assert data == b"durable!"
    ino = cluster.mds.node_of("/race").ino
    # The grant commit cleaned up the dead holder's conflicting cap.
    assert not cluster.mds.caps.held(ino, writer.client_id) & CAP_WRITE_BUFFER
    assert cluster.mds.caps.held(ino, reader.client_id) & CAP_READ_CACHE
    assert reader.metrics.counter("caps_revoked").value == 0


def test_caps_reacquired_after_session_reconnect(sim, machine, cluster, costs):
    """An MDS restart empties the caps table; the holder's next metadata
    op reestablishes the session and re-grants what it held."""
    client = make_caps_client(sim, machine, cluster, costs, "rw")
    task = make_task(sim, machine)

    def proc():
        handle = yield from client.open(
            task, "/held", OpenFlags.CREAT | OpenFlags.RDWR
        )
        yield from client.write(task, handle, 0, b"mine")
        ino = cluster.mds.node_of("/held").ino
        held_before = cluster.mds.caps.held(ino, client.client_id)
        cluster.mds.restart()
        assert cluster.mds.caps.held(ino, client.client_id) == 0
        # Any metadata op triggers the reconnect protocol first.
        yield from client.open(task, "/held", OpenFlags.RDWR)
        return ino, held_before

    ino, held_before = run(sim, proc())
    assert held_before & CAP_WRITE_BUFFER
    assert cluster.mds.caps.held(ino, client.client_id) == held_before
    assert client.metrics.counter("sessions_reestablished").value == 1


def test_conflicting_writers_stay_coherent_across_failover(sim, machine,
                                                           cluster, costs):
    """Caps survive an MDS failover through reacquisition: the first
    writer reconnects to the promoted standby, and a second writer's
    conflicting open still forces its flush — buffered data crosses the
    failover boundary instead of being lost or served stale."""
    first = make_caps_client(sim, machine, cluster, costs, "fw")
    second = make_caps_client(sim, machine, cluster, costs, "sw")
    task = make_task(sim, machine)
    service = cluster.enable_mds_ha(standbys=1)

    def proc():
        handle = yield from first.open(
            task, "/shared", OpenFlags.CREAT | OpenFlags.RDWR
        )
        yield from first.write(task, handle, 0, b"pre-failover bytes")
        yield from service.failover(0)
        # The first writer's next op reconnects under the new session
        # epoch and reacquires its write caps from the promoted active.
        yield from first.open(task, "/shared", OpenFlags.RDWR)
        # The second writer's conflicting open must revoke them, forcing
        # the pre-failover buffer to flush before it reads.
        return (yield from second.read_file(task, "/shared"))

    data = run(sim, proc())
    assert data == b"pre-failover bytes"
    assert service.metrics.counter("failovers").value == 1
    assert first.metrics.counter("sessions_reestablished").value >= 1
    assert first.metrics.counter("caps_revoked").value >= 1


def test_close_to_open_clients_skip_caps_entirely(sim, machine, cluster, costs):
    account = machine.ram.child(units.mib(64), "plain.ram")
    client = CephLibClient(
        sim, cluster, costs, account, machine.activated, name="plain"
    )
    task = make_task(sim, machine)

    def proc():
        yield from client.write_file(task, "/f", b"x")

    run(sim, proc())
    assert client.client_id is None
    assert cluster.metrics.counter("caps_grants").value == 0
