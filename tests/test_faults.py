"""Tests for the fault-injection subsystem (``repro.faults``).

Covers the three layers of ``docs/faults.md``:

* injection — :class:`FaultPlan` authoring, validation and determinism;
* recovery — cluster retry/backoff, MDS session reestablishment, service
  crash semantics and the :class:`ServiceSupervisor`;
* chaos — end-to-end integrity runs (marked ``chaos``) and the isolation
  regression the paper's fault-containment story requires (§5): a Danaus
  service crash delays only its own pool, a kernel flusher stall delays
  every colocated container.
"""

import pytest

from repro.cephclient import CephLibClient
from repro.common import units
from repro.common.errors import (
    ConfigError,
    FsError,
    OpTimeout,
    ServiceFailed,
    ThreadKilled,
)
from repro.core import ServiceSupervisor
from repro.costs import CostModel
from repro.faults import KINDS, FaultAction, FaultPlan, run_chaos
from repro.fs.api import OpenFlags
from repro.net import Fabric
from repro.stacks import StackFactory
from repro.storage import CephCluster
from repro.world import World
from tests.conftest import make_task, run


# --- testbed helpers ---------------------------------------------------------

def make_world(symbol="D", pools=1):
    """A world with ``pools`` container pools each mounting ``symbol``."""
    world = World(num_cores=8, ram_bytes=units.gib(16))
    world.activate_cores(2 * pools)
    mounted = []
    for index in range(pools):
        pool = world.engine.create_pool(
            "p%d" % index, num_cores=2, ram_bytes=units.gib(4)
        )
        factory = StackFactory(world, pool, symbol)
        mount = factory.mount_root("c%d" % index)
        mounted.append((pool, factory, mount))
    return world, mounted


# --- fault plan authoring ----------------------------------------------------

def test_fault_action_validates_kind_and_trigger():
    with pytest.raises(ConfigError):
        FaultAction("meteor_strike", at=1.0)
    with pytest.raises(ConfigError):
        FaultAction("osd_crash")  # no trigger
    with pytest.raises(ConfigError):
        FaultAction("osd_crash", at=1.0, after_ops=10)  # two triggers
    action = FaultAction("osd_crash", at=1.0, target=2)
    assert action.kind in KINDS


def test_fault_plan_generation_is_deterministic():
    def snapshot(plan):
        return [
            (a.kind, a.at, a.after_ops, a.target, a.duration,
             sorted(a.params.items()))
            for a in plan.actions
        ]

    kwargs = dict(
        horizon=10.0, num_osds=6, services=["p0.fsvc"],
        osd_crashes=2, partitions=1, service_crashes=1,
        mds_windows=1, slow_disks=1,
    )
    one = FaultPlan.generate(42, **kwargs)
    two = FaultPlan.generate(42, **kwargs)
    assert snapshot(one) == snapshot(two)
    other = FaultPlan.generate(43, **kwargs)
    assert snapshot(one) != snapshot(other)
    # Every timed action fires inside the horizon and heals within it.
    assert 0 < one.end_time() <= 10.0


def test_fault_plan_rejects_unknown_service_target():
    world, [(pool, _factory, _mount)] = make_world()
    plan = FaultPlan(seed=1)
    plan.schedule("service_crash", at=0.5, target="nonexistent.fsvc")
    with pytest.raises(ConfigError):
        plan.install(world, services=pool.services)


def test_op_count_trigger_fires_after_n_ops(sim):
    costs = CostModel(object_size=units.kib(64))
    cluster = CephCluster(sim, Fabric(sim), costs, num_osds=4, replicas=2)

    class _W(object):
        def __init__(self):
            self.sim = sim
            self.cluster = cluster
            self.fabric = cluster.fabric

    world = _W()
    plan = FaultPlan(seed=0)
    plan.schedule("partition", after_ops=3, duration=0.05)
    plan.install(world, services=())

    def proc():
        for index in range(3):
            yield from cluster.write_extent(7, index, b"x" * 1024)
        # The trigger spawns the injection as its own process; give the
        # partition window (0.05s) time to open and heal.
        yield sim.timeout(0.2)
        return cluster.op_count

    run(sim, proc())
    assert [entry[1:] for entry in plan.log] == [
        ("inject", "partition", None),
        ("heal", "partition", None),
    ]


# --- cluster retry / backoff -------------------------------------------------

def test_write_rides_out_unmarked_osd_crash(sim):
    """A crashed-but-not-yet-marked OSD times ops out; failure reports
    accumulate at the monitor until it is marked down, then the retry
    resends against the new map and succeeds."""
    costs = CostModel(object_size=units.kib(64))
    cluster = CephCluster(sim, Fabric(sim), costs, num_osds=4, replicas=2)
    payload = b"r" * units.kib(16)

    def proc():
        primary = cluster.crush.primary(9, 0)
        cluster.osds[primary].crash()  # daemon dead, monitor unaware
        yield from cluster.write_extent(9, 0, payload)
        return primary, (yield from cluster.read_extent(9, 0, len(payload)))

    primary, data = run(sim, proc())
    assert data == payload
    # Timeouts were reported; quorum marked the OSD down and the resend
    # landed on the surviving replica.
    assert not cluster.monitor.is_up(primary)
    assert cluster.metrics.counter("retries").value >= 1


def test_ops_ride_out_a_partition(sim):
    costs = CostModel(object_size=units.kib(64))
    cluster = CephCluster(sim, Fabric(sim), costs, num_osds=4, replicas=2)
    cluster.arm_faults()  # partitions leave every OSD up: opt in to retry
    payload = b"p" * units.kib(8)

    def proc():
        yield from cluster.write_extent(11, 0, payload)
        cluster.fabric.set_partitioned(True)

        def heal():
            yield sim.timeout(0.4)
            cluster.fabric.set_partitioned(False)

        sim.spawn(heal())
        start = sim.now
        data = yield from cluster.read_extent(11, 0, len(payload))
        return data, sim.now - start

    data, elapsed = run(sim, proc())
    assert data == payload
    assert elapsed >= 0.4  # blocked until the partition healed


def test_mds_outage_then_restart_recovers_sessions(sim, machine):
    """MDS restart loses sessions and caps; the client reestablishes its
    session and reacquires held caps on the next operation."""
    costs = CostModel(object_size=units.kib(64))
    cluster = CephCluster(sim, Fabric(sim), costs, num_osds=4, replicas=2)
    account = machine.ram.child(units.mib(64), "caps.ram")
    client = CephLibClient(
        sim, cluster, costs, account, machine.activated, name="caps-client",
        consistency="caps",
    )
    task = make_task(sim, machine)

    def proc():
        handle = yield from client.open(
            task, "/session-file", OpenFlags.CREAT | OpenFlags.RDWR
        )
        yield from client.write(task, handle, 0, b"pre-restart")
        yield from client.close(task, handle)
        epoch_before = cluster.mds.session_epoch
        cluster.mds.restart()
        assert cluster.mds.session_epoch == epoch_before + 1
        # Next open reestablishes the session and reacquires caps.
        handle = yield from client.open(task, "/session-file", OpenFlags.RDWR)
        data = yield from client.read(task, handle, 0, 11)
        yield from client.close(task, handle)
        return data

    assert run(sim, proc()) == b"pre-restart"
    assert client.metrics.counter("sessions_reestablished").value >= 1


# --- service crash semantics (no caller left blocked) ------------------------

def test_service_crash_fails_queued_and_inflight_requests():
    """Satellite guarantee: crash() fails every queued and in-flight
    request immediately — no application thread is ever left blocked on a
    reply that will never come."""
    world, [(pool, _factory, mount)] = make_world("D")
    service = pool.services[0]
    payload = b"q" * units.kib(64)
    outcomes = []

    def app(index):
        task = pool.new_task("app%d" % index)
        try:
            # Sync writes keep requests in the service's queue when the
            # crash lands mid-window.
            while world.sim.now < 0.5:
                yield from mount.fs.write_file(
                    task, "/burst%d" % index, payload, sync=True
                )
            outcomes.append("ok")
        except (ServiceFailed, FsError):
            outcomes.append("error")

    def crasher():
        yield world.sim.timeout(0.05)
        service.crash()

    procs = [world.sim.spawn(app(i)) for i in range(8)]
    world.sim.spawn(crasher())

    def waiter():
        yield world.sim.all_of(procs)

    run(world.sim, waiter(), until=5.0)  # completion here IS the assertion
    assert len(outcomes) == 8
    assert outcomes.count("error") == 8, "every caller must fail, not block"
    assert service.crashed
    # Later calls are refused outright, not queued into the void.
    def late():
        task = pool.new_task("late")
        try:
            yield from mount.fs.write_file(task, "/late", b"x")
        except ServiceFailed:
            return "refused"
        return "served"

    assert run(world.sim, late(), until=5.0) == "refused"


def test_service_threads_stop_at_crash():
    """SIGKILL semantics: a crashed service's threads abort at their next
    scheduling point instead of completing in-flight handlers."""
    world, [(pool, _factory, _mount)] = make_world("D")
    service = pool.services[0]
    service.crash()
    for thread in service._threads:
        assert thread.killed

    def doomed():
        task = pool.new_task("doomed")
        thread = task.thread
        thread.kill()
        try:
            yield from task.cpu(0.001)
        except ThreadKilled:
            return "stopped"
        return "ran"

    assert run(world.sim, doomed()) == "stopped"


def test_unsupervised_restart_brings_service_back():
    world, [(pool, _factory, mount)] = make_world("D")
    service = pool.services[0]

    def proc():
        task = pool.new_task("app")
        yield from mount.fs.write_file(task, "/before", b"alpha")
        service.crash()
        try:
            yield from mount.fs.write_file(task, "/during", b"beta")
        except ServiceFailed:
            pass
        service.restart()
        yield from mount.fs.write_file(task, "/after", b"gamma")
        return (yield from mount.fs.read_file(task, "/after"))

    assert run(world.sim, proc(), until=30.0) == b"gamma"
    assert service.generation == 1
    assert int(service.metrics.counter("restarts").value) == 1


# --- supervised restart ------------------------------------------------------

def test_supervised_crash_is_transparent_to_the_app():
    """Under a supervisor the crash surfaces as a latency bubble, not an
    error: the library rides out ServiceRestarting and resubmits."""
    world, [(pool, _factory, mount)] = make_world("D")
    service = pool.services[0]
    supervisor = ServiceSupervisor(world.sim, world.costs)
    supervisor.watch(service)

    def crasher():
        yield world.sim.timeout(0.004)
        service.crash()

    def app():
        task = pool.new_task("app")
        gaps = []
        for index in range(60):
            start = world.sim.now
            yield from mount.fs.write_file(
                task, "/steady", b"s" * 4096
            )
            gaps.append(world.sim.now - start)
        return gaps

    world.sim.spawn(crasher())
    gaps = run(world.sim, app(), until=30.0)  # no exception: transparent
    assert len(gaps) == 60
    assert max(gaps) >= world.costs.restart_delay  # the bubble
    assert int(service.metrics.counter("restarts").value) == 1
    assert int(supervisor.metrics.counter("restarts").value) == 1


def test_supervisor_replays_buffered_writes_after_restart():
    """Dirty write-behind data lives in the pool's shared memory and
    survives the service process; the supervisor flushes it on restart
    (journal replay), so an acknowledged buffered write is never lost."""
    world, [(pool, _factory, mount)] = make_world("D")
    service = pool.services[0]
    supervisor = ServiceSupervisor(world.sim, world.costs)
    supervisor.watch(service)
    payload = b"durable" * 1000

    def proc():
        task = pool.new_task("app")
        yield from mount.fs.write_file(task, "/journal", payload)
        # Acknowledged but still buffered (write-behind): crash now.
        service.crash()
        # Ride out restart (0.5s) + replay, then read it back.
        yield world.sim.timeout(world.costs.restart_delay + 0.5)
        return (yield from mount.fs.read_file(task, "/journal"))

    assert run(world.sim, proc(), until=30.0) == payload
    assert not service.crashed
    assert int(supervisor.metrics.counter("restarts").value) == 1
    assert (
        int(supervisor.metrics.counter("replayed_bytes").value)
        + int(supervisor.metrics.counter("replay_deferred").value)
    ) > 0


# --- isolation regression (the paper's fault-containment story) --------------

def _paced_writers(world, mounted, until_time):
    """Spawn one sync-writing app per pool; returns completion-time lists."""
    stamps = [[] for _ in mounted]

    def writer(index, pool, mount):
        task = pool.new_task("iso%d" % index)
        data = b"w" * 8192
        while world.sim.now < until_time:
            yield from mount.fs.write_file(
                task, "/iso%d" % index, data, sync=True
            )
            stamps[index].append(world.sim.now)

    procs = [
        world.sim.spawn(writer(i, pool, mount))
        for i, (pool, _factory, mount) in enumerate(mounted)
    ]
    return stamps, procs


def _ops_in(stamps, start, end):
    return sum(1 for t in stamps if start <= t < end)


def test_danaus_service_crash_delays_only_its_own_pool():
    world, mounted = make_world("D", pools=2)
    pool0 = mounted[0][0]
    supervisor = ServiceSupervisor(world.sim, world.costs)
    for service in pool0.services:
        supervisor.watch(service)

    def crasher():
        yield world.sim.timeout(1.0)
        pool0.services[0].crash()

    world.sim.spawn(crasher())
    stamps, procs = _paced_writers(world, mounted, until_time=2.0)

    def waiter():
        yield world.sim.all_of(procs)

    run(world.sim, waiter(), until=60.0)
    window = (1.0, 1.0 + world.costs.restart_delay)
    control = (0.4, 0.4 + world.costs.restart_delay)
    p0_window = _ops_in(stamps[0], *window)
    p1_window = _ops_in(stamps[1], *window)
    p1_control = _ops_in(stamps[1], *control)
    # The crashed pool stalls through the restart window...
    assert p0_window <= 2
    # ...while the colocated pool keeps its pace.
    assert p1_window >= 0.5 * p1_control > 0


def test_kernel_flusher_stall_delays_every_colocated_pool():
    """The contrast case: the shared kernel writeback path is a single
    failure domain — stalling it freezes sync writers of ALL pools."""
    world, mounted = make_world("K", pools=2)
    kernel = world.kernel_for(world.machine)

    def staller():
        yield world.sim.timeout(1.0)
        kernel.writeback.stall(world.costs.restart_delay)

    world.sim.spawn(staller())
    stamps, procs = _paced_writers(world, mounted, until_time=2.0)

    def waiter():
        yield world.sim.all_of(procs)

    run(world.sim, waiter(), until=60.0)
    window = (1.0, 1.0 + world.costs.restart_delay)
    control = (0.4, 0.4 + world.costs.restart_delay)
    for index in range(2):
        in_window = _ops_in(stamps[index], *window)
        in_control = _ops_in(stamps[index], *control)
        assert in_control > 0
        assert in_window <= 0.5 * in_control, (
            "pool %d should stall with the shared flusher" % index
        )
    assert int(kernel.writeback.metrics.counter("wb.stalls").value) >= 1


# --- chaos harness -----------------------------------------------------------

@pytest.mark.chaos
def test_chaos_run_keeps_acknowledged_data_intact():
    result = run_chaos(seed=7)
    assert result.converged
    assert result.mismatches == []
    assert result.read_mismatches == []
    assert result.ok
    assert result.files_checked > 0
    assert result.service_restarts >= 1
    kinds = {entry[2] for entry in result.plan_log}
    assert {"osd_crash", "partition", "service_crash"} <= kinds


@pytest.mark.chaos
def test_chaos_same_seed_reproduces_identical_run():
    one = run_chaos(seed=3)
    two = run_chaos(seed=3)
    assert one.ok and two.ok
    assert one.fingerprint() == two.fingerprint()
    assert one.plan_log == two.plan_log


@pytest.mark.chaos
@pytest.mark.scrub
def test_chaos_corruption_is_repaired_by_scrub():
    """Silent corruption (bit flips + torn replica writes) under the full
    fault mix: every acknowledged write reads back intact, the scrub
    drain converges and no corrupt replica or quarantined object is left."""
    result = run_chaos(seed=11, duration=10.0, replicas=2,
                       bitrot=2, torn_writes=1, scrub=True)
    assert result.corruptions >= 1, "the plan must actually damage replicas"
    assert result.scrub_converged
    assert result.integrity_errors == []
    assert result.quarantined == []
    assert result.repairs >= 1
    assert result.ok
    kinds = {entry[2] for entry in result.plan_log}
    assert kinds & {"bitrot", "torn_write"}


@pytest.mark.chaos
@pytest.mark.scrub
def test_chaos_corruption_run_is_deterministic():
    kwargs = dict(seed=5, duration=8.0, replicas=2,
                  bitrot=1, torn_writes=1, scrub=True)
    one = run_chaos(**kwargs)
    two = run_chaos(**kwargs)
    assert one.ok and two.ok
    assert one.fingerprint() == two.fingerprint()
    assert one.corruptions == two.corruptions
    assert one.repairs == two.repairs
