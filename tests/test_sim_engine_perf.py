"""Scheduler determinism and regression tests for the fast-path engine.

The engine's hot path was reworked from a single heap of lambda
closures into a two-tier scheduler (FIFO now-queue + time heap with
tuple-dispatched entries). The acceptance bar for that rework is
*byte-identical scheduling*: the golden fingerprints pinned here were
captured from the original pre-optimization engine, so any reordering
of same-timestamp callbacks — however subtle — fails these tests.

The remaining tests pin the three scheduling bugfixes that rode along:

* ``Process._step`` used to discard the generator's response to a
  bad-yield ``throw()`` (a generator that caught the error hung; one
  that returned leaked ``StopIteration``);
* ``Simulator.run_until`` left ``self.now`` stale when the deadline
  passed between queued events;
* ``AnyOf``/``AllOf`` losers kept their result callbacks forever (a
  leak) and a loser *failing* after the race was silently swallowed.
"""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Interrupt, Simulator
from repro.sim.bench import schedule_fingerprint

#: (scenario, kwargs) -> (fingerprint, final_time) captured from the
#: seed engine before the two-tier scheduler landed. Do not update these
#: without re-deriving them from a known-good scheduler: equality proves
#: the fast path preserves the exact event schedule.
GOLDEN = {
    ("torture", 1): ("fb445083c241dfb603621d18bc024eba", 0.2690000000000002),
    ("interrupts", 2): ("98e1684463c523e3868384f7ac5a3809", 1000.0),
    ("combinators", 3): ("597bda445e3396d340187178737290d8", 0.0015),
}


@pytest.mark.parametrize("scenario,seed", sorted(GOLDEN))
def test_golden_schedule_fingerprints(scenario, seed):
    digest, final = schedule_fingerprint(scenario, seed=seed)
    want_digest, want_final = GOLDEN[(scenario, seed)]
    assert digest == want_digest, (
        "schedule of %r diverged from the pre-optimization engine" % scenario
    )
    assert final == want_final


def test_fingerprint_is_deterministic():
    assert schedule_fingerprint("torture", seed=9) == \
        schedule_fingerprint("torture", seed=9)


# -- two-tier scheduler ordering -----------------------------------------


def test_same_time_heap_entry_runs_before_later_now_entries(sim):
    """Cross-tier ordering: (when, seq) order wins, not queue residency.

    At t=1 the first process resumes and immediately waits on an
    already-triggered event, queueing its resumption in the now-queue.
    The second process's timeout — also due at t=1 but scheduled
    *earlier* (lower seq) — still sits in the heap and must run first,
    exactly as the one-heap scheduler ordered it.
    """
    order = []
    gate = sim.event()
    gate.succeed("x")

    def a():
        yield sim.timeout(1)
        order.append("t1")
        value = yield gate  # already triggered: resumption via now-queue
        order.append(("a", value))

    def b():
        yield sim.timeout(1)
        order.append("t2")

    sim.spawn(a())
    sim.spawn(b())
    sim.run()
    assert order == ["t1", "t2", ("a", "x")]


def test_now_queue_is_fifo_for_triggered_subscriptions(sim):
    order = []
    gate = sim.event()
    gate.succeed(7)

    def waiter(tag):
        value = yield gate
        order.append((tag, value, sim.now))

    for tag in range(4):
        sim.spawn(waiter(tag))
    sim.run()
    assert order == [(0, 7, 0.0), (1, 7, 0.0), (2, 7, 0.0), (3, 7, 0.0)]


def test_interrupt_races_queued_resumption(sim):
    """An interrupt landing while a resumption is queued must win.

    The sleeper waits on an already-triggered event, so its resumption
    sits in the now-queue when the interrupt arrives in the same
    timestep. The stale resumption must be dropped — delivering both
    would resume the generator twice.
    """
    log = []
    gate = sim.event()
    gate.succeed("v")

    def sleeper():
        yield sim.timeout(1)
        try:
            value = yield gate
            log.append(("woke", value))
        except Interrupt as intr:
            log.append(("intr", intr.cause))
        return "done"

    def interrupter(target):
        yield sim.timeout(1)
        target.interrupt(cause="now")

    target = sim.spawn(sleeper())
    sim.spawn(interrupter(target))
    sim.run()
    assert log == [("intr", "now")]
    assert target.value == "done"


# -- bugfix: _step discarding the generator's throw() response -----------


def test_bad_yield_error_is_catchable_and_process_continues(sim):
    """A process may catch the bad-yield error and keep running.

    Before the fix the generator's response to ``throw()`` was
    discarded, so a process that caught the error and yielded a valid
    event next was never rescheduled — it hung forever.
    """
    log = []

    def proc():
        try:
            yield 42
        except SimulationError:
            log.append("caught")
        yield sim.timeout(1)
        return "ok"

    process = sim.spawn(proc())
    sim.run()
    assert log == ["caught"]
    assert process.value == "ok"


def test_bad_yield_error_caught_then_return(sim):
    """Catching the bad-yield error and returning must not leak
    StopIteration out of the engine."""

    def proc():
        try:
            yield "not an event"
        except SimulationError:
            return "caught"

    def parent():
        value = yield sim.spawn(proc())
        return value

    assert sim.run_process(parent()) == "caught"


def test_foreign_event_yield_is_catchable(sim):
    other = Simulator()

    def proc():
        try:
            yield other.timeout(1)
        except SimulationError:
            return "rejected"

    def parent():
        value = yield sim.spawn(proc())
        return value

    assert sim.run_process(parent()) == "rejected"


# -- bugfix: run_until leaving the clock stale on timeout ----------------


def test_run_until_timeout_advances_clock_to_deadline(sim):
    gate = sim.event()

    def daemon():
        while True:
            yield sim.timeout(0.3)

    sim.spawn(daemon())
    # Ticks land at 0.3/0.6/0.9; the next would be 1.2 > deadline. The
    # old engine returned with now=0.9, so retry/backoff callers
    # computed negative remaining time.
    assert sim.run_until(gate, deadline=1.0) is False
    assert sim.now == 1.0


def test_run_until_empty_queue_advances_clock(sim):
    gate = sim.event()
    assert sim.run_until(gate, deadline=5.0) is False
    assert sim.now == 5.0


def test_run_until_event_fires_before_deadline(sim):
    gate = sim.event()

    def opener():
        yield sim.timeout(2)
        gate.succeed()

    sim.spawn(opener())
    assert sim.run_until(gate, deadline=10.0) is True
    assert sim.now == 2.0


# -- bugfix: combinator loser callback leak ------------------------------


def test_any_of_unsubscribes_losers(sim):
    gate = sim.event()

    def waiter():
        yield sim.any_of([sim.timeout(1), gate])

    sim.spawn(waiter())
    sim.run()
    # The loser keeps only the module-level failure watcher — no
    # combinator-held callback that would keep the whole race alive.
    assert [cb.__name__ for cb in gate.callbacks] == ["_watch_abandoned"]


def test_all_of_unsubscribes_pending_children_on_failure(sim):
    gate = sim.event()
    never = sim.event()

    def waiter():
        try:
            yield sim.all_of([gate, never])
        except ValueError:
            return "failed"

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    proc = sim.spawn(waiter())
    sim.spawn(failer())
    sim.run()
    assert proc.value == "failed"
    assert [cb.__name__ for cb in never.callbacks] == ["_watch_abandoned"]
