"""Integration tests for the local filesystem over the kernel substrate."""

import pytest

from repro.common import units
from repro.common.errors import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    IsADirectory,
)
from repro.fs.api import OpenFlags
from repro.hw import RamDisk
from repro.kernel import LocalFs
from tests.conftest import make_task, run


@pytest.fixture
def fs(sim, kernel):
    return LocalFs(kernel, RamDisk(sim), name="ext4-test")


def test_create_write_read_roundtrip(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/f.txt", b"hello world")
        data = yield from fs.read_file(task, "/f.txt")
        return data

    assert run(sim, proc()) == b"hello world"


def test_open_missing_without_creat_fails(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        with pytest.raises(FileNotFound):
            yield from fs.open(task, "/missing")
        return True

    assert run(sim, proc())


def test_open_excl_on_existing_fails(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/f", b"x")
        with pytest.raises(FileExists):
            yield from fs.open(
                task, "/f", OpenFlags.CREAT | OpenFlags.EXCL | OpenFlags.WRONLY
            )
        return True

    assert run(sim, proc())


def test_append_mode_writes_at_eof(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/log", b"aaa")
        handle = yield from fs.open(
            task, "/log", OpenFlags.WRONLY | OpenFlags.APPEND
        )
        yield from fs.write(task, handle, 0, b"bbb")  # offset ignored
        yield from fs.close(task, handle)
        return (yield from fs.read_file(task, "/log"))

    assert run(sim, proc()) == b"aaabbb"


def test_trunc_flag_empties_file(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/f", b"old content")
        handle = yield from fs.open(
            task, "/f", OpenFlags.WRONLY | OpenFlags.TRUNC
        )
        yield from fs.close(task, handle)
        stat = yield from fs.stat(task, "/f")
        return stat.size

    assert run(sim, proc()) == 0


def test_read_after_close_fails(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        handle = yield from fs.open(task, "/f", OpenFlags.CREAT | OpenFlags.RDWR)
        yield from fs.close(task, handle)
        with pytest.raises(BadFileDescriptor):
            yield from fs.read(task, handle, 0, 10)
        return True

    assert run(sim, proc())


def test_open_dir_for_write_fails(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        yield from fs.mkdir(task, "/d")
        with pytest.raises(IsADirectory):
            yield from fs.open(task, "/d", OpenFlags.WRONLY)
        return True

    assert run(sim, proc())


def test_mkdir_readdir_unlink(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        yield from fs.mkdir(task, "/d")
        yield from fs.write_file(task, "/d/a", b"1")
        yield from fs.write_file(task, "/d/b", b"2")
        names = yield from fs.readdir(task, "/d")
        yield from fs.unlink(task, "/d/a")
        names_after = yield from fs.readdir(task, "/d")
        return names, names_after

    names, names_after = run(sim, proc())
    assert names == ["a", "b"]
    assert names_after == ["b"]


def test_rename(sim, machine, fs):
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/a", b"data")
        yield from fs.rename(task, "/a", "/b")
        exists_a = yield from fs.exists(task, "/a")
        data = yield from fs.read_file(task, "/b")
        return exists_a, data

    assert run(sim, proc()) == (False, b"data")


def test_cached_read_is_faster_than_cold(sim, machine, fs):
    task = make_task(sim, machine)
    payload = b"z" * units.mib(1)

    def proc():
        yield from fs.write_file(task, "/big", payload)
        handle = yield from fs.open(task, "/big")
        start = sim.now
        yield from fs.read(task, handle, 0, len(payload))
        cold = sim.now - start
        start = sim.now
        yield from fs.read(task, handle, 0, len(payload))
        warm = sim.now - start
        yield from fs.close(task, handle)
        return cold, warm

    cold, warm = run(sim, proc())
    # The first read faults pages in... but the write already cached them,
    # so both are warm; both must at least be far below device time.
    assert warm <= cold
    assert warm < 0.01


def test_write_dirties_pages_and_writeback_cleans(sim, machine, kernel, fs):
    task = make_task(sim, machine)
    payload = b"d" * units.kib(64)

    def proc():
        yield from fs.write_file(task, "/f", payload)
        return kernel.page_cache.dirty_bytes

    dirty_now = run(sim, proc(), until=0.5)
    assert dirty_now >= units.kib(64)
    # Let the writeback daemon catch up (expire interval is 5 s).
    sim.run(until=10.0)
    assert kernel.page_cache.dirty_bytes == 0
    assert kernel.writeback.pages_flushed > 0


def test_fsync_cleans_immediately(sim, machine, kernel, fs):
    task = make_task(sim, machine)

    def proc():
        handle = yield from fs.open(task, "/f", OpenFlags.CREAT | OpenFlags.RDWR)
        yield from fs.write(task, handle, 0, b"x" * units.kib(16))
        yield from fs.fsync(task, handle)
        yield from fs.close(task, handle)
        return kernel.page_cache.dirty_bytes

    assert run(sim, proc(), until=1.0) == 0


def test_unlink_drops_cached_pages(sim, machine, kernel, fs):
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/f", b"x" * units.kib(16))
        handle = yield from fs.open(task, "/f")
        yield from fs.read(task, handle, 0, units.kib(16))
        yield from fs.close(task, handle)
        cached_before = kernel.page_cache.cached_bytes
        yield from fs.unlink(task, "/f")
        return cached_before, kernel.page_cache.cached_bytes

    before, after = run(sim, proc())
    assert before > after
    assert after == 0


def test_kernel_locks_see_traffic(sim, machine, kernel, fs):
    task = make_task(sim, machine)

    def proc():
        for index in range(5):
            yield from fs.write_file(task, "/f%d" % index, b"x")

    run(sim, proc())
    assert kernel.locks.class_stats("i_mutex_key").acquisitions > 0
    assert kernel.locks.class_stats("i_mutex_dir_key").acquisitions > 0
    assert kernel.locks.class_stats("sb_lock").acquisitions >= 5


def test_direct_io_bypasses_page_cache(sim, machine, kernel):
    from repro.hw import RamDisk

    fs = LocalFs(kernel, RamDisk(sim), name="direct", direct_io=True)
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/f", b"x" * units.kib(16))
        return kernel.page_cache.cached_bytes

    assert run(sim, proc()) == 0


def test_vfs_routing(sim, machine, kernel):
    fs_a = LocalFs(kernel, RamDisk(sim), name="a")
    fs_b = LocalFs(kernel, RamDisk(sim), name="b")
    kernel.vfs.mount("/a", fs_a)
    kernel.vfs.mount("/a/nested", fs_b)
    task = make_task(sim, machine)

    def proc():
        yield from kernel.vfs.write_file(task, "/a/file", b"top")
        yield from kernel.vfs.write_file(task, "/a/nested/file", b"deep")
        top = yield from fs_a.read_file(task, "/file")
        deep = yield from fs_b.read_file(task, "/file")
        return top, deep

    assert run(sim, proc()) == (b"top", b"deep")


def test_vfs_unmounted_path_fails(sim, machine, kernel):
    from repro.common.errors import NotMounted

    task = make_task(sim, machine)

    def proc():
        with pytest.raises(NotMounted):
            yield from kernel.vfs.stat(task, "/nowhere/f")
        return True

    assert run(sim, proc())


def test_vfs_cross_device_rename_fails(sim, machine, kernel):
    from repro.common.errors import CrossDevice

    fs_a = LocalFs(kernel, RamDisk(sim), name="a")
    fs_b = LocalFs(kernel, RamDisk(sim), name="b")
    kernel.vfs.mount("/a", fs_a)
    kernel.vfs.mount("/b", fs_b)
    task = make_task(sim, machine)

    def proc():
        yield from kernel.vfs.write_file(task, "/a/f", b"x")
        with pytest.raises(CrossDevice):
            yield from kernel.vfs.rename(task, "/a/f", "/b/f")
        return True

    assert run(sim, proc())
