"""Scenario tests for the paper's flexibility claims (§5).

* a tenant may run *multiple* filesystem services with distinct settings;
* tenants can collaborate through the shared backend filesystem;
* casual administration (scans, updates) can run centrally through the
  backend storage rather than inside each container.
"""

import pytest

from repro.cephclient import CephLibClient
from repro.common import units
from repro.fs.api import OpenFlags
from repro.stacks import StackFactory
from repro.world import World
from tests.conftest import run


@pytest.fixture
def world():
    world = World(num_cores=8, ram_bytes=units.gib(16))
    world.activate_cores(8)
    return world


def test_tenant_runs_multiple_services_with_distinct_settings(world):
    pool = world.engine.create_pool("tenant", num_cores=4,
                                    ram_bytes=units.gib(4))
    # Service 1: default consistency; Service 2: fine-grained locking and
    # a small cache — "multiple filesystem services with distinct settings
    # in resource naming, memory reservation, ... " (§5).
    factory_a = StackFactory(world, pool, "D", cache_bytes=units.mib(64))
    mount_a = factory_a.mount_root("c0")
    factory_b = StackFactory(
        world, pool, "D", cache_bytes=units.mib(4), fine_grained_locking=True
    )
    factory_b._shared.clear()  # force a second service + client
    mount_b = factory_b.mount_root("c1")
    assert mount_a.service is not mount_b.service
    assert mount_a.client is not mount_b.client
    assert mount_b.client.fine_grained
    assert mount_a.client.cache.capacity != mount_b.client.cache.capacity
    task = pool.new_task()

    def proc():
        yield from mount_a.fs.write_file(task, "/a", b"service A")
        yield from mount_b.fs.write_file(task, "/b", b"service B")
        a = yield from mount_a.fs.read_file(task, "/a")
        b = yield from mount_b.fs.read_file(task, "/b")
        return a, b

    assert run(world.sim, proc()) == (b"service A", b"service B")


def test_tenants_collaborate_through_shared_backend(world):
    pool_a = world.engine.create_pool("a", num_cores=2, ram_bytes=units.gib(2))
    pool_b = world.engine.create_pool("b", num_cores=2, ram_bytes=units.gib(2))
    mount_a = StackFactory(world, pool_a, "D").mount_root("c0")
    mount_b = StackFactory(world, pool_b, "D").mount_root("c0")
    task_a = pool_a.new_task()
    task_b = pool_b.new_task()
    # Both tenants also mount a shared path of the backend filesystem.
    shared_a = mount_a.client  # tenant A's client sees the full namespace
    shared_b = mount_b.client

    def proc():
        yield from shared_a.makedirs(task_a, "/shared")
        handle = yield from shared_a.open(
            task_a, "/shared/doc", OpenFlags.CREAT | OpenFlags.RDWR
        )
        yield from shared_a.write(task_a, handle, 0, b"from tenant A")
        yield from shared_a.fsync(task_a, handle)
        yield from shared_a.close(task_a, handle)
        # Tenant B revalidates on open (close-to-open) and sees the data.
        return (yield from shared_b.read_file(task_b, "/shared/doc"))

    assert run(world.sim, proc()) == b"from tenant A"


def test_central_administration_through_backend(world):
    """Malware-scan-style admin task reads tenant files centrally."""
    pool = world.engine.create_pool("tenant", num_cores=2,
                                    ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    task = pool.new_task()

    def tenant_writes():
        yield from mount.fs.makedirs(task, "/app")
        yield from mount.fs.write_file(task, "/app/data.bin", b"tenant bits")
        yield from mount.client.flush_all(task)

    run(world.sim, tenant_writes())

    # The admin uses its own host-side client over the same backend; it
    # never enters the tenant's container.
    admin_account = world.machine.ram.child(units.mib(64), "admin.ram")
    admin = CephLibClient(
        world.sim, world.cluster, world.costs, admin_account,
        world.machine.cores, name="admin",
    )
    admin_task = world.host_task("admin")

    def scan():
        names = yield from admin.readdir(admin_task, "/pools/tenant/c0/app")
        data = yield from admin.read_file(
            admin_task, "/pools/tenant/c0/app/data.bin"
        )
        return names, data

    names, data = run(world.sim, scan())
    assert names == ["data.bin"]
    assert data == b"tenant bits"


def test_writable_sharing_mode_between_containers(world):
    """Two containers of one tenant share a writable directory (§5)."""
    pool = world.engine.create_pool("tenant", num_cores=4,
                                    ram_bytes=units.gib(2))
    factory = StackFactory(world, pool, "D")
    mount_a = factory.mount_root("c0")
    mount_b = factory.mount_root("c1")
    # Shared client: both containers reach the full tenant namespace.
    client = factory.lib_client()
    assert mount_a.client is client and mount_b.client is client
    task = pool.new_task()

    def proc():
        yield from client.makedirs(task, "/pools/tenant/shared")
        yield from client.write_file(
            task, "/pools/tenant/shared/state", b"round 1"
        )
        data = yield from client.read_file(
            task, "/pools/tenant/shared/state"
        )
        return data

    assert run(world.sim, proc()) == b"round 1"
