"""Tests for the subtree filesystem adapter."""

import pytest

from repro.common.errors import FileNotFound
from repro.fs.prefix import SubtreeFs
from repro.hw import RamDisk
from repro.kernel import LocalFs
from tests.conftest import make_task, run


@pytest.fixture
def backing(sim, kernel, machine):
    fs = LocalFs(kernel, RamDisk(sim), name="backing")
    task = make_task(sim, machine, "setup")

    def populate():
        yield from fs.makedirs(task, "/root/a/sub")
        yield from fs.write_file(task, "/root/a/file", b"inside")
        yield from fs.write_file(task, "/outside", b"secret")

    run(sim, populate())
    return fs, task


def test_subtree_maps_paths(sim, backing):
    fs, task = backing
    view = SubtreeFs(fs, "/root/a")

    def proc():
        data = yield from view.read_file(task, "/file")
        names = yield from view.readdir(task, "/")
        return data, names

    data, names = run(sim, proc())
    assert data == b"inside"
    assert names == ["file", "sub"]


def test_subtree_cannot_escape_root(sim, backing):
    fs, task = backing
    view = SubtreeFs(fs, "/root/a")

    def proc():
        with pytest.raises(FileNotFound):
            yield from view.stat(task, "/../../outside")
        return True

    # '..' is resolved lexically inside the subtree, so the mapped path is
    # /root/a/outside, which does not exist.
    assert run(sim, proc())


def test_subtree_writes_land_under_root(sim, backing):
    fs, task = backing
    view = SubtreeFs(fs, "/root/a")

    def proc():
        yield from view.write_file(task, "/new", b"payload")
        return (yield from fs.read_file(task, "/root/a/new"))

    assert run(sim, proc()) == b"payload"


def test_subtree_rename_and_unlink(sim, backing):
    fs, task = backing
    view = SubtreeFs(fs, "/root/a")

    def proc():
        yield from view.rename(task, "/file", "/sub/file2")
        yield from view.unlink(task, "/sub/file2")
        return (yield from view.exists(task, "/file"))

    assert run(sim, proc()) is False


def test_subtree_peek_delegates(sim, backing):
    fs, task = backing
    view = SubtreeFs(fs, "/root/a")
    assert view.peek("/file", 0, 100) == b"inside"
    assert view.peek("/nope", 0, 100) is None


def test_nested_subtrees_compose(sim, backing):
    fs, task = backing
    outer = SubtreeFs(fs, "/root")
    inner = SubtreeFs(outer, "/a")

    def proc():
        return (yield from inner.read_file(task, "/file"))

    assert run(sim, proc()) == b"inside"
