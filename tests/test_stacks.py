"""Tests for the Table-1 stack configurations (and the World wiring)."""

import pytest

from repro.common import units
from repro.common.errors import ConfigError
from repro.containers import debian_base
from repro.fs.api import OpenFlags
from repro.stacks import SYMBOLS, StackFactory, mount_local
from repro.world import World
from tests.conftest import run

UNION_SYMBOLS = [s for s in SYMBOLS if "/" in s]
PLAIN_SYMBOLS = [s for s in SYMBOLS if "/" not in s]


@pytest.fixture
def world():
    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(4)
    return world


def seed_image(world, path="/images/test"):
    """Put a tiny image tree into the shared cluster namespace."""
    task = world.host_task("seed")
    image = debian_base(scale=1.0 / 8192)
    client = None

    def proc():
        from repro.cephclient import CephLibClient

        nonlocal client
        account = world.machine.ram.child(units.mib(64), "seed.ram")
        client = CephLibClient(
            world.sim, world.cluster, world.costs, account,
            world.machine.cores, name="seed",
        )
        yield from world.engine.registry.materialize(
            task, world.engine.push_image(image), client, path
        )
        yield from client.flush_all(task)
        client.stop()

    run(world.sim, proc(), until=2000)
    return image, path


@pytest.mark.parametrize("symbol", PLAIN_SYMBOLS)
def test_plain_stack_roundtrip(world, symbol):
    pool = world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(2))
    factory = StackFactory(world, pool, symbol)
    mount = factory.mount_root("c0")
    task = pool.new_task()

    def proc():
        yield from mount.fs.write_file(task, "/data", b"hello " + symbol.encode())
        return (yield from mount.fs.read_file(task, "/data"))

    assert run(world.sim, proc()) == b"hello " + symbol.encode()


@pytest.mark.parametrize("symbol", UNION_SYMBOLS)
def test_union_stack_sees_image_and_writes_cow(world, symbol):
    image, path = seed_image(world)
    pool = world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(2))
    factory = StackFactory(world, pool, symbol)
    mount = factory.mount_root("c0", image_path=path)
    task = pool.new_task()
    some_file = sorted(image.flat())[0]

    def proc():
        base = yield from mount.fs.read_file(task, some_file)
        yield from mount.fs.write_file(task, "/private.txt", b"mine")
        mine = yield from mount.fs.read_file(task, "/private.txt")
        return base, mine

    base, mine = run(world.sim, proc(), until=3000)
    assert base == image.flat()[some_file]
    assert mine == b"mine"


@pytest.mark.parametrize("symbol", UNION_SYMBOLS + ["D"])
def test_clones_share_lower_but_not_upper(world, symbol):
    image, path = seed_image(world)
    pool = world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(2))
    factory = StackFactory(world, pool, symbol)
    mount_a = factory.mount_root("c0", image_path=path)
    mount_b = factory.mount_root("c1", image_path=path)
    task_a = pool.new_task("a")
    task_b = pool.new_task("b")

    def proc():
        yield from mount_a.fs.write_file(task_a, "/etc/conf.d/00.conf", b"A's")
        b_view = yield from mount_b.fs.read_file(task_b, "/etc/conf.d/00.conf")
        a_view = yield from mount_a.fs.read_file(task_a, "/etc/conf.d/00.conf")
        return a_view, b_view

    a_view, b_view = run(world.sim, proc(), until=3000)
    assert a_view == b"A's"
    assert b_view == image.flat()["/etc/conf.d/00.conf"]


def test_union_symbol_requires_image(world):
    pool = world.engine.create_pool("p0")
    factory = StackFactory(world, pool, "K/K")
    with pytest.raises(ConfigError):
        factory.mount_root("c0")


def test_unknown_symbol_rejected(world):
    pool = world.engine.create_pool("p0")
    with pytest.raises(ConfigError):
        StackFactory(world, pool, "X/Y")


def test_danaus_mount_has_service_and_legacy_path(world):
    pool = world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    assert mount.service is not None
    assert mount.library is not None
    assert mount.legacy_fs is not None
    task = pool.new_task()

    def proc():
        yield from mount.fs.write_file(task, "/bin.sh", b"ELF binary")
        # exec goes through the kernel FUSE endpoint of the same service.
        return (yield from mount.exec_read(task, "/bin.sh"))

    assert run(world.sim, proc()) == b"ELF binary"
    assert mount.ctx_switches() > 0  # the legacy path crossed FUSE


def test_danaus_default_path_bypasses_kernel(world):
    pool = world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    task = pool.new_task()

    def proc():
        before = world.kernel.metrics.counter("syscalls").value
        yield from mount.fs.write_file(task, "/f", b"no syscalls")
        yield from mount.fs.read_file(task, "/f")
        after = world.kernel.metrics.counter("syscalls").value
        return after - before

    assert run(world.sim, proc()) == 0


def test_kernel_stack_pays_syscalls(world):
    pool = world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "K").mount_root("c0")
    task = pool.new_task()

    def proc():
        before = world.kernel.metrics.counter("syscalls").value
        yield from mount.fs.write_file(task, "/f", b"syscalls")
        after = world.kernel.metrics.counter("syscalls").value
        return after - before

    assert run(world.sim, proc()) > 0


def test_two_pools_have_disjoint_cores_and_ram(world):
    pool_a = world.engine.create_pool("a", num_cores=2, ram_bytes=units.gib(2))
    pool_b = world.engine.create_pool("b", num_cores=2, ram_bytes=units.gib(2))
    assert not set(pool_a.cores) & set(pool_b.cores)
    pool_a.ram.charge(units.gib(1))
    assert pool_b.ram.used == 0
    assert world.machine.ram.used == units.gib(1)


def test_pool_cannot_exceed_activated_cores(world):
    world.engine.create_pool("a", num_cores=2)
    world.engine.create_pool("b", num_cores=2)
    with pytest.raises(ConfigError):
        world.engine.create_pool("c", num_cores=2)


def test_mount_local_roundtrip(world):
    pool = world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(2))
    mount = mount_local(world, pool)
    task = pool.new_task()

    def proc():
        yield from mount.fs.write_file(task, "/f", b"local bytes")
        return (yield from mount.fs.read_file(task, "/f"))

    assert run(world.sim, proc()) == b"local bytes"


def test_fp_stack_uses_page_cache_and_user_cache(world):
    pool = world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(2))
    factory = StackFactory(world, pool, "FP")
    mount = factory.mount_root("c0")
    task = pool.new_task()
    payload = b"pp" * units.kib(32)

    def proc():
        yield from mount.fs.write_file(task, "/f", payload)
        yield from mount.fs.read_file(task, "/f")

    run(world.sim, proc())
    # Double caching: page cache holds the fuse layer's pages while the
    # user-level client cache holds its own copy.
    fuse_pages = sum(
        cf.nr_pages for key, cf in world.kernel.page_cache._files.items()
        if key[0] == "fuse"
    )
    assert fuse_pages > 0
    assert factory.lib_client().cache.cached_bytes > 0


def test_danaus_service_crash_contained(world):
    image, path = seed_image(world)
    pool_a = world.engine.create_pool("a", num_cores=2, ram_bytes=units.gib(2))
    pool_b = world.engine.create_pool("b", num_cores=2, ram_bytes=units.gib(2))
    mount_a = StackFactory(world, pool_a, "D").mount_root("c0")
    mount_b = StackFactory(world, pool_b, "D").mount_root("c0")
    task_a = pool_a.new_task()
    task_b = pool_b.new_task()

    def proc():
        from repro.common.errors import ServiceFailed

        yield from mount_a.fs.write_file(task_a, "/f", b"a")
        mount_a.service.crash()
        with pytest.raises(ServiceFailed):
            yield from mount_a.fs.read_file(task_a, "/f")
        yield from mount_b.fs.write_file(task_b, "/f", b"b is fine")
        return (yield from mount_b.fs.read_file(task_b, "/f"))

    assert run(world.sim, proc(), until=3000) == b"b is fine"
