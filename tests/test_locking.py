"""Tests for the client locking-policy ladder (`repro.cephclient.locking`).

Covers: policy selection and validation, schedule stability of the
default global path, byte integrity under concurrent mixed I/O per
policy (including the O_APPEND two-appender race), inode-lock retirement
on unlink, revoke-vs-read interleaving under caps, dirty-throttle waiter
hygiene, and adaptive-policy convergence on the Fig. 9 contention shape.
"""

import pytest

from repro.cephclient import CephLibClient
from repro.cephclient.locking import MODES, POLICIES, LockingPolicy
from repro.common import units
from repro.common.errors import ConfigError
from repro.costs import CostModel
from repro.fs.api import OpenFlags
from repro.hw import Machine
from repro.net import Fabric
from repro.sim import Simulator
from repro.sim.sync import Mutex
from repro.storage import CephCluster
from tests.conftest import make_task, run


def make_world(num_osds=4, **client_kwargs):
    sim = Simulator()
    machine = Machine(sim, num_cores=8, ram_bytes=units.gib(4))
    costs = client_kwargs.pop("costs", None) or CostModel(
        object_size=units.kib(256)
    )
    cluster = CephCluster(sim, Fabric(sim), costs, num_osds=num_osds)
    account = machine.ram.child(units.mib(256), "pool-ram")
    client = CephLibClient(
        sim, cluster, costs, account, machine.activated,
        name=client_kwargs.pop("name", "lk"), **client_kwargs
    )
    return sim, machine, cluster, client


# --- policy selection -------------------------------------------------------

def test_unknown_policy_rejected():
    with pytest.raises(ConfigError, match="unknown locking policy"):
        make_world(locking="banana")


def test_default_is_global_and_flag_maps_to_inode():
    _, _, _, default = make_world()
    assert default._locking.policy == "global"
    assert not default.fine_grained
    _, _, _, legacy = make_world(fine_grained_locking=True)
    assert legacy._locking.policy == "inode"
    assert legacy.fine_grained


def test_all_policies_construct():
    for policy in POLICIES:
        _, _, _, client = make_world(locking=policy)
        assert client._locking.policy == policy
        # Adaptive starts at the coarse end; static policies are fixed.
        expected = "global" if policy == "adaptive" else policy
        assert client._locking.mode == expected


# --- lock-table arithmetic (pure unit) --------------------------------------

def test_range_lock_stripes_and_extent_dedup():
    sim = Simulator()
    policy = LockingPolicy(
        sim, "t", Mutex(sim, name="t.client_lock"),
        policy="range", range_stripe=100,
    )
    locks = policy.range_locks(7, 250, 120)  # covers stripes 2 and 3
    assert [lock.name for lock in locks] == ["t.ino7.r2", "t.ino7.r3"]
    # Same stripes come back as the same Mutex objects.
    assert policy.range_locks(7, 299, 1) == [locks[0]]
    merged = policy.extent_range_locks(7, [(250, b"x" * 120), (300, b"y")])
    assert merged == locks  # deduped, stripe-ordered
    assert len(sim.registered_locks()) == 2


def test_drop_ino_unregisters_and_retires_stats():
    sim = Simulator()
    policy = LockingPolicy(
        sim, "t", Mutex(sim, name="t.client_lock"),
        policy="range", range_stripe=100,
    )
    ino_lock = policy.inode_lock(5)
    policy.range_locks(5, 0, 250)
    assert len(sim.registered_locks()) == 4

    def toucher():
        yield ino_lock.acquire(who=None)
        ino_lock.release()

    run(sim, toucher())
    policy.drop_ino(5)
    assert 5 not in policy._ino_locks
    assert 5 not in policy._range_locks
    remaining = sim.registered_locks()
    # The dropped locks are gone; one retired bucket holds their stats.
    assert [entry[2] for entry in remaining] == ["retired"]
    assert remaining[0][3].stats.acquisitions == 1
    # A recycled ino gets a fresh lock, not the departed one.
    assert policy.inode_lock(5) is not ino_lock


# --- schedule stability of the default path ---------------------------------

def _mixed_trace(**client_kwargs):
    """Timestamps of a deterministic mixed op sequence on one client."""
    sim, machine, _, client = make_world(**client_kwargs)
    task = make_task(sim, machine)
    stamps = []

    def proc():
        yield from client.write_file(task, "/a", b"a" * units.kib(96))
        stamps.append(("wa", sim.now))
        yield from client.write_file(task, "/b", b"b" * units.kib(32),
                                     sync=True)
        stamps.append(("wb", sim.now))
        handle = yield from client.open(
            task, "/a", OpenFlags.WRONLY | OpenFlags.APPEND
        )
        yield from client.write(task, handle, 0, b"tail")
        yield from client.close(task, handle)
        stamps.append(("append", sim.now))
        data = yield from client.read_file(task, "/a")
        stamps.append(("ra", sim.now, len(data)))
        stat = yield from client.stat(task, "/b")
        stamps.append(("stat", sim.now, stat.size))
        yield from client.rename(task, "/b", "/c")
        yield from client.unlink(task, "/c")
        stamps.append(("ns", sim.now))

    run(sim, proc())
    return stamps


def test_default_global_schedule_is_deterministic():
    assert _mixed_trace() == _mixed_trace()


def test_explicit_global_matches_default_schedule():
    """`locking="global"` must be the identity: same event schedule as a
    client built with no locking argument (the engine-bench fingerprints
    pin the same property on the full benchmark scenarios)."""
    assert _mixed_trace(locking="global") == _mixed_trace()


# --- byte integrity under concurrent mixed I/O ------------------------------

@pytest.mark.parametrize("policy", POLICIES)
def test_concurrent_disjoint_writers_and_readers(policy):
    """N writers on disjoint regions of one file plus concurrent readers:
    every policy must assemble the same final bytes."""
    sim, machine, _, client = make_world(locking=policy)
    chunk = units.kib(64)
    workers = 4
    setup = make_task(sim, machine, "setup")

    def prepare():
        yield from client.write_file(
            setup, "/mix", b"\0" * (chunk * workers), sync=True
        )

    run(sim, prepare())
    reads = []

    def writer(index):
        task = make_task(sim, machine, "w%d" % index)
        handle = yield from client.open(task, "/mix", OpenFlags.RDWR)
        payload = bytes([ord("A") + index]) * chunk
        yield from client.write(task, handle, index * chunk, payload)
        yield from client.close(task, handle)

    def reader(index):
        task = make_task(sim, machine, "r%d" % index)
        data = yield from client.read_file(task, "/mix")
        reads.append(data)

    procs = [sim.spawn(writer(i)) for i in range(workers)]
    procs += [sim.spawn(reader(i)) for i in range(2)]
    sim.run(until=50)
    assert all(p.triggered for p in procs)
    task = make_task(sim, machine, "check")

    final = run(sim, client.read_file(task, "/mix"))
    expected = b"".join(
        bytes([ord("A") + i]) * chunk for i in range(workers)
    )
    assert final == expected
    # Concurrent readers saw only whole-chunk states (zeroes or the
    # writer's byte), never a torn chunk.
    for data in reads:
        assert len(data) == chunk * workers
        for index in range(workers):
            block = set(data[index * chunk:(index + 1) * chunk])
            assert len(block) == 1


@pytest.mark.parametrize("policy", POLICIES)
def test_concurrent_appenders_never_clobber(policy):
    """The O_APPEND regression: each appender resolves its offset under
    the state lock, so two racing appenders always land on disjoint
    offsets — the file ends up with every block intact."""
    sim, machine, _, client = make_world(locking=policy)
    block = 512
    rounds = 4
    setup = make_task(sim, machine, "setup")
    run(sim, client.write_file(setup, "/log", b""))

    def appender(char):
        task = make_task(sim, machine, "app-%s" % char)
        handle = yield from client.open(
            task, "/log", OpenFlags.WRONLY | OpenFlags.APPEND
        )
        for _ in range(rounds):
            yield from client.write(task, handle, 0, char * block)
        yield from client.close(task, handle)

    procs = [sim.spawn(appender(b"a")), sim.spawn(appender(b"b"))]
    sim.run(until=50)
    assert all(p.triggered for p in procs)
    task = make_task(sim, machine, "check")
    final = run(sim, client.read_file(task, "/log"))
    # No lost update: every append landed.
    assert len(final) == 2 * rounds * block
    assert final.count(b"a"[0]) == rounds * block
    assert final.count(b"b"[0]) == rounds * block
    # And every block is contiguous — no interleaving inside an append.
    for index in range(0, len(final), block):
        assert len(set(final[index:index + block])) == 1


# --- unlink retires per-inode locking state ---------------------------------

def test_unlink_cleans_seq_end_and_lock_table():
    sim, machine, _, client = make_world(locking="range")
    task = make_task(sim, machine)

    def proc():
        yield from client.write_file(task, "/f", b"z" * units.kib(64),
                                     sync=True)
        yield from client.read_file(task, "/f")
        ino = client.attr_cache["/f"].ino
        assert ino in client._seq_end
        assert ino in client._locking._ino_locks
        yield from client.unlink(task, "/f")
        return ino

    ino = run(sim, proc())
    assert ino not in client._seq_end
    assert ino not in client._locking._ino_locks
    assert ino not in client._locking._range_locks
    # The registry kept only the retired bucket (and the long-lived
    # ``-1`` namespace pseudo-inode) — no dangling per-inode entries.
    leftover = [
        entry for entry in sim.registered_locks()
        if entry[1] in ("ino_lock", "range_lock")
        and entry[2] not in ("retired", -1)
    ]
    assert leftover == []
    retired = [
        entry for entry in sim.registered_locks() if entry[2] == "retired"
    ]
    assert len(retired) == 1
    assert retired[0][3].stats.acquisitions > 0


# --- cap revoke vs concurrent reads -----------------------------------------

def test_revoke_vs_read_sees_whole_versions():
    """Caps chaos: a writer repeatedly replaces a file while a reader on
    another client streams it. Every read must return one *complete*
    version — the revoke invalidation runs under the inode state lock,
    so it can never interleave with a half-done read."""
    sim = Simulator()
    machine = Machine(sim, num_cores=8, ram_bytes=units.gib(4))
    costs = CostModel(object_size=units.kib(256))
    cluster = CephCluster(sim, Fabric(sim), costs, num_osds=4)

    def caps_client(name):
        account = machine.ram.child(units.mib(64), name + ".ram")
        return CephLibClient(
            sim, cluster, costs, account, machine.activated, name=name,
            consistency="caps", locking="inode",
        )

    writer = caps_client("w")
    reader = caps_client("r")
    size = units.kib(16)
    versions = [bytes([ord("0") + v]) * size for v in range(4)]
    setup = make_task(sim, machine, "setup")
    run(sim, writer.write_file(setup, "/hot", versions[0], sync=True))
    seen = []

    def write_loop():
        # Same-size in-place overwrites (no truncate): each version is a
        # single extent in a single object, so the OSD applies it whole.
        task = make_task(sim, machine, "writer")
        for payload in versions[1:]:
            handle = yield from writer.open(task, "/hot", OpenFlags.RDWR)
            yield from writer.write(task, handle, 0, payload)
            yield from writer.fsync(task, handle)
            yield from writer.close(task, handle)

    def read_loop():
        task = make_task(sim, machine, "reader")
        for _ in range(8):
            seen.append((yield from reader.read_file(task, "/hot")))

    procs = [sim.spawn(write_loop()), sim.spawn(read_loop())]
    sim.run(until=100)
    assert all(p.triggered for p in procs)
    assert len(seen) == 8
    for data in seen:
        assert data in versions  # whole versions only, never a mix
    check = make_task(sim, machine, "check")
    assert run(sim, reader.read_file(check, "/hot")) == versions[-1]
    assert reader.metrics.counter("caps_revoked").value >= 1


# --- dirty-throttle waiter hygiene ------------------------------------------

def test_throttle_timeout_removes_stale_waiter():
    """When the throttle's timeout wins the race against flush progress,
    the dead event must leave `_flush_waiters` — otherwise every stalled
    round leaks one entry until a flush walks the whole graveyard."""
    sim, machine, _, client = make_world(start_flusher=False)
    client.max_dirty = units.kib(16)
    task = make_task(sim, machine)

    def blocked_writer():
        yield from client.write_file(task, "/big", b"d" * units.kib(64))

    proc = sim.spawn(blocked_writer())
    # Three writeback intervals pass with no flusher: three timeout wins.
    sim.run(until=3.5)
    assert not proc.triggered
    assert client.metrics.counter("throttle_waits").value >= 3
    # Only the currently-armed waiter may be present — no stale pile-up.
    assert len(client._flush_waiters) <= 1

    def unblock():
        flush_task = make_task(sim, machine, "flush")
        yield from client.flush_all(flush_task)

    sim.spawn(unblock())
    sim.run(until=sim.now + 20)
    assert proc.triggered
    assert client._flush_waiters == []


# --- adaptive policy convergence --------------------------------------------

def test_adaptive_converges_per_scenario():
    """On the Fig. 9 cached-Seqread shape the controller must escalate
    out of global mode: to `inode` when each thread streams its own file,
    all the way to `range` when every thread hammers one shared file."""
    from repro.bench.ablation import _seqread_with

    per_file = _seqread_with(
        "adaptive", duration=1.5, threads=4, shared_file=False
    )
    assert per_file["switches"] >= 1
    assert per_file["final_mode"] in ("inode", "range")
    shared = _seqread_with(
        "adaptive", duration=1.5, threads=4, shared_file=True
    )
    assert shared["final_mode"] == "range"
    assert shared["switches"] >= 2
    # The fine tiers must actually pay off against the global baseline.
    baseline = _seqread_with(
        "global", duration=1.5, threads=4, shared_file=True
    )
    assert shared["throughput_mb_s"] > baseline["throughput_mb_s"] * 1.3


def test_adaptive_decision_trace_and_deescalation():
    """Decisions are recorded with timestamps and reasons, and a dying
    op rate steps the mode back down toward global."""
    costs = CostModel(
        object_size=units.kib(256),
        lock_adapt_interval=0.01, lock_idle_acqs=4, lock_calm_rounds=2,
    )
    sim, machine, _, client = make_world(locking="adaptive", costs=costs)
    payload = b"h" * units.kib(256)
    setup = make_task(sim, machine, "setup")
    run(sim, client.write_file(setup, "/hot", payload, sync=True))
    run(sim, client.read_file(setup, "/hot"))  # warm the cache

    def reader(index):
        task = make_task(sim, machine, "r%d" % index)
        for _ in range(30):
            yield from client.read_file(task, "/hot")

    procs = [sim.spawn(reader(i)) for i in range(4)]
    sim.run(until=20)
    assert all(p.triggered for p in procs)
    policy = client._locking
    assert policy.decisions, "contention burst never escalated"
    escalations = [
        d for d in policy.decisions
        if MODES.index(d[2]) > MODES.index(d[1])
    ]
    assert escalations and "contended" in escalations[0][3]
    # Long after the burst the idle detector walked the mode back down.
    assert policy.mode == "global"
    idles = [d for d in policy.decisions if "idle" in d[3]]
    assert idles
    for when, _from, _to, _reason in policy.decisions:
        assert 0 <= when <= sim.now
    client.stop()


def test_locking_profile_table_formatting():
    from repro.obs import format_locking_table

    assert "no adaptive locking policy ran" in format_locking_table([])
    rows = [
        {"world": "w0", "scope": "locking", "metric": "switches",
         "value": 2},
        {"world": "w0", "scope": "locking", "metric": "mode", "value": 2},
    ]
    table = format_locking_table(rows)
    assert "switches" in table and "mode" in table
