"""Integration tests for the FUSE transport."""

import pytest

from repro.common import units
from repro.common.errors import FileNotFound, ServiceFailed
from repro.fs.api import OpenFlags
from repro.fuse import FuseTransport
from repro.hw import RamDisk
from repro.kernel import LocalFs
from tests.conftest import make_task, run


@pytest.fixture
def inner(sim, kernel):
    return LocalFs(kernel, RamDisk(sim), name="inner")


@pytest.fixture
def fuse(sim, kernel, machine, inner):
    return FuseTransport(kernel, inner, machine.activated, name="fuse-test")


def test_roundtrip_through_daemon(sim, machine, fuse):
    task = make_task(sim, machine)

    def proc():
        yield from fuse.write_file(task, "/f", b"through the daemon")
        return (yield from fuse.read_file(task, "/f"))

    assert run(sim, proc()) == b"through the daemon"


def test_context_switches_counted_per_call(sim, machine, fuse):
    task = make_task(sim, machine)

    def proc():
        yield from fuse.write_file(task, "/f", b"x")

    run(sim, proc())
    calls = fuse.metrics.counter("fuse_calls").value
    switches = fuse.metrics.counter("ctx_switches").value
    assert calls >= 2  # open + write (+ close)
    assert switches == 2 * calls


def test_large_write_is_split_into_fuse_chunks(sim, machine, kernel, inner):
    fuse = FuseTransport(kernel, inner, machine.activated, name="split")
    task = make_task(sim, machine)
    payload = b"z" * (kernel.costs.fuse_max_write * 3)

    def proc():
        handle = yield from fuse.open(
            task, "/big", OpenFlags.CREAT | OpenFlags.WRONLY
        )
        before = fuse.metrics.counter("fuse_calls").value
        yield from fuse.write(task, handle, 0, payload)
        after = fuse.metrics.counter("fuse_calls").value
        yield from fuse.close(task, handle)
        return after - before

    assert run(sim, proc()) == 3


def test_errors_propagate_through_daemon(sim, machine, fuse):
    task = make_task(sim, machine)

    def proc():
        with pytest.raises(FileNotFound):
            yield from fuse.open(task, "/missing")
        return True

    assert run(sim, proc())


def test_fuse_is_slower_than_direct(sim, machine, kernel, inner):
    fuse = FuseTransport(kernel, inner, machine.activated, name="slow")
    task = make_task(sim, machine)

    def direct():
        start = sim.now
        yield from inner.write_file(task, "/d", b"x" * units.kib(4))
        return sim.now - start

    def crossed():
        start = sim.now
        yield from fuse.write_file(task, "/f", b"x" * units.kib(4))
        return sim.now - start

    direct_time = run(sim, direct())
    fuse_time = run(sim, crossed())
    assert fuse_time > direct_time * 1.5


def test_page_cache_mode_serves_hits_without_daemon(sim, machine, kernel, inner):
    fuse = FuseTransport(
        kernel, inner, machine.activated, name="fp", use_page_cache=True
    )
    task = make_task(sim, machine)
    payload = b"c" * units.kib(64)

    def proc():
        yield from fuse.write_file(task, "/f", payload)
        handle = yield from fuse.open(task, "/f")
        calls_before = fuse.metrics.counter("fuse_calls").value
        data = yield from fuse.read(task, handle, 0, len(payload))
        calls_after = fuse.metrics.counter("fuse_calls").value
        yield from fuse.close(task, handle)
        return data, calls_after - calls_before

    data, extra_calls = run(sim, proc())
    assert data == payload
    assert extra_calls == 0  # read served purely from the page cache
    assert fuse.metrics.counter("pc_hits").value >= 1


def test_page_cache_mode_doubles_memory(sim, machine, kernel, inner):
    fuse = FuseTransport(
        kernel, inner, machine.activated, name="fp2", use_page_cache=True
    )
    task = make_task(sim, machine)

    def proc():
        yield from fuse.write_file(task, "/f", b"m" * units.kib(64))

    run(sim, proc())
    # The written range is now resident in the kernel page cache on top of
    # whatever the daemon-side filesystem keeps.
    assert kernel.page_cache.cached_bytes >= units.kib(64)


def test_direct_mode_keeps_page_cache_empty(sim, machine, kernel, inner):
    fuse = FuseTransport(
        kernel, inner, machine.activated, name="direct", use_page_cache=False
    )
    task = make_task(sim, machine)

    def proc():
        yield from fuse.write_file(task, "/f", b"m" * units.kib(64))
        yield from fuse.read_file(task, "/f")

    run(sim, proc())
    keys = [key for key in kernel.page_cache._files if key[0] == "fuse"]
    assert keys == []


def test_daemon_crash_fails_requests_but_not_host(sim, machine, kernel, inner):
    fuse = FuseTransport(kernel, inner, machine.activated, name="crash")
    other = LocalFs(kernel, RamDisk(sim), name="other")
    task = make_task(sim, machine)

    def proc():
        yield from fuse.write_file(task, "/f", b"before crash")
        fuse.fail()
        with pytest.raises(ServiceFailed):
            yield from fuse.read_file(task, "/f")
        # The rest of the host keeps working: another filesystem is fine.
        yield from other.write_file(task, "/ok", b"alive")
        return (yield from other.read_file(task, "/ok"))

    assert run(sim, proc()) == b"alive"


def test_daemon_threads_run_in_pool_cpuset(sim, machine, kernel, inner):
    pool_cores = machine.cores[2:4]
    fuse = FuseTransport(kernel, inner, pool_cores, name="pinned")
    task = make_task(sim, machine, cores=pool_cores)

    def proc():
        yield from fuse.write_file(task, "/f", b"x" * units.kib(256))

    run(sim, proc())
    outside = sum(core.busy_time for core in machine.cores[4:])
    assert outside == pytest.approx(0.0, abs=1e-6)
