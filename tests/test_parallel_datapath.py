"""Tests for the parallel striped data path.

Fan-out dispatch of per-object ops, replica-push overlap, the inflight
window cap, vectored OSD writes, and per-seed schedule determinism with
fan-out enabled — including an OSD crash landing mid-fan-out.
"""

import hashlib

import pytest

from repro.costs import CostModel
from repro.net import Fabric
from repro.obs import Observer
from repro.sim import Simulator
from repro.sim.bench import stripe_fanout_reference
from repro.storage import CephCluster
from tests.conftest import run

#: CRUSH spreads this file's six objects over six *distinct* OSDs, so
#: striped-read completion time measures dispatch concurrency rather
#: than placement collisions (many small inos hash several objects onto
#: one OSD, which would serialise at the device regardless of dispatch).
SPREAD_INO = 51


def make_cluster(sim, costs, num_osds=6, replicas=1):
    return CephCluster(sim, Fabric(sim), costs, num_osds=num_osds,
                       replicas=replicas)


def test_stripe_read_completes_in_about_one_rpc_latency(sim):
    # Tiny objects: per-object service is dominated by fixed RPC latency,
    # so a serial 6-object read costs ~6 round trips while the fan-out
    # read overlaps them into ~1.
    costs = CostModel(object_size=4096)
    cluster = make_cluster(sim, costs)
    size = 6 * costs.object_size
    times = {}

    def proc():
        yield from cluster.write_extent(SPREAD_INO, 0, bytes(size))
        t0 = sim.now
        single = yield from cluster.read_extent(
            SPREAD_INO, 0, costs.object_size
        )
        times["single"] = sim.now - t0
        t0 = sim.now
        striped = yield from cluster.read_extent(SPREAD_INO, 0, size)
        times["striped"] = sim.now - t0
        assert len(single) == costs.object_size
        assert len(striped) == size

    run(sim, proc())
    assert times["striped"] < 2 * times["single"], (
        "6-object fan-out read took %.1fx one object RPC"
        % (times["striped"] / times["single"])
    )


def _timed_replicated_write(inflight):
    sim = Simulator()
    costs = CostModel(object_size=4096, client_inflight_ops=inflight)
    cluster = make_cluster(sim, costs, replicas=3)
    out = {}

    def proc():
        t0 = sim.now
        yield from cluster.write_extent(SPREAD_INO, 0, b"x" * 4096)
        out["elapsed"] = sim.now - t0

    run(sim, proc())
    return out["elapsed"]


def test_write_fanout_overlaps_replica_pushes():
    # One object, three replicas: with the window open the three pushes
    # land on distinct OSDs concurrently; with a window of 1 they
    # serialise exactly like the old per-target loop.
    serial = _timed_replicated_write(inflight=1)
    fanout = _timed_replicated_write(inflight=16)
    assert fanout < 0.6 * serial, (
        "replica pushes did not overlap: %.6fs fan-out vs %.6fs serial"
        % (fanout, serial)
    )


def test_inflight_window_caps_concurrency():
    sim = Simulator()
    sim.observer = Observer(sim=sim)
    costs = CostModel(object_size=4096, client_inflight_ops=2)
    cluster = make_cluster(sim, costs)
    size = 6 * costs.object_size

    def proc():
        yield from cluster.write_extent(SPREAD_INO, 0, bytes(size))
        yield from cluster.read_extent(SPREAD_INO, 0, size)

    run(sim, proc())
    registry = sim.observer.metrics("dispatch")
    assert registry.gauge("inflight").high_water == 2
    width = registry.histogram("width")
    assert width.count >= 2  # the striped write and the striped read
    assert width.max == 6
    rows = sim.observer.dispatch_profile()
    assert rows[0]["scope"] == "client"
    assert rows[0]["inflight_hw"] == 2
    osd_rows = [row for row in rows if row["scope"].startswith("osd")]
    assert osd_rows, "per-OSD inflight rows missing from the profile"
    assert all(row["inflight_hw"] >= 1 for row in osd_rows)


def test_vectored_write_is_one_rpc_per_osd():
    sim = Simulator()
    costs = CostModel(object_size=4096)
    cluster = make_cluster(sim, costs)
    # Two dirty extents inside object 0 plus one in object 1: the flush
    # ships one vectored RPC per target OSD, not one RPC per extent.
    extents = [(0, b"a" * 512), (1024, b"b" * 512), (4096, b"c" * 512)]

    def proc():
        total = yield from cluster.write_vector(SPREAD_INO, extents)
        assert total == 1536

    run(sim, proc())
    writes = sum(
        int(osd.metrics.counter("writes").value) for osd in cluster.osds
    )
    vector_writes = sum(
        int(osd.metrics.counter("vector_writes").value)
        for osd in cluster.osds
    )
    pieces = sum(
        int(osd.metrics.counter("vector_pieces").value)
        for osd in cluster.osds
    )
    assert writes == 2  # objects 0 and 1 live on different OSDs
    assert vector_writes == 2
    assert pieces == 3
    assert cluster.osds[cluster.crush.primary(SPREAD_INO, 0)].object_size(
        SPREAD_INO, 0
    ) == 1536


def test_reference_scenario_speedup_at_least_2x():
    serial = stripe_fanout_reference(inflight=1)
    fanout = stripe_fanout_reference(inflight=16)
    assert serial["read_ok"] and fanout["read_ok"]
    speedup = serial["read_s"] / fanout["read_s"]
    assert speedup >= 2.0, "fan-out read only %.2fx faster" % speedup


def test_fanout_schedule_is_deterministic():
    one = stripe_fanout_reference(inflight=16)
    two = stripe_fanout_reference(inflight=16)
    assert one == two


def _crash_mid_fanout_run():
    """One striped replicated write with an OSD crash landing mid-fan-out.

    Returns a schedule-sensitive fingerprint dict; two runs of the same
    build must produce identical dicts.
    """
    sim = Simulator()
    costs = CostModel(object_size=4096)
    cluster = make_cluster(sim, costs, replicas=2)
    cluster.arm_faults()
    size = 6 * costs.object_size
    payload = bytes(
        hashlib.blake2b(b"%d" % i, digest_size=1).digest()[0]
        for i in range(size)
    )
    victim = cluster.crush.primary(SPREAD_INO, 2)
    out = {}

    def saboteur():
        # Land the crash while the fan-out children are mid-RPC.
        yield sim.timeout(costs.osd_op / 2)
        cluster.osds[victim].crash()

    def proc():
        sim.spawn(saboteur(), name="saboteur")
        t0 = sim.now
        yield from cluster.write_extent(SPREAD_INO, 0, payload)
        out["write_s"] = sim.now - t0
        data = yield from cluster.read_extent(SPREAD_INO, 0, size)
        out["read_back_ok"] = data == payload
        out["retries"] = int(cluster.metrics.counter("retries").value)

    run(sim, proc())
    out["inflight_attempts"] = cluster.inflight_attempts
    # No double-apply: every surviving replica of every object holds
    # exactly the acknowledged bytes (a replayed retry would have
    # re-spliced identical bytes — idempotent — never appended).
    for index in range(6):
        piece = payload[index * 4096:(index + 1) * 4096]
        holders = 0
        for osd in cluster.osds:
            obj = osd._objects.get((SPREAD_INO, index))
            if obj is None or osd.osd_id == victim:
                continue
            holders += 1
            assert bytes(obj) == piece, (
                "object %d corrupted on osd %d" % (index, osd.osd_id)
            )
        out["holders_%d" % index] = holders
        assert holders >= 1
    return out


@pytest.mark.chaos
def test_osd_crash_mid_fanout_retries_without_double_apply():
    result = _crash_mid_fanout_run()
    assert result["read_back_ok"]
    assert result["retries"] >= 1, "the crash must actually force a retry"
    assert result["inflight_attempts"] == 0
    # Same seed, same build: the recovery schedule is reproducible.
    assert _crash_mid_fanout_run() == result


def _churn_mid_fanout_run():
    """A striped replicated write with an osd_add landing mid-fan-out.

    The membership change bumps the map epoch while the fan-out children
    are mid-RPC, so some pushes are stamped with the pre-add epoch and
    get EOLDEPOCH'd; the retry refreshes the map and the write completes
    against the new placement. Returns a schedule-sensitive fingerprint
    dict; two runs must produce identical dicts.
    """
    sim = Simulator()
    costs = CostModel(object_size=4096)
    cluster = make_cluster(sim, costs, replicas=2)
    cluster.arm_lifecycle()
    size = 6 * costs.object_size
    payload = bytes(
        hashlib.blake2b(b"%d" % i, digest_size=1).digest()[0]
        for i in range(size)
    )
    out = {}

    def saboteur():
        # Land the membership change while fan-out children are mid-RPC.
        yield sim.timeout(costs.osd_op / 2)
        cluster.add_osd(backfill=False)

    def proc():
        sim.spawn(saboteur(), name="saboteur")
        yield from cluster.write_extent(SPREAD_INO, 0, payload)
        out["epoch_after_write"] = cluster._osdmap.epoch
        cluster.start_backfill()
        yield from cluster.backfill.drain()
        data = yield from cluster.read_extent(SPREAD_INO, 0, size)
        out["read_back_ok"] = data == payload
        out["retries"] = int(cluster.metrics.counter("retries").value)
        out["stale_rejects"] = int(
            cluster.metrics.counter("stale_map_rejects").value
        )

    run(sim, proc())
    out["inflight_attempts"] = cluster.inflight_attempts
    out["under_replicated"] = len(cluster.monitor.under_replicated())
    out["misplaced"] = len(cluster.monitor.misplaced())
    for index in range(6):
        piece = payload[index * 4096:(index + 1) * 4096]
        acting = cluster.monitor.acting_set(SPREAD_INO, index)
        for osd_id in acting:
            obj = cluster.osds[osd_id]._objects.get((SPREAD_INO, index))
            assert obj is not None, (
                "acting osd %d missing object %d" % (osd_id, index)
            )
            assert bytes(obj) == piece, (
                "object %d corrupted on osd %d" % (index, osd_id)
            )
    return out


@pytest.mark.chaos
def test_osd_add_mid_fanout_converges_deterministically():
    result = _churn_mid_fanout_run()
    assert result["read_back_ok"]
    assert result["inflight_attempts"] == 0
    assert result["under_replicated"] == 0
    assert result["misplaced"] == 0
    # Same seed, same build: the churn schedule is reproducible.
    assert _churn_mid_fanout_run() == result
