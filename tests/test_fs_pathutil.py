"""Unit tests for path helpers."""

import pytest

from repro.common.errors import InvalidArgument
from repro.fs import pathutil


def test_normalize_collapses_slashes_and_dots():
    assert pathutil.normalize("//a//b/./c") == "/a/b/c"


def test_normalize_resolves_dotdot():
    assert pathutil.normalize("/a/b/../c") == "/a/c"


def test_normalize_dotdot_cannot_escape_root():
    assert pathutil.normalize("/../../a") == "/a"


def test_normalize_root():
    assert pathutil.normalize("/") == "/"


def test_normalize_rejects_relative():
    with pytest.raises(InvalidArgument):
        pathutil.normalize("a/b")


def test_normalize_rejects_empty():
    with pytest.raises(InvalidArgument):
        pathutil.normalize("")


def test_components():
    assert pathutil.components("/a/b/c") == ["a", "b", "c"]
    assert pathutil.components("/") == []


def test_split():
    assert pathutil.split("/a/b") == ("/a", "b")
    assert pathutil.split("/a") == ("/", "a")
    assert pathutil.split("/") == ("/", "")


def test_join():
    assert pathutil.join("/a", "b", "c") == "/a/b/c"
    assert pathutil.join("/", "x") == "/x"
    assert pathutil.join("/a/b", "../c") == "/a/c"


def test_is_ancestor():
    assert pathutil.is_ancestor("/a", "/a/b")
    assert pathutil.is_ancestor("/a", "/a")
    assert pathutil.is_ancestor("/", "/anything")
    assert not pathutil.is_ancestor("/a", "/ab")


def test_relative_to():
    assert pathutil.relative_to("/mnt", "/mnt/a/b") == "/a/b"
    assert pathutil.relative_to("/mnt", "/mnt") == "/"
    assert pathutil.relative_to("/", "/a") == "/a"
    with pytest.raises(InvalidArgument):
        pathutil.relative_to("/mnt", "/other")


def test_parent_and_basename():
    assert pathutil.parent_of("/a/b/c") == "/a/b"
    assert pathutil.basename("/a/b/c") == "c"
