"""Unit tests for the cost model."""

import pytest

from repro.common import units
from repro.costs import CostModel


def test_defaults_are_positive():
    costs = CostModel()
    for name, value in vars(costs).items():
        if isinstance(value, (int, float)):
            assert value > 0, name


def test_override_in_constructor():
    costs = CostModel(syscall=1e-6)
    assert costs.syscall == 1e-6


def test_unknown_override_rejected():
    with pytest.raises(AttributeError):
        CostModel(nonsense=1)


def test_replace_returns_modified_copy():
    base = CostModel()
    tweaked = base.replace(object_size=units.kib(64))
    assert tweaked.object_size == units.kib(64)
    assert base.object_size != units.kib(64)
    with pytest.raises(AttributeError):
        base.replace(bogus=1)


def test_copy_cost_scales_linearly():
    costs = CostModel()
    assert costs.copy_cost(0) == 0
    assert costs.copy_cost(2 * units.MIB) == pytest.approx(
        2 * costs.copy_cost(units.MIB)
    )


def test_pages_of():
    costs = CostModel()
    page = costs.page_size
    assert costs.pages_of(0, 0) == 0
    assert costs.pages_of(0, 1) == 1
    assert costs.pages_of(0, page) == 1
    assert costs.pages_of(0, page + 1) == 2
    assert costs.pages_of(page - 1, 2) == 2  # straddles a boundary


def test_units_helpers():
    assert units.kib(2) == 2048
    assert units.mib(1) == 1 << 20
    assert units.gib(1) == 1 << 30
    assert units.usec(2) == pytest.approx(2e-6)
    assert units.msec(3) == pytest.approx(3e-3)
    assert units.fmt_bytes(1536) == "1.5KiB"
    assert units.fmt_time(0.0000005).endswith("us")
    assert units.fmt_time(0.5).endswith("ms")
    assert units.fmt_time(2.0).endswith("s")
    assert units.fmt_rate(units.mib(1)).endswith("/s")
