"""Tests for OSD failure handling, degraded I/O and recovery."""

import errno

import pytest

from repro.common import units
from repro.common.errors import DataUnavailable
from repro.costs import CostModel
from repro.net import Fabric
from repro.storage import CephCluster
from tests.conftest import run


@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(64))


def make_cluster(sim, costs, replicas=2, num_osds=4):
    return CephCluster(sim, Fabric(sim), costs, num_osds=num_osds,
                       replicas=replicas)


def test_monitor_tracks_epochs(sim, costs):
    cluster = make_cluster(sim, costs)
    monitor = cluster.monitor
    assert monitor.epoch == 1
    monitor.mark_down(0)
    assert monitor.epoch == 2
    assert not monitor.is_up(0)
    monitor.mark_down(0)  # idempotent
    assert monitor.epoch == 2
    monitor.mark_up(0)
    assert monitor.epoch == 3
    assert monitor.is_up(0)


def test_replicated_read_survives_primary_failure(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2)
    payload = b"replicated-payload" * 100

    def proc():
        yield from cluster.write_extent(1, 0, payload)
        primary = cluster.crush.primary(1, 0)
        cluster.monitor.mark_down(primary)
        return (yield from cluster.read_extent(1, 0, len(payload)))

    assert run(sim, proc()) == payload


def test_unreplicated_data_lost_on_failure(sim, costs):
    cluster = make_cluster(sim, costs, replicas=1)
    payload = b"single-copy"

    def proc():
        yield from cluster.write_extent(2, 0, payload)
        primary = cluster.crush.primary(2, 0)
        cluster.monitor.mark_down(primary)
        try:
            yield from cluster.read_extent(2, 0, len(payload))
        except DataUnavailable as err:
            return err
        return None

    # With one replica on the failed device the read must surface EIO —
    # never silently return truncated data. The client retries while the
    # OSD stays down, then propagates.
    err = run(sim, proc())
    assert isinstance(err, DataUnavailable)
    assert err.errno == errno.EIO


def test_unreplicated_data_returns_after_osd_recovers(sim, costs):
    cluster = make_cluster(sim, costs, replicas=1)
    payload = b"single-copy-come-back"

    def proc():
        yield from cluster.write_extent(2, 0, payload)
        primary = cluster.crush.primary(2, 0)
        cluster.monitor.mark_down(primary)

        def heal():
            yield sim.timeout(0.3)
            cluster.monitor.mark_up(primary)

        sim.spawn(heal())
        # The retry loop rides out the outage and the data reappears.
        return (yield from cluster.read_extent(2, 0, len(payload)))

    assert run(sim, proc()) == payload


def test_writes_route_around_failed_osd(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2)

    def proc():
        primary = cluster.crush.primary(3, 0)
        cluster.monitor.mark_down(primary)
        yield from cluster.write_extent(3, 0, b"detour")
        return (yield from cluster.read_extent(3, 0, 6))

    assert run(sim, proc()) == b"detour"
    # The failed OSD holds nothing.
    failed = cluster.crush.primary(3, 0)
    assert cluster.osds[failed].object_size(3, 0) == 0


def test_under_replicated_detection_and_recovery(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2)
    payload = b"x" * units.kib(32)

    def proc():
        yield from cluster.write_extent(4, 0, payload)
        victim = cluster.crush.primary(4, 0)
        cluster.monitor.mark_down(victim)
        missing = cluster.monitor.under_replicated()
        moved = yield from cluster.monitor.recover()
        after = cluster.monitor.under_replicated()
        return missing, moved, after

    missing, moved, after = run(sim, proc())
    assert missing, "the object should be under-replicated after the failure"
    assert moved >= units.kib(32)
    assert after == []


def test_recovered_object_readable_from_new_member(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2)
    payload = b"move me" * 50

    def proc():
        yield from cluster.write_extent(5, 0, payload)
        victim = cluster.crush.primary(5, 0)
        cluster.monitor.mark_down(victim)
        yield from cluster.monitor.recover()
        # Even the surviving original replica can now fail.
        survivors = [
            osd_id for osd_id in cluster.crush.placement(5, 0)
            if osd_id != victim
        ]
        for osd_id in survivors:
            cluster.monitor.mark_down(osd_id)
        return (yield from cluster.read_extent(5, 0, len(payload)))

    assert run(sim, proc()) == payload


def test_recovery_never_resurrects_stale_bytes(sim, costs):
    """Monitor.recover() racing a concurrent write must not push its
    stale source snapshot over newer bytes: the push re-checks the
    source's mutation version and redoes the copy from fresh data."""
    cluster = make_cluster(sim, costs, replicas=2)
    old = b"o" * units.kib(64)   # full object: a slow recovery copy
    piece = b"NEWDATA!" * 512    # 4 KiB overwrite racing the copy

    def proc():
        yield from cluster.write_extent(6, 0, old)
        victim = cluster.monitor.acting_set(6, 0)[-1]
        cluster.osds[victim].crash()
        cluster.monitor.mark_down(victim)
        recovery = sim.spawn(cluster.monitor.recover(), name="recover")
        # let recovery snapshot the source and start its 64 KiB push,
        # then land a small write while the copy is in flight
        yield sim.timeout(1e-5)
        yield from cluster.write_extent(6, 0, piece)
        yield sim.all_of([recovery])
        data = yield from cluster.read_extent(6, 0, len(old))
        return data, recovery.value

    expected = piece + old[len(piece):]
    data, moved = run(sim, proc())
    assert data == expected
    # every live holder converged on the post-race content
    holders = cluster.monitor.holders(6, 0)
    assert len(holders) >= 2
    for osd_id in holders:
        assert bytes(cluster.osds[osd_id]._objects[(6, 0)]) == expected
    # the version check detected the racing write and redid the copy
    assert moved > len(old)


def test_rejoined_osd_never_serves_stale_reads(sim, costs):
    """Lifecycle rejoin semantics: a rejoined OSD holding a copy that a
    write superseded while it was down must not serve it — the stale
    record is retained until backfill pushes fresh bytes, and every read
    path (including the non-degraded fast path) excludes the copy."""
    cluster = make_cluster(sim, costs, replicas=2)
    cluster.arm_lifecycle()
    old = b"old" * units.kib(8)
    new = b"new" * units.kib(8)

    def proc():
        yield from cluster.write_extent(8, 0, old)
        victim = cluster.monitor.acting_set(8, 0)[0]  # the primary
        cluster.osds[victim].crash()
        cluster.monitor.mark_down(victim)
        yield from cluster.write_extent(8, 0, new)  # routes around victim
        cluster.osds[victim].restart()
        cluster.monitor.mark_up(victim)
        # not degraded any more: the fast path would hit the primary
        assert not cluster.degraded
        data = yield from cluster.read_extent(8, 0, len(new))
        return victim, data

    victim, data = run(sim, proc())
    assert data == new, "a rejoined OSD must not serve stale bytes"
    # the stale copy is still recorded (backfill clears it, not rejoin)
    assert cluster.monitor.is_stale(victim, (8, 0))

    def backfill_proc():
        backfill = cluster.start_backfill()
        done = yield from backfill.drain()
        data = yield from cluster.read_extent(8, 0, len(new))
        return done, data

    done, data = run(sim, backfill_proc())
    assert done and data == new
    assert not cluster.monitor.is_stale(victim, (8, 0))
    assert bytes(cluster.osds[victim]._objects[(8, 0)]) == new


def test_degraded_partial_write_pulls_object_first(sim, costs):
    """A partial overwrite landing on an acting member that never held
    the object must not splice onto zero-fill: the lifecycle write path
    pulls the full object onto the copy-less target first."""
    cluster = make_cluster(sim, costs, replicas=2)
    cluster.arm_lifecycle()
    base = b"B" * units.kib(64)   # full object
    patch = b"patch!" * 100       # partial overwrite, offset 0

    def proc():
        yield from cluster.write_extent(9, 0, base)
        victim = cluster.monitor.acting_set(9, 0)[0]
        cluster.osds[victim].crash()
        cluster.monitor.mark_down(victim)
        # the acting set now includes a replacement without a copy
        yield from cluster.write_extent(9, 0, patch)
        replacement = [
            osd_id for osd_id in cluster.monitor.acting_set(9, 0)
            if osd_id != victim
        ]
        # every acting member holds the *full* patched object
        copies = {
            osd_id: bytes(cluster.osds[osd_id]._objects[(9, 0)])
            for osd_id in replacement
        }
        data = yield from cluster.read_extent(9, 0, len(base))
        return copies, data

    expected = patch + base[len(patch):]
    copies, data = run(sim, proc())
    assert data == expected
    for osd_id, copy in copies.items():
        assert copy == expected, \
            "OSD %d spliced a partial write onto zero-fill" % osd_id


def test_backfill_push_racing_inflight_write(sim, costs):
    """A foreground write landing mid-backfill-push must win: the push
    re-checks the source version and redoes the copy from fresh bytes."""
    cluster = make_cluster(sim, costs, replicas=2)
    old = b"o" * units.kib(64)
    piece = b"RACER!!!" * 512  # 4 KiB overwrite racing the push

    def proc():
        yield from cluster.write_extent(10, 0, old)
        victim = cluster.monitor.acting_set(10, 0)[-1]
        cluster.osds[victim].crash()
        cluster.monitor.mark_down(victim)
        cluster.monitor.mark_out(victim)
        backfill = cluster.start_backfill()
        push = sim.spawn(backfill.cycle(), name="backfill-cycle")
        # let the cycle snapshot its source and start the 64 KiB push,
        # then land a small write while the copy is in flight
        yield sim.timeout(1e-5)
        yield from cluster.write_extent(10, 0, piece)
        yield sim.all_of([push])
        yield from backfill.drain()
        return (yield from cluster.read_extent(10, 0, len(old)))

    expected = piece + old[len(piece):]
    assert run(sim, proc()) == expected
    for osd_id in cluster.monitor.holders(10, 0):
        assert bytes(cluster.osds[osd_id]._objects[(10, 0)]) == expected


def test_degraded_flag(sim, costs):
    cluster = make_cluster(sim, costs)
    assert not cluster.degraded
    cluster.monitor.mark_down(1)
    assert cluster.degraded
    cluster.monitor.mark_up(1)
    assert not cluster.degraded


def test_client_io_survives_osd_failure(sim, machine, costs):
    """End to end: a user-level client keeps working through a failure."""
    from repro.cephclient import CephLibClient
    from tests.conftest import make_task

    cluster = make_cluster(sim, costs, replicas=2)
    account = machine.ram.child(units.mib(64), "ha.ram")
    client = CephLibClient(
        sim, cluster, costs, account, machine.activated, name="ha"
    )
    task = make_task(sim, machine)

    def proc():
        yield from client.write_file(task, "/critical", b"do not lose", sync=True)
        info = client.attr_cache["/critical"]
        cluster.monitor.mark_down(cluster.crush.primary(info.ino, 0))
        client.cache.drop_ino(info.ino)  # force a backend read
        return (yield from client.read_file(task, "/critical"))

    assert run(sim, proc()) == b"do not lose"
