"""Tests for images, registry, pools and the container engine."""

import pytest

from repro.common import units
from repro.common.errors import ConfigError
from repro.containers import (
    Container,
    ContainerPool,
    Image,
    Registry,
    debian_base,
    lighttpd_image,
)
from repro.hw import RamDisk
from repro.kernel import LocalFs
from repro.world import World
from tests.conftest import make_task, run


# --- images -----------------------------------------------------------------

def test_image_flat_merges_layers():
    image = Image("test", [
        {"/a": b"lower", "/b": b"keep"},
        {"/a": b"upper"},
    ])
    flat = image.flat()
    assert flat["/a"] == b"upper"
    assert flat["/b"] == b"keep"
    assert image.file_count == 2
    assert image.total_bytes == len(b"upper") + len(b"keep")


def test_debian_base_shape():
    image = debian_base(scale=1.0 / 1024)
    flat = image.flat()
    libs = [p for p in flat if p.startswith("/lib/")]
    confs = [p for p in flat if p.startswith("/etc/")]
    assert len(libs) >= 4
    assert len(confs) >= 40
    # Libraries are the big files, configs the small ones.
    assert max(len(flat[p]) for p in libs) > max(len(flat[p]) for p in confs)


def test_debian_base_deterministic():
    a = debian_base(scale=1.0 / 2048, seed=5)
    b = debian_base(scale=1.0 / 2048, seed=5)
    assert a.flat() == b.flat()


def test_lighttpd_image_extends_base():
    image = lighttpd_image(scale=1.0 / 2048)
    flat = image.flat()
    assert "/usr/sbin/lighttpd" in flat
    assert "/etc/lighttpd/lighttpd.conf" in flat
    assert any(p.startswith("/var/www/") for p in flat)
    assert any(p.startswith("/lib/") for p in flat)  # base retained


def test_registry_push_get():
    registry = Registry()
    image = debian_base(scale=1.0 / 4096)
    registry.push(image)
    assert registry.get(image.name) is image
    assert image.name in registry


def test_registry_materialize_writes_tree(sim, kernel, machine):
    fs = LocalFs(kernel, RamDisk(sim), name="reg")
    registry = Registry()
    image = Image("tiny", [{"/bin/sh": b"#!sh", "/etc/x/y.conf": b"k=v"}])
    registry.push(image)
    task = make_task(sim, machine)

    def proc():
        written = yield from registry.materialize(task, image, fs, "/img")
        sh = yield from fs.read_file(task, "/img/bin/sh")
        conf = yield from fs.read_file(task, "/img/etc/x/y.conf")
        return written, sh, conf

    written, sh, conf = run(sim, proc())
    assert written == image.total_bytes
    assert sh == b"#!sh"
    assert conf == b"k=v"


# --- pools -------------------------------------------------------------------

def test_pool_threads_confined_to_cpuset(sim, machine):
    pool = ContainerPool(sim, machine, "p", machine.cores[:2], units.gib(1))
    thread = pool.new_thread()
    assert set(thread.cpuset) == set(machine.cores[:2])
    task = pool.new_task()
    assert task.pool is pool


def test_pool_requires_cores(sim, machine):
    with pytest.raises(ConfigError):
        ContainerPool(sim, machine, "p", [], units.gib(1))


def test_pool_utilization_probe(sim, machine):
    pool = ContainerPool(sim, machine, "p", machine.cores[:2], units.gib(1))
    task = pool.new_task()

    def proc():
        yield from task.cpu(0.1)

    pool.probe.reset()
    run(sim, proc())
    assert pool.utilization() > 0


# --- engine --------------------------------------------------------------------

def test_engine_creates_disjoint_pools():
    world = World(num_cores=8)
    world.activate_cores(8)
    pools = world.engine.create_pools(3, num_cores=2, ram_bytes=units.gib(1))
    cores = [core for pool in pools for core in pool.cores]
    assert len(cores) == len(set(cores)) == 6


def test_engine_duplicate_pool_name_rejected():
    world = World(num_cores=8)
    world.engine.create_pool("same")
    with pytest.raises(ConfigError):
        world.engine.create_pool("same")


def test_container_wraps_mount():
    from repro.stacks import StackFactory

    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(4)
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    container = Container(pool, "c0", mount)
    assert container.fs is mount.fs
    assert container in pool.containers
    task = container.new_task()

    def proc():
        yield from container.fs.write_file(task, "/x", b"1")
        return (yield from container.fs.read_file(task, "/x"))

    assert run(world.sim, proc()) == b"1"
