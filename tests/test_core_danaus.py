"""Integration tests for the Danaus core: IPC, service, library."""

import pytest

from repro.cephclient import CephLibClient
from repro.common import units
from repro.common.errors import ConfigError, ServiceFailed
from repro.core import DanausIpc, FilesystemLibrary, FilesystemService
from repro.costs import CostModel
from repro.fs.api import OpenFlags
from repro.fs.prefix import SubtreeFs
from repro.hw import RamDisk
from repro.kernel import LocalFs
from repro.net import Fabric
from repro.storage import CephCluster
from tests.conftest import make_task, run


@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(256))


@pytest.fixture
def cluster(sim, costs):
    return CephCluster(sim, Fabric(sim), costs, num_osds=4)


def make_service(sim, machine, costs, cores=None, **kwargs):
    cores = cores if cores is not None else machine.activated
    return FilesystemService(sim, machine, costs, cores, **kwargs)


def make_client(sim, machine, cluster, costs, name="client"):
    account = machine.ram.child(units.mib(256), name + ".ram")
    return CephLibClient(
        sim, cluster, costs, account, machine.activated, name=name
    )


# --- IPC ------------------------------------------------------------------

def test_ipc_one_queue_per_core_group(sim, machine, costs):
    ipc = DanausIpc(sim, machine, costs, machine.cores[:4])
    assert len(ipc.queues) == 2  # 4 cores = 2 L2 pairs


def test_ipc_single_queue_mode(sim, machine, costs):
    ipc = DanausIpc(sim, machine, costs, machine.cores[:4], single_queue=True)
    assert len(ipc.queues) == 1


def test_ipc_requires_cores(sim, machine, costs):
    with pytest.raises(ConfigError):
        DanausIpc(sim, machine, costs, [])


def test_ipc_pins_thread_on_first_request(sim, machine, costs, kernel):
    service = make_service(sim, machine, costs, cores=machine.cores[:4])
    inner = LocalFs(kernel, RamDisk(sim), name="t")
    instance = service.mount("/", inner)
    task = make_task(sim, machine, cores=machine.cores[:4])
    assert len(task.thread.cpuset) == 4

    def proc():
        yield from service.call(
            task, instance, "open", ("/f", OpenFlags.CREAT | OpenFlags.RDWR, 0o644)
        )

    run(sim, proc())
    # After the first I/O the thread is confined to one queue's core group.
    assert len(task.thread.cpuset) == 2


# --- service ------------------------------------------------------------------

def test_service_executes_ops_at_user_level(sim, machine, kernel, costs, cluster):
    service = make_service(sim, machine, costs)
    client = make_client(sim, machine, cluster, costs)
    instance = service.mount("/", client)
    task = make_task(sim, machine)
    syscalls_before = kernel.metrics.counter("syscalls").value

    def proc():
        handle = yield from service.call(
            task, instance, "open", ("/f", OpenFlags.CREAT | OpenFlags.RDWR, 0o644)
        )
        yield from service.call(
            task, instance, "write", (handle, 0, b"user level"),
            payload_out=10,
        )
        data = yield from service.call(
            task, instance, "read", (handle, 0, 10), payload_in=10
        )
        yield from service.call(task, instance, "close", (handle,))
        return data

    assert run(sim, proc()) == b"user level"
    # The whole exchange bypassed the kernel: no syscalls were issued.
    assert kernel.metrics.counter("syscalls").value == syscalls_before


def test_service_crash_contained_to_its_pool(sim, machine, kernel, costs, cluster):
    service_a = make_service(sim, machine, costs, name="svc-a")
    service_b = make_service(sim, machine, costs, name="svc-b")
    client_a = make_client(sim, machine, cluster, costs, name="ca")
    client_b = make_client(sim, machine, cluster, costs, name="cb")
    instance_a = service_a.mount("/", SubtreeFs(client_a, "/a"))
    instance_b = service_b.mount("/", SubtreeFs(client_b, "/b"))
    task = make_task(sim, machine)

    def proc():
        yield from client_a.makedirs(task, "/a")
        yield from client_b.makedirs(task, "/b")
        yield from service_b.call(
            task, instance_b, "open", ("/ok", OpenFlags.CREAT | OpenFlags.RDWR, 0o644)
        )
        service_a.crash()
        with pytest.raises(ServiceFailed):
            yield from service_a.call(
                task, instance_a, "open",
                ("/f", OpenFlags.CREAT | OpenFlags.RDWR, 0o644),
            )
        # Service B and the host kernel are unaffected.
        handle = yield from service_b.call(
            task, instance_b, "open", ("/ok2", OpenFlags.CREAT | OpenFlags.RDWR, 0o644)
        )
        yield from service_b.call(task, instance_b, "close", (handle,))
        return True

    assert run(sim, proc())


def test_service_scales_threads_under_backlog(sim, machine, kernel, costs):
    service = make_service(
        sim, machine, costs, cores=machine.cores[:2], single_queue=True
    )
    inner = LocalFs(kernel, RamDisk(sim), name="busy")
    instance = service.mount("/", inner)
    payload = b"w" * units.kib(64)

    def writer(index):
        task = make_task(sim, machine, "w%d" % index, cores=machine.cores[:2])
        handle = yield from service.call(
            task, instance, "open",
            ("/f%d" % index, OpenFlags.CREAT | OpenFlags.WRONLY, 0o644),
        )
        for block in range(8):
            yield from service.call(
                task, instance, "write",
                (handle, block * len(payload), payload),
                payload_out=len(payload),
            )
        yield from service.call(task, instance, "close", (handle,))

    for index in range(24):
        sim.spawn(writer(index))
    sim.run(until=120)
    assert service.metrics.counter("ops_served").value >= 24 * 10 - 24
    assert service.metrics.counter("extra_threads").value >= 1


# --- library -----------------------------------------------------------------------

def test_library_routes_danaus_and_kernel_paths(sim, machine, kernel, costs, cluster):
    service = make_service(sim, machine, costs)
    client = make_client(sim, machine, cluster, costs)
    instance = service.mount("/data", client)
    local = LocalFs(kernel, RamDisk(sim), name="rootfs")
    kernel.vfs.mount("/", local)
    library = FilesystemLibrary(kernel, name="app")
    library.attach("/data", service, instance)
    task = make_task(sim, machine)

    def proc():
        yield from library.write_file(task, "/data/f", b"via danaus")
        yield from library.write_file(task, "/tmp-file", b"via kernel")
        danaus_data = yield from library.read_file(task, "/data/f")
        kernel_data = yield from library.read_file(task, "/tmp-file")
        return danaus_data, kernel_data

    danaus_data, kernel_data = run(sim, proc())
    assert danaus_data == b"via danaus"
    assert kernel_data == b"via kernel"
    assert library.metrics.counter("danaus_opens").value == 2  # write + read
    # The kernel-path file exists on the local fs, the Danaus one on Ceph.
    assert local.tree.try_lookup("/tmp-file") is not None


def test_library_fds_are_disjoint_from_kernel_fds(sim, machine, kernel, costs, cluster):
    service = make_service(sim, machine, costs)
    client = make_client(sim, machine, cluster, costs)
    instance = service.mount("/data", client)
    library = FilesystemLibrary(kernel, name="fd")
    library.attach("/data", service, instance)
    task = make_task(sim, machine)

    def proc():
        handle = yield from library.open(
            task, "/data/f", OpenFlags.CREAT | OpenFlags.RDWR
        )
        fd = handle.fd
        yield from library.close(task, handle)
        return fd

    fd = run(sim, proc())
    assert fd >= 1 << 16  # private descriptor space


def test_library_close_releases_fd(sim, machine, kernel, costs, cluster):
    from repro.common.errors import BadFileDescriptor

    service = make_service(sim, machine, costs)
    client = make_client(sim, machine, cluster, costs)
    instance = service.mount("/data", client)
    library = FilesystemLibrary(kernel, name="fd2")
    library.attach("/data", service, instance)
    task = make_task(sim, machine)

    def proc():
        handle = yield from library.open(
            task, "/data/f", OpenFlags.CREAT | OpenFlags.RDWR
        )
        yield from library.close(task, handle)
        with pytest.raises(BadFileDescriptor):
            yield from library.read(task, handle, 0, 1)
        return len(library.files)

    assert run(sim, proc()) == 0


def test_library_exec_read_uses_kernel_path(sim, machine, kernel, costs):
    local = LocalFs(kernel, RamDisk(sim), name="rootfs")
    kernel.vfs.mount("/", local)
    library = FilesystemLibrary(kernel, name="exec")
    task = make_task(sim, machine)

    def proc():
        yield from kernel.vfs.write_file(task, "/bin-sh", b"#!binary")
        syscalls_before = kernel.metrics.counter("syscalls").value
        data = yield from library.exec_read(task, "/bin-sh")
        syscalls_after = kernel.metrics.counter("syscalls").value
        return data, syscalls_after - syscalls_before

    data, syscalls = run(sim, proc())
    assert data == b"#!binary"
    assert syscalls > 0
    assert library.metrics.counter("legacy_reads").value == 1
