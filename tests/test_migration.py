"""Tests for container migration between pools and hosts (§9)."""

import pytest

from repro.common import units
from repro.containers import Container, migrate_container
from repro.fs.api import OpenFlags
from repro.stacks import StackFactory
from repro.world import World
from tests.conftest import run


@pytest.fixture
def world():
    world = World(num_cores=8, ram_bytes=units.gib(16))
    world.activate_cores(8)
    return world


def launch(world, pool, cid="c0"):
    mount = StackFactory(world, pool, "D").mount_root(cid)
    return Container(pool, cid, mount)


def test_migration_preserves_data_across_pools(world):
    source = world.engine.create_pool("src", num_cores=2,
                                      ram_bytes=units.gib(2))
    target = world.engine.create_pool("dst", num_cores=2,
                                      ram_bytes=units.gib(2))
    container = launch(world, source)
    task = container.new_task()

    def proc():
        yield from container.fs.write_file(
            task, "/state.db", b"precious tenant state"
        )
        report = yield from migrate_container(world, container, target)
        new_task = report.container.new_task()
        data = yield from report.container.fs.read_file(new_task, "/state.db")
        return report, data

    report, data = run(world.sim, proc())
    assert data == b"precious tenant state"
    assert report.container.pool is target
    assert container not in source.containers
    assert report.flushed_bytes >= len(b"precious tenant state")
    assert report.downtime > 0


def test_migration_moves_execution_to_target_cores(world):
    source = world.engine.create_pool("src", num_cores=2,
                                      ram_bytes=units.gib(2))
    target = world.engine.create_pool("dst", num_cores=2,
                                      ram_bytes=units.gib(2))
    container = launch(world, source)

    def proc():
        task = container.new_task()
        yield from container.fs.write_file(task, "/f", b"x" * units.kib(64))
        report = yield from migrate_container(world, container, target)
        target.probe.reset()
        new_task = report.container.new_task()
        yield from report.container.fs.read_file(new_task, "/f")
        return target.utilization()

    util = run(world.sim, proc())
    assert util > 0  # I/O now runs on the destination pool's cores


def test_migration_across_hosts(world):
    """The §9 scenario proper: a second host adopts the container."""
    host_b = world.add_host("client-b", num_cores=8, ram_bytes=units.gib(16))
    host_b.activate_cores(4)
    source = world.engine.create_pool("src", num_cores=2,
                                      ram_bytes=units.gib(2))
    target = host_b.engine.create_pool("dst", num_cores=2,
                                       ram_bytes=units.gib(2))
    container = launch(world, source)

    def proc():
        task = container.new_task()
        yield from container.fs.makedirs(task, "/var")
        yield from container.fs.write_file(task, "/var/journal", b"entries" * 100)
        report = yield from migrate_container(world, container, target)
        new_task = report.container.new_task()
        data = yield from report.container.fs.read_file(
            new_task, "/var/journal"
        )
        return report, data

    report, data = run(world.sim, proc())
    assert data == b"entries" * 100
    assert report.container.pool.machine is host_b.machine
    # The new mount's client runs against the second host's kernel-free
    # user-level stack; its service is owned by the destination pool.
    assert report.container.mount.service in target.services


def test_migration_after_source_service_crash(world):
    """Migration doubles as recovery: a dead source service is fine as
    long as the flushed state already reached the cluster."""
    source = world.engine.create_pool("src", num_cores=2,
                                      ram_bytes=units.gib(2))
    target = world.engine.create_pool("dst", num_cores=2,
                                      ram_bytes=units.gib(2))
    container = launch(world, source)

    def proc():
        task = container.new_task()
        handle = yield from container.fs.open(
            task, "/data", OpenFlags.CREAT | OpenFlags.RDWR
        )
        yield from container.fs.write(task, handle, 0, b"durable")
        yield from container.fs.fsync(task, handle)
        yield from container.fs.close(task, handle)
        container.mount.service.crash()
        report = yield from migrate_container(world, container, target)
        new_task = report.container.new_task()
        return (yield from report.container.fs.read_file(new_task, "/data"))

    assert run(world.sim, proc()) == b"durable"


def test_two_hosts_have_independent_kernels(world):
    host_b = world.add_host("client-b", num_cores=4, ram_bytes=units.gib(8))
    assert world.kernel_for(world.machine) is world.kernel
    assert world.kernel_for(host_b.machine) is host_b.kernel
    assert world.kernel is not host_b.kernel
    with pytest.raises(Exception):
        world.add_host("client-b")  # duplicate name
