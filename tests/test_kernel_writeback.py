"""Unit tests for the writeback daemon and the kernel workqueue."""

import pytest

from repro.common import units
from repro.costs import CostModel
from repro.hw import Machine, RamDisk
from repro.kernel import HostKernel, LocalFs
from repro.kernel.host import Workqueue
from repro.sim import UtilizationProbe
from tests.conftest import make_task, run


def test_flushers_steal_any_activated_core(sim):
    """Flusher work lands on cores outside the writer's cpuset."""
    machine = Machine(sim, num_cores=4, ram_bytes=units.gib(4))
    machine.activate_cores(4)
    kernel = HostKernel(sim, machine, costs=CostModel(
        writeback_interval=0.05, expire_interval=0.1,
    ))
    fs = LocalFs(kernel, RamDisk(sim), name="wb")
    writer_cores = machine.cores[:2]
    neighbor_cores = machine.cores[2:4]
    task = make_task(sim, machine, cores=writer_cores)
    probe = UtilizationProbe(sim, neighbor_cores)

    def proc():
        for index in range(20):
            yield from fs.write_file(
                task, "/f%d" % index, b"w" * units.kib(256)
            )
            yield sim.timeout(0.02)

    run(sim, proc(), until=100)
    sim.run(until=sim.now + 5)
    assert kernel.writeback.pages_flushed > 0
    # Some flusher CPU executed on the neighbour cores.
    neighbor_busy = sum(core.busy_time for core in neighbor_cores)
    assert neighbor_busy > 0


def test_dirty_throttling_blocks_writers(sim, machine):
    costs = CostModel(writeback_interval=0.5, expire_interval=5.0)
    kernel = HostKernel(sim, machine, costs=costs)
    # Back the fs with a very slow device so flushing cannot keep up.
    from repro.hw import Disk

    slow = Disk(sim, bandwidth=units.mib(1), seq_position_time=0)
    fs = LocalFs(kernel, slow, name="slow")
    account = machine.ram.child(units.mib(64), "w.ram")

    class FakePool:
        ram = account

    kernel.writeback.set_max_dirty(account, units.kib(256))
    task = make_task(sim, machine)
    task.pool = FakePool()

    def proc():
        start = sim.now
        yield from fs.write_file(task, "/f", b"x" * units.mib(1))
        return sim.now - start

    elapsed = run(sim, proc(), until=3000)
    # 1 MiB at a 256 KiB dirty cap over a 1 MiB/s device: the writer must
    # have spent most of the time throttled behind the flusher.
    assert elapsed > 0.5
    assert kernel.metrics.counter("wb.throttle_waits").value > 0


def test_fsync_uses_caller_not_flushers(sim, machine, kernel):
    fs = LocalFs(kernel, RamDisk(sim), name="sync")
    task = make_task(sim, machine)

    def proc():
        from repro.fs.api import OpenFlags

        handle = yield from fs.open(task, "/f", OpenFlags.CREAT | OpenFlags.RDWR)
        yield from fs.write(task, handle, 0, b"d" * units.kib(64))
        before = kernel.writeback.pages_flushed
        yield from fs.fsync(task, handle)
        yield from fs.close(task, handle)
        return before

    run(sim, proc(), until=0.9)  # before the 1 s writeback interval
    assert kernel.page_cache.dirty_bytes == 0


def test_workqueue_executes_and_counts(sim, machine):
    costs = CostModel()
    wq = Workqueue(sim, machine, costs)

    def proc():
        start = sim.now
        yield from wq.execute(0.01)
        return sim.now - start

    elapsed = run(sim, proc())
    assert elapsed >= 0.01
    assert wq.items_done == 1


def test_workqueue_zero_work_is_free(sim, machine):
    wq = Workqueue(sim, machine, CostModel())

    def proc():
        yield from wq.execute(0)
        return sim.now

    assert run(sim, proc()) == 0
    assert wq.items_done == 0


def test_workqueue_parallelism_bounded_by_workers(sim, machine):
    costs = CostModel(nr_kworkers=2)
    wq = Workqueue(sim, machine, costs)
    finish = []

    def proc():
        yield from wq.execute(0.01)
        finish.append(sim.now)

    for _ in range(4):
        sim.spawn(proc())
    sim.run(until=10)
    assert len(finish) == 4
    # 4 items of 10ms across 2 workers: about two waves.
    assert max(finish) == pytest.approx(0.02, rel=0.3)


def test_workqueue_follows_activation(sim):
    machine = Machine(sim, num_cores=8, ram_bytes=units.gib(4))
    machine.activate_cores(8)
    wq = Workqueue(sim, machine, CostModel())
    machine.activate_cores(2)

    def proc():
        yield from wq.execute(0.05)

    run(sim, proc())
    busy_outside = sum(core.busy_time for core in machine.cores[2:])
    assert busy_outside == pytest.approx(0.0, abs=1e-9)
