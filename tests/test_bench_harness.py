"""Unit tests for the experiment harness and the workload registry."""

import pytest

from repro.bench import COMPOSITES, WORKLOADS, describe, workload_class
from repro.bench.harness import ExperimentResult
from repro.workloads import Fileserver


def test_result_rows_and_columns():
    result = ExperimentResult("x", "test")
    result.add_row(symbol="D", value=1.0)
    result.add_row(symbol="K", value=2.0)
    assert result.column("value") == [1.0, 2.0]
    assert result.rows_where(symbol="K")[0]["value"] == 2.0


def test_result_value_unique_match():
    result = ExperimentResult("x", "test")
    result.add_row(symbol="D", n=1, value=1.0)
    result.add_row(symbol="D", n=2, value=2.0)
    assert result.value("value", symbol="D", n=2) == 2.0
    with pytest.raises(KeyError):
        result.value("value", symbol="D")  # ambiguous
    with pytest.raises(KeyError):
        result.value("value", symbol="Z")  # no match


def test_result_table_renders_all_columns():
    result = ExperimentResult("x", "test")
    result.add_row(a=1, b="hi")
    result.add_row(a=2, c=3.14159)
    table = result.table()
    assert "a" in table and "b" in table and "c" in table
    assert "3.14" in table


def test_result_report_includes_expectation_and_notes():
    result = ExperimentResult("figX", "demo", paper_expectation="D wins")
    result.add_row(v=1)
    result.note("extra context")
    report = result.report()
    assert "figX" in report
    assert "D wins" in report
    assert "extra context" in report


def test_empty_result_table():
    assert ExperimentResult("x", "t").table() == "(no rows)"


def test_registry_has_all_table2_symbols():
    for symbol in ("FLS", "RND", "SSB", "WBS"):
        assert symbol in WORKLOADS
    assert "X+Y" in COMPOSITES


def test_registry_lookup():
    assert "Fileserver" in describe("FLS")
    assert workload_class("FLS") is Fileserver
    assert "next to" in describe("X+Y")
