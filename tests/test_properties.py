"""Property-based tests on core data structures (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import derive, make_rng, pseudo_bytes
from repro.fs import MemTree, pathutil
from repro.hw import RamAccount
from repro.kernel import PageCache
from repro.storage import CrushMap


# --- pathutil ---------------------------------------------------------------

path_segments = st.lists(
    st.text(alphabet="abcxyz.", min_size=1, max_size=4).filter(
        lambda s: s not in (".", "..")
    ),
    min_size=0, max_size=6,
)


@given(path_segments)
def test_property_normalize_idempotent(segments):
    path = "/" + "/".join(segments)
    once = pathutil.normalize(path)
    assert pathutil.normalize(once) == once


@given(path_segments)
def test_property_split_join_roundtrip(segments):
    path = pathutil.normalize("/" + "/".join(segments))
    parent, name = pathutil.split(path)
    if name:
        assert pathutil.join(parent, name) == path
    assert pathutil.is_ancestor(parent, path)


@given(path_segments, path_segments)
def test_property_relative_to_inverts_join(base_segments, rel_segments):
    base = pathutil.normalize("/" + "/".join(base_segments))
    joined = pathutil.join(base, *rel_segments) if rel_segments else base
    rel = pathutil.relative_to(base, joined)
    assert pathutil.join(base, rel.lstrip("/") or ".") == joined


# --- MemTree vs a flat-dict reference model ---------------------------------

@st.composite
def tree_ops(draw):
    names = ("a", "b", "c")
    count = draw(st.integers(min_value=1, max_value=20))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(["create", "write", "unlink", "mkdir"]))
        name = draw(st.sampled_from(names))
        depth = draw(st.integers(min_value=0, max_value=1))
        parent = "/d" if depth else ""
        ops.append((kind, parent + "/" + name))
    return ops


@settings(max_examples=150, deadline=None)
@given(tree_ops())
def test_property_memtree_matches_dict_model(ops):
    from repro.common.errors import FsError

    tree = MemTree()
    tree.mkdir("/d")
    model = {}  # path -> bytes (files only)
    for kind, path in ops:
        try:
            if kind == "create":
                node = tree.create_file(path)
                model.setdefault(path, bytes(node.data))
            elif kind == "write":
                node = tree.create_file(path)
                tree.write_node(node, 0, b"data:" + path.encode())
                model[path] = b"data:" + path.encode()
            elif kind == "unlink":
                tree.unlink(path)
                model.pop(path, None)
            elif kind == "mkdir":
                tree.mkdir(path)
        except FsError:
            continue  # both models treat conflicts as no-ops
    for path, expected in model.items():
        node = tree.try_lookup(path)
        assert node is not None
        if expected:
            assert node.read(0, len(expected)) == expected
    # Space accounting equals the sum of live file sizes.
    live = sum(
        node.size for _p, node in tree.walk("/") if not node.is_dir
    )
    assert tree.total_bytes == live


# --- CRUSH placement ----------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=10 ** 9),
    st.integers(min_value=0, max_value=10 ** 6),
)
def test_property_crush_valid_and_stable(num_osds, replicas, ino, index):
    if replicas > num_osds:
        replicas = num_osds
    crush = CrushMap(num_osds, replicas=replicas)
    placement = crush.placement(ino, index)
    assert len(placement) == replicas
    assert len(set(placement)) == replicas
    assert all(0 <= osd < num_osds for osd in placement)
    assert placement == crush.placement(ino, index)


# --- page cache memory accounting ----------------------------------------------

@st.composite
def cache_ops(draw):
    count = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for _ in range(count):
        kind = draw(st.sampled_from(["insert", "dirty", "clean", "drop"]))
        key = draw(st.sampled_from(["f", "g"]))
        page = draw(st.integers(min_value=0, max_value=8))
        ops.append((kind, key, page))
    return ops


@settings(max_examples=150, deadline=None)
@given(cache_ops())
def test_property_pagecache_accounting_invariants(ops):
    page_size = 4096
    ram = RamAccount(1 << 20, name="prop-ram")
    cache = PageCache(page_size, ram)
    for kind, key, page in ops:
        cf = cache.file(key)
        offset = page * page_size
        if kind == "insert":
            cache.insert(cf, offset, page_size, ram)
        elif kind == "dirty":
            cache.mark_dirty(cf, offset, page_size, now=0.0, account=ram)
        elif kind == "clean":
            cache.clean(cf, [page])
        elif kind == "drop":
            cache.drop_file(key)
        # Invariants after every step:
        total_pages = sum(
            len(file.pages) for file in cache._files.values()
        )
        dirty_pages = sum(
            len(file.dirty_pages) for file in cache._files.values()
        )
        assert ram.used == total_pages * page_size
        assert cache.dirty_bytes == dirty_pages * page_size
        assert cache.dirty_bytes <= ram.used
        # per-account dirty sums to the global dirty figure
        assert cache.account_dirty(ram) == cache.dirty_bytes


# --- deterministic rng ------------------------------------------------------------

@given(st.integers(), st.text(max_size=8))
def test_property_derive_is_stable_and_label_sensitive(seed, label):
    assert derive(seed, label) == derive(seed, label)
    assert derive(seed, label) != derive(seed, label + "x")


@given(st.integers(min_value=0, max_value=4096), st.integers())
def test_property_pseudo_bytes_length_and_determinism(size, seed):
    data = pseudo_bytes(size, seed)
    assert len(data) == size
    assert data == pseudo_bytes(size, seed)


@given(st.integers())
def test_property_make_rng_streams_independent(seed):
    a = make_rng(seed, "a").random()
    b = make_rng(seed, "b").random()
    assert make_rng(seed, "a").random() == a
    assert a != b


# --- monitor epoch monotonicity vs a reference model -------------------------

monitor_ops = st.lists(
    st.tuples(
        st.sampled_from(["down", "up", "report"]),
        st.integers(min_value=0, max_value=3),
    ),
    max_size=40,
)


@given(monitor_ops)
@settings(max_examples=60, deadline=None)
def test_property_monitor_epoch_monotonic(ops):
    """The OSD map epoch never decreases and bumps exactly on transitions."""
    from repro.costs import CostModel
    from repro.net import Fabric
    from repro.sim import Simulator
    from repro.storage import CephCluster

    sim = Simulator()
    costs = CostModel()
    cluster = CephCluster(sim, Fabric(sim), costs, num_osds=4, replicas=2)
    monitor = cluster.monitor

    down = set()
    reports = {}
    expected = monitor.epoch
    for op, osd in ops:
        before = monitor.epoch
        if op == "down":
            monitor.mark_down(osd)
            if osd not in down:
                down.add(osd)
                expected += 1
        elif op == "up":
            monitor.mark_up(osd)
            reports.pop(osd, None)
            if osd in down:
                down.remove(osd)
                expected += 1
        else:
            monitor.report_failure(osd)
            if osd not in down:
                reports[osd] = reports.get(osd, 0) + 1
                if reports[osd] >= costs.osd_failure_reports:
                    reports.pop(osd)
                    down.add(osd)
                    expected += 1
        assert monitor.epoch >= before
        assert monitor.epoch == expected
        assert {o for o in range(4) if not monitor.is_up(o)} == down
