"""Tests for the dynamic memory rebalancer (§9 extension)."""

import pytest

from repro.common import units
from repro.common.errors import ConfigError
from repro.containers.rebalance import MemoryRebalancer
from repro.world import World


@pytest.fixture
def world():
    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(8)
    return world


def make_pools(world, count=2, ram=units.mib(100)):
    return [
        world.engine.create_pool("p%d" % index, num_cores=2, ram_bytes=ram)
        for index in range(count)
    ]


def test_idle_donor_feeds_pressured_receiver(world):
    cold, hot = make_pools(world)
    rebalancer = MemoryRebalancer(world.sim, [cold, hot])
    hot.ram.charge(units.mib(90))  # 90% used: pressured
    moved = rebalancer.rebalance_once()
    assert moved > 0
    assert hot.ram.capacity > units.mib(100)
    assert cold.ram.capacity < units.mib(100)


def test_guarantee_floor_is_never_violated(world):
    cold, hot = make_pools(world)
    rebalancer = MemoryRebalancer(
        world.sim, [cold, hot], guarantee_fraction=0.8
    )
    hot.ram.charge(units.mib(95))
    for _ in range(50):
        rebalancer.rebalance_once()
    assert cold.ram.capacity >= units.mib(80)  # the SLA floor


def test_donor_never_shrinks_below_usage(world):
    cold, hot = make_pools(world)
    cold.ram.charge(units.mib(40))  # in use, though below donor threshold
    rebalancer = MemoryRebalancer(
        world.sim, [cold, hot], guarantee_fraction=0.1
    )
    hot.ram.charge(units.mib(90))
    for _ in range(50):
        rebalancer.rebalance_once()
    assert cold.ram.capacity >= cold.ram.used


def test_no_move_without_pressure(world):
    a, b = make_pools(world)
    rebalancer = MemoryRebalancer(world.sim, [a, b])
    assert rebalancer.rebalance_once() == 0
    assert a.ram.capacity == b.ram.capacity == units.mib(100)


def test_background_loop_runs(world):
    cold, hot = make_pools(world)
    MemoryRebalancer(world.sim, [cold, hot], interval=0.5)
    hot.ram.charge(units.mib(90))
    world.sim.run(until=2.0)
    assert hot.ram.capacity > units.mib(100)


def test_invalid_guarantee_rejected(world):
    pools = make_pools(world)
    with pytest.raises(ConfigError):
        MemoryRebalancer(world.sim, pools, guarantee_fraction=0.0)


def test_extra_capacity_is_actually_usable(world):
    """The receiver can charge beyond its original reservation."""
    cold, hot = make_pools(world)
    rebalancer = MemoryRebalancer(world.sim, [cold, hot])
    hot.ram.charge(units.mib(90))
    rebalancer.rebalance_once()
    headroom = hot.ram.capacity - hot.ram.used
    assert headroom > units.mib(5)
    hot.ram.charge(units.mib(12))  # would have OOMed before the move
    assert hot.ram.used == units.mib(102)
