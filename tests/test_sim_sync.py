"""Unit tests for Mutex, Semaphore and Store primitives."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Mutex, Semaphore, Store


# --- Mutex ----------------------------------------------------------------

def test_mutex_uncontended_acquire_is_immediate(sim):
    lock = Mutex(sim)

    def proc():
        yield lock.acquire()
        held_at = sim.now
        lock.release()
        return held_at

    assert sim.run_process(proc()) == 0


def test_mutex_excludes_and_fifo_orders(sim):
    lock = Mutex(sim)
    order = []

    def proc(tag, hold):
        yield lock.acquire()
        order.append(("in", tag, sim.now))
        yield sim.timeout(hold)
        order.append(("out", tag, sim.now))
        lock.release()

    sim.spawn(proc("a", 2))
    sim.spawn(proc("b", 1))
    sim.spawn(proc("c", 1))
    sim.run()
    assert order == [
        ("in", "a", 0),
        ("out", "a", 2),
        ("in", "b", 2),
        ("out", "b", 3),
        ("in", "c", 3),
        ("out", "c", 4),
    ]


def test_mutex_wait_and_hold_stats(sim):
    lock = Mutex(sim)

    def holder():
        yield lock.acquire()
        yield sim.timeout(4)
        lock.release()

    def waiter():
        yield sim.timeout(1)
        yield lock.acquire()
        yield sim.timeout(2)
        lock.release()

    sim.spawn(holder())
    sim.spawn(waiter())
    sim.run()
    stats = lock.stats
    assert stats.acquisitions == 2
    assert stats.contended == 1
    assert stats.total_wait == pytest.approx(3)  # waiter queued t=1..4
    assert stats.total_hold == pytest.approx(6)  # 4 + 2
    assert stats.avg_wait == pytest.approx(1.5)
    assert stats.avg_hold == pytest.approx(3)


def test_mutex_release_unheld_raises(sim):
    lock = Mutex(sim)
    with pytest.raises(SimulationError):
        lock.release()


def test_lockstats_merge(sim):
    a = Mutex(sim).stats
    b = Mutex(sim).stats
    a.record_wait(1.0)
    a.record_hold(2.0)
    b.record_wait(0.0)
    b.record_hold(4.0)
    a.merge(b)
    assert a.acquisitions == 2
    assert a.total_hold == pytest.approx(6.0)
    assert a.max_hold == pytest.approx(4.0)


# --- Semaphore --------------------------------------------------------------

def test_semaphore_allows_capacity_concurrency(sim):
    sem = Semaphore(sim, 2)
    active = []
    peak = []

    def proc():
        yield sem.acquire()
        active.append(1)
        peak.append(len(active))
        yield sim.timeout(1)
        active.pop()
        sem.release()

    for _ in range(5):
        sim.spawn(proc())
    sim.run()
    assert max(peak) == 2
    assert sim.now == pytest.approx(3)  # 5 jobs, 2 at a time, 1s each


def test_semaphore_over_release_raises(sim):
    sem = Semaphore(sim, 1)
    with pytest.raises(SimulationError):
        sem.release()


def test_semaphore_zero_capacity_blocks(sim):
    sem = Semaphore(sim, 0)
    done = []

    def proc():
        yield sem.acquire()
        done.append(sim.now)

    def releaser():
        yield sim.timeout(2)
        sem._available += 1  # hand a unit directly
        sem._available -= 1
        sem._waiters.popleft().succeed()

    sim.spawn(proc())
    sim.spawn(releaser())
    sim.run()
    assert done == [2]


# --- Store ------------------------------------------------------------------

def test_store_put_then_get(sim):
    store = Store(sim)

    def proc():
        yield store.put("x")
        value = yield store.get()
        return value

    assert sim.run_process(proc()) == "x"


def test_store_get_blocks_until_put(sim):
    store = Store(sim)

    def consumer():
        value = yield store.get()
        return value, sim.now

    def producer():
        yield sim.timeout(3)
        yield store.put("late")

    proc = sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert proc.value == ("late", 3)


def test_store_fifo_order(sim):
    store = Store(sim)
    got = []

    def consumer():
        for _ in range(3):
            value = yield store.get()
            got.append(value)

    def producer():
        for item in ("a", "b", "c"):
            yield store.put(item)

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == ["a", "b", "c"]


def test_store_bounded_put_blocks(sim):
    store = Store(sim, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        times.append(("a", sim.now))
        yield store.put("b")
        times.append(("b", sim.now))

    def consumer():
        yield sim.timeout(5)
        yield store.get()
        yield store.get()

    sim.spawn(producer())
    sim.spawn(consumer())
    sim.run()
    assert times == [("a", 0), ("b", 5)]


def test_store_try_get(sim):
    store = Store(sim)
    assert store.try_get() == (False, None)
    store.put("v")
    sim.run()
    ok, value = store.try_get()
    assert ok and value == "v"
