"""Unit and property tests for the dirty extent buffer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cephclient import ExtentBuffer
from repro.common.errors import InvalidArgument


def test_empty_buffer_is_falsy():
    buffer = ExtentBuffer()
    assert not buffer
    assert buffer.dirty_bytes == 0
    assert buffer.max_end() == 0


def test_single_write():
    buffer = ExtentBuffer()
    buffer.write(10, b"abc")
    assert buffer.dirty_bytes == 3
    assert buffer.extents() == [(10, b"abc")]
    assert buffer.max_end() == 13


def test_disjoint_writes_stay_separate():
    buffer = ExtentBuffer()
    buffer.write(0, b"aa")
    buffer.write(10, b"bb")
    assert buffer.extents() == [(0, b"aa"), (10, b"bb")]
    assert buffer.dirty_bytes == 4


def test_overlapping_writes_merge():
    buffer = ExtentBuffer()
    buffer.write(0, b"aaaa")
    buffer.write(2, b"bbbb")
    assert buffer.extents() == [(0, b"aabbbb")]
    assert buffer.dirty_bytes == 6


def test_adjacent_writes_merge():
    buffer = ExtentBuffer()
    buffer.write(0, b"aa")
    buffer.write(2, b"bb")
    assert buffer.extents() == [(0, b"aabb")]


def test_write_bridging_extents():
    buffer = ExtentBuffer()
    buffer.write(0, b"aa")
    buffer.write(6, b"cc")
    buffer.write(1, b"bbbbbb")  # covers the gap and both edges
    assert buffer.extents() == [(0, b"abbbbbbc")]
    assert buffer.dirty_bytes == 8


def test_later_write_wins():
    buffer = ExtentBuffer()
    buffer.write(0, b"xxxx")
    buffer.write(1, b"YY")
    assert buffer.extents() == [(0, b"xYYx")]


def test_negative_offset_rejected():
    with pytest.raises(InvalidArgument):
        ExtentBuffer().write(-1, b"a")


def test_empty_write_is_noop():
    buffer = ExtentBuffer()
    buffer.write(5, b"")
    assert not buffer


def test_overlay_applies_dirty_data():
    buffer = ExtentBuffer()
    buffer.write(2, b"XY")
    assert buffer.overlay(0, 6, b"aaaaaa") == b"aaXYaa"


def test_overlay_extends_past_base():
    buffer = ExtentBuffer()
    buffer.write(4, b"ZZ")
    assert buffer.overlay(0, 6, b"ab") == b"ab\x00\x00ZZ"


def test_overlay_window_clips_extent():
    buffer = ExtentBuffer()
    buffer.write(0, b"ABCDEF")
    assert buffer.overlay(2, 2, b"xy") == b"CD"


def test_take_all():
    buffer = ExtentBuffer()
    buffer.write(0, b"aa")
    buffer.write(10, b"bb")
    taken = buffer.take()
    assert taken == [(0, b"aa"), (10, b"bb")]
    assert not buffer
    assert buffer.dirty_bytes == 0


def test_take_respects_budget():
    buffer = ExtentBuffer()
    buffer.write(0, b"aaaa")
    buffer.write(10, b"bbbb")
    taken = buffer.take(max_bytes=4)
    assert taken == [(0, b"aaaa")]
    assert buffer.extents() == [(10, b"bbbb")]


def test_take_returns_at_least_one_extent():
    buffer = ExtentBuffer()
    buffer.write(0, b"a" * 100)
    taken = buffer.take(max_bytes=1)
    assert taken == [(0, b"a" * 100)]


def test_clear():
    buffer = ExtentBuffer()
    buffer.write(0, b"data")
    buffer.clear()
    assert not buffer
    assert buffer.dirty_bytes == 0


# --- property tests: the buffer must behave exactly like a sparse file -------

@st.composite
def write_sequences(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    writes = []
    for _ in range(count):
        offset = draw(st.integers(min_value=0, max_value=64))
        size = draw(st.integers(min_value=1, max_value=32))
        byte = draw(st.integers(min_value=1, max_value=255))
        writes.append((offset, bytes([byte]) * size))
    return writes


@settings(max_examples=200, deadline=None)
@given(write_sequences())
def test_property_buffer_matches_reference_model(writes):
    """The extent buffer's overlay equals a flat reference byte array."""
    buffer = ExtentBuffer()
    reference = bytearray()
    written = set()
    for offset, data in writes:
        buffer.write(offset, data)
        end = offset + len(data)
        if end > len(reference):
            reference.extend(b"\x00" * (end - len(reference)))
        reference[offset:end] = data
        written.update(range(offset, end))
    window = len(reference) + 8
    overlay = buffer.overlay(0, window, b"\x00" * window)
    for position in written:
        assert overlay[position] == reference[position]
    # Dirty byte accounting covers at least every written position and the
    # extents are sorted and non-overlapping.
    extents = buffer.extents()
    assert buffer.dirty_bytes == sum(len(d) for _o, d in extents)
    previous_end = -1
    for offset, data in extents:
        assert offset > previous_end
        previous_end = offset + len(data) - 1


@settings(max_examples=100, deadline=None)
@given(write_sequences(), st.integers(min_value=1, max_value=64))
def test_property_take_preserves_content(writes, budget):
    """Draining via take() reproduces the same bytes as overlay()."""
    buffer = ExtentBuffer()
    for offset, data in writes:
        buffer.write(offset, data)
    window = buffer.max_end()
    expected = buffer.overlay(0, window, b"\x00" * window)
    rebuilt = bytearray(window)
    while buffer:
        for offset, data in buffer.take(max_bytes=budget):
            rebuilt[offset:offset + len(data)] = data
    assert bytes(rebuilt) == expected


def test_truncate_drops_tail_keeps_head():
    buffer = ExtentBuffer()
    buffer.write(0, b"abcdef")
    buffer.write(10, b"gone")
    freed = buffer.truncate(4)
    assert freed == 2 + 4  # 'ef' plus the whole tail extent
    assert buffer.extents() == [(0, b"abcd")]
    assert buffer.dirty_bytes == 4


def test_truncate_beyond_end_is_noop():
    buffer = ExtentBuffer()
    buffer.write(0, b"abc")
    assert buffer.truncate(10) == 0
    assert buffer.extents() == [(0, b"abc")]


def test_truncate_to_zero_clears():
    buffer = ExtentBuffer()
    buffer.write(5, b"xyz")
    assert buffer.truncate(0) == 3
    assert not buffer


@settings(max_examples=100, deadline=None)
@given(write_sequences(), st.integers(min_value=0, max_value=80))
def test_property_truncate_matches_reference(writes, cut):
    """truncate(size) leaves exactly the bytes below the cut."""
    buffer = ExtentBuffer()
    reference = bytearray()
    for offset, data in writes:
        buffer.write(offset, data)
        end = offset + len(data)
        if end > len(reference):
            reference.extend(b"\x00" * (end - len(reference)))
        reference[offset:end] = data
    before = buffer.dirty_bytes
    freed = buffer.truncate(cut)
    assert buffer.dirty_bytes == before - freed
    window = max(len(reference), cut) + 4
    overlay = buffer.overlay(0, window, b"\x00" * window)
    assert overlay[cut:] == b"\x00" * (len(overlay) - cut)
    # Bytes below the cut that were written survive unchanged.
    for offset, data in buffer.extents():
        assert bytes(reference[offset:offset + len(data)]) == data
