"""Tests for the membership lifecycle: heartbeats, map epochs, backfill.

Covers the monitor-driven failure state machine (up -> suspect -> down ->
out -> rejoin with flap damping), CRUSH map mutation with minimal
remapping, EOLDEPOCH fencing of stale-map clients, the throttled
backfill scheduler, and the membership-churn chaos preset's determinism
and convergence guarantees.
"""

import pytest

from repro.common import units
from repro.common.errors import ConfigError, OldEpoch
from repro.costs import CostModel
from repro.net import Fabric
from repro.storage import CephCluster, CrushMap
from tests.conftest import run


@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(64))


def make_cluster(sim, costs, replicas=2, num_osds=4):
    return CephCluster(sim, Fabric(sim), costs, num_osds=num_osds,
                       replicas=replicas)


# -- CRUSH map mutation -------------------------------------------------


def test_pristine_placement_matches_legacy_walk():
    """An unmutated map must reproduce the historical retry-walk
    placements byte for byte (the committed fingerprints depend on it)."""
    crush = CrushMap(6, replicas=2)
    for ino in range(1, 20):
        for index in range(4):
            chosen = []
            attempt = 0
            while len(chosen) < 2:
                osd = crush._hash(ino, index, attempt) % 6
                attempt += 1
                if osd not in chosen:
                    chosen.append(osd)
            assert crush.placement(ino, index) == chosen


def test_straw2_add_remaps_minimally():
    """Adding a device only moves objects the newcomer wins."""
    crush = CrushMap(6, replicas=2)
    crush.reweight(0, 1.0)  # no-op weight change: enter straw2 mode
    objects = [(ino, index) for ino in range(1, 60) for index in range(2)]
    before = {key: crush.placement(*key) for key in objects}
    new_id = crush.add_device()
    assert new_id == 6
    moved = 0
    for key, old in before.items():
        new = crush.placement(*key)
        assert len(new) == 2 and len(set(new)) == 2
        if new != old:
            moved += 1
            # The only legitimate change is the newcomer displacing one
            # member; the survivor must come from the old placement.
            assert new_id in new
            assert set(new) - {new_id} <= set(old)
    # Weight-proportional: roughly 2/7 of placements gain the new device.
    assert 0 < moved < len(objects) // 2


def test_straw2_remove_remaps_only_affected():
    """Removing a device leaves placements that never used it alone."""
    crush = CrushMap(6, replicas=2)
    crush.reweight(0, 1.0)
    objects = [(ino, index) for ino in range(1, 60) for index in range(2)]
    before = {key: crush.placement(*key) for key in objects}
    crush.remove_device(3)
    for key, old in before.items():
        new = crush.placement(*key)
        assert 3 not in new
        if 3 not in old:
            assert new == old
        else:
            # Surviving members keep their slots; only the hole refills.
            assert set(old) - {3} <= set(new)


def test_crush_capacity_guard():
    crush = CrushMap(2, replicas=2)
    with pytest.raises(ConfigError):
        crush.remove_device(0)
    with pytest.raises(ConfigError):
        crush.reweight(1, 0)
    crush.add_device()
    crush.remove_device(0)  # three devices: now removable
    assert 0 not in crush


# -- failure reports and debounce ----------------------------------------


def test_failure_reports_debounced_by_window(sim, costs):
    """A transient blame expires; only a quorum inside the window acts."""
    cluster = make_cluster(sim, costs)
    monitor = cluster.monitor
    window = costs.failure_report_window

    def proc():
        monitor.report_failure(1)
        # let the first report age out of the sliding window
        yield sim.timeout(window + 0.5)
        monitor.report_failure(1)
        spread_down = not monitor.is_up(1)
        # two reports in quick succession meet the quorum
        monitor.report_failure(2)
        yield sim.timeout(0.05)
        monitor.report_failure(2)
        return spread_down, monitor.is_up(2)

    spread_down, burst_up = run(sim, proc())
    assert not spread_down, "reports outside the window must not act"
    assert not burst_up, "a quorum inside the window must mark down"


# -- heartbeat state machine ---------------------------------------------


def test_heartbeat_detects_crash_then_out_then_rejoin(sim, costs):
    cluster = make_cluster(sim, costs)
    monitor = cluster.monitor
    monitor.start_heartbeats()

    def proc():
        cluster.osds[2].crash()  # silent: no oracle mark_down
        yield sim.timeout(
            costs.heartbeat_interval * (costs.heartbeat_grace + 1)
        )
        detected = not monitor.is_up(2)
        yield sim.timeout(costs.osd_out_interval + costs.heartbeat_interval)
        outed = monitor.is_out(2)
        cluster.osds[2].restart()
        yield sim.timeout(costs.heartbeat_interval * 2)
        return detected, outed, monitor.is_up(2), monitor.is_out(2)

    detected, outed, rejoined, still_out = run(sim, proc())
    assert detected, "missed probes must mark the OSD down"
    assert outed, "a silent OSD must be promoted down -> out"
    assert rejoined, "a responding OSD must auto-rejoin"
    assert not still_out


def test_report_quorum_makes_suspect_then_confirms(sim, costs):
    """Blamed OSDs are confirmed on the next miss, faster than grace."""
    cluster = make_cluster(sim, costs)
    monitor = cluster.monitor
    monitor.start_heartbeats()

    def proc():
        cluster.osds[1].crash()
        monitor.report_failure(1)
        monitor.report_failure(1)
        suspect = monitor.is_suspect(1)
        # one probe interval suffices (grace collapses to 1 for suspects)
        yield sim.timeout(costs.heartbeat_interval * 1.5)
        return suspect, monitor.is_up(1)

    suspect, up = run(sim, proc())
    assert suspect, "a report quorum under heartbeats makes a suspect"
    assert not up, "the next missed probe must confirm a suspect down"


def test_flap_damping_holds_bouncy_osd_in_probation(sim, costs):
    cluster = make_cluster(sim, costs)
    monitor = cluster.monitor
    monitor.start_heartbeats()
    victim = 3

    def bounce():
        cluster.osds[victim].crash()
        for _ in range(200):
            yield sim.timeout(costs.heartbeat_interval)
            if not monitor.is_up(victim):
                break
        cluster.osds[victim].restart()
        for _ in range(200):
            yield sim.timeout(costs.heartbeat_interval)
            if monitor.is_up(victim):
                return

    def proc():
        for _ in range(costs.flap_threshold):
            yield from bounce()
        # Past the threshold the next rejoin must serve a probation.
        cluster.osds[victim].crash()
        for _ in range(200):
            yield sim.timeout(costs.heartbeat_interval)
            if not monitor.is_up(victim):
                break
        cluster.osds[victim].restart()
        held = sim.now
        for _ in range(600):
            yield sim.timeout(costs.heartbeat_interval)
            if monitor.is_up(victim):
                break
        return sim.now - held

    rejoin_delay = run(sim, proc())
    assert int(monitor.metrics.counter("flaps_damped").value) >= 1
    assert rejoin_delay >= costs.flap_probation
    assert monitor.is_up(victim)


# -- EOLDEPOCH fencing ---------------------------------------------------


def test_osd_rejects_ops_stamped_with_old_epoch(sim, costs):
    cluster = make_cluster(sim, costs)
    cluster.arm_lifecycle()
    osd = cluster.osds[0]
    osd.map_epoch = 5

    def proc():
        try:
            yield from osd.read(1, 0, 0, 16, epoch=4)
        except OldEpoch as err:
            return err
        return None

    err = run(sim, proc())
    assert isinstance(err, OldEpoch)
    assert int(osd.metrics.counter("epoch_rejects").value) == 1


def test_stale_map_client_refreshes_and_retries(sim, costs):
    """A client on an old osdmap gets EOLDEPOCH'd, refreshes, succeeds."""
    cluster = make_cluster(sim, costs)
    cluster.arm_lifecycle()
    payload = b"fence me" * 64

    def proc():
        yield from cluster.write_extent(7, 0, payload)
        stale_map = cluster._osdmap
        # Membership changes behind the client's back; its snapshot is
        # now an epoch behind what every OSD knows.
        cluster.monitor.mark_down(3)
        cluster.monitor.mark_up(3)
        cluster._osdmap = stale_map
        data = yield from cluster.read_extent(7, 0, len(payload))
        return data

    assert run(sim, proc()) == payload
    assert int(cluster.metrics.counter("stale_map_rejects").value) >= 1
    assert cluster._osdmap.epoch == cluster.monitor.epoch


# -- throttled backfill --------------------------------------------------


def test_backfill_drains_under_budget(sim, costs):
    """An outed OSD's objects re-replicate over several bounded cycles."""
    cluster = make_cluster(sim, costs, replicas=2, num_osds=4)
    payload = b"b" * units.kib(64)

    def proc():
        for ino in range(1, 9):
            yield from cluster.write_extent(ino, 0, payload)
        victim = cluster.crush.primary(1, 0)
        cluster.osds[victim].crash()
        cluster.monitor.mark_down(victim)
        cluster.monitor.mark_out(victim)
        degraded_before = len(cluster.monitor.under_replicated())
        backfill = cluster.start_backfill(
            bytes_per_osd=units.kib(64), ops_per_osd=1
        )
        done = yield from backfill.drain()
        return degraded_before, done, backfill

    degraded_before, done, backfill = run(sim, proc())
    assert degraded_before > 1
    assert done, "backfill must reach idle"
    assert cluster.monitor.under_replicated() == []
    # The one-push-per-target budget spreads convergence over multiple
    # cycles: each cycle moves at most one object per live target OSD.
    live_targets = len(cluster.osds) - 1
    min_cycles = -(-degraded_before // live_targets)  # ceil division
    assert min_cycles >= 2, "fixture must need more than one cycle"
    assert int(backfill.metrics.counter("cycles").value) >= min_cycles
    assert int(backfill.metrics.counter("bytes_moved").value) \
        >= degraded_before * units.kib(64)


def test_backfill_defers_down_not_out_osd(sim, costs):
    """Re-replicating a merely-down OSD's data wastes budget; wait for
    the out promotion (heartbeats decide) before moving bytes."""
    cluster = make_cluster(sim, costs, replicas=2, num_osds=4)
    monitor = cluster.monitor
    payload = b"d" * units.kib(8)

    def proc():
        yield from cluster.write_extent(1, 0, payload)
        monitor.start_heartbeats()
        backfill = cluster.start_backfill()
        victim = monitor.acting_set(1, 0)[-1]
        cluster.osds[victim].crash()
        # wait until heartbeats confirm down (but well before out)
        for _ in range(100):
            yield sim.timeout(costs.heartbeat_interval)
            if not monitor.is_up(victim):
                break
        yield from backfill.cycle()
        moved_while_down = int(backfill.metrics.counter("bytes_moved").value)
        yield sim.timeout(costs.osd_out_interval + costs.heartbeat_interval)
        outed = monitor.is_out(victim)
        done = yield from backfill.drain()
        return moved_while_down, outed, done

    moved_while_down, outed, done = run(sim, proc())
    assert moved_while_down == 0, "down-not-out objects must be deferred"
    assert outed and done
    assert cluster.monitor.under_replicated() == []


# -- runtime add / drain -------------------------------------------------


def test_add_osd_backfills_and_trims(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2, num_osds=4)
    payloads = {ino: bytes([ino]) * units.kib(64) for ino in range(1, 17)}

    def proc():
        for ino, payload in payloads.items():
            yield from cluster.write_extent(ino, 0, payload)
        newcomer = cluster.add_osd()
        done = yield from cluster.backfill.drain()
        reads = {}
        for ino, payload in payloads.items():
            reads[ino] = yield from cluster.read_extent(ino, 0, len(payload))
        return newcomer, done, reads

    newcomer, done, reads = run(sim, proc())
    assert done
    assert newcomer.osd_id == 4
    assert len(newcomer._objects) > 0, "the newcomer must win objects"
    assert cluster.monitor.under_replicated() == []
    assert cluster.monitor.misplaced() == []
    assert not cluster._remapped, "convergence must restore the fast path"
    for ino, payload in payloads.items():
        assert reads[ino] == payload
    # exactly replicas copies per object survive the trim
    for ino in payloads:
        copies = sum(
            1 for osd in cluster.osds if (ino, 0) in osd._objects
        )
        assert copies == 2


def test_drain_osd_migrates_and_empties_device(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2, num_osds=4)
    payloads = {ino: bytes([ino]) * units.kib(64) for ino in range(1, 17)}

    def proc():
        for ino, payload in payloads.items():
            yield from cluster.write_extent(ino, 0, payload)
        victim = cluster.crush.primary(1, 0)
        cluster.drain_osd(victim)
        done = yield from cluster.backfill.drain()
        reads = {}
        for ino, payload in payloads.items():
            reads[ino] = yield from cluster.read_extent(ino, 0, len(payload))
        return victim, done, reads

    victim, done, reads = run(sim, proc())
    assert done
    assert victim not in cluster.crush
    assert len(cluster.osds[victim]._objects) == 0, \
        "a drained OSD must end empty"
    assert cluster.monitor.under_replicated() == []
    for ino, payload in payloads.items():
        assert reads[ino] == payload


# -- churn chaos ---------------------------------------------------------


def test_membership_churn_converges_and_is_deterministic():
    from repro.faults import run_membership_churn

    first = run_membership_churn(seed=11)
    assert first.ok, (
        first.mismatches, first.read_mismatches, first.under_replicated,
        first.membership_converged,
    )
    assert first.membership_converged
    assert first.under_replicated == []
    assert first.map_epoch > 1, "churn must bump the osdmap epoch"
    assert first.backfill_objects > 0, "churn must exercise backfill"
    second = run_membership_churn(seed=11)
    assert second.fingerprint() == first.fingerprint(), \
        "same-seed churn runs must be byte-identical"
