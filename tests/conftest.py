"""Shared pytest fixtures and helpers."""

import pytest

from repro.common import units
from repro.fs.api import Task
from repro.hw import Machine
from repro.kernel import HostKernel
from repro.sim import Simulator, SimThread


@pytest.fixture
def sim():
    """A fresh simulator for each test."""
    return Simulator()


@pytest.fixture
def machine(sim):
    """A small host machine: 8 cores, 4 GiB RAM, 6 disks."""
    return Machine(sim, num_cores=8, ram_bytes=units.gib(4))


@pytest.fixture
def kernel(sim, machine):
    """A host kernel on the small machine (flushers running)."""
    return HostKernel(sim, machine)


def make_task(sim, machine, name="task", pool=None, cores=None):
    """Create a Task with a fresh thread on the machine's cores."""
    thread = SimThread(sim, name, cores if cores is not None else machine.activated)
    return Task(thread, pool=pool)


@pytest.fixture
def task(sim, machine):
    return make_task(sim, machine)


def run(sim, gen, until=1000.0):
    """Run a generator to completion even with daemon loops pending.

    Background daemons (kernel flushers, service threads) keep the event
    heap non-empty forever, so we always bound the clock. ``until`` is a
    *relative* budget from the current simulation time, so helpers can be
    called repeatedly in one test.
    """
    deadline = sim.now + until
    process = sim.spawn(gen)
    finished = sim.run_until(process, deadline)
    assert finished, "process did not finish by t=%s" % deadline
    return process.value
