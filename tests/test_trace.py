"""Tests for the event-trace surface of the observability subsystem.

Worlds attach through ``World.observe(...)`` (the ``repro.obs`` entry
point); the deprecated ``Tracer`` alias is exercised for compatibility,
including its new ring-buffer semantics.
"""

import json

from repro.common import units
from repro.stacks import StackFactory
from repro.trace import Tracer
from repro.world import World
from tests.conftest import run


def make_traced_world(categories=None):
    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(4)
    world.observe(categories=categories)
    return world


def test_tracer_records_ipc_and_client_events():
    world = make_traced_world()
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    task = pool.new_task()

    def proc():
        yield from mount.fs.write_file(task, "/f", b"traced", sync=True)
        yield from mount.fs.read_file(task, "/f")

    run(world.sim, proc())
    tracer = world.sim.tracer
    assert tracer.events("ipc", "submit")
    assert tracer.events("client", "flush")
    summary = dict(tracer.summary())
    assert summary[("ipc", "submit")] >= 4  # open/write/fsync/close/read...


def test_tracer_category_filter():
    world = make_traced_world(categories={"client"})
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "D").mount_root("c0")
    task = pool.new_task()

    def proc():
        yield from mount.fs.write_file(task, "/f", b"x", sync=True)

    run(world.sim, proc())
    tracer = world.sim.tracer
    assert tracer.events("client")
    assert not tracer.events("ipc")


def test_tracer_records_fuse_calls():
    world = make_traced_world(categories={"fuse"})
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, "F").mount_root("c0")
    task = pool.new_task()

    def proc():
        yield from mount.fs.write_file(task, "/f", b"x")

    run(world.sim, proc())
    ops = [e.detail["op"] for e in world.sim.tracer.events("fuse", "call")]
    assert "open" in ops and "write" in ops


def test_tracer_records_monitor_events():
    world = make_traced_world(categories={"mon"})
    world.cluster.monitor.mark_down(0)
    events = world.sim.tracer.events("mon", "osd_down")
    assert events and events[0].detail["osd"] == 0


def test_observe_returns_the_attached_observer():
    world = World(num_cores=4, ram_bytes=units.gib(4))
    observer = world.observe(categories={"wb"})
    assert world.sim.tracer is observer
    assert world.sim.observer is observer
    assert world.observer is observer


def test_manual_tracer_attachment_still_works():
    # The legacy idiom: events only, no span/profile machinery armed.
    world = World(num_cores=4, ram_bytes=units.gib(4))
    world.sim.tracer = Tracer(categories={"x"})
    world.sim.trace("x", "e", value=1)
    assert world.sim.observer is None
    assert len(world.sim.tracer.records) == 1


def test_tracer_ring_buffer_keeps_most_recent():
    tracer = Tracer(capacity=2)
    for index in range(5):
        tracer.emit(float(index), "x", "e", i=index)
    assert len(tracer.records) == 2
    assert tracer.dropped == 3
    # Ring semantics: the *newest* window survives, not the oldest.
    assert [event.detail["i"] for event in tracer.records] == [3, 4]
    summary = dict(tracer.summary())
    assert summary[("trace", "dropped")] == 3


def test_tracer_jsonl_dump(tmp_path):
    tracer = Tracer()
    tracer.emit(1.5, "cat", "name", value=42)
    out = tmp_path / "trace.jsonl"
    count = tracer.to_jsonl(str(out))
    assert count == 1
    record = json.loads(out.read_text().strip())
    assert record == {"t": 1.5, "cat": "cat", "name": "name", "value": 42}


def test_no_tracer_is_noop():
    world = World(num_cores=4, ram_bytes=units.gib(4))
    world.sim.trace("anything", "goes", x=1)  # must not raise
