"""Tests for the declarative experiment layer (repro.experiments).

Covers spec validation errors, registry discovery of the committed
spec files, compile-correctness against the legacy CLI closures, the
unified run-record schema, and (slow) closure-vs-spec row/fingerprint
equivalence for fig6a.
"""

import copy
import json

import pytest

from repro.experiments import (
    RECORD_SCHEMA,
    RecordError,
    SpecError,
    make_record,
    registry,
    rows_fingerprint,
    to_trend,
    validate_record,
    validate_spec,
)
from repro.experiments.compiler import AXES, KINDS, compile_spec
from repro.experiments.runner import check_slos, run_spec


def minimal_spec(**overrides):
    spec = {
        "id": "t1",
        "kind": "colocation",
        "sweep": {"symbol": ["K"], "n_fls": [1]},
        "params": {"duration": 3.0},
    }
    spec.update(overrides)
    return spec


# -- spec validation -------------------------------------------------------

def test_validate_fills_defaults():
    spec = validate_spec(minimal_spec())
    assert spec["schema"] == 1
    assert spec["cluster"] == {"osds": 6, "replicas": 1, "hosts": 1}
    assert spec["seeds"] == [1]
    assert spec["stacks"] == ["K"]  # derived from the symbol axis
    assert spec["quick"] == {"sweep": {}, "params": {}}


def test_validate_does_not_mutate_input():
    raw = minimal_spec()
    frozen = copy.deepcopy(raw)
    validate_spec(raw)
    assert raw == frozen


def test_unknown_top_level_key_rejected():
    with pytest.raises(SpecError, match="unknown keys: swep"):
        validate_spec(minimal_spec(swep={}))


def test_unknown_kind_rejected():
    with pytest.raises(SpecError, match="unknown experiment kind"):
        validate_spec(minimal_spec(kind="colocashun"))


def test_unknown_stack_symbol_rejected():
    spec = minimal_spec(sweep={"symbol": ["K", "Q"], "n_fls": [1]})
    with pytest.raises(SpecError, match="unknown stack symbol 'Q'"):
        validate_spec(spec)


def test_unknown_stack_symbol_in_stacks_rejected():
    with pytest.raises(SpecError, match="unknown stack symbol"):
        validate_spec(minimal_spec(stacks=["K", "XX"]))


def test_unknown_workload_symbol_rejected():
    with pytest.raises(SpecError, match="unknown workload symbol 'NFS'"):
        validate_spec(minimal_spec(workloads=["FLS", "NFS"]))


def test_unknown_sweep_axis_rejected():
    spec = minimal_spec(sweep={"pools": [1]})
    with pytest.raises(SpecError, match="no sweep axis 'pools'"):
        validate_spec(spec)


def test_conflicting_sweep_axes_rejected():
    spec = minimal_spec(params={"n_fls": 2})
    with pytest.raises(SpecError, match="conflicting sweep axes: n_fls"):
        validate_spec(spec)


def test_conflicting_quick_params_rejected():
    spec = minimal_spec(quick={"params": {"symbol": "D"}})
    with pytest.raises(SpecError, match="conflicting sweep axes"):
        validate_spec(spec)


def test_quick_override_of_undeclared_axis_rejected():
    spec = minimal_spec(quick={"sweep": {"n_fls": [1], "symbol": ["K"]}})
    validate_spec(spec)  # both axes declared -> fine
    spec = minimal_spec(sweep={"symbol": ["K"]},
                        quick={"sweep": {"n_fls": [1]}})
    with pytest.raises(SpecError, match="overrides unknown axis 'n_fls'"):
        validate_spec(spec)


@pytest.mark.parametrize("seeds", [[], [1, 1], ["a"], [True], 7])
def test_bad_seed_lists_rejected(seeds):
    with pytest.raises(SpecError):
        validate_spec(minimal_spec(seeds=seeds))


def test_faults_only_for_chaos_kind():
    with pytest.raises(SpecError, match="faults only apply"):
        validate_spec(minimal_spec(faults={"bitrot": 1}))


def test_unknown_chaos_field_rejected():
    spec = {"id": "c1", "kind": "chaos", "faults": {"bitrots": 2}}
    with pytest.raises(SpecError, match="unknown ChaosConfig fields"):
        validate_spec(spec)


def test_bad_slo_op_rejected():
    spec = minimal_spec(slo=[{"metric": "ok", "op": "~=", "value": 1}])
    with pytest.raises(SpecError, match="op '~='"):
        validate_spec(spec)


def test_replicas_cannot_exceed_osds():
    spec = minimal_spec(cluster={"osds": 2, "replicas": 3})
    with pytest.raises(SpecError, match="exceeds"):
        validate_spec(spec)


def test_wrong_schema_version_rejected():
    with pytest.raises(SpecError, match="schema"):
        validate_spec(minimal_spec(schema=99))


# -- registry --------------------------------------------------------------

LEGACY_NAMES = (
    "fig1", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b", "fig7c", "fig7d",
    "fig8", "fig9w", "fig9r", "fig10", "fig11a", "fig11b",
    "abl-lock", "abl-ipc",
)


def test_registry_covers_every_legacy_name():
    names = registry.names()
    for expected in LEGACY_NAMES:
        assert expected in names


def test_registry_specs_all_validate_and_compile():
    for name, spec in registry.discover().items():
        experiment = compile_spec(spec, quick=True, seed=spec["seeds"][0])
        assert experiment.experiment_id == name


def test_registry_get_unknown_name():
    with pytest.raises(SpecError, match="unknown experiment 'fig99'"):
        registry.get("fig99")


def test_env_path_shadows_committed_spec(tmp_path, monkeypatch):
    shadow = dict(registry.get("abl-ipc"))
    shadow["title"] = "shadowed"
    (tmp_path / "abl-ipc.json").write_text(json.dumps(shadow))
    monkeypatch.setenv("REPRO_EXPERIMENTS_PATH", str(tmp_path))
    assert registry.get("abl-ipc")["title"] == "shadowed"


def test_yaml_spec_without_pyyaml_is_gated(tmp_path, monkeypatch):
    (tmp_path / "y1.yaml").write_text("id: y1\nkind: ablation_ipc\n")
    import builtins

    real_import = builtins.__import__

    def no_yaml(name, *args, **kwargs):
        if name == "yaml":
            raise ImportError("no module named yaml")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", no_yaml)
    with pytest.raises(SpecError, match="PyYAML is not installed"):
        registry.load_spec_file(str(tmp_path / "y1.yaml"))


# -- compiler --------------------------------------------------------------

def test_every_kind_has_a_builder_or_is_chaos():
    for kind in KINDS:
        assert kind in AXES


def test_fig6a_compiles_to_legacy_constructor_state():
    spec = registry.get("fig6a")
    full = compile_spec(spec, quick=False, seed=1)
    assert type(full).__name__ == "FlsColocation"
    assert tuple(full.symbols) == ("K", "D")
    assert tuple(full.fls_counts) == (1, 3)
    assert full.neighbor == "RND"
    assert full.duration == 4.0
    quick = compile_spec(spec, quick=True, seed=1)
    assert tuple(quick.fls_counts) == (1,)
    assert quick.duration == 3.0
    # the seed lands in params exactly like the legacy default
    assert quick.params == {"seed": 1}


def test_fig7d_compiles_with_symbol_subset_and_id():
    spec = registry.get("fig7d")
    exp = compile_spec(spec, quick=False, seed=1)
    assert tuple(exp.symbols) == ("D", "F/F", "K/K")
    assert exp.mode == "get"
    assert exp.experiment_id == "fig7d"


def test_chaos_spec_lowers_cluster_onto_config():
    spec = registry.get("chaos-corruption")
    exp = compile_spec(spec, quick=False, seed=7)
    config = exp.config
    assert config.seed == 7
    assert config.replicas == 2
    assert config.num_osds == 6
    assert config.bitrot == 2
    assert config.torn_writes == 1
    assert config.scrub is True


def test_param_colliding_with_builder_keyword_fails_compile():
    spec = validate_spec(minimal_spec(params={"symbols": ["K"]}))
    with pytest.raises(SpecError, match="do not fit kind"):
        compile_spec(spec, seed=1)


def test_unknown_chaos_param_rejected_at_validation():
    spec = {"id": "c1", "kind": "chaos", "params": {"bit_rot": 1}}
    with pytest.raises(SpecError, match="not ChaosConfig fields"):
        validate_spec(spec)


# -- record schema ---------------------------------------------------------

def test_make_record_is_valid_and_stable():
    rows = [{"symbol": "K", "x": 1.0}, {"symbol": "D", "x": 2.0}]
    record = make_record("t1", title="t", rows=rows)
    assert record["schema"] == RECORD_SCHEMA
    validate_record(record)
    assert record["fingerprint"] == rows_fingerprint(rows)
    # key order in rows must not change the fingerprint
    flipped = [{"x": 1.0, "symbol": "K"}, {"x": 2.0, "symbol": "D"}]
    assert rows_fingerprint(flipped) == record["fingerprint"]


def test_validate_record_catches_drift():
    record = make_record("t1", rows=[{"a": 1}])
    bad = dict(record, extra_key=1)
    with pytest.raises(RecordError, match="unknown keys"):
        validate_record(bad)
    stale = dict(record)
    stale["rows"] = [{"a": 2}]
    with pytest.raises(RecordError, match="fingerprint"):
        validate_record(stale)
    old = dict(record, schema=1)
    with pytest.raises(RecordError, match="schema"):
        validate_record(old)
    missing = {k: v for k, v in record.items() if k != "notes"}
    with pytest.raises(RecordError, match="missing keys"):
        validate_record(missing)


def test_result_to_dict_emits_unified_record():
    from repro.bench.harness import ExperimentResult

    result = ExperimentResult("t1", "title", "expect")
    result.add_row(symbol="K", v=1.0)
    result.note("n")
    record = result.to_dict()
    validate_record(record)
    assert record["id"] == "t1"
    assert record["paper_expectation"] == "expect"
    assert record["rows"] == [{"symbol": "K", "v": 1.0}]


def test_to_trend_shape():
    records = [
        make_record("a", rows=[{"x": 1}], wall_s=1.5),
        make_record("b", rows=[{"x": 2}], wall_s=2.0),
    ]
    trend = to_trend(records)
    assert trend["schema"] == 1
    assert set(trend["scenarios"]) == {"a", "b"}
    assert trend["total_wall_s"] == 3.5
    assert trend["scenarios"]["a"]["fingerprint"] == records[0]["fingerprint"]


# -- SLO checks ------------------------------------------------------------

def test_check_slos_flags_violation_and_empty_match():
    from repro.bench.harness import ExperimentResult

    spec = validate_spec(minimal_spec(slo=[
        {"metric": "ops", "op": ">=", "value": 10,
         "where": {"symbol": "K"}},
        {"metric": "ops", "op": ">=", "value": 1,
         "where": {"symbol": "Z"}},
    ]))
    result = ExperimentResult("t1", "t")
    result.add_row(symbol="K", ops=5)
    outcome = check_slos(spec, result)
    assert outcome["checked"] == 2
    assert len(outcome["violations"]) == 2
    assert any("no rows match" in v for v in outcome["violations"])


# -- ChaosConfig back-compat ----------------------------------------------

def test_chaos_config_from_dict_rejects_unknown_field():
    from repro.common.errors import ConfigError
    from repro.faults import ChaosConfig

    with pytest.raises(ConfigError, match="unknown ChaosConfig field"):
        ChaosConfig.from_dict({"bit_rot": 1})


def test_chaos_config_roundtrip():
    from repro.faults import ChaosConfig

    config = ChaosConfig.from_dict({"bitrot": 2}, seed=5)
    assert config.bitrot == 2 and config.seed == 5
    clone = ChaosConfig.from_dict(config.to_dict())
    assert clone == config


# -- closure-vs-spec equivalence (slow) ------------------------------------

@pytest.mark.slow
def test_fig6a_spec_matches_legacy_closure_rows():
    from repro.bench import FlsColocation

    legacy = FlsColocation(
        symbols=("K", "D"), fls_counts=(1,), neighbor="RND", duration=3.0,
    ).run()
    _result, record = run_spec(registry.get("fig6a"), quick=True)
    assert record["rows"] == legacy.rows
    assert record["fingerprint"] == rows_fingerprint(legacy.rows)
    assert record["seeds"] == [1]
