"""Determinism of ``common.rng`` stream splitting under reordering.

The partitioned build path constructs entities in per-partition order,
which generally differs from the order the sequential build (and the
scheduler) visits them. Stream derivation must therefore be a pure
function of (seed, label path) — never of construction order, shared
generator state, or interleaving — or partitioned runs would silently
diverge from sequential ones.
"""

import random

from repro.common.rng import derive, make_rng, pseudo_bytes


def _draws(rng, n=8):
    return [rng.randrange(1_000_000) for _ in range(n)]


class TestDeriveOrderIndependence:
    def test_child_seed_ignores_construction_order(self):
        labels = [("host%d" % h, "client%d" % c)
                  for h in range(4) for c in range(3)]
        forward = {lab: derive(7, *lab) for lab in labels}
        backward = {lab: derive(7, *lab) for lab in reversed(labels)}
        assert forward == backward

    def test_streams_are_stateless_across_instantiation_order(self):
        # Build rngs in one order, draw in another: each stream's draws
        # depend only on its label path.
        order_a = ["osd%d" % i for i in range(6)]
        order_b = list(reversed(order_a))

        rngs_a = {name: make_rng(42, "cluster", name) for name in order_a}
        draws_a = {name: _draws(rngs_a[name]) for name in order_a}

        rngs_b = {name: make_rng(42, "cluster", name) for name in order_b}
        # Interleave draws round-robin — a different schedule entirely.
        draws_b = {name: [] for name in order_b}
        for round_index in range(8):
            for name in order_b:
                draws_b[name].append(rngs_b[name].randrange(1_000_000))
        assert draws_a == draws_b

    def test_sibling_streams_do_not_alias(self):
        seeds = {derive(1, "host", i) for i in range(64)}
        assert len(seeds) == 64
        # Separator structure: ("ab", "c") must differ from ("a", "bc").
        assert derive(1, "ab", "c") != derive(1, "a", "bc")

    def test_adding_a_consumer_leaves_existing_streams_alone(self):
        # The property the docstring promises: deriving a *new* child
        # does not perturb draws of already-derived siblings.
        before = _draws(make_rng(9, "wb", "flusher"))
        derive(9, "wb", "brand-new-consumer")
        make_rng(9, "wb", "another")
        after = _draws(make_rng(9, "wb", "flusher"))
        assert before == after


class TestScheduleOrderVsBuildOrder:
    def test_partition_shaped_reordering(self):
        # Sequential build: hosts in declaration order, entities nested.
        # Partitioned build: one partition at a time, entities flat.
        # Both must end up with identical per-entity streams.
        seed = 1234
        hosts = ["client", "h1", "h2", "h3"]

        sequential = {}
        for host in hosts:
            for entity in ("kernel", "pagecache", "fuse"):
                sequential[(host, entity)] = _draws(
                    make_rng(seed, host, entity)
                )

        partitioned = {}
        for entity in ("fuse", "kernel", "pagecache"):  # different order
            for host in reversed(hosts):               # different order
                partitioned[(host, entity)] = _draws(
                    make_rng(seed, host, entity)
                )
        assert sequential == partitioned

    def test_pseudo_bytes_is_a_pure_function(self):
        blocks = [pseudo_bytes(4096, (5, "shared", i)) for i in range(4)]
        again = [pseudo_bytes(4096, (5, "shared", i)) for i in reversed(range(4))]
        assert blocks == list(reversed(again))
        assert len({bytes(b[:64]) for b in blocks}) == 4

    def test_derived_stream_differs_from_raw_seed_stream(self):
        # Guard against a refactor that silently drops the derivation
        # and reuses the parent seed for every child.
        raw = _draws(random.Random(77))
        derived = _draws(make_rng(77, "anything"))
        assert raw != derived
