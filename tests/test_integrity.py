"""Tests for end-to-end data integrity: checksums, read-repair, scrub.

Covers the integrity subsystem bottom-up:

* OSD digest bookkeeping — chunk digests on write, poison on partial
  overwrites of corrupt chunks, torn-replica detection, truncation;
* verified reads — a single corrupt replica is masked (failover +
  background read-repair), all-replica corruption surfaces
  :class:`DataCorrupt` (EIO) and quarantines the object;
* the background scrub daemon — light/deep cycles, repair, quarantine
  of unrepairable objects, and un-quarantine after a fresh write;
* the fast-path guard — integrity off records nothing and keeps the
  cluster off the resilient path.
"""

import errno

import pytest

from repro.common import units
from repro.common.errors import DataCorrupt, DataUnavailable, FsError
from repro.common.rng import make_rng
from repro.costs import CostModel
from repro.net import Fabric
from repro.storage import CephCluster, ScrubDaemon
from tests.conftest import run


@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(64))


def make_cluster(sim, costs, replicas=2, num_osds=4, integrity=True):
    cluster = CephCluster(sim, Fabric(sim), costs, num_osds=num_osds,
                          replicas=replicas)
    if integrity:
        cluster.enable_integrity()
    return cluster


def store(sim, cluster, ino, payload):
    def proc():
        yield from cluster.write_extent(ino, 0, payload)
    run(sim, proc())


# --- OSD digest bookkeeping --------------------------------------------------

def test_write_records_digests_and_detects_bitrot(sim, costs):
    cluster = make_cluster(sim, costs)
    payload = bytes(range(256)) * 64  # 16 KiB = 4 chunks
    store(sim, cluster, 7, payload)
    for osd_id in cluster.monitor.holders(7, 0):
        osd = cluster.osds[osd_id]
        assert osd._digests[(7, 0)], "write must record chunk digests"
        assert osd.replica_clean(7, 0)
    victim = cluster.osds[cluster.monitor.holders(7, 0)[0]]
    assert victim.inject_bitrot(7, 0, make_rng(1, "bitrot-unit")) > 0
    assert not victim.replica_clean(7, 0)
    # the other replica is untouched
    other = cluster.monitor.holders(7, 0)[1]
    assert cluster.osds[other].replica_clean(7, 0)


def test_partial_overwrite_cannot_bless_corruption(sim, costs):
    """A partial overwrite of a chunk whose surviving bytes are corrupt
    must poison the chunk, not re-digest the bad bytes into legitimacy."""
    cluster = make_cluster(sim, costs)
    chunk = costs.integrity_chunk_size
    payload = b"a" * (3 * chunk)
    store(sim, cluster, 8, payload)
    victim_id = cluster.monitor.holders(8, 0)[0]
    victim = cluster.osds[victim_id]
    # silent flip deep inside chunk 1, past the coming overwrite
    victim._objects[(8, 0)][chunk + 100] ^= 0xFF

    def overwrite(offset, data):
        def proc():
            yield from cluster.write_extent(8, offset, data)
        run(sim, proc())

    # overwrite only the head of chunk 1: the flip survives, the chunk
    # must stay dirty even though its digest was just recomputed
    overwrite(chunk, b"Z" * 16)
    assert not victim.replica_clean(8, 0)
    # replicas that were never corrupted stay clean through the same write
    other = [o for o in cluster.monitor.holders(8, 0) if o != victim_id][0]
    assert cluster.osds[other].replica_clean(8, 0)
    # a write fully covering the object replaces every chunk: poison clears
    overwrite(0, b"b" * (3 * chunk))
    assert victim.replica_clean(8, 0)


def test_torn_replica_detected_despite_intact_prefix(sim, costs):
    """A torn replica lost its tail; every byte it still holds is intact,
    so only the recorded digests can tell the copy is short."""
    cluster = make_cluster(sim, costs)
    payload = b"t" * units.kib(16)
    store(sim, cluster, 9, payload)
    victim = cluster.osds[cluster.monitor.holders(9, 0)[0]]
    assert victim.inject_torn_write(9, 0) > 0
    assert not victim.replica_clean(9, 0)


def test_truncate_keeps_digests_consistent(sim, costs):
    cluster = make_cluster(sim, costs, replicas=1)
    payload = bytes(range(256)) * 40  # 10240 bytes
    cut = 5000  # mid-chunk

    def proc():
        yield from cluster.write_extent(10, 0, payload)
        yield from cluster.truncate(10, cut)
        return (yield from cluster.read_extent(10, 0, len(payload)))

    assert run(sim, proc()) == payload[:cut]
    holder = cluster.osds[cluster.monitor.holders(10, 0)[0]]
    assert holder.replica_clean(10, 0)
    assert cluster.integrity_errors() == []


# --- verified reads: masking, read-repair, EIO -------------------------------

def test_single_corrupt_replica_is_masked_and_repaired(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2)
    payload = b"m" * units.kib(32)

    def proc():
        yield from cluster.write_extent(11, 0, payload)
        primary = cluster.crush.primary(11, 0)
        assert cluster.osds[primary].inject_bitrot(
            11, 0, make_rng(2, "mask")
        )
        data = yield from cluster.read_extent(11, 0, len(payload))
        yield sim.timeout(1.0)  # background read-repair completes
        return data, primary

    data, primary = run(sim, proc())
    assert data == payload, "corruption must never reach the caller"
    assert cluster.metrics.counter("checksum_failures").value >= 1
    assert cluster.metrics.counter("read_repairs").value >= 1
    assert cluster.osds[primary].replica_clean(11, 0)
    assert bytes(cluster.osds[primary]._objects[(11, 0)]) == payload


def test_all_replica_corruption_surfaces_eio_and_quarantines(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2)
    payload = b"e" * units.kib(16)

    def proc():
        yield from cluster.write_extent(12, 0, payload)
        for n, osd_id in enumerate(cluster.monitor.holders(12, 0)):
            assert cluster.osds[osd_id].inject_bitrot(
                12, 0, make_rng(3, "allbad", n)
            )
        try:
            yield from cluster.read_extent(12, 0, len(payload))
            caught = None
        except DataCorrupt as err:
            caught = err
        quarantined = (12, 0) in cluster.quarantined
        # a fresh full write replaces the data and makes reads whole again
        yield from cluster.write_extent(12, 0, payload)
        data = yield from cluster.read_extent(12, 0, len(payload))
        return caught, quarantined, data

    caught, quarantined, data = run(sim, proc())
    assert isinstance(caught, DataCorrupt)
    assert caught.errno == errno.EIO
    assert quarantined, "an object with no clean replica is quarantined"
    assert data == payload
    assert (12, 0) not in cluster.quarantined


# --- read targeting (degraded/hole fallbacks) --------------------------------

def test_hole_read_skips_crashed_acting_member(sim, costs):
    """The hole fallback must not hand back a crashed acting member: that
    is a doomed RPC. With no live OSD left the read surfaces
    DataUnavailable without ever dialling the corpse."""
    cluster = make_cluster(sim, costs, replicas=1, num_osds=2,
                           integrity=False)

    def proc():
        # object (14, 0) is a hole: never written anywhere
        primary = cluster.crush.primary(14, 0)
        other = 1 - primary
        cluster.monitor.mark_down(primary)
        cluster.osds[other].crash()
        try:
            yield from cluster.read_extent(14, 0, 4096)
        except DataUnavailable as err:
            return err
        return None

    err = run(sim, proc())
    assert isinstance(err, DataUnavailable)
    assert err.errno == errno.EIO
    # no RPC ever reached the crashed daemon, so no op ever timed out
    # against it and no failure report was filed
    assert cluster.monitor._failure_reports == {}


def test_hole_read_served_by_live_acting_member(sim, costs):
    """The positive half of the fallback: with a live acting member the
    hole still reads as absent data (short read), never an error."""
    cluster = make_cluster(sim, costs, replicas=1, num_osds=4,
                           integrity=False)

    def proc():
        cluster.monitor.mark_down(cluster.crush.primary(15, 0))
        return (yield from cluster.read_extent(15, 0, 4096))

    assert run(sim, proc()) == b""


# --- retry metrics labeled by op kind ----------------------------------------

def test_retry_metrics_labeled_read(sim, costs):
    cluster = make_cluster(sim, costs, replicas=1, integrity=False)
    payload = b"label" * 20

    def proc():
        yield from cluster.write_extent(16, 0, payload)
        primary = cluster.crush.primary(16, 0)
        cluster.monitor.mark_down(primary)

        def heal():
            yield sim.timeout(0.3)
            cluster.monitor.mark_up(primary)

        sim.spawn(heal())
        return (yield from cluster.read_extent(16, 0, len(payload)))

    assert run(sim, proc()) == payload
    assert cluster.metrics.counter("retries_read").value >= 1
    assert cluster.metrics.counter("retries_write").value == 0
    assert (cluster.metrics.counter("retries").value
            == cluster.metrics.counter("retries_read").value)


def test_retry_metrics_labeled_write(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2, integrity=False)
    payload = b"w" * units.kib(8)

    def proc():
        primary = cluster.crush.primary(17, 0)
        cluster.osds[primary].crash()  # dead but not yet marked down
        yield from cluster.write_extent(17, 0, payload)
        return (yield from cluster.read_extent(17, 0, len(payload)))

    assert run(sim, proc()) == payload
    assert cluster.metrics.counter("retries_write").value >= 1
    total_timeouts = cluster.metrics.counter("op_timeouts").value
    assert (cluster.metrics.counter("op_timeouts_write").value
            + cluster.metrics.counter("op_timeouts_read").value
            == total_timeouts)


# --- background scrub --------------------------------------------------------

@pytest.mark.scrub
def test_scrub_repairs_bitrot(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2)
    payload = b"s" * units.kib(16)

    def proc():
        for ino in (20, 21, 22):
            yield from cluster.write_extent(ino, 0, payload)
        victim = cluster.monitor.holders(21, 0)[0]
        assert cluster.osds[victim].inject_bitrot(
            21, 0, make_rng(5, "scrub-bitrot")
        )
        daemon = cluster.start_scrub(interval=0.5, deep_every=1, batch=100)
        yield sim.timeout(3.0)
        daemon.stop()
        return victim, daemon

    victim, daemon = run(sim, proc())
    assert daemon.metrics.counter("errors_found").value >= 1
    assert daemon.metrics.counter("repaired").value >= 1
    assert cluster.osds[victim].replica_clean(21, 0)
    assert bytes(cluster.osds[victim]._objects[(21, 0)]) == payload
    assert cluster.integrity_errors() == []


@pytest.mark.scrub
def test_light_scrub_escalates_torn_replica(sim, costs):
    """Light cycles compare size + digest fingerprints only; a torn
    replica's short copy trips the metadata comparison, escalates to a
    deep check and gets repaired — without deep-reading every object."""
    cluster = make_cluster(sim, costs, replicas=2)
    payload = b"l" * units.kib(16)

    def proc():
        yield from cluster.write_extent(24, 0, payload)
        victim = cluster.monitor.holders(24, 0)[0]
        assert cluster.osds[victim].inject_torn_write(24, 0) > 0
        daemon = cluster.start_scrub(interval=0.5, deep_every=0, batch=100)
        yield sim.timeout(3.0)
        daemon.stop()
        return victim, daemon

    victim, daemon = run(sim, proc())
    assert daemon.metrics.counter("meta_mismatches").value >= 1
    assert daemon.metrics.counter("repaired").value >= 1
    assert cluster.osds[victim].replica_clean(24, 0)
    assert bytes(cluster.osds[victim]._objects[(24, 0)]) == payload


@pytest.mark.scrub
def test_scrub_quarantines_unrepairable_object(sim, costs):
    """One replica, rotten: nothing to repair from. The scrub quarantines
    the object, reads refuse to return garbage, and a fresh full write
    lifts the quarantine."""
    cluster = make_cluster(sim, costs, replicas=1)
    payload = b"q" * units.kib(8)

    def proc():
        yield from cluster.write_extent(23, 0, payload)
        holder = cluster.monitor.holders(23, 0)[0]
        assert cluster.osds[holder].inject_bitrot(
            23, 0, make_rng(6, "quarantine")
        )
        daemon = ScrubDaemon(cluster)
        converged = yield from daemon.drain(max_passes=2)
        try:
            yield from cluster.read_extent(23, 0, len(payload))
            caught = None
        except DataCorrupt as err:
            caught = err
        quarantined = (23, 0) in cluster.quarantined
        yield from cluster.write_extent(23, 0, payload)
        errors_after = yield from daemon.sweep(deep=True)
        data = yield from cluster.read_extent(23, 0, len(payload))
        return converged, caught, quarantined, errors_after, data

    converged, caught, quarantined, errors_after, data = run(sim, proc())
    assert converged is False, "a quarantined object is never scrub-clean"
    assert isinstance(caught, DataCorrupt)
    assert quarantined
    assert errors_after == 0
    assert data == payload
    assert not cluster.quarantined


# --- fast-path guard ---------------------------------------------------------

def test_integrity_off_records_nothing_and_keeps_fast_path(sim, costs):
    cluster = make_cluster(sim, costs, replicas=2, integrity=False)
    payload = b"fast" * 100

    def proc():
        yield from cluster.write_extent(18, 0, payload)
        return (yield from cluster.read_extent(18, 0, len(payload)))

    assert run(sim, proc()) == payload
    assert not cluster.resilient
    assert all(not osd._digests for osd in cluster.osds)
    assert cluster.metrics.counter("checksum_failures").value == 0
    cluster.enable_integrity()
    assert cluster.resilient, "arming integrity opts into verified reads"


# --- client-visible semantics (EIO through the filesystem API) ---------------

def _make_client(sim, machine, cluster, costs, name):
    from repro.cephclient import CephLibClient
    account = machine.ram.child(units.mib(64), "%s.ram" % name)
    return CephLibClient(
        sim, cluster, costs, account, machine.activated, name=name
    )


def test_client_read_masks_single_corrupt_replica(sim, machine, costs):
    from tests.conftest import make_task

    cluster = make_cluster(sim, costs, replicas=2)
    client = _make_client(sim, machine, cluster, costs, "mask")
    task = make_task(sim, machine)
    payload = b"precious bytes" * 200

    def proc():
        yield from client.write_file(task, "/f", payload, sync=True)
        info = client.attr_cache["/f"]
        primary = cluster.crush.primary(info.ino, 0)
        assert cluster.osds[primary].inject_bitrot(
            info.ino, 0, make_rng(7, "client-mask")
        )
        client.cache.drop_ino(info.ino)  # force a backend read
        data = yield from client.read_file(task, "/f")
        yield sim.timeout(1.0)  # background read-repair completes
        return data, info.ino, primary

    data, ino, primary = run(sim, proc())
    assert data == payload
    assert cluster.osds[primary].replica_clean(ino, 0)


def test_client_read_surfaces_eio_when_all_replicas_corrupt(
        sim, machine, costs):
    from tests.conftest import make_task

    cluster = make_cluster(sim, costs, replicas=2)
    client = _make_client(sim, machine, cluster, costs, "eio")
    task = make_task(sim, machine)
    payload = b"unlucky" * 300

    def proc():
        yield from client.write_file(task, "/g", payload, sync=True)
        info = client.attr_cache["/g"]
        for n, osd_id in enumerate(cluster.monitor.holders(info.ino, 0)):
            assert cluster.osds[osd_id].inject_bitrot(
                info.ino, 0, make_rng(8, "client-eio", n)
            )
        client.cache.drop_ino(info.ino)
        try:
            yield from client.read_file(task, "/g")
        except FsError as err:
            return err
        return None

    err = run(sim, proc())
    assert isinstance(err, DataCorrupt), (
        "all-replica corruption must surface, not read back garbage"
    )
    assert err.errno == errno.EIO
