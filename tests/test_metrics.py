"""Unit tests for the metric primitives."""

import pytest

from repro.metrics import Counter, Gauge, Histogram, MetricSet


def test_counter_accumulates():
    counter = Counter("ops")
    counter.add()
    counter.add(4)
    assert counter.value == 5
    assert counter.rate(2.5) == pytest.approx(2.0)


def test_counter_rejects_decrease():
    counter = Counter("ops")
    with pytest.raises(ValueError):
        counter.add(-1)


def test_counter_rate_zero_elapsed():
    counter = Counter("ops")
    counter.add(10)
    assert counter.rate(0) == 0.0


def test_gauge_high_water():
    gauge = Gauge("depth")
    gauge.set(5)
    gauge.set(2)
    gauge.add(1)
    assert gauge.value == 3
    assert gauge.high_water == 5


def test_histogram_mean_and_count():
    hist = Histogram("lat")
    for value in (1.0, 2.0, 3.0):
        hist.observe(value)
    assert hist.count == 3
    assert hist.mean == pytest.approx(2.0)
    assert hist.min == 1.0
    assert hist.max == 3.0


def test_histogram_percentiles():
    hist = Histogram("lat")
    for value in range(1, 101):
        hist.observe(float(value))
    assert hist.p50 == pytest.approx(50.5)
    assert hist.percentile(0) == 1.0
    assert hist.percentile(100) == 100.0
    assert hist.p99 == pytest.approx(99.01)


def test_histogram_percentile_after_more_observations():
    hist = Histogram("lat")
    hist.observe(1.0)
    assert hist.p50 == 1.0
    hist.observe(3.0)  # re-sorts lazily
    assert hist.p50 == pytest.approx(2.0)


def test_empty_histogram_is_safe():
    hist = Histogram("lat")
    assert hist.mean == 0.0
    assert hist.p99 == 0.0


def test_metricset_creates_on_first_use():
    metrics = MetricSet()
    metrics.counter("a").add(2)
    assert metrics.counter("a").value == 2
    metrics.gauge("g").set(7)
    metrics.histogram("h").observe(1.5)
    snap = metrics.snapshot()
    assert snap["a"] == 2
    assert snap["g"] == 7
    assert snap["g.hw"] == 7
    assert snap["h.count"] == 1
    assert snap["h.mean"] == 1.5
