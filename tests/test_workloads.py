"""Tests for the workload generators."""

import pytest

from repro.common import units
from repro.stacks import StackFactory, mount_local
from repro.workloads import (
    Fileappend,
    Fileread,
    Fileserver,
    LighttpdFleet,
    MiniRocksDB,
    RandomIO,
    RocksDbGet,
    RocksDbPut,
    Seqread,
    Seqwrite,
    SysbenchCpu,
    Webserver,
    start_lighttpd,
)
from repro.world import World
from tests.conftest import run


@pytest.fixture
def world():
    world = World(num_cores=8, ram_bytes=units.gib(16))
    world.activate_cores(4)
    return world


@pytest.fixture
def pool(world):
    return world.engine.create_pool("p0", num_cores=2, ram_bytes=units.gib(4))


@pytest.fixture
def dmount(world, pool):
    return StackFactory(world, pool, "D").mount_root("c0")


def test_fileserver_produces_throughput(world, pool, dmount):
    workload = Fileserver(
        dmount.fs, pool, duration=3.0, threads=2, nfiles=20,
        mean_size=units.kib(32),
    )
    result = run(world.sim, workload.run(), until=60)
    assert result.ops > 10
    assert result.bytes_written > 0
    assert result.bytes_read > 0
    assert result.ops_per_sec > 0
    assert result.duration == pytest.approx(3.0, rel=0.5)


def test_fileserver_deterministic_given_seed(world):
    def measure():
        local_world = World(num_cores=8, ram_bytes=units.gib(16))
        local_world.activate_cores(4)
        local_pool = local_world.engine.create_pool(
            "p0", num_cores=2, ram_bytes=units.gib(4)
        )
        mount = StackFactory(local_world, local_pool, "D").mount_root("c0")
        workload = Fileserver(
            mount.fs, local_pool, duration=2.0, threads=2, nfiles=10,
            mean_size=units.kib(16), seed=42,
        )
        result = run(local_world.sim, workload.run(), until=60)
        return result.ops, result.bytes_written

    assert measure() == measure()


def test_webserver_is_read_dominated(world, pool):
    mount = mount_local(world, pool)
    workload = Webserver(
        mount.fs, pool, duration=2.0, threads=4, nfiles=40,
        mean_size=units.kib(8),
    )
    result = run(world.sim, workload.run(), until=60)
    assert result.bytes_read > result.bytes_written


def test_randomio_mixes_reads_and_writes(world, pool):
    mount = mount_local(world, pool)
    workload = RandomIO(
        mount.fs, pool, duration=2.0, file_size=units.mib(2), seed=3
    )
    result = run(world.sim, workload.run(), until=60)
    assert result.bytes_read > 0
    assert result.bytes_written > 0
    assert result.ops > 20


def test_seqwrite_streams(world, pool, dmount):
    workload = Seqwrite(
        dmount.fs, pool, duration=2.0, threads=2,
        file_size=units.mib(2), iosize=units.kib(256),
    )
    result = run(world.sim, workload.run(), until=60)
    assert result.bytes_written >= units.mib(1)


def test_seqread_hits_cache(world, pool, dmount):
    workload = Seqread(
        dmount.fs, pool, duration=2.0, threads=2,
        file_size=units.mib(1), iosize=units.kib(256),
    )
    result = run(world.sim, workload.run(), until=120)
    assert result.bytes_read > units.mib(2)  # multiple passes => cache hits
    assert dmount.client.cache.hits > 0


def test_sysbench_latency_tracks_request_cost(world, pool):
    workload = SysbenchCpu(pool, duration=2.0, threads=2, request_cpu=0.002)
    result = run(world.sim, workload.run(), until=30)
    assert result.ops > 100
    # Two threads on two cores: latency should be near the request cost.
    assert result.latency.mean == pytest.approx(0.002, rel=0.5)


def test_minirocksdb_roundtrip(world, pool, dmount):
    db = MiniRocksDB(
        dmount.fs, pool, memtable_bytes=units.kib(64)
    )
    task = pool.new_task()

    def proc():
        yield from db.open(task)
        for index in range(20):
            yield from db.put(task, "key%03d" % index, b"value-%03d" % index)
        yield from db.close(task)
        yield from db.open(task)
        values = []
        for index in (0, 7, 19):
            value = yield from db.get(task, "key%03d" % index)
            values.append(value)
        missing = yield from db.get(task, "nope")
        return values, missing, db.stats["flushes"]

    values, missing, flushes = run(world.sim, proc(), until=120)
    assert values == [b"value-000", b"value-007", b"value-019"]
    assert missing is None
    assert flushes >= 1  # tiny memtable forced SST flushes


def test_minirocksdb_overwrite_returns_latest(world, pool, dmount):
    db = MiniRocksDB(dmount.fs, pool, memtable_bytes=units.kib(32))
    task = pool.new_task()

    def proc():
        yield from db.open(task)
        yield from db.put(task, "k", b"old")
        for index in range(40):  # force flush cycles between versions
            yield from db.put(task, "pad%02d" % index, b"x" * 2048)
        yield from db.put(task, "k", b"new")
        yield from db.close(task)
        return (yield from db.get(task, "k"))

    assert run(world.sim, proc(), until=120) == b"new"


def test_minirocksdb_compaction_keeps_data(world, pool, dmount):
    db = MiniRocksDB(
        dmount.fs, pool, memtable_bytes=units.kib(16), l0_compaction_trigger=2
    )
    task = pool.new_task()

    def proc():
        yield from db.open(task)
        for index in range(60):
            yield from db.put(task, "key%03d" % index, b"v%03d" % index * 512)
        yield from db.close(task)
        checks = []
        for index in (0, 30, 59):
            value = yield from db.get(task, "key%03d" % index)
            checks.append(value == b"v%03d" % index * 512)
        return checks, db.stats["compactions"]

    checks, compactions = run(world.sim, proc(), until=240)
    assert all(checks)
    assert compactions >= 1


def test_rocksdb_put_workload(world, pool, dmount):
    workload = RocksDbPut(
        dmount.fs, pool, total_bytes=units.kib(512), value_size=units.kib(32),
        memtable_bytes=units.kib(128),
    )
    result = run(world.sim, workload.run(), until=120)
    assert result.ops == 16
    assert result.latency.mean > 0


def test_rocksdb_get_workload_out_of_core(world, pool, dmount):
    workload = RocksDbGet(
        dmount.fs, pool, populate_bytes=units.kib(512),
        value_size=units.kib(32), memtable_bytes=units.kib(128),
    )
    result = run(world.sim, workload.run(), until=240)
    assert result.bytes_read >= units.kib(512)
    assert result.errors == 0


def test_fileappend_triggers_cow(world, pool):
    from repro.containers import debian_base
    from tests.test_stacks import seed_image

    image, path = seed_image(world)
    factory = StackFactory(world, pool, "D")
    mount = factory.mount_root("c0", image_path=path)
    task = pool.new_task()
    shared = sorted(image.flat())[0]  # a file from the read-only lower

    workload = Fileappend(mount.fs, pool, path=shared, append_size=units.kib(64))
    result = run(world.sim, workload.run(), until=240)
    assert result.bytes_written == units.kib(64)
    assert mount.union.metrics.counter("copy_ups").value == 1
    # COW reads the whole lower file: read bytes on the client side.
    assert mount.union.metrics.counter("copy_up_bytes").value > 0


def test_fileread_reads_whole_file(world, pool, dmount):
    task = pool.new_task()
    payload = b"r" * units.mib(2)

    def prep():
        yield from dmount.fs.write_file(task, "/shared.bin", payload)

    run(world.sim, prep(), until=60)
    workload = Fileread(dmount.fs, pool, path="/shared.bin")
    result = run(world.sim, workload.run(), until=120)
    assert result.bytes_read == len(payload)


def test_lighttpd_startup_sequence(world, pool):
    from repro.containers import Container, lighttpd_image
    from tests.test_stacks import seed_image

    task = world.host_task("seed")
    image = lighttpd_image(scale=1.0 / 8192)
    # Seed the image into the shared namespace via a temporary client.
    from repro.cephclient import CephLibClient

    account = world.machine.ram.child(units.mib(64), "seed.ram")
    client = CephLibClient(
        world.sim, world.cluster, world.costs, account, world.machine.cores,
        name="seeder",
    )

    def seed():
        yield from world.engine.registry.materialize(
            task, world.engine.push_image(image), client, "/images/lighttpd"
        )
        yield from client.flush_all(task)
        client.stop()

    run(world.sim, seed(), until=2000)
    factory = StackFactory(world, pool, "D")
    mount = factory.mount_root("c0", image_path="/images/lighttpd")
    container = Container(pool, "c0", mount)
    fleet = LighttpdFleet([container], image)
    elapsed = run(world.sim, fleet.run(), until=2000)
    assert elapsed > 0
    assert len(fleet.per_container) == 1
    # exec/mmap crossed the legacy FUSE path.
    assert mount.ctx_switches() > 0


def test_minirocksdb_recovery_from_fresh_instance(world, pool, dmount):
    """A brand-new MiniRocksDB instance recovers SSTs and WAL records."""
    db = MiniRocksDB(dmount.fs, pool, memtable_bytes=units.kib(8))
    task = pool.new_task()

    def write_phase():
        yield from db.open(task)
        for index in range(30):
            yield from db.put(task, "key%03d" % index, b"v%03d" % index * 128)
        # Deliberately no close(): the last records live only in the WAL.

    run(world.sim, write_phase(), until=120)
    world.sim.run(until=world.sim.now + 5)  # let background flushes settle

    fresh = MiniRocksDB(dmount.fs, pool, memtable_bytes=units.kib(8))

    def recover_phase():
        yield from fresh.open(task)
        values = []
        for index in (0, 15, 29):
            value = yield from fresh.get(task, "key%03d" % index)
            values.append(value)
        return values

    values = run(world.sim, recover_phase(), until=120)
    assert values == [b"v%03d" % i * 128 for i in (0, 15, 29)]


def test_minirocksdb_recovery_prefers_newer_values(world, pool, dmount):
    """Stale WAL records must not shadow newer SST data after recovery."""
    db = MiniRocksDB(dmount.fs, pool, memtable_bytes=units.kib(4))
    task = pool.new_task()

    def write_phase():
        yield from db.open(task)
        yield from db.put(task, "k", b"old-value")
        for index in range(30):  # force flush cycles (old WAL retired)
            yield from db.put(task, "pad%02d" % index, b"x" * 512)
        yield from db.put(task, "k", b"new-value")
        yield from db.close(task)

    run(world.sim, write_phase(), until=120)

    fresh = MiniRocksDB(dmount.fs, pool, memtable_bytes=units.kib(4))

    def recover_phase():
        yield from fresh.open(task)
        return (yield from fresh.get(task, "k"))

    assert run(world.sim, recover_phase(), until=120) == b"new-value"
