"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Interrupt, Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_timeout_advances_clock(sim):
    log = []

    def proc():
        yield sim.timeout(1.5)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [1.5]


def test_timeout_value_passed_through(sim):
    def proc():
        got = yield sim.timeout(0.1, value="hello")
        return got

    assert sim.run_process(proc()) == "hello"


def test_negative_timeout_rejected(sim):
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_run_until_stops_early(sim):
    def proc():
        yield sim.timeout(10)

    sim.spawn(proc())
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_run_until_beyond_queue_advances_clock(sim):
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_events_fire_in_time_order(sim):
    order = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.spawn(waiter(3, "c"))
    sim.spawn(waiter(1, "a"))
    sim.spawn(waiter(2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo(sim):
    order = []

    def waiter(tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in range(5):
        sim.spawn(waiter(tag))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_process_return_value(sim):
    def child():
        yield sim.timeout(1)
        return 42

    def parent():
        value = yield sim.spawn(child())
        return value

    assert sim.run_process(parent()) == 42


def test_event_succeed_wakes_waiter(sim):
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(2)
        gate.succeed("open")

    sim.spawn(waiter())
    sim.spawn(opener())
    sim.run()
    assert log == [(2, "open")]


def test_event_fail_raises_in_waiter(sim):
    gate = sim.event()

    def waiter():
        with pytest.raises(ValueError):
            yield gate
        return "caught"

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    proc = sim.spawn(waiter())
    sim.spawn(failer())
    sim.run()
    assert proc.value == "caught"


def test_double_trigger_rejected(sim):
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_unobserved_crash_surfaces_in_run(sim):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("oops")

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_observed_crash_propagates_to_joiner(sim):
    def bad():
        yield sim.timeout(1)
        raise RuntimeError("oops")

    def parent():
        with pytest.raises(RuntimeError):
            yield sim.spawn(bad())
        return "handled"

    assert sim.run_process(parent()) == "handled"


def test_any_of_returns_first(sim):
    def slow():
        yield sim.timeout(5)
        return "slow"

    def fast():
        yield sim.timeout(1)
        return "fast"

    def parent():
        index, value = yield sim.any_of([sim.spawn(slow()), sim.spawn(fast())])
        return index, value, sim.now

    assert sim.run_process(parent()) == (1, "fast", 1)


def test_all_of_waits_for_all(sim):
    def worker(delay):
        yield sim.timeout(delay)
        return delay

    def parent():
        values = yield sim.all_of([sim.spawn(worker(d)) for d in (3, 1, 2)])
        return values, sim.now

    values, finished = sim.run_process(parent())
    assert values == [3, 1, 2]
    assert finished == 3


def test_all_of_empty_completes_immediately(sim):
    def parent():
        values = yield sim.all_of([])
        return values

    assert sim.run_process(parent()) == []


def test_interrupt_raises_inside_process(sim):
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            log.append((intr.cause, sim.now))
        return "done"

    def interrupter(target):
        yield sim.timeout(1)
        target.interrupt(cause="wakeup")

    target = sim.spawn(sleeper())
    sim.spawn(interrupter(target))
    sim.run()
    # The interrupt arrives at t=1; the abandoned 100s timer still ticks the
    # clock at the very end of run(), which is fine.
    assert log == [("wakeup", 1)]
    assert target.value == "done"


def test_interrupt_finished_process_is_noop(sim):
    def quick():
        yield sim.timeout(1)

    proc = sim.spawn(quick())
    sim.run()
    proc.interrupt()  # should not raise
    sim.run()


def test_spawn_rejects_non_generator(sim):
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)


def test_yield_non_event_is_an_error(sim):
    def bad():
        yield 42

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_events_do_not_cross_simulators():
    sim_a = Simulator()
    sim_b = Simulator()

    def proc():
        yield sim_b.timeout(1)

    sim_a.spawn(proc())
    with pytest.raises(SimulationError):
        sim_a.run()


def test_run_process_incomplete_raises(sim):
    def forever():
        while True:
            yield sim.timeout(1)

    with pytest.raises(SimulationError):
        sim.run_process(forever(), until=5)


def test_determinism_same_seed_same_trace():
    def build():
        sim = Simulator()
        order = []

        def worker(tag, delay):
            yield sim.timeout(delay)
            order.append((tag, sim.now))

        for tag in range(10):
            sim.spawn(worker(tag, (tag * 7) % 5 + 0.5))
        sim.run()
        return order

    assert build() == build()


def test_event_fail_through_any_of(sim):
    """A failed input propagates its exception through AnyOf to the waiter."""
    gate = sim.event()

    def waiter():
        try:
            yield sim.any_of([gate, sim.timeout(100)])
        except ValueError as err:
            return ("caught", str(err), sim.now)
        return "not raised"

    def failer():
        yield sim.timeout(1)
        gate.fail(ValueError("boom"))

    proc = sim.spawn(waiter())
    sim.spawn(failer())
    sim.run()
    assert proc.value == ("caught", "boom", 1)


def test_event_fail_through_all_of(sim):
    """AllOf surfaces a member failure instead of hanging forever."""
    gate = sim.event()

    def waiter():
        try:
            yield sim.all_of([sim.timeout(1), gate])
        except ValueError:
            return ("caught", sim.now)
        return "not raised"

    def failer():
        yield sim.timeout(2)
        gate.fail(ValueError("boom"))

    proc = sim.spawn(waiter())
    sim.spawn(failer())
    sim.run()
    assert proc.value == ("caught", 2)


def test_late_success_of_any_of_loser_is_harmless(sim):
    """After AnyOf fires, a losing input may still *succeed* silently.

    The retry machinery races an attempt against a timer and abandons the
    loser; an abandoned event completing later must not take down the run.
    """
    gate = sim.event()

    def waiter():
        index, _value = yield sim.any_of([sim.timeout(1), gate])
        return index

    def late_winner():
        yield sim.timeout(2)
        gate.succeed("too late")

    proc = sim.spawn(waiter())
    sim.spawn(late_winner())
    sim.run()
    assert proc.value == 0


def test_late_failure_of_any_of_loser_surfaces(sim):
    """A loser that *fails* after the race was decided is a real error.

    Failures used to be silently swallowed by the abandoned callback;
    the engine's contract is that bugs never pass silently, so the late
    failure is routed to the crash record and re-raised by run().
    """
    gate = sim.event()

    def waiter():
        index, _value = yield sim.any_of([sim.timeout(1), gate])
        return index

    def late_failer():
        yield sim.timeout(2)
        gate.fail(ValueError("too late"))

    proc = sim.spawn(waiter())
    sim.spawn(late_failer())
    with pytest.raises(SimulationError, match="too late"):
        sim.run()
    assert proc.value == 0  # the race itself was decided before the crash


def test_interrupt_during_timeout_runs_finally_blocks(sim):
    """An interrupt mid-Timeout unwinds try/finally in the process."""
    cleaned = []

    def holder():
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        finally:
            cleaned.append(sim.now)
        return "done"

    def interrupter(target):
        yield sim.timeout(1)
        target.interrupt(cause="shutdown")

    target = sim.spawn(holder())
    sim.spawn(interrupter(target))
    sim.run()
    assert cleaned == [1]
    assert target.value == "done"
