"""Tests for block-level cache deduplication (§9 extension)."""

import pytest

from repro.cephclient import CephLibClient
from repro.common import units
from repro.common.errors import ConfigError
from repro.costs import CostModel
from repro.net import Fabric
from repro.storage import CephCluster
from tests.conftest import make_task, run


@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(256))


@pytest.fixture
def cluster(sim, costs):
    return CephCluster(sim, Fabric(sim), costs, num_osds=4)


def make_client(sim, machine, cluster, costs, dedup, name):
    account = machine.ram.child(units.mib(64), name + ".ram")
    return CephLibClient(
        sim, cluster, costs, account, machine.activated, name=name,
        cache_dedup=dedup,
    )


def test_dedup_requires_fingerprint_fn():
    from repro.cephclient.cache import ObjectCache
    from repro.hw import RamAccount

    with pytest.raises(ConfigError):
        ObjectCache(units.mib(1), RamAccount(units.mib(1)), dedup=True)


def test_identical_files_cached_once(sim, machine, cluster, costs):
    client = make_client(sim, machine, cluster, costs, True, "dd")
    task = make_task(sim, machine)
    payload = b"shared image content " * 8192  # ~168 KiB

    def proc():
        # Two container roots holding byte-identical copies (independent
        # containers expanded from the same image, no union).
        yield from client.write_file(task, "/c0-rootfile", payload, sync=True)
        yield from client.write_file(task, "/c1-rootfile", payload, sync=True)
        ino0 = client.attr_cache["/c0-rootfile"].ino
        ino1 = client.attr_cache["/c1-rootfile"].ino
        client.cache.drop_ino(ino0)
        client.cache.drop_ino(ino1)
        before = client.account.used
        yield from client.read_file(task, "/c0-rootfile")
        after_first = client.account.used - before
        yield from client.read_file(task, "/c1-rootfile")
        after_second = client.account.used - before
        return after_first, after_second

    first, second = run(sim, proc())
    assert first > 0
    # The second copy costs (almost) nothing: it dedups against the first.
    assert second <= first + client.cache.block_size
    assert client.cache.dedup_saved_bytes >= len(payload) // 2


def test_different_content_not_deduped(sim, machine, cluster, costs):
    from repro.common.rng import make_rng

    client = make_client(sim, machine, cluster, costs, True, "dd2")
    task = make_task(sim, machine)
    # Non-repeating content: no two 64 KiB blocks are identical, within or
    # across the files (pseudo_bytes repeats and would self-dedup).
    blob_a = make_rng(1, "dedup-a").randbytes(units.kib(128))
    blob_b = make_rng(1, "dedup-b").randbytes(units.kib(128))

    def proc():
        yield from client.write_file(task, "/a", blob_a, sync=True)
        yield from client.write_file(task, "/b", blob_b, sync=True)
        for path in ("/a", "/b"):
            client.cache.drop_ino(client.attr_cache[path].ino)
        yield from client.read_file(task, "/a")
        yield from client.read_file(task, "/b")

    run(sim, proc())
    assert client.cache.dedup_saved_bytes == 0


def test_duplicate_blocks_within_one_file_dedup(sim, machine, cluster, costs):
    """Repeating content dedups against itself (block-level, not file)."""
    client = make_client(sim, machine, cluster, costs, True, "dd4")
    task = make_task(sim, machine)

    def proc():
        yield from client.write_file(
            task, "/rep", b"A" * units.kib(256), sync=True
        )
        client.cache.drop_ino(client.attr_cache["/rep"].ino)
        yield from client.read_file(task, "/rep")

    run(sim, proc())
    # 4 identical 64 KiB blocks: one charged, three by reference.
    assert client.cache.dedup_saved_bytes == 3 * client.cache.block_size


def test_dedup_refcount_survives_partial_drop(sim, machine, cluster, costs):
    client = make_client(sim, machine, cluster, costs, True, "dd3")
    task = make_task(sim, machine)
    payload = b"refcount me " * 16384

    def proc():
        yield from client.write_file(task, "/x", payload, sync=True)
        yield from client.write_file(task, "/y", payload, sync=True)
        for path in ("/x", "/y"):
            client.cache.drop_ino(client.attr_cache[path].ino)
        yield from client.read_file(task, "/x")
        yield from client.read_file(task, "/y")
        # Drop the first holder: the shared charge must migrate, not leak.
        client.cache.drop_ino(client.attr_cache["/x"].ino)
        used_after_drop = client.account.used
        data = yield from client.read_file(task, "/y")  # still resident
        return used_after_drop, data

    used_after_drop, data = run(sim, proc())
    assert data == payload
    assert used_after_drop > 0  # /y's blocks still charged
    # Dropping the survivor releases everything.
    client.cache.drop_ino(client.attr_cache["/y"].ino)
    assert client.cache.cached_bytes == client.cache.dirty_bytes


def test_dedup_off_by_default(sim, machine, cluster, costs):
    client = make_client(sim, machine, cluster, costs, False, "plain")
    task = make_task(sim, machine)
    payload = b"copy" * units.kib(32)

    def proc():
        yield from client.write_file(task, "/a", payload, sync=True)
        yield from client.write_file(task, "/b", payload, sync=True)

    run(sim, proc())
    assert not client.cache.dedup
    assert client.cache.dedup_saved_bytes == 0
