"""The partitioned parallel DES: protocol, determinism, decomposition.

Three layers under test:

* the cross-partition channel endpoints (``net.fabric``): delivery
  stamping, the conservative channel bound, deterministic drain order;
* the conservative runtime (``sim.parallel``): the in-process coupler
  and the one-OS-process-per-partition executor must produce
  **byte-identical** results on every workload — that equivalence is
  the whole correctness contract of the tentpole;
* the decomposition plumbing: ``World.partition_plan`` and the stack
  factory's partition tag, plus ``map_tasks`` for the independent
  per-machine case.
"""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.net.fabric import ChannelIn, ChannelOut, CrossChannel, Fabric
from repro.sim import Simulator
from repro.sim.bench import partitioned_reference
from repro.sim.parallel import (
    Partition,
    map_tasks,
    run_processes,
    run_sequential,
)


# -- engine hooks ---------------------------------------------------------

class TestEngineHooks:
    def test_peek_next_time_empty(self):
        assert Simulator().peek_next_time() is None

    def test_peek_next_time_sees_heap_and_now_queue(self):
        sim = Simulator()
        sim.schedule_external(0.5, lambda _p: None)
        assert sim.peek_next_time() == 0.5
        sim.schedule_external(0.0, lambda _p: None)  # now-queue entry
        assert sim.peek_next_time() == 0.0

    def test_schedule_external_runs_handler_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_external(0.25, seen.append, "payload")
        sim.run()
        assert seen == ["payload"]
        assert sim.now == 0.25

    def test_schedule_external_rejects_past(self):
        sim = Simulator()
        sim.schedule_external(0.1, lambda _p: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_external(0.05, lambda _p: None)


# -- channel endpoints ----------------------------------------------------

class TestChannels:
    def test_zero_lookahead_rejected(self):
        with pytest.raises(ConfigError):
            CrossChannel("c", "a", "b", 0.0)

    def test_fabric_exports_lookahead_and_channels(self):
        sim = Simulator()
        fabric = Fabric(sim)
        channel = fabric.channel("x", "a", "b")
        assert channel.latency == fabric.lookahead() > 0

    def test_send_stamps_delivery_and_seq(self):
        sim = Simulator()
        out = ChannelOut(sim, CrossChannel("c", "a", "b", 0.001))
        assert out.send("m1") == pytest.approx(0.001)
        out.send("m2", nbytes=100)
        msgs = out.flush()
        assert [(seq, p) for _t, seq, p in msgs] == [(1, "m1"), (2, "m2")]
        assert out.flush() == []
        assert out.sent == 2 and out.sent_bytes == 100

    def test_push_raises_bound_and_drain_orders(self):
        sim = Simulator()
        spec = CrossChannel("c", "a", "b", 0.001)
        seen = []
        cin = ChannelIn(sim, spec, seen.append)
        assert cin.bound == pytest.approx(0.001)  # peer clock 0 + la
        # Push out of order; drain must inject in (deliver_at, seq).
        cin.push(0.005, 2, "late")
        cin.push(0.003, 1, "early")
        assert cin.earliest() == pytest.approx(0.003)
        assert cin.bound == pytest.approx(0.005)  # a message is a promise
        assert cin.drain_until(0.004) == 1
        sim.run()
        cin.drain_until(0.005)
        sim.run()
        assert seen == ["early", "late"]

    def test_null_promise_raises_bound(self):
        sim = Simulator()
        cin = ChannelIn(sim, CrossChannel("c", "a", "b", 0.001), lambda _p: None)
        cin.promise(0.01)
        assert cin.bound == pytest.approx(0.011)
        cin.promise(0.005)  # promises never lower the bound
        assert cin.bound == pytest.approx(0.011)


# -- coupled partitions ---------------------------------------------------

def _pingpong_partitions(count=10, lookahead=0.0005):
    """Two partitions bouncing a counter; returns (partitions, channels)."""
    def make_build(tag):
        def build(sim, ports):
            log = []
            out = ports.out("a2b" if tag == "a" else "b2a")

            def on_msg(payload):
                log.append((sim.now, payload))
                if payload < count:
                    out.send(payload + 1)

            ports.on("b2a" if tag == "a" else "a2b", on_msg)
            if tag == "a":
                def kick():
                    yield sim.timeout(0.001)
                    out.send(0)
                sim.spawn(kick())
            return lambda: log
        return build

    channels = [CrossChannel("a2b", "a", "b", lookahead),
                CrossChannel("b2a", "b", "a", lookahead)]
    partitions = [Partition("a", make_build("a")),
                  Partition("b", make_build("b"))]
    return partitions, channels


class TestCoupledProtocol:
    def test_sequential_coupler_delivers_in_order(self):
        partitions, channels = _pingpong_partitions(count=6)
        results, stats = run_sequential(partitions, channels)
        a_log, b_log = results["a"], results["b"]
        # b sees 0,2,4,6; a sees the odd replies.
        assert [p for _t, p in b_log] == [0, 2, 4, 6]
        assert [p for _t, p in a_log] == [1, 3, 5]
        assert all(row["msgs_in"] + row["msgs_out"] > 0 for row in stats)

    def test_small_lookahead_does_not_livelock(self):
        # 1us lookahead against millisecond event gaps: without the
        # global floor this needs ~1000 null rounds per hop; with it the
        # coupler jumps straight to the next global event.
        partitions, channels = _pingpong_partitions(
            count=4, lookahead=1e-6,
        )
        results, stats = run_sequential(partitions, channels)
        assert [p for _t, p in results["b"]] == [0, 2, 4]
        total_rounds = sum(row["rounds"] for row in stats)
        assert total_rounds < 50

    def test_processes_match_sequential_exactly(self):
        partitions, channels = _pingpong_partitions(count=10)
        seq_results, _ = run_sequential(partitions, channels)
        partitions2, _ = _pingpong_partitions(count=10)
        proc_results, proc_stats = run_processes(partitions2, channels)
        assert proc_results == seq_results
        assert {row["partition"] for row in proc_stats} == {"a", "b"}

    def test_validation_rejects_bad_topologies(self):
        def build(sim, ports):
            return None

        with pytest.raises(ConfigError):
            run_sequential([Partition("a", build), Partition("a", build)])
        with pytest.raises(ConfigError):
            run_sequential(
                [Partition("a", build)],
                [CrossChannel("c", "a", "ghost", 0.001)],
            )
        with pytest.raises(ConfigError):
            run_sequential(
                [Partition("a", build)],
                [CrossChannel("c", "a", "a", 0.001)],
            )

    def test_unhandled_in_channel_rejected(self):
        def build(sim, ports):
            return None  # never calls ports.on("c")

        def sender(sim, ports):
            return None

        with pytest.raises(ConfigError):
            run_sequential(
                [Partition("a", sender), Partition("b", build)],
                [CrossChannel("c", "a", "b", 0.001)],
            )


class TestPartitionedReference:
    def test_fingerprint_identical_across_modes(self):
        seq_digest, seq_stats = partitioned_reference(parallel=False)
        proc_digest, proc_stats = partitioned_reference(parallel=True)
        assert seq_digest == proc_digest
        # Same simulated work in both modes, round for round.
        key = lambda rows: sorted(
            (r["partition"], r["rounds"], r["msgs_in"], r["msgs_out"])
            for r in rows
        )
        assert key(seq_stats) == key(proc_stats)

    def test_fingerprint_stable_across_repeats(self):
        first, _ = partitioned_reference(parallel=True)
        second, _ = partitioned_reference(parallel=True)
        assert first == second

    def test_more_hosts_still_identical(self):
        seq_digest, _ = partitioned_reference(hosts=3, requests=8,
                                              parallel=False)
        proc_digest, _ = partitioned_reference(hosts=3, requests=8,
                                               parallel=True)
        assert seq_digest == proc_digest


# -- independent machine tasks --------------------------------------------

def _square_task(value):
    return value * value


def _sim_task(seed):
    """A small real simulation per task (one machine's worth of work)."""
    sim = Simulator()
    log = []

    def proc(tag):
        for step in range(5):
            yield sim.timeout(0.001 * ((seed + tag + step) % 7 + 1))
            log.append((tag, step, sim.now))

    for tag in range(3):
        sim.spawn(proc(tag))
    sim.run()
    return log


class TestMapTasks:
    def test_inline_preserves_order(self):
        values, rows = map_tasks(
            [("t%d" % i, _square_task, {"value": i}) for i in range(5)],
            workers=1,
        )
        assert values == [0, 1, 4, 9, 16]
        assert [row["partition"] for row in rows] == \
            ["t%d" % i for i in range(5)]
        assert all(row["mode"] == "inline" for row in rows)

    def test_fork_matches_inline(self):
        tasks = [("s%d" % seed, _sim_task, {"seed": seed})
                 for seed in range(6)]
        inline_values, _ = map_tasks(tasks, workers=1)
        fork_values, rows = map_tasks(tasks, workers=3)
        assert fork_values == inline_values
        assert all(row["mode"] == "fork" for row in rows)

    def test_single_task_runs_inline_even_with_workers(self):
        values, rows = map_tasks(
            [("only", _square_task, {"value": 7})], workers=4,
        )
        assert values == [49]
        assert rows[0]["mode"] == "inline"


# -- topology decomposition -----------------------------------------------

class TestPartitionPlan:
    def test_world_plan_shape(self):
        from repro.world import World

        world = World()
        world.add_host("h1")
        plan = world.partition_plan()
        assert set(plan["partitions"]) == {
            "cluster", "host:client", "host:h1",
        }
        assert plan["lookahead"] == world.fabric.lookahead() > 0
        names = {ch.name: (ch.src, ch.dst) for ch in plan["channels"]}
        assert names["host:client->cluster"] == ("host:client", "cluster")
        assert names["cluster->host:h1"] == ("cluster", "host:h1")
        # Cluster members cover every OSD plus the MDS.
        members = plan["partitions"]["cluster"]
        assert "mds" in members
        assert len([m for m in members if m.startswith("osd")]) == \
            len(world.cluster.osds)

    def test_factory_inherits_pool_partition(self):
        from repro.common import units
        from repro.stacks import StackFactory
        from repro.world import World

        world = World()
        other = world.add_host("h1")
        pool = world.engine.create_pool(
            "p0", num_cores=2, ram_bytes=units.gib(4),
        )
        factory = StackFactory(world, pool, "D")
        assert factory.partition == "host:client"
        pool2 = other.engine.create_pool(
            "p1", num_cores=2, ram_bytes=units.gib(4),
        )
        factory2 = StackFactory(world, pool2, "D")
        assert factory2.partition == "host:h1"

    def test_simulator_partition_defaults_to_none(self):
        assert Simulator().partition is None
