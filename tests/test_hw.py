"""Unit tests for the hardware models (machine, disks, RAM accounting)."""

import pytest

from repro.common import units
from repro.common.errors import ConfigError, OutOfMemory
from repro.hw import Disk, Machine, Raid0, RamDisk


# --- Machine -----------------------------------------------------------------

def test_machine_core_groups_are_pairs(sim):
    machine = Machine(sim, num_cores=8, cores_per_group=2)
    assert len(machine.core_groups) == 4
    for group in machine.core_groups:
        assert len(group.cores) == 2


def test_activate_and_allocate_cores(sim):
    machine = Machine(sim, num_cores=16)
    machine.activate_cores(4)
    pool_a = machine.allocate_cores(2)
    pool_b = machine.allocate_cores(2)
    assert [c.index for c in pool_a] == [0, 1]
    assert [c.index for c in pool_b] == [2, 3]
    with pytest.raises(ConfigError):
        machine.allocate_cores(2)


def test_pool_allocation_lands_on_one_core_group(sim):
    machine = Machine(sim, num_cores=8, cores_per_group=2)
    machine.activate_cores(4)
    pool = machine.allocate_cores(2)
    groups = machine.groups_covering(pool)
    assert len(groups) == 1


def test_activate_invalid_count_rejected(sim):
    machine = Machine(sim, num_cores=4)
    with pytest.raises(ConfigError):
        machine.activate_cores(0)
    with pytest.raises(ConfigError):
        machine.activate_cores(5)


def test_group_of_unknown_core_rejected(sim):
    machine = Machine(sim, num_cores=4)
    other = Machine(sim, name="other", num_cores=4)
    with pytest.raises(ConfigError):
        machine.group_of(other.cores[0])


# --- RAM accounting ---------------------------------------------------------

def test_ram_charge_and_uncharge(sim):
    machine = Machine(sim, ram_bytes=units.mib(100))
    machine.ram.charge(units.mib(60))
    assert machine.ram.used == units.mib(60)
    machine.ram.uncharge(units.mib(10))
    assert machine.ram.used == units.mib(50)
    assert machine.ram.high_water == units.mib(60)


def test_ram_over_charge_raises(sim):
    machine = Machine(sim, ram_bytes=units.mib(10))
    with pytest.raises(OutOfMemory):
        machine.ram.charge(units.mib(11))


def test_child_account_charges_parent(sim):
    machine = Machine(sim, ram_bytes=units.mib(100))
    cgroup = machine.ram.child(units.mib(20), "pool0")
    cgroup.charge(units.mib(15))
    assert machine.ram.used == units.mib(15)
    with pytest.raises(OutOfMemory):
        cgroup.charge(units.mib(6))  # child limit hit first
    cgroup.uncharge(units.mib(15))
    assert machine.ram.used == 0


def test_child_limit_cannot_exceed_parent_space(sim):
    machine = Machine(sim, ram_bytes=units.mib(10))
    cgroup = machine.ram.child(units.mib(50), "greedy")
    with pytest.raises(OutOfMemory):
        cgroup.charge(units.mib(20))  # parent capacity enforced


def test_can_charge_checks_ancestors(sim):
    machine = Machine(sim, ram_bytes=units.mib(10))
    cgroup = machine.ram.child(units.mib(50), "pool")
    assert cgroup.can_charge(units.mib(10))
    assert not cgroup.can_charge(units.mib(11))


def test_uncharge_more_than_used_rejected(sim):
    machine = Machine(sim, ram_bytes=units.mib(10))
    with pytest.raises(ConfigError):
        machine.ram.uncharge(1)


# --- Disks -------------------------------------------------------------------

def test_disk_sequential_transfer_time(sim):
    disk = Disk(sim, bandwidth=units.mib(100), seq_position_time=0)

    def proc():
        yield from disk.transfer(units.mib(10))
        return sim.now

    assert sim.run_process(proc()) == pytest.approx(0.1)
    assert disk.bytes_read == units.mib(10)


def test_disk_random_io_pays_positioning(sim):
    disk = Disk(
        sim,
        bandwidth=units.mib(100),
        seq_position_time=0,
        rand_position_time=units.msec(10),
    )

    def proc():
        yield from disk.transfer(units.kib(4), write=True, random_access=True)
        return sim.now

    elapsed = sim.run_process(proc())
    assert elapsed == pytest.approx(units.msec(10) + units.kib(4) / units.mib(100))
    assert disk.bytes_written == units.kib(4)


def test_disk_serialises_requests(sim):
    disk = Disk(sim, bandwidth=units.mib(100), seq_position_time=0)
    finish = []

    def proc():
        yield from disk.transfer(units.mib(10))
        finish.append(sim.now)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    assert finish == [pytest.approx(0.1), pytest.approx(0.2)]


def test_ramdisk_is_fast(sim):
    ramdisk = RamDisk(sim)

    def proc():
        yield from ramdisk.transfer(units.mib(1), random_access=True)
        return sim.now

    assert sim.run_process(proc()) < units.msec(1)


def test_raid0_parallelises_across_disks(sim):
    disks = [
        Disk(sim, name="d%d" % i, bandwidth=units.mib(100), seq_position_time=0)
        for i in range(4)
    ]
    raid = Raid0(sim, disks, chunk=units.kib(64))

    def proc():
        yield from raid.transfer(units.mib(40))
        return sim.now

    # 40 MiB over 4 disks at 100 MiB/s each -> ~0.1s instead of 0.4s.
    assert sim.run_process(proc()) == pytest.approx(0.1, rel=0.05)
    assert raid.bandwidth == units.mib(400)


def test_raid0_small_io_touches_one_disk(sim):
    disks = [Disk(sim, name="d%d" % i) for i in range(4)]
    raid = Raid0(sim, disks, chunk=units.kib(64))

    def proc():
        yield from raid.transfer(units.kib(4))

    sim.run_process(proc())
    touched = [d for d in disks if d.bytes_read > 0]
    assert len(touched) == 1


def test_raid0_requires_disks(sim):
    with pytest.raises(ValueError):
        Raid0(sim, [])
