"""Functional equivalence across the Table-1 stacks.

Whatever the performance differences, every configuration must be a
*correct* filesystem: one scripted operation sequence executed on each
stack must leave byte-identical observable state. The reference model is
a plain dict; the script covers create/overwrite/append/rename/unlink/
truncate/mkdir/readdir plus image-shadowing for the union stacks.
"""

import pytest

from repro.common import units
from repro.common.errors import FileNotFound
from repro.fs.api import OpenFlags
from repro.stacks import SYMBOLS, StackFactory
from repro.world import World
from tests.conftest import run

IMAGE_FILES = {
    "/etc/base.conf": b"from the image",
    "/usr/lib/shared.so": b"\x7fELF" + b"lib" * 100,
    "/usr/doomed.txt": b"will be deleted",
}


def build_world():
    world = World(num_cores=8, ram_bytes=units.gib(8))
    world.activate_cores(4)
    return world


def seed(world):
    from repro.bench.util import seed_tree

    seed_tree(world, IMAGE_FILES, "/images/eq")


def script(fs, task):
    """The op sequence; returns the observable outcome dict."""
    outcome = {}
    yield from fs.makedirs(task, "/app/data")
    yield from fs.write_file(task, "/app/data/a.bin", b"alpha-contents")
    # Overwrite with truncation.
    yield from fs.write_file(task, "/app/data/a.bin", b"ALPHA")
    # Append.
    handle = yield from fs.open(
        task, "/app/data/a.bin", OpenFlags.WRONLY | OpenFlags.APPEND
    )
    yield from fs.write(task, handle, 0, b"+tail")
    yield from fs.close(task, handle)
    # Sparse write.
    handle = yield from fs.open(
        task, "/app/data/sparse.bin", OpenFlags.CREAT | OpenFlags.RDWR
    )
    yield from fs.write(task, handle, 10, b"X")
    yield from fs.close(task, handle)
    # Rename + unlink.
    yield from fs.write_file(task, "/app/data/tmp", b"moving")
    yield from fs.rename(task, "/app/data/tmp", "/app/data/moved")
    yield from fs.write_file(task, "/app/data/junk", b"junk")
    yield from fs.unlink(task, "/app/data/junk")
    # Truncate shrink.
    yield from fs.write_file(task, "/app/data/trunc", b"0123456789")
    yield from fs.truncate(task, "/app/data/trunc", 4)

    outcome["a.bin"] = yield from fs.read_file(task, "/app/data/a.bin")
    outcome["sparse"] = yield from fs.read_file(task, "/app/data/sparse.bin")
    outcome["moved"] = yield from fs.read_file(task, "/app/data/moved")
    outcome["trunc"] = yield from fs.read_file(task, "/app/data/trunc")
    outcome["listing"] = tuple(
        (yield from fs.readdir(task, "/app/data"))
    )
    stat = yield from fs.stat(task, "/app/data/a.bin")
    outcome["a.size"] = stat.size
    outcome["junk_exists"] = yield from fs.exists(task, "/app/data/junk")
    return outcome


EXPECTED = {
    "a.bin": b"ALPHA+tail",
    "sparse": b"\x00" * 10 + b"X",
    "moved": b"moving",
    "trunc": b"0123",
    "listing": ("a.bin", "moved", "sparse.bin", "trunc"),
    "a.size": 10,
    "junk_exists": False,
}


def union_script(fs, task):
    """Extra checks for stacks with an image lower branch."""
    outcome = {}
    outcome["image_read"] = yield from fs.read_file(task, "/etc/base.conf")
    # Shadow an image file (copy-up) and delete another (whiteout).
    handle = yield from fs.open(
        task, "/etc/base.conf", OpenFlags.WRONLY | OpenFlags.APPEND
    )
    yield from fs.write(task, handle, 0, b" + local override")
    yield from fs.close(task, handle)
    outcome["shadowed"] = yield from fs.read_file(task, "/etc/base.conf")
    yield from fs.unlink(task, "/usr/doomed.txt")
    outcome["doomed_exists"] = yield from fs.exists(task, "/usr/doomed.txt")
    outcome["usr_listing"] = tuple((yield from fs.readdir(task, "/usr")))
    return outcome


UNION_EXPECTED = {
    "image_read": b"from the image",
    "shadowed": b"from the image + local override",
    "doomed_exists": False,
    "usr_listing": ("lib",),
}


@pytest.mark.parametrize("symbol", SYMBOLS)
def test_stack_equivalence(symbol):
    world = build_world()
    wants_union = "/" in symbol
    image_path = None
    if wants_union:
        seed(world)
        image_path = "/images/eq"
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, symbol).mount_root(
        "c0", image_path=image_path
    )
    task = pool.new_task()
    outcome = run(world.sim, script(mount.fs, task), until=4000)
    assert outcome == EXPECTED, "stack %s diverged" % symbol
    if wants_union:
        union_outcome = run(
            world.sim, union_script(mount.fs, task), until=4000
        )
        assert union_outcome == UNION_EXPECTED, (
            "union stack %s diverged" % symbol
        )


@pytest.mark.parametrize("symbol", ["D", "K", "F"])
def test_stack_state_visible_through_fresh_client(symbol):
    """After a flush, a brand-new client observes the script's outcome."""
    from repro.cephclient import CephLibClient

    world = build_world()
    pool = world.engine.create_pool("p", num_cores=2, ram_bytes=units.gib(2))
    mount = StackFactory(world, pool, symbol).mount_root("c0")
    task = pool.new_task()
    run(world.sim, script(mount.fs, task), until=4000)

    def flush():
        if hasattr(mount.client, "flush_all"):
            yield from mount.client.flush_all(task)
        else:
            handle = yield from mount.fs.open(task, "/app/data/a.bin")
            yield from mount.fs.fsync(task, handle)
            yield from mount.fs.close(task, handle)
        # Kernel-backed stacks flush through writeback; give it a beat.

    run(world.sim, flush(), until=4000)
    world.sim.run(until=world.sim.now + 2.0)

    account = world.machine.ram.child(units.mib(64), "audit.ram")
    auditor = CephLibClient(
        world.sim, world.cluster, world.costs, account,
        world.machine.cores, name="auditor",
    )
    audit_task = world.host_task("audit")

    def audit():
        return (
            yield from auditor.read_file(
                audit_task, "/pools/p/c0/app/data/a.bin"
            )
        )

    assert run(world.sim, audit(), until=4000) == EXPECTED["a.bin"]
