"""Tests for the ASCII chart renderer."""

from repro.bench.charts import bar_chart, grouped_bar_chart, spark


ROWS = [
    {"symbol": "K", "ops": 22171.0, "pools": 1},
    {"symbol": "D", "ops": 7243.0, "pools": 1},
    {"symbol": "K", "ops": 1646.0, "pools": 4},
    {"symbol": "D", "ops": 7242.0, "pools": 4},
]


def test_bar_chart_scales_to_peak():
    chart = bar_chart(ROWS[:2], "symbol", "ops", width=20)
    lines = chart.splitlines()
    assert len(lines) == 2
    k_bar = lines[0].count("█")
    d_bar = lines[1].count("█")
    assert k_bar == 20  # the peak fills the width
    assert 5 <= d_bar <= 8  # ~7243/22171 of 20


def test_bar_chart_includes_labels_and_values():
    chart = bar_chart(ROWS[:2], "symbol", "ops")
    assert "K" in chart and "D" in chart
    assert "2.217e+04" in chart or "22171" in chart


def test_bar_chart_empty():
    assert bar_chart([], "symbol", "ops") == "(no data)"


def test_bar_chart_zero_peak():
    chart = bar_chart([{"s": "x", "v": 0.0}], "s", "v")
    assert "x" in chart  # no crash on all-zero data


def test_grouped_bar_chart_separates_groups():
    chart = grouped_bar_chart(ROWS, "pools", "symbol", "ops", width=10)
    assert "pools = 1" in chart
    assert "pools = 4" in chart
    # Scaling is global: the pools=4 K bar is tiny vs the pools=1 K bar.
    lines = chart.splitlines()
    k1 = next(l for l in lines[1:3] if " K" in l or l.strip().startswith("K"))
    assert k1.count("█") == 10


def test_spark_shape():
    line = spark([0, 1, 2, 3, 4, 5, 6, 7])
    assert len(line) == 8
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_spark_flat_series():
    assert spark([5, 5, 5]) == "▁▁▁"


def test_spark_downsamples():
    line = spark(list(range(100)), width=10)
    assert len(line) == 10


def test_spark_empty():
    assert spark([]) == ""
