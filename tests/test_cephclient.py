"""Integration tests for both Ceph client personalities."""

import pytest

from repro.cephclient import CephKernelFs, CephLibClient
from repro.common import units
from repro.common.errors import FileNotFound
from repro.costs import CostModel
from repro.fs.api import OpenFlags
from repro.net import Fabric
from repro.storage import CephCluster
from tests.conftest import make_task, run


@pytest.fixture
def costs():
    return CostModel(object_size=units.kib(256))


@pytest.fixture
def cluster(sim, costs):
    return CephCluster(sim, Fabric(sim), costs, num_osds=4)


@pytest.fixture
def libclient(sim, machine, cluster, costs):
    account = machine.ram.child(units.mib(256), "pool-ram")
    return CephLibClient(
        sim, cluster, costs, account, machine.activated, name="libc-test"
    )


@pytest.fixture
def kernelclient(kernel, cluster):
    return CephKernelFs(kernel, cluster, name="cephk-test")


CLIENTS = ["lib", "kernel"]


def pick(which, libclient, kernelclient):
    return libclient if which == "lib" else kernelclient


@pytest.mark.parametrize("which", CLIENTS)
def test_roundtrip(sim, machine, libclient, kernelclient, which):
    fs = pick(which, libclient, kernelclient)
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/f", b"payload-bytes")
        return (yield from fs.read_file(task, "/f"))

    assert run(sim, proc()) == b"payload-bytes"


@pytest.mark.parametrize("which", CLIENTS)
def test_stat_tracks_local_writes(sim, machine, libclient, kernelclient, which):
    fs = pick(which, libclient, kernelclient)
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/f", b"x" * 1000)
        stat = yield from fs.stat(task, "/f")
        return stat.size

    assert run(sim, proc()) == 1000


@pytest.mark.parametrize("which", CLIENTS)
def test_append_mode(sim, machine, libclient, kernelclient, which):
    fs = pick(which, libclient, kernelclient)
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/log", b"aaa")
        handle = yield from fs.open(
            task, "/log", OpenFlags.WRONLY | OpenFlags.APPEND
        )
        yield from fs.write(task, handle, 0, b"bbb")
        yield from fs.close(task, handle)
        return (yield from fs.read_file(task, "/log"))

    assert run(sim, proc()) == b"aaabbb"


@pytest.mark.parametrize("which", CLIENTS)
def test_namespace_ops(sim, machine, libclient, kernelclient, which):
    fs = pick(which, libclient, kernelclient)
    task = make_task(sim, machine)

    def proc():
        yield from fs.mkdir(task, "/d")
        yield from fs.write_file(task, "/d/a", b"1")
        yield from fs.write_file(task, "/d/b", b"2")
        names = yield from fs.readdir(task, "/d")
        yield from fs.unlink(task, "/d/a")
        yield from fs.rename(task, "/d/b", "/d/c")
        after = yield from fs.readdir(task, "/d")
        return names, after

    names, after = run(sim, proc())
    assert names == ["a", "b"]
    assert after == ["c"]


@pytest.mark.parametrize("which", CLIENTS)
def test_truncate_resets_content(sim, machine, libclient, kernelclient, which):
    fs = pick(which, libclient, kernelclient)
    task = make_task(sim, machine)

    def proc():
        yield from fs.write_file(task, "/f", b"0123456789", sync=True)
        yield from fs.truncate(task, "/f", 4)
        stat = yield from fs.stat(task, "/f")
        data = yield from fs.read_file(task, "/f")
        return stat.size, data

    size, data = run(sim, proc())
    assert size == 4
    assert data == b"0123"


def test_lib_write_is_buffered_until_flush(sim, machine, cluster, libclient):
    task = make_task(sim, machine)

    def proc():
        yield from libclient.write_file(task, "/f", b"d" * units.kib(100))
        return cluster.file_bytes_now()

    # Helper: measure stored bytes right after the un-synced write.
    cluster.file_bytes_now = lambda: cluster.stored_bytes
    stored = run(sim, proc(), until=0.5)
    assert stored == 0  # still in the client write-behind buffer
    assert libclient.cache.dirty_bytes == units.kib(100)


def test_lib_fsync_pushes_to_osds(sim, machine, cluster, libclient):
    task = make_task(sim, machine)

    def proc():
        yield from libclient.write_file(task, "/f", b"d" * units.kib(100), sync=True)

    run(sim, proc())
    assert cluster.stored_bytes == units.kib(100)
    assert libclient.cache.dirty_bytes == 0


def test_lib_background_flusher_eventually_flushes(sim, machine, cluster, libclient):
    task = make_task(sim, machine)

    def proc():
        yield from libclient.write_file(task, "/f", b"d" * units.kib(64))

    run(sim, proc(), until=0.5)
    assert cluster.stored_bytes == 0
    sim.run(until=30)  # expire interval (5s) + flusher interval (1s)
    assert cluster.stored_bytes == units.kib(64)


def test_kernel_writeback_flushes_ceph_dirty_pages(
    sim, machine, kernel, cluster, kernelclient
):
    task = make_task(sim, machine)

    def proc():
        yield from kernelclient.write_file(task, "/f", b"d" * units.kib(64))

    run(sim, proc(), until=0.5)
    assert cluster.stored_bytes == 0
    sim.run(until=30)
    assert cluster.stored_bytes == units.kib(64)
    assert kernel.page_cache.dirty_bytes == 0


def test_close_to_open_consistency_across_clients(sim, machine, cluster, costs):
    """Writer flushes on fsync; a second client sees the data on open."""
    account_a = machine.ram.child(units.mib(64), "a")
    account_b = machine.ram.child(units.mib(64), "b")
    client_a = CephLibClient(
        sim, cluster, costs, account_a, machine.activated, name="a"
    )
    client_b = CephLibClient(
        sim, cluster, costs, account_b, machine.activated, name="b"
    )
    task = make_task(sim, machine)

    def proc():
        yield from client_a.write_file(task, "/shared", b"from-a", sync=True)
        data = yield from client_b.read_file(task, "/shared")
        return data

    assert run(sim, proc()) == b"from-a"


def test_unflushed_write_invisible_to_other_client(sim, machine, cluster, costs):
    """Before any flush another client reads stale (empty) content (§3.4)."""
    account_a = machine.ram.child(units.mib(64), "a2")
    account_b = machine.ram.child(units.mib(64), "b2")
    client_a = CephLibClient(
        sim, cluster, costs, account_a, machine.activated, name="a2",
        start_flusher=False,
    )
    client_b = CephLibClient(
        sim, cluster, costs, account_b, machine.activated, name="b2"
    )
    task = make_task(sim, machine)

    def proc():
        yield from client_a.write_file(task, "/shared", b"pending")
        stat = yield from client_b.stat(task, "/shared")
        return stat.size

    assert run(sim, proc(), until=0.5) == 0


def test_lib_cached_read_faster_than_cold(sim, machine, libclient):
    task = make_task(sim, machine)
    payload = b"z" * units.mib(1)

    def proc():
        yield from libclient.write_file(task, "/big", payload, sync=True)
        libclient.cache.drop_ino(libclient.attr_cache["/big"].ino)
        handle = yield from libclient.open(task, "/big")
        start = sim.now
        yield from libclient.read(task, handle, 0, len(payload))
        cold = sim.now - start
        start = sim.now
        yield from libclient.read(task, handle, 0, len(payload))
        warm = sim.now - start
        yield from libclient.close(task, handle)
        return cold, warm

    cold, warm = run(sim, proc())
    assert warm < cold / 2


def test_client_lock_serialises_cached_reads(sim, machine, cluster, costs):
    """Coarse locking makes N concurrent cached readers ~N times slower
    than fine-grained locking — the paper's Seqread bottleneck."""

    def measure(fine_grained):
        from repro.sim import Simulator
        from repro.hw import Machine

        local_sim = Simulator()
        local_machine = Machine(local_sim, num_cores=8, ram_bytes=units.gib(4))
        local_cluster = CephCluster(local_sim, Fabric(local_sim), costs, num_osds=4)
        account = local_machine.ram.child(units.mib(512), "pool")
        client = CephLibClient(
            local_sim, local_cluster, costs, account, local_machine.activated,
            name="c", fine_grained_locking=fine_grained,
        )
        payload = b"y" * units.mib(2)
        setup = make_task(local_sim, local_machine, "setup")

        def prepare():
            for index in range(4):
                yield from client.write_file(
                    setup, "/f%d" % index, payload, sync=True
                )
            # warm the cache
            for index in range(4):
                yield from client.read_file(setup, "/f%d" % index)

        run(local_sim, prepare())
        start = local_sim.now
        done = []

        def reader(index):
            reader_task = make_task(local_sim, local_machine, "r%d" % index)
            yield from client.read_file(reader_task, "/f%d" % index)
            done.append(local_sim.now)

        for index in range(4):
            local_sim.spawn(reader(index))
        local_sim.run(until=start + 100)
        assert len(done) == 4
        return max(done) - start

    coarse = measure(fine_grained=False)
    fine = measure(fine_grained=True)
    assert coarse > fine * 1.5


def test_lib_open_missing_raises(sim, machine, libclient):
    task = make_task(sim, machine)

    def proc():
        with pytest.raises(FileNotFound):
            yield from libclient.open(task, "/nope")
        return True

    assert run(sim, proc())


def test_lib_cache_memory_is_charged_to_pool(sim, machine, cluster, costs):
    account = machine.ram.child(units.mib(64), "charged")
    client = CephLibClient(
        sim, cluster, costs, account, machine.activated, name="chg"
    )
    task = make_task(sim, machine)

    def proc():
        yield from client.write_file(task, "/f", b"m" * units.mib(1))

    run(sim, proc(), until=0.5)
    assert account.used >= units.mib(1)


def test_lib_cache_capacity_evicts(sim, machine, cluster, costs):
    account = machine.ram.child(units.mib(64), "small")
    client = CephLibClient(
        sim, cluster, costs, account, machine.activated, name="small",
        cache_bytes=units.mib(1),
    )
    task = make_task(sim, machine)

    def proc():
        yield from client.write_file(task, "/f", b"v" * units.mib(4), sync=True)
        yield from client.read_file(task, "/f")

    run(sim, proc())
    assert client.cache.cached_bytes <= units.mib(1)
    assert client.cache.evictions > 0
