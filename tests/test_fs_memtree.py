"""Unit tests for the in-memory namespace tree."""

import pytest

from repro.common.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.fs import MemTree


@pytest.fixture
def tree():
    return MemTree()


def test_root_exists(tree):
    assert tree.lookup("/").is_dir


def test_create_and_lookup_file(tree):
    node = tree.create_file("/a.txt")
    assert tree.lookup("/a.txt") is node
    assert not node.is_dir
    assert node.size == 0


def test_create_in_missing_dir_fails(tree):
    with pytest.raises(FileNotFound):
        tree.create_file("/missing/a.txt")


def test_create_exclusive_conflict(tree):
    tree.create_file("/a")
    with pytest.raises(FileExists):
        tree.create_file("/a", exclusive=True)


def test_create_non_exclusive_returns_existing(tree):
    first = tree.create_file("/a")
    assert tree.create_file("/a") is first


def test_create_over_directory_fails(tree):
    tree.mkdir("/d")
    with pytest.raises(IsADirectory):
        tree.create_file("/d")


def test_mkdir_and_nested_files(tree):
    tree.mkdir("/d")
    tree.create_file("/d/f")
    assert tree.readdir("/d") == ["f"]


def test_mkdir_existing_fails(tree):
    tree.mkdir("/d")
    with pytest.raises(FileExists):
        tree.mkdir("/d")


def test_makedirs(tree):
    tree.makedirs("/a/b/c")
    assert tree.lookup("/a/b/c").is_dir


def test_makedirs_through_file_fails(tree):
    tree.create_file("/a")
    with pytest.raises(NotADirectory):
        tree.makedirs("/a/b")


def test_write_and_read(tree):
    node = tree.create_file("/f")
    tree.write_node(node, 0, b"hello")
    assert node.read(0, 5) == b"hello"
    assert node.read(0, 100) == b"hello"
    assert node.read(5, 10) == b""


def test_write_with_hole_zero_fills(tree):
    node = tree.create_file("/f")
    tree.write_node(node, 4, b"x")
    assert node.read(0, 5) == b"\x00\x00\x00\x00x"
    assert node.size == 5


def test_overwrite_middle(tree):
    node = tree.create_file("/f")
    tree.write_node(node, 0, b"abcdef")
    tree.write_node(node, 2, b"XY")
    assert node.read(0, 6) == b"abXYef"


def test_total_bytes_accounting(tree):
    node = tree.create_file("/f")
    tree.write_node(node, 0, b"x" * 100)
    assert tree.total_bytes == 100
    tree.write_node(node, 50, b"y" * 100)  # extends to 150
    assert tree.total_bytes == 150
    tree.unlink("/f")
    assert tree.total_bytes == 0


def test_truncate_shrink_and_grow(tree):
    node = tree.create_file("/f")
    tree.write_node(node, 0, b"abcdef")
    tree.truncate_node(node, 3)
    assert node.read(0, 10) == b"abc"
    tree.truncate_node(node, 5)
    assert node.read(0, 10) == b"abc\x00\x00"
    assert tree.total_bytes == 5


def test_unlink_missing_fails(tree):
    with pytest.raises(FileNotFound):
        tree.unlink("/nope")


def test_unlink_directory_fails(tree):
    tree.mkdir("/d")
    with pytest.raises(IsADirectory):
        tree.unlink("/d")


def test_rmdir_nonempty_fails(tree):
    tree.mkdir("/d")
    tree.create_file("/d/f")
    with pytest.raises(DirectoryNotEmpty):
        tree.rmdir("/d")


def test_rmdir_file_fails(tree):
    tree.create_file("/f")
    with pytest.raises(NotADirectory):
        tree.rmdir("/f")


def test_rmdir_removes(tree):
    tree.mkdir("/d")
    tree.rmdir("/d")
    assert tree.try_lookup("/d") is None


def test_rename_file(tree):
    node = tree.create_file("/a")
    tree.write_node(node, 0, b"data")
    tree.rename("/a", "/b")
    assert tree.try_lookup("/a") is None
    assert tree.lookup("/b").read(0, 4) == b"data"


def test_rename_replaces_file(tree):
    a = tree.create_file("/a")
    tree.write_node(a, 0, b"aaaa")
    b = tree.create_file("/b")
    tree.write_node(b, 0, b"bb")
    tree.rename("/a", "/b")
    assert tree.lookup("/b").read(0, 4) == b"aaaa"
    assert tree.total_bytes == 4


def test_rename_into_own_subtree_fails(tree):
    tree.makedirs("/a/b")
    with pytest.raises(InvalidArgument):
        tree.rename("/a", "/a/b/c")


def test_rename_dir_over_nonempty_dir_fails(tree):
    tree.mkdir("/a")
    tree.makedirs("/b/c")
    with pytest.raises(DirectoryNotEmpty):
        tree.rename("/a", "/b")


def test_readdir_sorted(tree):
    for name in ("z", "a", "m"):
        tree.create_file("/" + name)
    assert tree.readdir("/") == ["a", "m", "z"]


def test_walk_visits_subtree(tree):
    tree.makedirs("/a/b")
    tree.create_file("/a/f")
    paths = [path for path, _node in tree.walk("/a")]
    assert paths == ["/a", "/a/b", "/a/f"]


def test_meta_size_override(tree):
    node = tree.create_file("/f")
    node.data = None
    node.meta_size = 12345
    assert node.size == 12345


def test_inos_are_unique(tree):
    nodes = [tree.create_file("/f%d" % i) for i in range(10)]
    inos = {node.ino for node in nodes}
    assert len(inos) == 10
