#!/usr/bin/env python
"""Wall-clock benchmark harness for the DES engine and the stacks on it.

Runs the reference scenarios (pure-engine micro loops, a sequential-read
stack, a chaos run, the striped fan-out path, the Fig. 11 scale-up
sweeps, a multi-host fleet), measures wall-clock seconds for each, and
records a *behavior fingerprint* per scenario — a stable hash of the
simulated outcome (event-schedule-sensitive values: final times,
throughputs, chaos determinism fingerprints). Two engines that schedule
byte-identically produce equal fingerprints, so the file doubles as a
determinism witness for scheduler changes.

Multi-host-shaped scenarios decompose into independent per-simulated-
machine *tasks* (one world each — the embarrassingly-parallel partition
case of ``repro.sim.parallel``). ``--parallel N`` runs each such
scenario twice: sequentially, then with its tasks fanned over ``N``
worker processes. The two runs must produce identical fingerprints
(asserted hard — a mismatch exits non-zero immediately) and the record
gains per-scenario parallel wall/speedup cells.

Every record carries the core count and Python version (top-level and
per scenario): ``check_against`` refuses to compare wall-clock across a
Python-minor mismatch and skips parallel/speedup comparisons across a
core-count mismatch, so baselines are never diffed against an
incompatible environment.

Usage:
    PYTHONPATH=src python scripts/bench_engine.py --out BENCH_engine.json
    PYTHONPATH=src python scripts/bench_engine.py \
        --check benchmarks/BENCH_engine_baseline.json
    PYTHONPATH=src python scripts/bench_engine.py --parallel 4 \
        --check benchmarks/BENCH_engine_parallel_baseline.json

``--check`` exits non-zero when any fingerprint differs from the
baseline (a determinism break), when total wall-clock regresses by more
than ``--threshold`` (default 25%) against the baseline, or — for a
parallel baseline on a machine with >= 4 cores — when fewer than two
eligible multi-task scenarios reach the ``--speedup-min`` (default 2.0x)
sequential-vs-parallel speedup.
"""

import argparse
import hashlib
import json
import os
import platform
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.faults import run_chaos  # noqa: E402
from repro.bench.scaleup import run_file_scaleup, run_pool_scaleup  # noqa: E402
from repro.bench.sequential import run_sequential  # noqa: E402
from repro.sim.bench import (  # noqa: E402
    partitioned_reference,
    schedule_fingerprint,
    stripe_fanout_reference,
)
from repro.sim.parallel import map_tasks  # noqa: E402


def _stable_hash(value):
    """Hash of a JSON-able value; stable across runs of the same schedule."""
    canonical = json.dumps(value, sort_keys=True)
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def _cores():
    """Usable core count (the honest bound on parallel speedup)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _calibrate():
    """Wall seconds for a fixed pure-Python workload (best of 3).

    The baseline JSON is committed from whatever machine generated it;
    CI runners are usually slower. Storing this per-record lets
    ``check_against`` compare *normalized* walls (scenario seconds per
    calibration second) instead of raw seconds across machines.
    """
    best = None
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(1_000_000):
            acc = (acc + i * 7) % 1000003
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


# -- scenario tasks -------------------------------------------------------
#
# Each task is a module-level callable returning plain JSON-able data
# (the parallel mode ships them to forked pool workers). A scenario is a
# named list of tasks plus a merge function folding the ordered task
# results into (fingerprint_hex, detail_dict); merge order is the task
# declaration order either way, which is what makes sequential and
# parallel fingerprints identical by construction.

def task_micro():
    """Pure-engine micro loops: every scheduling path, no storage stack."""
    detail = {}
    parts = []
    for name, kwargs in (
        ("torture", dict(seed=1, nworkers=24, steps=40)),
        ("interrupts", dict(seed=2, npairs=16)),
        ("combinators", dict(seed=3, rounds=12)),
    ):
        digest, final = schedule_fingerprint(name, **kwargs)
        detail[name] = {"fingerprint": digest, "final_time": final}
        parts.append(digest)
    return {"parts": parts, "detail": detail}


def task_seqread():
    """Fig. 9 sequential read, one Danaus pool pair (client_lock path)."""
    return run_sequential("D", 2, "read", duration=2.0, seed=1)


def task_chaos():
    """Corruption chaos with scrub: the nightly-matrix cell shape."""
    result = run_chaos(
        seed=7, duration=6.0, replicas=2, bitrot=2, torn_writes=1,
        scrub=True,
    )
    digest = hashlib.blake2b(
        repr(result.fingerprint()).encode(), digest_size=16
    ).hexdigest()
    return {
        "fingerprint": digest,
        "ok": result.ok,
        "corruptions": result.corruptions,
        "repairs": result.repairs,
        "retries": result.retries,
    }


def task_partitioned():
    """Coupled-partition PDES demo: the fingerprint must be identical
    between the in-process coupler and one-OS-process-per-partition."""
    seq_digest, _stats = partitioned_reference(parallel=False)
    par_digest, stats = partitioned_reference(parallel=True)
    return {
        "fingerprint": seq_digest,
        "modes_identical": seq_digest == par_digest,
        "rounds": sum(row["rounds"] for row in stats),
        "msgs": sum(row["msgs_in"] for row in stats),
    }


def task_stripe(inflight):
    """One striped read-path cell, wide enough to be worth a process."""
    return stripe_fanout_reference(inflight=inflight, num_osds=12,
                                   objects=48)


def task_file_scaleup(symbol, n_clones, seed=1):
    """One Fig. 11 Fileappend scale-up cell (one simulated machine)."""
    return run_file_scaleup(symbol, n_clones, "append", seed=seed)


def task_pool_scaleup(n_pools, clones_per_pool):
    """One multi-pool scale-up cell (one simulated machine)."""
    return run_pool_scaleup("D", n_pools=n_pools,
                            clones_per_pool=clones_per_pool, mode="append",
                            seed=1)


# -- merges ---------------------------------------------------------------

def merge_micro(results):
    (result,) = results
    return _stable_hash(result["parts"]), result["detail"]


def merge_rows(results):
    rows = list(results)
    return _stable_hash(rows), {"rows": rows}


def merge_single(results):
    (row,) = results
    return _stable_hash(row), row


def merge_stripe(results):
    serial, fanout, repeat = results
    row = {
        "serial": serial,
        "fanout": fanout,
        "speedup": serial["read_s"] / fanout["read_s"],
        "deterministic": fanout == repeat,
    }
    return _stable_hash(row), row


# Scenario table: (name, [(task_label, fn, kwargs), ...], merge).
# Multi-task scenarios are the multi-host-shaped ones the parallel mode
# fans out; single-task scenarios always run inline.
SCENARIOS = [
    ("micro", [("micro", task_micro, {})], merge_micro),
    ("seqread", [("seqread", task_seqread, {})], merge_single),
    ("partitioned", [("partitioned", task_partitioned, {})], merge_single),
    ("stripe_fanout", [
        ("serial", task_stripe, {"inflight": 1}),
        ("fanout", task_stripe, {"inflight": 16}),
        ("repeat", task_stripe, {"inflight": 16}),
    ], merge_stripe),
    ("chaos", [("chaos", task_chaos, {})], merge_single),
    ("scaleup", [
        (symbol, task_file_scaleup, {"symbol": symbol, "n_clones": 8})
        for symbol in ("D", "K/K", "F/F", "FP/FP")
    ], merge_rows),
    ("fleet", [
        ("host%d" % host, task_file_scaleup,
         {"symbol": "D", "n_clones": 8, "seed": 1 + host})
        for host in range(4)
    ], merge_rows),
    ("scaleup_wide", [
        ("p8x2", task_pool_scaleup, {"n_pools": 8, "clones_per_pool": 2}),
        ("p16x2", task_pool_scaleup, {"n_pools": 16, "clones_per_pool": 2}),
        ("f32", task_file_scaleup, {"symbol": "D", "n_clones": 32}),
    ], merge_rows),
]


def run_bench(names=None, workers=1):
    record = {
        "schema": 2,
        "python": platform.python_version(),
        "cores": _cores(),
        "workers": workers,
        "calibration_s": round(_calibrate(), 5),
        "scenarios": {},
        "total_wall_s": 0.0,
    }
    env = {"python": record["python"], "cores": record["cores"]}
    for name, tasks, merge in SCENARIOS:
        if names and name not in names:
            continue
        start = time.perf_counter()
        results, _rows = map_tasks(tasks, workers=1)
        wall = time.perf_counter() - start
        fingerprint, detail = merge(results)
        cell = {
            "wall_s": round(wall, 4),
            "fingerprint": fingerprint,
            "tasks": len(tasks),
            "detail": detail,
        }
        cell.update(env)
        if workers > 1 and len(tasks) > 1:
            # Parallel pass over the same tasks: fan out over a fork
            # pool (children inherit the warm memo caches of the
            # sequential pass above), merge in task order, and demand
            # the exact same fingerprint — the determinism contract.
            start = time.perf_counter()
            par_results, _rows = map_tasks(tasks, workers=workers)
            par_wall = time.perf_counter() - start
            par_fingerprint, _detail = merge(par_results)
            if par_fingerprint != fingerprint:
                print("FATAL: scenario %r parallel fingerprint %s != "
                      "sequential %s" % (name, par_fingerprint, fingerprint),
                      file=sys.stderr)
                sys.exit(1)
            cell["parallel"] = {
                "workers": workers,
                "wall_s": round(par_wall, 4),
                "speedup": round(wall / par_wall, 3) if par_wall > 0 else 0.0,
                "fingerprint_identical": True,
            }
        record["scenarios"][name] = cell
        record["total_wall_s"] = round(record["total_wall_s"] + wall, 4)
        par = cell.get("parallel")
        suffix = ""
        if par:
            suffix = "  parallel=%7.3fs speedup=%.2fx" % (
                par["wall_s"], par["speedup"],
            )
        print("bench %-14s wall=%7.3fs fingerprint=%s%s"
              % (name, wall, fingerprint, suffix), file=sys.stderr)
    return record


def _python_minor(version):
    return tuple(version.split(".")[:2]) if version else None


def check_against(record, baseline, threshold, speedup_min=2.0):
    """Compare a fresh record to a baseline; returns a list of failures.

    Environment compatibility guards (satellite of the parallel-DES
    work): a Python-minor mismatch skips every wall-clock comparison
    (interpreter speed differences would drown the signal; fingerprints
    are still compared), and a core-count mismatch skips only the
    parallel/speedup comparisons (sequential walls stay comparable via
    calibration normalization).
    """
    failures = []
    for name, cell in baseline.get("scenarios", {}).items():
        fresh = record["scenarios"].get(name)
        if fresh is None:
            failures.append("scenario %r missing from this run" % name)
            continue
        if fresh["fingerprint"] != cell["fingerprint"]:
            failures.append(
                "determinism break in %r: fingerprint %s != baseline %s"
                % (name, fresh["fingerprint"], cell["fingerprint"])
            )
    python_match = (
        _python_minor(record.get("python"))
        == _python_minor(baseline.get("python"))
    )
    if not python_match:
        print("note: python %s vs baseline %s — skipping wall-clock "
              "comparison" % (record.get("python"), baseline.get("python")),
              file=sys.stderr)
    cores_match = record.get("cores") == baseline.get("cores")
    base_wall = baseline.get("total_wall_s") or 0.0
    if python_match and base_wall > 0:
        fresh_wall = record["total_wall_s"]
        ratio = fresh_wall / base_wall
        base_cal = baseline.get("calibration_s") or 0.0
        fresh_cal = record.get("calibration_s") or 0.0
        if base_cal > 0 and fresh_cal > 0:
            # Also compare machine-speed-normalized walls (seconds per
            # calibration second) and take the *smaller* ratio: a real
            # engine regression inflates both, a slower CI runner only
            # inflates the raw one, and calibration jitter only the
            # normalized one. Requiring both avoids false alarms from
            # either source.
            normalized = (fresh_wall / fresh_cal) / (base_wall / base_cal)
            ratio = min(ratio, normalized)
        if ratio > 1.0 + threshold:
            failures.append(
                "wall-clock regression: %.3fs vs baseline %.3fs (%.0f%% > %.0f%%)"
                % (fresh_wall, base_wall,
                   (ratio - 1.0) * 100, threshold * 100)
            )
    # Speedup gate for parallel baselines: enforced only on machines
    # with enough cores for the target to be physically reachable.
    baseline_parallel = (baseline.get("workers") or 1) > 1
    if baseline_parallel:
        if not cores_match:
            print("note: cores %s vs baseline %s — parallel walls not "
                  "compared" % (record.get("cores"), baseline.get("cores")),
                  file=sys.stderr)
        if (record.get("workers") or 1) <= 1:
            failures.append(
                "baseline is a parallel record (workers=%s) but this run "
                "was sequential — rerun with --parallel"
                % baseline.get("workers")
            )
        elif (record.get("cores") or 1) >= 4:
            eligible = []
            for name, cell in record["scenarios"].items():
                par = cell.get("parallel")
                if par and cell.get("tasks", 1) >= 3 \
                        and cell["wall_s"] >= 0.2:
                    eligible.append((name, par["speedup"]))
            reached = [(n, s) for n, s in eligible if s >= speedup_min]
            if len(reached) < 2:
                failures.append(
                    "parallel speedup gate: need >=2 multi-host scenarios "
                    "at >=%.1fx, got %s"
                    % (speedup_min,
                       ", ".join("%s=%.2fx" % pair for pair in eligible)
                       or "none")
                )
        else:
            print("note: only %s core(s) available — %.1fx speedup gate "
                  "skipped (needs >= 4 cores)"
                  % (record.get("cores"), speedup_min), file=sys.stderr)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="write BENCH_engine.json here (default: stdout)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare fingerprints + wall-clock to a "
                             "committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed wall-clock regression vs baseline "
                             "(fraction, default 0.25)")
    parser.add_argument("--speedup-min", type=float, default=2.0,
                        help="required parallel speedup for the gate "
                             "(default 2.0)")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="also run each multi-task scenario with its "
                             "tasks fanned over N worker processes; "
                             "fingerprints must match the sequential pass")
    parser.add_argument("--scenario", action="append", default=None,
                        help="run only this scenario (repeatable)")
    args = parser.parse_args(argv)

    record = run_bench(args.scenario, workers=args.parallel)
    payload = json.dumps(record, indent=2, sort_keys=True)
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    else:
        print(payload)

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against(record, baseline, args.threshold,
                                 speedup_min=args.speedup_min)
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        if failures:
            return 1
        print("check ok: fingerprints match, wall %.3fs vs baseline %.3fs"
              % (record["total_wall_s"], baseline.get("total_wall_s", 0.0)),
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
