#!/usr/bin/env python
"""Wall-clock benchmark harness for the DES engine and the stacks on it.

Runs the reference scenarios (pure-engine micro loops, a sequential-read
stack, a chaos run, the Fig. 11 scale-up sweep), measures wall-clock
seconds for each, and records a *behavior fingerprint* per scenario — a
stable hash of the simulated outcome (event-schedule-sensitive values:
final times, throughputs, chaos determinism fingerprints). Two engines
that schedule byte-identically produce equal fingerprints, so the file
doubles as a determinism witness for scheduler changes.

Usage:
    PYTHONPATH=src python scripts/bench_engine.py --out BENCH_engine.json
    PYTHONPATH=src python scripts/bench_engine.py \
        --check benchmarks/BENCH_engine_baseline.json

``--check`` exits non-zero when any fingerprint differs from the
baseline (a determinism break) or when total wall-clock regresses by
more than ``--threshold`` (default 25%) against the baseline.
"""

import argparse
import hashlib
import json
import os
import platform
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.faults import run_chaos  # noqa: E402
from repro.bench.scaleup import run_file_scaleup, run_pool_scaleup  # noqa: E402
from repro.bench.sequential import run_sequential  # noqa: E402
from repro.sim.bench import (  # noqa: E402
    schedule_fingerprint,
    stripe_fanout_reference,
)


def _stable_hash(value):
    """Hash of a JSON-able value; stable across runs of the same schedule."""
    canonical = json.dumps(value, sort_keys=True)
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def _calibrate():
    """Wall seconds for a fixed pure-Python workload (best of 3).

    The baseline JSON is committed from whatever machine generated it;
    CI runners are usually slower. Storing this per-record lets
    ``check_against`` compare *normalized* walls (scenario seconds per
    calibration second) instead of raw seconds across machines.
    """
    best = None
    for _ in range(3):
        start = time.perf_counter()
        acc = 0
        for i in range(1_000_000):
            acc = (acc + i * 7) % 1000003
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


# -- scenarios ------------------------------------------------------------
#
# Each scenario returns (fingerprint_hex, detail_dict). Wall-clock is
# measured around the call by the driver.

def scenario_micro():
    """Pure-engine micro loops: every scheduling path, no storage stack."""
    detail = {}
    parts = []
    for name, kwargs in (
        ("torture", dict(seed=1, nworkers=24, steps=40)),
        ("interrupts", dict(seed=2, npairs=16)),
        ("combinators", dict(seed=3, rounds=12)),
    ):
        digest, final = schedule_fingerprint(name, **kwargs)
        detail[name] = {"fingerprint": digest, "final_time": final}
        parts.append(digest)
    return _stable_hash(parts), detail


def scenario_seqread():
    """Fig. 9 sequential read, one Danaus pool pair (client_lock path)."""
    rows = [run_sequential("D", 2, "read", duration=2.0, seed=1)]
    return _stable_hash(rows), {"rows": rows}


def scenario_chaos():
    """Corruption chaos with scrub: the nightly-matrix cell shape."""
    result = run_chaos(
        seed=7, duration=6.0, replicas=2, bitrot=2, torn_writes=1,
        scrub=True,
    )
    digest = hashlib.blake2b(
        repr(result.fingerprint()).encode(), digest_size=16
    ).hexdigest()
    return digest, {
        "ok": result.ok,
        "corruptions": result.corruptions,
        "repairs": result.repairs,
        "retries": result.retries,
    }


def scenario_stripe_fanout():
    """Parallel striped data path: 6-object read, serial vs fan-out."""
    serial = stripe_fanout_reference(inflight=1)
    fanout = stripe_fanout_reference(inflight=16)
    repeat = stripe_fanout_reference(inflight=16)
    row = {
        "serial": serial,
        "fanout": fanout,
        "speedup": serial["read_s"] / fanout["read_s"],
        "deterministic": fanout == repeat,
    }
    return _stable_hash(row), row


def scenario_scaleup():
    """The reference scale-up sweep (Fig. 11 Fileappend, 8 clones)."""
    rows = [
        run_file_scaleup(symbol, 8, "append", seed=1)
        for symbol in ("D", "K/K", "F/F", "FP/FP")
    ]
    return _stable_hash(rows), {"rows": rows}


def scenario_scaleup_wide():
    """One notch toward the paper's sweep: 8 pools / 16 containers."""
    rows = [
        run_pool_scaleup("D", n_pools=8, clones_per_pool=2, mode="append",
                         seed=1),
        run_file_scaleup("D", 16, "append", seed=1),
    ]
    return _stable_hash(rows), {"rows": rows}


SCENARIOS = [
    ("micro", scenario_micro),
    ("seqread", scenario_seqread),
    ("stripe_fanout", scenario_stripe_fanout),
    ("chaos", scenario_chaos),
    ("scaleup", scenario_scaleup),
    ("scaleup_wide", scenario_scaleup_wide),
]


def run_bench(names=None):
    record = {
        "schema": 1,
        "python": platform.python_version(),
        "calibration_s": round(_calibrate(), 5),
        "scenarios": {},
        "total_wall_s": 0.0,
    }
    for name, fn in SCENARIOS:
        if names and name not in names:
            continue
        start = time.perf_counter()
        fingerprint, detail = fn()
        wall = time.perf_counter() - start
        record["scenarios"][name] = {
            "wall_s": round(wall, 4),
            "fingerprint": fingerprint,
            "detail": detail,
        }
        record["total_wall_s"] = round(record["total_wall_s"] + wall, 4)
        print("bench %-14s wall=%7.3fs fingerprint=%s"
              % (name, wall, fingerprint), file=sys.stderr)
    return record


def check_against(record, baseline, threshold):
    """Compare a fresh record to a baseline; returns a list of failures."""
    failures = []
    for name, cell in baseline.get("scenarios", {}).items():
        fresh = record["scenarios"].get(name)
        if fresh is None:
            failures.append("scenario %r missing from this run" % name)
            continue
        if fresh["fingerprint"] != cell["fingerprint"]:
            failures.append(
                "determinism break in %r: fingerprint %s != baseline %s"
                % (name, fresh["fingerprint"], cell["fingerprint"])
            )
    base_wall = baseline.get("total_wall_s") or 0.0
    if base_wall > 0:
        fresh_wall = record["total_wall_s"]
        ratio = fresh_wall / base_wall
        base_cal = baseline.get("calibration_s") or 0.0
        fresh_cal = record.get("calibration_s") or 0.0
        if base_cal > 0 and fresh_cal > 0:
            # Also compare machine-speed-normalized walls (seconds per
            # calibration second) and take the *smaller* ratio: a real
            # engine regression inflates both, a slower CI runner only
            # inflates the raw one, and calibration jitter only the
            # normalized one. Requiring both avoids false alarms from
            # either source.
            normalized = (fresh_wall / fresh_cal) / (base_wall / base_cal)
            ratio = min(ratio, normalized)
        if ratio > 1.0 + threshold:
            failures.append(
                "wall-clock regression: %.3fs vs baseline %.3fs (%.0f%% > %.0f%%)"
                % (fresh_wall, base_wall,
                   (ratio - 1.0) * 100, threshold * 100)
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="write BENCH_engine.json here (default: stdout)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="compare fingerprints + wall-clock to a "
                             "committed baseline JSON")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed wall-clock regression vs baseline "
                             "(fraction, default 0.25)")
    parser.add_argument("--scenario", action="append", default=None,
                        help="run only this scenario (repeatable)")
    args = parser.parse_args(argv)

    record = run_bench(args.scenario)
    payload = json.dumps(record, indent=2, sort_keys=True)
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(payload + "\n")
    else:
        print(payload)

    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        failures = check_against(record, baseline, args.threshold)
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        if failures:
            return 1
        print("check ok: fingerprints match, wall %.3fs vs baseline %.3fs"
              % (record["total_wall_s"], baseline.get("total_wall_s", 0.0)),
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
