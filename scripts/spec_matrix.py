#!/usr/bin/env python
"""Validate and run the committed experiment specs (the CI spec matrix).

Two modes:

* ``--validate`` (default when no ``--run`` is given) — load every spec
  file the registry discovers, schema-validate it, and compile its
  quick variant to a runnable experiment without executing it. Any
  validation or compile error exits non-zero: this is the CI gate that
  catches spec-schema drift (a spec key the validator no longer knows,
  a sweep axis the compiler dropped, a renamed stack symbol).
* ``--run ID`` (repeatable) — run each named spec via the sweep runner,
  schema-validate the emitted unified run record, and write one
  ``<id>.json`` per spec plus a combined ``trend.json`` in the
  ``BENCH_engine`` trend shape under ``--out-dir``.

Usage:
    python scripts/spec_matrix.py --validate
    python scripts/spec_matrix.py --quick --out-dir artifacts \
        --run fig1 --run abl-ipc --run chaos-corruption
"""

import argparse
import json
import os
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import SpecError, registry, to_trend, validate_record  # noqa: E402
from repro.experiments.compiler import compile_spec  # noqa: E402
from repro.experiments.runner import run_spec  # noqa: E402


def validate_all():
    """Schema-validate and quick-compile every registered spec."""
    failures = []
    specs = registry.discover()
    if not specs:
        print("no spec files found under: %s"
              % ", ".join(registry.search_paths()), file=sys.stderr)
        return 1
    for name in sorted(specs):
        spec = specs[name]
        try:
            compile_spec(spec, quick=True, seed=spec["seeds"][0])
        except SpecError as err:
            failures.append("%s: %s" % (name, err))
            continue
        print("ok %-16s kind=%s axes=%s seeds=%s"
              % (name, spec["kind"], ",".join(spec["sweep"]) or "-",
                 spec["seeds"]))
    for failure in failures:
        print("DRIFT %s" % failure, file=sys.stderr)
    print("%d specs validated, %d failed" % (len(specs), len(failures)))
    return 1 if failures else 0


def run_selected(names, quick, out_dir):
    """Run the named specs; write per-spec records plus a trend file."""
    os.makedirs(out_dir, exist_ok=True)
    records = []
    status = 0
    for name in names:
        try:
            spec = registry.get(name)
        except SpecError as err:
            print("DRIFT %s" % err, file=sys.stderr)
            status = 1
            continue
        result, record = run_spec(spec, quick=quick)
        try:
            validate_record(record)
        except ValueError as err:
            print("DRIFT %s: %s" % (name, err), file=sys.stderr)
            status = 1
            continue
        path = os.path.join(out_dir, "%s.json" % name)
        with open(path, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        violations = record.get("slo", {}).get("violations", [])
        print("ran %-16s rows=%d wall=%.1fs fingerprint=%s -> %s"
              % (name, len(record["rows"]), record["wall_s"],
                 record["fingerprint"], path))
        for violation in violations:
            print("SLO %s: %s" % (name, violation), file=sys.stderr)
            status = 1
        records.append(record)
    if records:
        trend_path = os.path.join(out_dir, "trend.json")
        with open(trend_path, "w") as fh:
            json.dump(to_trend(records), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print("trend written to %s" % trend_path)
    return status


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--validate", action="store_true",
                        help="validate + quick-compile every spec (no runs)")
    parser.add_argument("--run", action="append", default=[], metavar="ID",
                        help="run this spec (repeatable)")
    parser.add_argument("--quick", action="store_true",
                        help="apply each spec's quick overrides")
    parser.add_argument("--out-dir", default="artifacts",
                        help="directory for records (default: artifacts)")
    args = parser.parse_args(argv)
    if args.validate or not args.run:
        status = validate_all()
        if status or not args.run:
            return status
    return run_selected(args.run, args.quick, args.out_dir)


if __name__ == "__main__":
    sys.exit(main())
