"""Build EXPERIMENTS.md from a captured benchmark run.

Usage:  python scripts/experiments_md_from_bench.py bench_output.txt
        python scripts/experiments_md_from_bench.py report.json

Two input shapes:

* a text capture of the benchmark targets (one printed report block per
  experiment: id, title, paper expectation, measured rows, notes) —
  blocks are lifted verbatim;
* a ``.json`` file of unified run records (``repro.experiments.record``)
  as written by ``python -m repro run --report`` or
  ``scripts/spec_matrix.py`` — either ``{"experiments": [record, ...]}``
  or a bare list/single record. Records are schema-validated first, so
  the document can only be generated from artifacts that match the
  unified shape.

Either way the output reflects an actual recorded run. For a
from-scratch regeneration that re-runs everything, use
scripts/generate_experiments_md.py instead.
"""

import os
import re
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

HEADER = """# EXPERIMENTS — paper vs measured

Extracted from a recorded run of ``pytest benchmarks/ --benchmark-only``
(the bench targets assert every shape below; the run passed). Regenerate
with ``python scripts/experiments_md_from_bench.py bench_output.txt`` or
re-run everything via ``python scripts/generate_experiments_md.py``.

Scaling reminder (details in docs/calibration.md): datasets are scaled
~64x below the paper's sizes, writeback time constants scaled to match,
and sweeps
stop at 4 pools / 8 containers instead of 32 / 256 — so *shapes* (who
wins, direction, coarse factors) are the comparison currency, never
absolute numbers.

"""

BAR = "=" * 72


def extract_blocks(text):
    """Yield (experiment_id, block_lines) for each printed report."""
    lines = text.splitlines()
    blocks = []
    index = 0
    while index < len(lines):
        if lines[index].strip() == BAR and index + 1 < len(lines):
            title_line = lines[index + 1]
            match = re.match(r"([a-z0-9-]+) — (.*)", title_line.strip())
            if match:
                block = [title_line]
                index += 2
                while index < len(lines) and lines[index].strip() != BAR:
                    block.append(lines[index])
                    index += 1
                blocks.append((match.group(1), block))
        index += 1
    return blocks


def blocks_from_records(records):
    """Run records -> the same (id, block_lines) shape as text capture.

    Renders each record through ``ExperimentResult`` so the tables are
    byte-compatible with the printed report blocks.
    """
    from repro.bench.harness import ExperimentResult
    from repro.experiments.record import validate_record

    blocks = []
    for record in records:
        validate_record(record)
        result = ExperimentResult(
            record["id"], record["title"], record["paper_expectation"]
        )
        for row in record["rows"]:
            result.add_row(**row)
        for note in record["notes"]:
            result.note(note)
        block = ["%s — %s" % (record["id"], record["title"])]
        if record["paper_expectation"]:
            block.append("paper: %s" % record["paper_expectation"])
        block.append("-" * 72)
        block.extend(result.table().splitlines())
        for note in record["notes"]:
            block.append("note: %s" % note)
        blocks.append((record["id"], block))
    return blocks


def load_records(path):
    """Parse a JSON report file into a list of run records."""
    import json

    with open(path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "experiments" in payload:
        return payload["experiments"]
    if isinstance(payload, dict):
        return [payload]
    return list(payload)


def main():
    source = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    output = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"
    if source.endswith(".json"):
        blocks = blocks_from_records(load_records(source))
    else:
        with open(source) as handle:
            text = handle.read()
        blocks = extract_blocks(text)
    if not blocks:
        print("no report blocks found in %s" % source, file=sys.stderr)
        return 1
    seen = set()
    parts = [HEADER]
    for experiment_id, block in blocks:
        if experiment_id in seen:
            continue  # keep the first (full) block per experiment
        seen.add(experiment_id)
        title = block[0].split("— ", 1)[-1].strip()
        parts.append("## %s — %s\n" % (experiment_id, title))
        body = []
        for line in block[1:]:
            stripped = line.rstrip()
            if stripped.startswith("paper: "):
                parts.append("**Paper:** %s\n" % stripped[len("paper: "):])
            elif stripped.startswith("note: "):
                body.append(("note", stripped[len("note: "):]))
            elif set(stripped) == {"-"} and stripped:
                continue
            elif stripped:
                body.append(("row", stripped))
        rows = [text for kind, text in body if kind == "row"]
        notes = [text for kind, text in body if kind == "note"]
        if rows:
            parts.append("```\n%s\n```\n" % "\n".join(rows))
        for note in notes:
            parts.append("- %s" % note)
        parts.append("")
    with open(output, "w") as handle:
        handle.write("\n".join(parts))
    print("wrote %s (%d experiments)" % (output, len(seen)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
