"""Quick smoke run of every experiment at minimal scale (calibration aid)."""
import sys, time

def clock(label, fn):
    t0 = time.time()
    try:
        out = fn()
        print(label, {k: (round(v, 3) if isinstance(v, float) else v)
                      for k, v in out.items()},
              "wall=%.1fs" % (time.time() - t0))
    except Exception as e:
        import traceback; traceback.print_exc()
        print(label, "FAILED:", e)
    sys.stdout.flush()

from repro.bench.rocksdb_exp import run_rocksdb_scaleout, run_rocksdb_scaleup
clock("fig7a D", lambda: run_rocksdb_scaleout("D", 1, "put"))
clock("fig7a K", lambda: run_rocksdb_scaleout("K", 1, "put"))
clock("fig7b D", lambda: run_rocksdb_scaleout("D", 1, "get"))
clock("fig7c D", lambda: run_rocksdb_scaleup("D", 2, "put"))
clock("fig7c K/K", lambda: run_rocksdb_scaleup("K/K", 2, "put"))
clock("fig7d F/F", lambda: run_rocksdb_scaleup("F/F", 2, "get"))
from repro.bench.startup import run_startup
clock("fig8 D", lambda: run_startup("D", 2))
clock("fig8 K/K", lambda: run_startup("K/K", 2))
clock("fig8 F/F", lambda: run_startup("F/F", 2))
from repro.bench.sequential import run_sequential
clock("fig9w D", lambda: run_sequential("D", 1, "write"))
clock("fig9w K", lambda: run_sequential("K", 1, "write"))
clock("fig9r D", lambda: run_sequential("D", 1, "read"))
clock("fig9r K", lambda: run_sequential("K", 1, "read"))
clock("fig9r F", lambda: run_sequential("F", 1, "read"))
from repro.bench.fileserver_exp import run_fileserver_scaleout
clock("fig10 D", lambda: run_fileserver_scaleout("D", 1))
from repro.bench.scaleup import run_file_scaleup
clock("fig11a D", lambda: run_file_scaleup("D", 2, "append"))
clock("fig11a FP/FP", lambda: run_file_scaleup("FP/FP", 2, "append"))
clock("fig11b K/K", lambda: run_file_scaleup("K/K", 2, "read"))
from repro.bench.ablation import _seqread_with, _seqwrite_with
clock("abl-lock coarse", lambda: _seqread_with(False, duration=3.0))
clock("abl-lock fine", lambda: _seqread_with(True, duration=3.0))
clock("abl-ipc single", lambda: _seqwrite_with(True, duration=3.0))
clock("abl-ipc group", lambda: _seqwrite_with(False, duration=3.0))
