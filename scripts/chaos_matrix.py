#!/usr/bin/env python
"""Run one chaos cell of the scheduled CI matrix.

Each scenario is a committed experiment spec (``experiments/``):

* ``corruption`` -> ``chaos-corruption`` — the full chaos pipeline with
  silent-corruption faults (bitrot + torn replica writes) and the
  background scrub daemon enabled.
* ``churn`` -> ``chaos-churn`` — the membership-churn preset: an OSD
  crash, a flap burst, a runtime OSD add and a graceful drain under
  heartbeats, map epochs and throttled backfill.
* ``mds`` -> ``chaos-mds`` — the metadata-HA preset: SIGKILL the active
  MDS plus an administrative failover mid-workload; the standby replays
  the rank journal, clients reconnect and resend with op-id dedup, and
  the SLO fails on any lost acked mutation or duplicated rename/create.

The CLI flags override the spec (seed, duration, replica count, fault
counts), the overridden spec is re-validated, and the run emits the
unified run record (``repro.experiments.record``) — rows, determinism
fingerprint, fault-plan log and per-file digests in ``detail`` — for
artifact upload. Exits non-zero when the run fails integrity or
convergence (the spec's ``ok == true`` SLO), so the scheduled job goes
red on any acknowledged-data loss or a cluster that never re-replicates.

Usage:
    python scripts/chaos_matrix.py --seed 7 \
        --out artifacts/chaos-seed7.json
    python scripts/chaos_matrix.py --scenario churn \
        --seed 7 --out artifacts/churn-seed7.json
"""

import argparse
import json
import os
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments import registry, validate_record, validate_spec  # noqa: E402
from repro.experiments.runner import run_spec  # noqa: E402

SCENARIO_SPECS = {
    "corruption": "chaos-corruption",
    "churn": "chaos-churn",
    "mds": "chaos-mds",
}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=sorted(SCENARIO_SPECS),
                        default="corruption")
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--duration", type=float, default=None,
                        help="workload duration in sim seconds "
                             "(default: the spec's duration)")
    parser.add_argument("--replicas", type=int, default=None)
    parser.add_argument("--bitrot", type=int, default=None)
    parser.add_argument("--torn-writes", type=int, default=None)
    parser.add_argument("--quick", action="store_true",
                        help="apply the spec's quick overrides")
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    spec = registry.get(SCENARIO_SPECS[args.scenario])
    spec["seeds"] = [args.seed]
    if args.duration is not None:
        spec["params"]["duration"] = args.duration
    if args.replicas is not None:
        spec["cluster"]["replicas"] = args.replicas
        spec["faults"]["replicas"] = args.replicas
    if args.bitrot is not None:
        spec["faults"]["bitrot"] = args.bitrot
    if args.torn_writes is not None:
        spec["faults"]["torn_writes"] = args.torn_writes
    spec = validate_spec(spec)

    result, record = run_spec(spec, quick=args.quick)
    validate_record(record)

    payload = json.dumps(record, indent=2, sort_keys=True)
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    row = record["rows"][0] if record["rows"] else {}
    ok = bool(row.get("ok")) and not record["slo"]["violations"]
    print("scenario=%s seed=%d ok=%s epoch=%s backfill=%sB "
          "corruptions=%s repairs=%s fingerprint=%s" % (
              args.scenario, args.seed, ok, row.get("map_epoch"),
              row.get("backfill_bytes"), row.get("corruptions"),
              row.get("repairs"), record["fingerprint"],
          ), file=sys.stderr)
    for violation in record["slo"]["violations"]:
        print("SLO: %s" % violation, file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
