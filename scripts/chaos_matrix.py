#!/usr/bin/env python
"""Run one chaos cell of the scheduled CI matrix.

Two scenarios:

* ``corruption`` (default) — the full chaos pipeline with
  silent-corruption faults (bitrot + torn replica writes) and the
  background scrub daemon enabled.
* ``churn`` — the membership-churn preset (``run_membership_churn``):
  an OSD crash, a flap burst, a runtime OSD add and a graceful drain
  under heartbeats, map epochs and throttled backfill.

Either way the script dumps a JSON record — including the run's
determinism fingerprint — for artifact upload, and exits non-zero when
the run fails integrity or convergence, so the scheduled job goes red
on any acknowledged-data loss or a cluster that never re-replicates.

Usage:
    PYTHONPATH=src python scripts/chaos_matrix.py --seed 7 \
        --out artifacts/chaos-seed7.json
    PYTHONPATH=src python scripts/chaos_matrix.py --scenario churn \
        --seed 7 --out artifacts/churn-seed7.json
"""

import argparse
import hashlib
import json
import os
import sys

from repro.faults import run_chaos, run_membership_churn


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scenario", choices=("corruption", "churn"),
                        default="corruption")
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--duration", type=float, default=None,
                        help="workload duration in sim seconds "
                             "(default: 10 for corruption, 14 for churn)")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--bitrot", type=int, default=2)
    parser.add_argument("--torn-writes", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    if args.scenario == "churn":
        result = run_membership_churn(
            seed=args.seed,
            duration=args.duration if args.duration is not None else 14.0,
            replicas=args.replicas,
        )
    else:
        result = run_chaos(
            seed=args.seed,
            duration=args.duration if args.duration is not None else 10.0,
            replicas=args.replicas,
            bitrot=args.bitrot,
            torn_writes=args.torn_writes,
            scrub=True,
        )
    fingerprint = result.fingerprint()
    record = {
        "scenario": args.scenario,
        "seed": args.seed,
        "ok": result.ok,
        "converged": result.converged,
        "scrub_converged": result.scrub_converged,
        "membership_converged": result.membership_converged,
        "under_replicated": [list(key) for key in result.under_replicated],
        "map_epoch": result.map_epoch,
        "backfill_objects": result.backfill_objects,
        "backfill_bytes": result.backfill_bytes,
        "corruptions": result.corruptions,
        "repairs": result.repairs,
        "integrity_errors": result.integrity_errors,
        "quarantined": [list(key) for key in result.quarantined],
        "files_checked": result.files_checked,
        "files_skipped": result.files_skipped,
        "mismatches": result.mismatches,
        "read_mismatches": result.read_mismatches,
        "retries": result.retries,
        "service_restarts": result.service_restarts,
        "plan_log": [list(entry) for entry in result.plan_log],
        "digests": {str(k): v for k, v in sorted(result.digests.items())},
        # one stable hash of the whole fingerprint for quick diffing
        "fingerprint": hashlib.blake2b(
            repr(fingerprint).encode(), digest_size=16
        ).hexdigest(),
    }
    payload = json.dumps(record, indent=2, sort_keys=True)
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    print("scenario=%s seed=%d ok=%s epoch=%d backfill=%dB "
          "corruptions=%d repairs=%d fingerprint=%s" % (
              args.scenario, args.seed, result.ok, result.map_epoch,
              result.backfill_bytes, result.corruptions, result.repairs,
              record["fingerprint"],
          ), file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
