#!/usr/bin/env python
"""Run one corruption-chaos cell of the scheduled CI matrix.

Runs the full chaos pipeline with silent-corruption faults (bitrot +
torn replica writes) and the background scrub daemon enabled, then dumps
a JSON record — including the run's determinism fingerprint — for
artifact upload. Exits non-zero when the run fails integrity, so the
scheduled job goes red on any acknowledged-data loss.

Usage:
    PYTHONPATH=src python scripts/chaos_matrix.py --seed 7 \
        --out artifacts/chaos-seed7.json
"""

import argparse
import hashlib
import json
import os
import sys

from repro.faults import run_chaos


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, required=True)
    parser.add_argument("--duration", type=float, default=10.0,
                        help="workload duration in sim seconds")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--bitrot", type=int, default=2)
    parser.add_argument("--torn-writes", type=int, default=1)
    parser.add_argument("--out", default=None,
                        help="write the JSON record here (default: stdout)")
    args = parser.parse_args(argv)

    result = run_chaos(
        seed=args.seed,
        duration=args.duration,
        replicas=args.replicas,
        bitrot=args.bitrot,
        torn_writes=args.torn_writes,
        scrub=True,
    )
    fingerprint = result.fingerprint()
    record = {
        "seed": args.seed,
        "ok": result.ok,
        "converged": result.converged,
        "scrub_converged": result.scrub_converged,
        "corruptions": result.corruptions,
        "repairs": result.repairs,
        "integrity_errors": result.integrity_errors,
        "quarantined": [list(key) for key in result.quarantined],
        "files_checked": result.files_checked,
        "files_skipped": result.files_skipped,
        "mismatches": result.mismatches,
        "read_mismatches": result.read_mismatches,
        "retries": result.retries,
        "service_restarts": result.service_restarts,
        "plan_log": [list(entry) for entry in result.plan_log],
        "digests": {str(k): v for k, v in sorted(result.digests.items())},
        # one stable hash of the whole fingerprint for quick diffing
        "fingerprint": hashlib.blake2b(
            repr(fingerprint).encode(), digest_size=16
        ).hexdigest(),
    }
    payload = json.dumps(record, indent=2, sort_keys=True)
    if args.out:
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    print("seed=%d ok=%s corruptions=%d repairs=%d fingerprint=%s" % (
        args.seed, result.ok, result.corruptions, result.repairs,
        record["fingerprint"],
    ), file=sys.stderr)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
