#!/usr/bin/env python
"""Quickstart: one tenant, one Danaus mount, basic file I/O.

Builds the full simulated testbed (client machine, host kernel, Ceph-like
cluster), creates a container pool, mounts a Danaus root filesystem for a
container, and exercises the POSIX-like API — including the dual
interface: normal I/O travels the user-level path, an exec-style read
goes through the kernel's FUSE endpoint of the same service.

Run:  python examples/quickstart.py
"""

from repro import StackFactory, World
from repro.common import units


def main():
    world = World(num_cores=8, ram_bytes=units.gib(16))
    world.activate_cores(4)

    pool = world.engine.create_pool(
        "tenant0", num_cores=2, ram_bytes=units.gib(4)
    )
    mount = StackFactory(world, pool, "D").mount_root("c0")
    task = pool.new_task("app")

    def app():
        fs = mount.fs
        yield from fs.makedirs(task, "/data/logs")
        yield from fs.write_file(task, "/data/hello.txt", b"hello danaus\n")
        data = yield from fs.read_file(task, "/data/hello.txt")
        print("read back:        %r" % data)

        names = yield from fs.readdir(task, "/data")
        print("readdir /data:    %s" % names)

        stat = yield from fs.stat(task, "/data/hello.txt")
        print("stat size:        %d bytes" % stat.size)

        # Legacy path: exec-style reads go through the kernel + FUSE.
        yield from fs.write_file(task, "/bin-app", b"\x7fELF...binary")
        binary = yield from mount.exec_read(task, "/bin-app")
        print("exec read:        %d bytes via the legacy kernel path" % len(binary))

    world.sim.spawn(app(), name="app")
    world.run(until=30)

    print()
    print("user-level opens:  %d (no system calls on the default path)"
          % mount.library.metrics.counter("danaus_opens").value)
    print("legacy reads:      %d (exec/mmap through the kernel)"
          % mount.library.metrics.counter("legacy_reads").value)
    print("context switches:  %d (all on the legacy FUSE path)"
          % mount.ctx_switches())
    print("client cache:      %s" % mount.client.cache.stats())


if __name__ == "__main__":
    main()
