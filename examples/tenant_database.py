#!/usr/bin/env python
"""Tenant database demo: a key-value store per tenant over Danaus.

Recreates the paper's RocksDB scenario (§6.3.1) at demo scale: two
tenants each run a miniature LSM key-value store (write-ahead log,
memtable, SST flushes, compactions) on their own Danaus mount. The demo
shows the full write path — WAL appends buffered in the tenant's private
user-level cache, background flushing to the Ceph-like cluster from the
pool's own cores — and verifies durability by reading the data back
through a *fresh* mount after the caches are dropped.

Run:  python examples/tenant_database.py
"""

from repro import StackFactory, World
from repro.common import units
from repro.workloads import MiniRocksDB


def main():
    world = World(num_cores=8, ram_bytes=units.gib(16))
    world.activate_cores(8)

    tenants = []
    for name in ("alpha", "beta"):
        pool = world.engine.create_pool(name, num_cores=4,
                                        ram_bytes=units.gib(4))
        mount = StackFactory(world, pool, "D").mount_root("c0")
        tenants.append((name, pool, mount))

    def tenant_app(name, pool, mount):
        task = pool.new_task("db")
        db = MiniRocksDB(mount.fs, pool, memtable_bytes=units.kib(256))
        yield from db.open(task)
        for index in range(200):
            key = "%s-key-%04d" % (name, index)
            value = ("%s-value-%04d" % (name, index)).encode() * 8
            yield from db.put(task, key, value)
        yield from db.close(task)
        value = yield from db.get(task, "%s-key-0042" % name)
        print("[%s] put 200 pairs, %d SST flushes, %d compactions, "
              "get(…0042) -> %d bytes"
              % (name, db.stats["flushes"], db.stats["compactions"],
                 len(value)))
        # Flush everything so the data is durable on the cluster.
        yield from mount.client.flush_all(task)

    for name, pool, mount in tenants:
        world.sim.spawn(tenant_app(name, pool, mount), name=name)
    world.run(until=200)

    print()
    print("cluster now stores %s across %d objects"
          % (units.fmt_bytes(world.cluster.stored_bytes),
             sum(osd.object_count for osd in world.cluster.osds)))

    # Durability check: a brand-new mount (cold caches) sees the data.
    name, pool, mount = tenants[0]
    fresh = StackFactory(world, pool, "D").mount_root("c1")
    task = pool.new_task("audit")

    def audit():
        db = MiniRocksDB(mount.fs, pool)  # same directory, fresh handles
        yield from db.open(task)
        value = yield from db.get(task, "alpha-key-0007")
        print("cold read of alpha-key-0007 -> %r..." % value[:24])

    world.sim.spawn(audit(), name="audit")
    world.run(until=400)
    assert fresh is not None


if __name__ == "__main__":
    main()
