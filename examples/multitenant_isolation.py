#!/usr/bin/env python
"""Multitenant isolation demo: a noisy neighbour cannot hurt Danaus.

Recreates the paper's headline scenario (Fig. 6a) at demo scale: a
Fileserver tenant runs over either the kernel CephFS client (K) or
Danaus (D) while a Stress-ng-style RandomIO tenant hammers local disks in
its own pool. With K, the Fileserver collapses — kernel flushers and
workqueues can no longer steal the neighbour's cores, and shared kernel
locks heat up. With D, the Fileserver barely notices.

Run:  python examples/multitenant_isolation.py   (takes a few minutes)
"""

from repro.bench.isolation import run_colocation


def main():
    print("Fileserver throughput, alone vs next to RandomIO")
    print("(scaled-down rerun of the paper's Fig. 6a)")
    print()
    print("%-7s %-9s %14s %18s" % ("client", "neighbor", "FLS ops/s",
                                   "nbr-core util %"))
    baselines = {}
    for symbol in ("K", "D"):
        for neighbor in (None, "RND"):
            row = run_colocation(symbol, 1, neighbor, duration=3.0)
            key = (symbol, row["neighbor"])
            baselines[key] = row["fls_ops_per_sec"]
            print("%-7s %-9s %14.0f %18.1f" % (
                symbol, row["neighbor"], row["fls_ops_per_sec"],
                row["nbr_core_util_pct"],
            ))
    print()
    k_drop = baselines[("K", "-")] / max(baselines[("K", "RND")], 1e-9)
    d_drop = baselines[("D", "-")] / max(baselines[("D", "RND")], 1e-9)
    print("kernel client slowdown under colocation: %5.1fx" % k_drop)
    print("danaus slowdown under colocation:        %5.1fx" % d_drop)
    print()
    print("paper: 7.4x for the kernel client, ~1.2x for Danaus (Fig. 6a)")


if __name__ == "__main__":
    main()
