#!/usr/bin/env python
"""Migration demo: move a container between hosts via shared storage.

The paper's §9 observes that Danaus "could conveniently facilitate the
container migration between hosts through the shared network filesystem".
This demo builds a two-host world over one Ceph-like cluster, runs a
tenant database container on host A, and migrates it to host B — no image
or data copying, just a flush and a re-mount. The report shows the
downtime and proves the data survived.

Run:  python examples/container_migration.py
"""

from repro.common import units
from repro.containers import Container, migrate_container
from repro.stacks import StackFactory
from repro.workloads import MiniRocksDB
from repro.world import World


def main():
    world = World(num_cores=8, ram_bytes=units.gib(16))
    world.activate_cores(4)
    host_b = world.add_host("client-b", num_cores=8, ram_bytes=units.gib(16))
    host_b.activate_cores(4)

    source_pool = world.engine.create_pool(
        "tenant-a", num_cores=2, ram_bytes=units.gib(4)
    )
    target_pool = host_b.engine.create_pool(
        "tenant-a-new-home", num_cores=2, ram_bytes=units.gib(4)
    )
    mount = StackFactory(world, source_pool, "D").mount_root("db0")
    container = Container(source_pool, "db0", mount)

    def scenario():
        task = container.new_task("db")
        db = MiniRocksDB(container.fs, source_pool,
                         memtable_bytes=units.kib(256))
        yield from db.open(task)
        for index in range(150):
            yield from db.put(task, "key-%04d" % index,
                              b"value-%04d" % index * 16)
        yield from db.close(task)
        print("host A: inserted 150 pairs "
              "(%d SST flushes)" % db.stats["flushes"])

        report = yield from migrate_container(world, container, target_pool)
        print("migrated %s: %s -> %s" % (
            report.container.cid, report.source_pool.name,
            report.target_pool.name,
        ))
        print("downtime: %.1f ms  (flushed %s of dirty state)" % (
            report.downtime * 1000.0,
            "%.0f KiB" % (report.flushed_bytes / 1024.0),
        ))

        # The database keeps working on host B, against the same files.
        new_task = report.container.new_task("db")
        db_b = MiniRocksDB(report.container.fs, target_pool,
                           memtable_bytes=units.kib(256))
        yield from db_b.open(new_task)
        value = yield from db_b.get(new_task, "key-0042")
        print("host B: get(key-0042) -> %r..." % value[:22])
        yield from db_b.put(new_task, "key-after-move", b"still writable")
        fresh = yield from db_b.get(new_task, "key-after-move")
        print("host B: new writes work: %r" % fresh)

    world.sim.spawn(scenario(), name="scenario")
    world.run(until=600)
    print()
    print("the container's state never left the shared cluster: %s stored"
          % units.fmt_bytes(world.cluster.stored_bytes))


if __name__ == "__main__":
    main()
