#!/usr/bin/env python
"""Container fleet demo: cloned webserver containers over shared images.

Recreates the paper's Lighttpd startup scenario (Fig. 8) at demo scale:
a Lighttpd image is pushed to the registry and materialised once on the
shared Ceph-like filesystem; N cloned containers then union a private
writable branch over the shared read-only image and boot concurrently.

Compares Danaus (D) with the kernel stack (K/K) and the all-FUSE stack
(F/F): the mature kernel path wins the read-intensive, exec-dominated
startup, while Danaus beats F/F by a wide margin thanks to far fewer
context switches.

Run:  python examples/container_fleet.py
"""

from repro.bench.startup import run_startup


def main():
    fleet_size = 6
    print("Starting %d cloned Lighttpd containers (one pool, shared image)"
          % fleet_size)
    print()
    print("%-6s %14s %16s" % ("stack", "real time (s)", "ctx switches"))
    rows = {}
    for symbol in ("K/K", "D", "F/F"):
        row = run_startup(symbol, fleet_size)
        rows[symbol] = row
        print("%-6s %14.3f %16d" % (
            symbol, row["real_time_s"], row["ctx_switches"],
        ))
    print()
    print("D vs F/F speedup:        %.1fx"
          % (rows["F/F"]["real_time_s"] / rows["D"]["real_time_s"]))
    print("D vs F/F ctx switches:   %.1fx fewer"
          % (rows["F/F"]["ctx_switches"] / max(rows["D"]["ctx_switches"], 1)))
    print()
    print("paper: K/K fastest; D is 2.3-14.2x faster than F/F with 9-39x")
    print("fewer context switches (Fig. 8)")


if __name__ == "__main__":
    main()
