#!/usr/bin/env python
"""Ablation demo: removing the libcephfs global client_lock.

The paper identifies the global ``client_lock`` of libcephfs as the
reason Danaus loses to the kernel client on cached sequential reads
(Fig. 9 bottom, ceph tracker #23844) and reports that removing it helps
but "requires refactoring libcephfs, which is beyond our current scope".

This reproduction implements that refactoring behind a flag: the
user-level client can run with per-inode locks instead of one global
lock. The demo measures cached Seqread throughput both ways.

Run:  python examples/client_lock_ablation.py
"""

from repro.bench.ablation import _seqread_with


def main():
    print("Cached sequential read, 6 reader threads, one Danaus client")
    print()
    rows = []
    for fine_grained in (False, True):
        row = _seqread_with(fine_grained, duration=4.0)
        rows.append(row)
        print("%-14s %10.1f MB/s   (lock wait %.3fs)" % (
            row["locking"], row["throughput_mb_s"],
            row["client_lock_wait_s"],
        ))
    print()
    speedup = rows[1]["throughput_mb_s"] / max(rows[0]["throughput_mb_s"], 1e-9)
    print("fine-grained locking speedup: %.2fx" % speedup)
    print()
    print("paper (§6.3.2): 'removing the global lock improves the Danaus")
    print("concurrency but requires refactoring libcephfs' — here it is.")


if __name__ == "__main__":
    main()
