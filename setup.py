"""Legacy setup shim: lets `pip install -e .` work offline without wheel."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Danaus reproduction: isolation and efficiency of container I/O "
        "at the client side of network storage (Middleware '21)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
