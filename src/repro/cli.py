"""Command-line interface: run experiments and inspect the registry.

Usage::

    python -m repro list                 # experiments, stacks, workloads
    python -m repro list --specs         # resolved spec files (JSON)
    python -m repro run fig6a            # regenerate one figure
    python -m repro run fig6a --quick    # reduced sweep for a fast look
    python -m repro run all              # everything (tens of minutes)
    python -m repro run fig6a --trace wb,fuse      # record trace events
    python -m repro run fig6a --profile            # lock/CPU profiles
    python -m repro run fig6a --profile --report out.json
    python -m repro run fig1 --parallel 4          # seeds across 4 cores

Every runnable experiment is a committed spec file under
``experiments/`` (see ``docs/experiments.md``); ``run`` and ``list``
resolve names through :mod:`repro.experiments.registry`. ``run all``
runs everything not tagged ``nightly`` (the chaos presets run in the
nightly matrix instead).

Each run prints the experiment's report block: the paper's expectation
followed by the measured rows. With ``--trace``/``--profile`` the run is
observed through :mod:`repro.obs`: a trace summary and the
lock-contention / core-stealing profiles are printed, and a Chrome
``trace_event`` JSON (loadable in Perfetto) is written next to the
report. ``--report`` writes unified run records (+ profiles) as JSON.
"""

import argparse
import sys

__all__ = ["main", "experiment_names"]


def experiment_names():
    """The experiment ids the CLI can run (one committed spec each)."""
    from repro.experiments import registry

    return registry.names()


def cmd_list(args):
    from repro.bench import COMPOSITES, WORKLOADS
    from repro.experiments import registry
    from repro.stacks import SYMBOLS

    specs = registry.discover()
    if args.specs:
        import json

        print(json.dumps(
            {name: specs[name] for name in sorted(specs)}, indent=2,
            sort_keys=True,
        ))
        return 0
    print("experiments:")
    for name in sorted(specs):
        spec = specs[name]
        suffix = ""
        if spec["tags"]:
            suffix = "  [%s]" % ", ".join(spec["tags"])
        print("  %-16s %s%s" % (name, spec["kind"], suffix))
    print()
    print("stacks (Table 1): %s" % ", ".join(SYMBOLS))
    print()
    print("workloads (Table 2):")
    for symbol in sorted(WORKLOADS):
        print("  %-6s %s" % (symbol, WORKLOADS[symbol][0]))
    for symbol in sorted(COMPOSITES):
        print("  %-6s %s" % (symbol, COMPOSITES[symbol]))
    return 0


def _parse_trace_arg(value):
    """``--trace`` argument -> category set (None/"all" = everything)."""
    if value is None or value == "all":
        return None
    return {part.strip() for part in value.split(",") if part.strip()}


def _trace_path_for(args, name):
    """Where the Chrome trace of experiment ``name`` is written."""
    import os

    if args.report:
        stem, _ext = os.path.splitext(args.report)
        if args.experiment == "all":
            return "%s.%s.trace.json" % (stem, name)
        return "%s.trace.json" % stem
    return "%s.trace.json" % name


def cmd_run(args):
    from repro import obs
    from repro.experiments import registry
    from repro.experiments.runner import run_spec

    specs = registry.discover()
    if args.experiment == "all":
        names = [name for name in sorted(specs)
                 if "nightly" not in specs[name]["tags"]]
    else:
        names = [args.experiment]
    unknown = [name for name in names if name not in specs]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown),
              file=sys.stderr)
        print("try: python -m repro list", file=sys.stderr)
        return 2
    observing = args.profile or args.trace is not None
    if args.parallel > 1 and observing:
        # Observers attach inside forked workers and cannot come back;
        # profile/trace runs must stay sequential.
        print("--parallel cannot be combined with --profile/--trace",
              file=sys.stderr)
        return 2
    report = {"experiments": []} if args.report else None
    try:
        for name in names:
            if observing:
                # Arm auto-observation: experiments build their worlds
                # internally (one per sweep row), and each new World
                # attaches an observer with this spec.
                obs.reset_attached()
                obs.set_default(categories=_parse_trace_arg(args.trace))
            result, record = run_spec(
                specs[name], quick=args.quick, parallel=args.parallel,
            )
            print(result.report())
            chart = _chart_for(result)
            if chart:
                print(chart)
            entry = record if report is not None else None
            if observing:
                entry = _emit_profile(args, name, obs.attached(), entry)
            if args.parallel > 1:
                rows = (record.get("detail") or {}).get("partitions", [])
                if rows:
                    print()
                    print("partitions (per-seed worker tasks, %d workers):"
                          % args.parallel)
                    print(obs.format_partitions_table(rows))
            if report is not None:
                report["experiments"].append(entry)
            print("(%.0fs wall-clock)" % record["wall_s"])
            print()
    finally:
        obs.clear_default()
        obs.reset_attached()
    if report is not None:
        import json

        with open(args.report, "w") as handle:
            json.dump(report, handle, indent=2)
        print("report written to %s" % args.report)
    return 0


def _emit_profile(args, name, observers, entry):
    """Print profile tables; write the Chrome trace; extend the record."""
    from repro import obs

    merged = obs.merge_profiles(observers)
    if args.profile:
        print()
        print("lock contention (wait/hold per class, per pool):")
        print(obs.format_lock_table(merged["lock_contention"]))
        steal = merged["core_steal"]
        if steal:
            print()
            print("core stealing (foreign CPU on pool-reserved cores):")
            print(obs.format_core_steal(steal))
        dispatch = merged["dispatch"]
        if dispatch:
            print()
            print("data-path fan-out (dispatch width, per-OSD inflight):")
            print(obs.format_dispatch_table(dispatch))
        recovery = merged["recovery"]
        if recovery:
            print()
            print("membership recovery (map epochs, backfill, degraded):")
            print(obs.format_recovery_table(recovery))
        mds = merged["mds"]
        if mds:
            print()
            print("metadata HA (journal, sessions, failover):")
            print(obs.format_mds_table(mds))
        locking = merged["locking"]
        if locking:
            print()
            print("adaptive locking (mode switches, final mode):")
            print(obs.format_locking_table(locking))
        fabric = merged["fabric"]
        if fabric:
            print()
            print("fabric edges (cross-machine RPCs per remote endpoint):")
            print(obs.format_fabric_table(fabric))
    if args.trace is not None:
        print()
        print("trace summary:")
        print(obs.format_trace_summary(
            [((row["category"], row["name"]), row["count"])
             for row in merged["trace_summary"]]
        ))
    trace_path = _trace_path_for(args, name)
    trace = obs.chrome_trace(observers)
    import json

    with open(trace_path, "w") as handle:
        json.dump(trace, handle)
    print()
    print("chrome trace (%d events) written to %s"
          % (len(trace["traceEvents"]), trace_path))
    if entry is not None:
        merged["chrome_trace"] = trace_path
        entry["profile"] = merged
    return entry


def _chart_for(result):
    """A bar chart of the result's primary metric, when one is obvious."""
    from repro.bench.charts import bar_chart

    if not result.rows:
        return None
    first = result.rows[0]
    label_key = next(
        (key for key in ("symbol", "locking", "queues", "dedup")
         if key in first), None,
    )
    value_key = next(
        (key for key, value in first.items()
         if isinstance(value, float) and key != label_key), None,
    )
    if label_key is None or value_key is None:
        return None
    labels = [
        "%s%s" % (row[label_key],
                  "".join(" %s=%s" % (k, row[k]) for k in row
                          if k not in (label_key, value_key)
                          and not isinstance(row[k], float)))
        for row in result.rows
    ]
    rows = [
        {"label": label, "value": row[value_key]}
        for label, row in zip(labels, result.rows)
    ]
    return "%s:\n%s" % (value_key, bar_chart(rows, "label", "value"))


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Danaus reproduction: run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    list_parser = sub.add_parser(
        "list", help="list experiments, stacks and workloads"
    )
    list_parser.add_argument(
        "--specs", action="store_true",
        help="dump the resolved experiment specs as JSON",
    )
    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig6a")
    run_parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep for a fast look (the spec's quick overrides)",
    )
    run_parser.add_argument(
        "--trace", metavar="CAT[,CAT]", default=None,
        help="record trace events of these categories ('all' for every "
             "category) and print a summary; also writes a Chrome trace",
    )
    run_parser.add_argument(
        "--profile", action="store_true",
        help="attach the observer and print lock-contention and "
             "core-stealing profiles; writes a Chrome trace_event JSON "
             "loadable in Perfetto",
    )
    run_parser.add_argument(
        "--report", metavar="OUT.json", default=None,
        help="write unified run records (and profiles, when observing) "
             "as structured JSON",
    )
    run_parser.add_argument(
        "--parallel", metavar="N", type=int, default=1,
        help="run the spec's seeds as independent simulation tasks over "
             "N worker processes (results merge in seed order, so rows "
             "and fingerprints match the sequential run exactly); "
             "incompatible with --profile/--trace",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list(args)
    if args.command == "run":
        return cmd_run(args)
    parser.error("unknown command")
    return 2


if __name__ == "__main__":
    sys.exit(main())
