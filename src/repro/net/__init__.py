"""Network models: shared links and RPC fabric."""

from repro.net.fabric import Fabric, Link

__all__ = ["Fabric", "Link"]
