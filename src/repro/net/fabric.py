"""Network model: links with latency and fairly-shared bandwidth.

The testbed connects client and server machines over a 20 Gbps bonded link.
We model a link as propagation latency plus a bandwidth pool shared by all
in-flight transfers: each transfer proceeds in chunks whose duration scales
with the number of concurrent transfers, which approximates per-flow fair
queueing closely enough for the throughput shapes the paper reports.

The fabric is also the **partition boundary** of the parallel simulator
(``repro.sim.parallel``): when the simulation is sharded per simulated
machine, the only cross-partition events are fabric messages, and the
link's propagation latency is the *conservative lookahead* — no message
sent at time ``t`` can be observed before ``t + latency``, so a
partition may safely advance that far beyond its peers. Two pieces here
serve that protocol:

* :meth:`Fabric.lookahead` exports the minimum cross-machine delay;
* :class:`CrossChannel` / :class:`ChannelOut` / :class:`ChannelIn` are
  the typed send/recv endpoints a partition uses for cross-partition
  traffic (the runtime moves the stamped messages between processes).

Per-edge accounting: :meth:`Fabric.rpc` takes an optional ``edge``
label (``"osd3"``, ``"mds.1"``) naming the remote endpoint of the round
trip. Labeled RPCs are counted per edge (count, bytes sent/received),
which is how partition-boundary traffic is validated — and a useful
``--report`` table on its own.
"""

from repro.common import units
from repro.common.errors import ConfigError, NetworkPartitioned, SimulationError
from repro.metrics import MetricSet

__all__ = ["Link", "Fabric", "CrossChannel", "ChannelOut", "ChannelIn"]


class Link(object):
    """A duplex link: ``latency`` + fair-shared ``bandwidth``.

    Fault injection (``repro.faults``) can degrade the link: a
    *partition* makes every transfer fail with
    :class:`NetworkPartitioned` once the propagation delay has elapsed
    (the sender learns nothing sooner), ``delay_factor`` stretches the
    propagation latency (congested or rerouted path), and ``loss_rate``
    drops individual messages from a seeded deterministic stream.
    """

    #: Transfer granularity; smaller chunks track sharing more accurately
    #: at the cost of more events.
    CHUNK = 256 * units.KIB

    def __init__(self, sim, bandwidth=2.5 * units.GIB, latency=units.usec(40),
                 name="link"):
        if bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = latency
        self.active = 0
        self.partitioned = False
        self.delay_factor = 1.0
        self.loss_rate = 0.0
        self._loss_rng = None
        self.metrics = MetricSet("link:%s" % name)

    # -- fault injection -------------------------------------------------

    def set_partitioned(self, flag):
        """Partition (or heal) the link; transfers fail while partitioned."""
        self.partitioned = bool(flag)
        self.sim.trace("net", "partition" if flag else "heal", link=self.name)
        if flag:
            self.metrics.counter("partitions").add(1)

    def set_degraded(self, delay_factor=1.0, loss_rate=0.0, rng=None):
        """Stretch propagation delay and/or drop a fraction of messages.

        ``rng`` (a seeded ``random.Random``) drives the loss stream so a
        fault plan reproduces the exact same drops run after run.
        """
        if delay_factor < 1.0 or not 0.0 <= loss_rate < 1.0:
            raise ConfigError("invalid link degradation")
        self.delay_factor = float(delay_factor)
        self.loss_rate = float(loss_rate)
        self._loss_rng = rng
        self.sim.trace("net", "degrade", link=self.name,
                       delay_factor=delay_factor, loss_rate=loss_rate)

    def transfer(self, nbytes):
        """Move ``nbytes`` across the link; generator until delivered."""
        yield self.sim.timeout(self.latency * self.delay_factor)
        if self.partitioned:
            self.metrics.counter("partition_drops").add(1)
            raise NetworkPartitioned("link %s partitioned" % self.name)
        if self.loss_rate and self._loss_rng is not None \
                and self._loss_rng.random() < self.loss_rate:
            self.metrics.counter("messages_lost").add(1)
            raise NetworkPartitioned("message lost on link %s" % self.name)
        if nbytes <= 0:
            return
        self.active += 1
        try:
            remaining = nbytes
            while remaining > 0:
                piece = min(self.CHUNK, remaining)
                share = self.bandwidth / self.active
                yield self.sim.timeout(piece / share)
                remaining -= piece
        finally:
            self.active -= 1
        self.metrics.counter("bytes").add(nbytes)
        self.metrics.counter("transfers").add(1)


class Fabric(object):
    """The client-to-storage network: one shared link plus RPC helpers."""

    #: Fixed wire overhead per RPC (headers, framing).
    HEADER_BYTES = 256

    def __init__(self, sim, bandwidth=2.5 * units.GIB, latency=units.usec(40)):
        self.sim = sim
        self.link = Link(sim, bandwidth=bandwidth, latency=latency, name="fabric")
        self._edges = {}  # edge label -> {"rpcs", "send_bytes", "recv_bytes"}

    def lookahead(self):
        """The minimum cross-machine delay: the conservative PDES bound.

        Fault injection can only *stretch* propagation (``delay_factor``
        >= 1) — it never delivers sooner — so the undegraded latency is
        a valid lower bound on every cross-partition delivery and safe
        to promise as lookahead even under a fault plan.
        """
        return self.link.latency

    def channel(self, name, src, dst, latency=None):
        """Declare a cross-partition channel over this fabric's link.

        The channel's lookahead defaults to :meth:`lookahead` — the
        fabric's propagation floor.
        """
        return CrossChannel(
            name, src, dst,
            latency=self.lookahead() if latency is None else latency,
        )

    def set_partitioned(self, flag):
        """Partition (or heal) the client-to-storage link."""
        self.link.set_partitioned(flag)

    def set_degraded(self, delay_factor=1.0, loss_rate=0.0, rng=None):
        """Degrade the client-to-storage link (delay stretch, loss)."""
        self.link.set_degraded(delay_factor, loss_rate, rng=rng)

    @property
    def partitioned(self):
        return self.link.partitioned

    def request(self, payload_bytes=0):
        """Send a request of ``payload_bytes`` toward a server."""
        yield from self.link.transfer(self.HEADER_BYTES + payload_bytes)

    def response(self, payload_bytes=0):
        """Receive a response of ``payload_bytes`` from a server."""
        yield from self.link.transfer(self.HEADER_BYTES + payload_bytes)

    def rpc(self, server_gen, send_bytes=0, recv_bytes=0, edge=None):
        """Round-trip: ship the request, run the server logic, ship the reply.

        ``server_gen`` is a generator implementing the server-side work
        (queueing, journaling, disk I/O); its return value is returned.
        ``edge`` optionally names the remote endpoint (``"osd3"``,
        ``"mds.0"``) for per-edge RPC accounting — cross-machine traffic
        validation costs one dict update per labeled round trip and no
        simulated events.
        """
        if edge is not None:
            cell = self._edges.get(edge)
            if cell is None:
                cell = self._edges[edge] = {
                    "rpcs": 0, "send_bytes": 0, "recv_bytes": 0,
                }
            cell["rpcs"] += 1
            cell["send_bytes"] += send_bytes
            cell["recv_bytes"] += recv_bytes
        yield from self.request(send_bytes)
        result = yield from server_gen
        yield from self.response(recv_bytes)
        return result

    def edge_profile(self):
        """Per-edge RPC rows: ``{"edge", "rpcs", "send_bytes", "recv_bytes"}``.

        One row per labeled remote endpoint, sorted by edge name so the
        table is stable run to run. Wire header overhead is included in
        neither byte column (it is per-RPC constant; multiply by
        ``rpcs`` if needed).
        """
        return [
            {"edge": edge, "rpcs": cell["rpcs"],
             "send_bytes": cell["send_bytes"],
             "recv_bytes": cell["recv_bytes"]}
            for edge, cell in sorted(self._edges.items())
        ]


class CrossChannel(object):
    """A declared cross-partition edge: ``src`` partition -> ``dst``.

    ``latency`` is the channel's conservative lookahead: every message
    sent at local time ``t`` is delivered at exactly ``t + latency``,
    and no future message can ever be delivered earlier than the
    sender's promised clock plus ``latency``. Positive lookahead is what
    makes the null-message protocol deadlock-free, so zero is rejected.
    """

    def __init__(self, name, src, dst, latency):
        if latency <= 0:
            raise ConfigError(
                "channel %r needs positive lookahead latency, got %r"
                % (name, latency)
            )
        self.name = name
        self.src = src
        self.dst = dst
        self.latency = latency

    def __repr__(self):
        return "<CrossChannel %s: %s->%s la=%g>" % (
            self.name, self.src, self.dst, self.latency,
        )


class ChannelOut(object):
    """The send endpoint of a :class:`CrossChannel`, bound to a partition.

    ``send`` stamps the message with its delivery time (now + channel
    latency) and a per-channel sequence number, then buffers it; the
    partition runtime flushes the buffer to the transport after each
    executed timestep. Payloads must survive ``pickle`` when partitions
    run in separate OS processes — keep them to plain data.
    """

    def __init__(self, sim, spec):
        self.sim = sim
        self.spec = spec
        self.pending = []
        self._seq = 0
        self.sent = 0
        self.sent_bytes = 0

    def send(self, payload, nbytes=0):
        """Queue ``payload`` for the peer partition; delivery is at
        ``now + latency``. Returns the stamped delivery time."""
        deliver_at = self.sim.now + self.spec.latency
        self._seq += 1
        self.pending.append((deliver_at, self._seq, payload))
        self.sent += 1
        self.sent_bytes += nbytes
        return deliver_at

    def flush(self):
        """Take the buffered messages (the runtime ships them)."""
        out, self.pending = self.pending, []
        return out


class ChannelIn(object):
    """The receive endpoint of a :class:`CrossChannel`.

    Buffers in-flight messages and tracks the channel ``bound`` — the
    peer's promised clock plus lookahead. The partition may execute any
    timestep strictly below the minimum bound across its in-channels:
    every message not yet buffered is guaranteed to be delivered at or
    after that bound.
    """

    def __init__(self, sim, spec, handler):
        self.sim = sim
        self.spec = spec
        self.handler = handler  # handler(payload) runs at delivery time
        self.buffered = []  # (deliver_at, seq, payload), kept sorted
        self.bound = spec.latency  # peer clock starts at 0.0
        self.received = 0

    def push(self, deliver_at, seq, payload):
        """Accept one in-flight message from the transport."""
        self.buffered.append((deliver_at, seq, payload))
        self.buffered.sort()
        self.received += 1
        # A real message is also a promise: the peer's clock was at
        # deliver_at - latency when it sent, so every later send is
        # delivered at or after deliver_at.
        if deliver_at > self.bound:
            self.bound = deliver_at

    def promise(self, peer_clock):
        """Raise the channel bound from a peer promise (null message)."""
        bound = peer_clock + self.spec.latency
        if bound > self.bound:
            self.bound = bound

    def earliest(self):
        """Delivery time of the earliest buffered message (or ``None``)."""
        if self.buffered:
            return self.buffered[0][0]
        return None

    def drain_until(self, when):
        """Inject every buffered message due at or before ``when``.

        Injection order within the call is (delivery time, send seq) —
        fully deterministic — and the caller only drains below the safe
        bound, so the schedule cannot depend on transport timing.
        """
        injected = 0
        while self.buffered and self.buffered[0][0] <= when:
            deliver_at, _seq, payload = self.buffered.pop(0)
            if deliver_at < self.sim.now:
                raise SimulationError(
                    "channel %s delivered into the past" % self.spec.name
                )
            self.sim.schedule_external(deliver_at, self.handler, payload)
            injected += 1
        return injected
