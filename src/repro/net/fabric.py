"""Network model: links with latency and fairly-shared bandwidth.

The testbed connects client and server machines over a 20 Gbps bonded link.
We model a link as propagation latency plus a bandwidth pool shared by all
in-flight transfers: each transfer proceeds in chunks whose duration scales
with the number of concurrent transfers, which approximates per-flow fair
queueing closely enough for the throughput shapes the paper reports.
"""

from repro.common import units
from repro.common.errors import ConfigError
from repro.metrics import MetricSet

__all__ = ["Link", "Fabric"]


class Link(object):
    """A duplex link: ``latency`` + fair-shared ``bandwidth``."""

    #: Transfer granularity; smaller chunks track sharing more accurately
    #: at the cost of more events.
    CHUNK = 256 * units.KIB

    def __init__(self, sim, bandwidth=2.5 * units.GIB, latency=units.usec(40),
                 name="link"):
        if bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = latency
        self.active = 0
        self.metrics = MetricSet("link:%s" % name)

    def transfer(self, nbytes):
        """Move ``nbytes`` across the link; generator until delivered."""
        yield self.sim.timeout(self.latency)
        if nbytes <= 0:
            return
        self.active += 1
        try:
            remaining = nbytes
            while remaining > 0:
                piece = min(self.CHUNK, remaining)
                share = self.bandwidth / self.active
                yield self.sim.timeout(piece / share)
                remaining -= piece
        finally:
            self.active -= 1
        self.metrics.counter("bytes").add(nbytes)
        self.metrics.counter("transfers").add(1)


class Fabric(object):
    """The client-to-storage network: one shared link plus RPC helpers."""

    #: Fixed wire overhead per RPC (headers, framing).
    HEADER_BYTES = 256

    def __init__(self, sim, bandwidth=2.5 * units.GIB, latency=units.usec(40)):
        self.sim = sim
        self.link = Link(sim, bandwidth=bandwidth, latency=latency, name="fabric")

    def request(self, payload_bytes=0):
        """Send a request of ``payload_bytes`` toward a server."""
        yield from self.link.transfer(self.HEADER_BYTES + payload_bytes)

    def response(self, payload_bytes=0):
        """Receive a response of ``payload_bytes`` from a server."""
        yield from self.link.transfer(self.HEADER_BYTES + payload_bytes)

    def rpc(self, server_gen, send_bytes=0, recv_bytes=0):
        """Round-trip: ship the request, run the server logic, ship the reply.

        ``server_gen`` is a generator implementing the server-side work
        (queueing, journaling, disk I/O); its return value is returned.
        """
        yield from self.request(send_bytes)
        result = yield from server_gen
        yield from self.response(recv_bytes)
        return result
