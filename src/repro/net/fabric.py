"""Network model: links with latency and fairly-shared bandwidth.

The testbed connects client and server machines over a 20 Gbps bonded link.
We model a link as propagation latency plus a bandwidth pool shared by all
in-flight transfers: each transfer proceeds in chunks whose duration scales
with the number of concurrent transfers, which approximates per-flow fair
queueing closely enough for the throughput shapes the paper reports.
"""

from repro.common import units
from repro.common.errors import ConfigError, NetworkPartitioned
from repro.metrics import MetricSet

__all__ = ["Link", "Fabric"]


class Link(object):
    """A duplex link: ``latency`` + fair-shared ``bandwidth``.

    Fault injection (``repro.faults``) can degrade the link: a
    *partition* makes every transfer fail with
    :class:`NetworkPartitioned` once the propagation delay has elapsed
    (the sender learns nothing sooner), ``delay_factor`` stretches the
    propagation latency (congested or rerouted path), and ``loss_rate``
    drops individual messages from a seeded deterministic stream.
    """

    #: Transfer granularity; smaller chunks track sharing more accurately
    #: at the cost of more events.
    CHUNK = 256 * units.KIB

    def __init__(self, sim, bandwidth=2.5 * units.GIB, latency=units.usec(40),
                 name="link"):
        if bandwidth <= 0:
            raise ConfigError("link bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.latency = latency
        self.active = 0
        self.partitioned = False
        self.delay_factor = 1.0
        self.loss_rate = 0.0
        self._loss_rng = None
        self.metrics = MetricSet("link:%s" % name)

    # -- fault injection -------------------------------------------------

    def set_partitioned(self, flag):
        """Partition (or heal) the link; transfers fail while partitioned."""
        self.partitioned = bool(flag)
        self.sim.trace("net", "partition" if flag else "heal", link=self.name)
        if flag:
            self.metrics.counter("partitions").add(1)

    def set_degraded(self, delay_factor=1.0, loss_rate=0.0, rng=None):
        """Stretch propagation delay and/or drop a fraction of messages.

        ``rng`` (a seeded ``random.Random``) drives the loss stream so a
        fault plan reproduces the exact same drops run after run.
        """
        if delay_factor < 1.0 or not 0.0 <= loss_rate < 1.0:
            raise ConfigError("invalid link degradation")
        self.delay_factor = float(delay_factor)
        self.loss_rate = float(loss_rate)
        self._loss_rng = rng
        self.sim.trace("net", "degrade", link=self.name,
                       delay_factor=delay_factor, loss_rate=loss_rate)

    def transfer(self, nbytes):
        """Move ``nbytes`` across the link; generator until delivered."""
        yield self.sim.timeout(self.latency * self.delay_factor)
        if self.partitioned:
            self.metrics.counter("partition_drops").add(1)
            raise NetworkPartitioned("link %s partitioned" % self.name)
        if self.loss_rate and self._loss_rng is not None \
                and self._loss_rng.random() < self.loss_rate:
            self.metrics.counter("messages_lost").add(1)
            raise NetworkPartitioned("message lost on link %s" % self.name)
        if nbytes <= 0:
            return
        self.active += 1
        try:
            remaining = nbytes
            while remaining > 0:
                piece = min(self.CHUNK, remaining)
                share = self.bandwidth / self.active
                yield self.sim.timeout(piece / share)
                remaining -= piece
        finally:
            self.active -= 1
        self.metrics.counter("bytes").add(nbytes)
        self.metrics.counter("transfers").add(1)


class Fabric(object):
    """The client-to-storage network: one shared link plus RPC helpers."""

    #: Fixed wire overhead per RPC (headers, framing).
    HEADER_BYTES = 256

    def __init__(self, sim, bandwidth=2.5 * units.GIB, latency=units.usec(40)):
        self.sim = sim
        self.link = Link(sim, bandwidth=bandwidth, latency=latency, name="fabric")

    def set_partitioned(self, flag):
        """Partition (or heal) the client-to-storage link."""
        self.link.set_partitioned(flag)

    def set_degraded(self, delay_factor=1.0, loss_rate=0.0, rng=None):
        """Degrade the client-to-storage link (delay stretch, loss)."""
        self.link.set_degraded(delay_factor, loss_rate, rng=rng)

    @property
    def partitioned(self):
        return self.link.partitioned

    def request(self, payload_bytes=0):
        """Send a request of ``payload_bytes`` toward a server."""
        yield from self.link.transfer(self.HEADER_BYTES + payload_bytes)

    def response(self, payload_bytes=0):
        """Receive a response of ``payload_bytes`` from a server."""
        yield from self.link.transfer(self.HEADER_BYTES + payload_bytes)

    def rpc(self, server_gen, send_bytes=0, recv_bytes=0):
        """Round-trip: ship the request, run the server logic, ship the reply.

        ``server_gen`` is a generator implementing the server-side work
        (queueing, journaling, disk I/O); its return value is returned.
        """
        yield from self.request(send_bytes)
        result = yield from server_gen
        yield from self.response(recv_bytes)
        return result
