"""Dirty extent buffers: real bytes waiting to be flushed.

Both Ceph client personalities buffer written data before pushing it to
the OSDs (write-behind). The buffer is the *only* place where file bytes
exist outside the authoritative stores, which is exactly what makes the
consistency semantics of §3.4 observable: another client reading through
the cluster sees the data only after a flush.
"""

import bisect

from repro.common.errors import InvalidArgument

__all__ = ["ExtentBuffer"]


class ExtentBuffer(object):
    """Non-overlapping sorted byte extents of one file."""

    def __init__(self):
        self._offsets = []  # sorted extent start offsets
        self._data = {}  # start offset -> bytearray
        self.dirty_bytes = 0

    def __bool__(self):
        return bool(self._offsets)

    def write(self, offset, data):
        """Insert ``data`` at ``offset``, merging overlapping extents."""
        if offset < 0:
            raise InvalidArgument("negative offset")
        if not data:
            return
        start, end = offset, offset + len(data)
        index = bisect.bisect_left(self._offsets, start)
        if index > 0:
            prev_start = self._offsets[index - 1]
            prev = self._data[prev_start]
            prev_end = prev_start + len(prev)
            if prev_end >= start and (
                index == len(self._offsets) or self._offsets[index] > end
            ):
                # The write lands entirely inside/at the tail of the previous
                # extent and touches no later one: splice in place instead of
                # re-copying the merged extent (sequential appends are O(n^2)
                # without this).
                lo = start - prev_start
                prev[lo:lo + len(data)] = data
                self.dirty_bytes += max(end, prev_end) - prev_end
                return
        merged = bytearray(data)
        if index > 0:
            prev_start = self._offsets[index - 1]
            if prev_start + len(self._data[prev_start]) >= start:
                index -= 1
        absorbed = []
        while index < len(self._offsets):
            ext_start = self._offsets[index]
            if ext_start > end:
                break
            absorbed.append(ext_start)
            index += 1
        if absorbed:
            new_start = min(start, absorbed[0])
            last = absorbed[-1]
            new_end = max(end, last + len(self._data[last]))
            combined = bytearray(new_end - new_start)
            for ext_start in absorbed:
                ext = self._data.pop(ext_start)
                self.dirty_bytes -= len(ext)
                combined[ext_start - new_start:ext_start - new_start + len(ext)] = ext
                position = bisect.bisect_left(self._offsets, ext_start)
                del self._offsets[position]
            combined[start - new_start:end - new_start] = merged
            start, merged = new_start, combined
        bisect.insort(self._offsets, start)
        self._data[start] = merged
        self.dirty_bytes += len(merged)

    def overlay(self, offset, size, base):
        """Apply buffered extents over ``base`` (bytes read at ``offset``).

        Returns bytes of length up to max(len(base), highest buffered byte
        within the window) — buffered data may extend past the base.
        """
        end = offset + size
        result = bytearray(base)
        for ext_start in self._offsets:
            ext = self._data[ext_start]
            ext_end = ext_start + len(ext)
            if ext_end <= offset or ext_start >= end:
                continue
            lo = max(ext_start, offset)
            hi = min(ext_end, end)
            if hi - offset > len(result):
                result.extend(b"\x00" * (hi - offset - len(result)))
            result[lo - offset:hi - offset] = ext[lo - ext_start:hi - ext_start]
        return bytes(result)

    def take(self, max_bytes=None):
        """Remove and return up to ``max_bytes`` of extents, oldest offset
        first, as ``[(offset, bytes)]`` (whole extents; at least one)."""
        taken = []
        budget = max_bytes if max_bytes is not None else float("inf")
        while self._offsets and (budget > 0 or not taken):
            start = self._offsets[0]
            ext = self._data[start]
            if len(ext) > budget and taken:
                break
            del self._offsets[0]
            del self._data[start]
            self.dirty_bytes -= len(ext)
            budget -= len(ext)
            taken.append((start, bytes(ext)))
        return taken

    def extents(self):
        """Snapshot of ``(offset, bytes)`` pairs without consuming them."""
        return [(start, bytes(self._data[start])) for start in self._offsets]

    def clear(self):
        self._offsets = []
        self._data = {}
        self.dirty_bytes = 0

    def truncate(self, size):
        """Drop buffered bytes at or beyond ``size``; returns bytes freed.

        Buffered data *below* the cut survives — truncating a file must
        not lose its remaining unflushed contents.
        """
        freed = 0
        kept_offsets = []
        for start in self._offsets:
            ext = self._data[start]
            if start >= size:
                freed += len(ext)
                del self._data[start]
                continue
            if start + len(ext) > size:
                keep = size - start
                freed += len(ext) - keep
                self._data[start] = ext[:keep]
            kept_offsets.append(start)
        self._offsets = kept_offsets
        self.dirty_bytes -= freed
        return freed

    def max_end(self):
        """One past the highest buffered byte (0 when empty)."""
        if not self._offsets:
            return 0
        last = self._offsets[-1]
        return last + len(self._data[last])
