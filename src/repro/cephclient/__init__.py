"""Ceph client personalities: user-level (libcephfs-like) and kernel."""

from repro.cephclient.cache import ObjectCache
from repro.cephclient.client import CephLibClient
from repro.cephclient.extents import ExtentBuffer
from repro.cephclient.kernelfs import CephKernelFs

__all__ = ["ObjectCache", "CephLibClient", "ExtentBuffer", "CephKernelFs"]
