"""The kernel CephFS client personality.

Protocol-wise identical to the user-level client — the same MDS calls, the
same object striping — but executed through the *shared kernel* machinery:

* data caching in the host page cache (global LRU, global dirty accounting,
  cgroup charging);
* dirty flushing by the kernel writeback daemon, whose flusher threads run
  on any activated core of the host (core stealing);
* ``i_mutex_key`` / ``i_mutex_dir_key`` / superblock / global locks around
  the same sections a real kernel filesystem serialises.

This is the "mature kernel-based client" (configuration **K**) that wins
cached reads and collapses under colocation in the paper.
"""

from repro.cephclient.extents import ExtentBuffer
from repro.common.errors import (
    BadFileDescriptor,
    InvalidArgument,
    IsADirectory,
)
from repro.fs import pathutil
from repro.fs.api import FileHandle, FileStat, Filesystem, OpenFlags
from repro.fs.readahead import Prefetcher, next_window, plan_fetch
from repro.metrics import MetricSet

__all__ = ["CephKernelFs"]

#: Cached negative dentry (the kernel dentry cache caches ENOENT too).
_NEGATIVE = object()


class _KernelCephHandle(FileHandle):
    __slots__ = ("ino",)

    def __init__(self, fs, path, flags, ino):
        super().__init__(fs, path, flags)
        self.ino = ino


class CephKernelFs(Filesystem):
    """Kernel-based CephFS mount: shared page cache, kernel writeback."""

    _next_fs_id = [1]

    def __init__(self, kernel, cluster, name="cephfs", readahead_bytes=128 * 1024,
                 direct_io=False):
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.costs
        self.cluster = cluster
        #: kernel client's osdmap-epoch view, kept current by a monitor
        #: subscription (mirrors the libceph client's map push)
        self.osdmap_epoch = cluster.monitor.epoch
        cluster.monitor.subscribe(self._on_osdmap)
        self.name = name
        self.readahead_bytes = readahead_bytes
        self.direct_io = direct_io
        self.fs_id = CephKernelFs._next_fs_id[0]
        CephKernelFs._next_fs_id[0] += 1
        self.attr_cache = {}  # path -> InodeInfo
        self._sizes = {}  # ino -> local size view
        self._paths = {}  # ino -> path for size flush
        self._pending = {}  # ino -> ExtentBuffer of unflushed bytes
        #: pipelined readahead: one detached next-window prefetch per ino
        self._prefetcher = Prefetcher(self.sim)
        self.metrics = MetricSet(name)
        #: exactly-once metadata stamps (allocated lazily when HA arms)
        self._mds_session_id = None
        self._mds_op_seq = 0

    # -- helpers ----------------------------------------------------------

    def _mds_op_ids(self):
        """Stamps for one mutating metadata op (exactly-once resends).

        Disarmed this is ``{}`` — the single-MDS event schedule is
        untouched. Armed, the ``(client_id, op_id)`` pair is journaled
        with the mutation so a post-failover resend dedups instead of
        re-running (see CephLibClient._mds_op_ids).
        """
        if self.cluster.mds_service is None:
            return {}
        if self._mds_session_id is None:
            self._mds_session_id = self.cluster.mds_session_id()
        self._mds_op_seq += 1
        return {"client_id": self._mds_session_id,
                "op_id": self._mds_op_seq}

    def _on_osdmap(self, osdmap):
        """Monitor pushed a new osdmap (membership/CRUSH change)."""
        self.osdmap_epoch = osdmap.epoch

    def _cache_key(self, ino):
        return ("cephk", self.fs_id, ino)

    def _cached_file(self, ino):
        def flush_fn(nbytes, _pages):
            yield from self._flush_bytes(ino, nbytes)

        return self.kernel.page_cache.file(self._cache_key(ino), flush_fn)

    def _flush_bytes(self, ino, nbytes):
        """Push up to ``nbytes`` of pending extents to the cluster."""
        buffer = self._pending.get(ino)
        if buffer is None or not buffer:
            return
        extents = buffer.take(nbytes)
        if extents:
            total = sum(len(data) for _off, data in extents)
            # Messenger send processing happens in host-wide kworkers;
            # one scatter-gather pass covers the whole coalesced batch.
            yield from self.kernel.workqueue.execute(
                total / self.costs.kernel_wq_bandwidth
            )
            yield from self.cluster.write_vector(ino, extents)
        path = self._paths.get(ino)
        if path is not None:
            from repro.common.errors import FileNotFound

            try:
                yield from self.cluster.mds_call(
                    "setattr_size", path, self._sizes.get(ino, 0),
                    **self._mds_op_ids()
                )
            except FileNotFound:
                pass

    def _account(self, task):
        if task.pool is not None:
            return task.pool.ram
        return self.kernel.machine.ram

    def _inode_lock(self, ino):
        return self.kernel.locks.get(
            "i_mutex_key", (self.fs_id, ino), scope=self.name
        )

    def _dir_lock(self, path):
        return self.kernel.locks.get(
            "i_mutex_dir_key", (self.fs_id, path), scope=self.name
        )

    def _sb_lock(self):
        return self.kernel.locks.get(
            "sb_lock", ("cephk", self.fs_id), scope=self.name
        )

    def _remember(self, path, info):
        self.attr_cache[path] = info
        self._paths[info.ino] = path
        pending = self._pending.get(info.ino)
        if pending is None or not pending:
            self._sizes[info.ino] = info.size

    def _local_size(self, ino, fallback=0):
        return self._sizes.get(ino, fallback)

    # -- Filesystem interface ---------------------------------------------------

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        path = pathutil.normalize(path)
        yield from task.cpu(self.costs.fs_op)
        if flags & OpenFlags.CREAT:
            yield from self.kernel.locks.locked_section(
                task, self._dir_lock(pathutil.parent_of(path)),
                self.costs.kernel_lock_section,
            )
            yield from self.kernel.locks.locked_section(
                task, self._sb_lock(), self.costs.kernel_lock_section
            )
            yield from self.kernel.locks.locked_section(
                task, self.kernel.locks.get("inode_hash_lock"),
                self.costs.kernel_lock_section / 2,
            )
            info = yield from self.cluster.mds_call(
                "create", path, bool(flags & OpenFlags.EXCL), mode,
                **self._mds_op_ids()
            )
        else:
            from repro.common.errors import FileNotFound

            try:
                info = yield from self.cluster.mds_call("lookup", path)
            except FileNotFound:
                self.attr_cache[path] = _NEGATIVE
                raise
        if info.is_dir and flags.wants_write:
            raise IsADirectory(path=path)
        self._remember(path, info)
        if flags & OpenFlags.TRUNC and not info.is_dir:
            yield from self._truncate_ino(task, info.ino, path, 0)
        self.metrics.counter("opens").add(1)
        return _KernelCephHandle(self, path, flags, info.ino)

    def close(self, task, handle):
        yield from task.cpu(self.costs.fs_op / 2)
        handle.closed = True

    def read(self, task, handle, offset, size):
        ino = self._live_ino(handle)
        yield from task.cpu(self.costs.fs_op)
        pending = self._pending.get(ino)
        file_size = max(
            self._local_size(ino), pending.max_end() if pending else 0
        )
        if offset >= file_size or size <= 0:
            return b""
        size = min(size, file_size - offset)
        if self.direct_io:
            data = yield from self.cluster.read_extent(ino, offset, size)
            base = data if len(data) >= size else self.cluster.peek(ino, offset, size)
            out = pending.overlay(offset, size, base) if pending else bytes(base)
            self.metrics.counter("bytes_read").add(len(out))
            return out[:size]
        cf = self._cached_file(ino)
        hit_pages, miss_ranges = self.kernel.page_cache.scan(cf, offset, size)
        if hit_pages:
            yield from task.cpu(self.costs.page_op * hit_pages)
        account = self._account(task)
        sequential = offset == cf.read_sequential_end
        if sequential and miss_ranges and self._prefetcher.active(ino):
            # Adopt the in-flight next-window prefetch instead of issuing
            # a duplicate fetch, then rescan for what is still missing.
            yield from self._prefetcher.join(ino)
            rescanned, miss_ranges = self.kernel.page_cache.scan(
                cf, offset, size
            )
            if rescanned > hit_pages:
                yield from task.cpu(
                    self.costs.page_op * (rescanned - hit_pages)
                )
        for miss_offset, miss_size in miss_ranges:
            fetch = plan_fetch(miss_offset, miss_size, file_size,
                               self.readahead_bytes, sequential)
            yield from self.cluster.read_extent(ino, miss_offset, fetch)
            # Messenger receive processing in kworkers. Sequential reads
            # pipeline through readahead and overlap DMA; random reads pay
            # the full per-request completion path (see CostModel).
            read_bw = (
                self.costs.kernel_wq_read_bandwidth if sequential
                else self.costs.kernel_wq_rand_read_bandwidth
            )
            yield from self.kernel.workqueue.execute(fetch / read_bw)
            self.kernel.page_cache.insert(cf, miss_offset, fetch, account)
            yield from task.cpu(
                self.costs.page_op * self.costs.pages_of(miss_offset, fetch)
            )
        cf.read_sequential_end = offset + size
        if sequential:
            # Pipelined readahead: prefetch the next window detached while
            # the caller copies the current one out.
            window = next_window(offset + size, self.readahead_bytes,
                                 file_size)
            if window is not None:
                self._prefetcher.launch(
                    ino, self._prefetch(ino, window[0], window[1], account),
                    name="%s.readahead" % self.name,
                )
        base = self.cluster.peek(ino, offset, size)
        data = pending.overlay(offset, size, base) if pending else base
        self.metrics.counter("bytes_read").add(size)
        return data[:size]

    def _prefetch(self, ino, offset, size, account):
        """Detached next-window prefetch into the shared page cache."""
        cf = self.kernel.page_cache.peek(self._cache_key(ino))
        if cf is None:
            return  # dropped (unlink/truncate) while queued
        _hits, missing = self.kernel.page_cache.scan(cf, offset, size)
        for miss_offset, miss_size in missing:
            miss_size = min(
                miss_size, max(self._local_size(ino) - miss_offset, 0)
            )
            if miss_size <= 0:
                continue
            yield from self.cluster.read_extent(ino, miss_offset, miss_size)
            # Receive processing still runs in the host-wide kworkers —
            # this is exactly the messenger work that readahead pipelines.
            yield from self.kernel.workqueue.execute(
                miss_size / self.costs.kernel_wq_read_bandwidth
            )
            cf = self.kernel.page_cache.peek(self._cache_key(ino))
            if cf is None:
                return
            self.kernel.page_cache.insert(cf, miss_offset, miss_size, account)

    def write(self, task, handle, offset, data):
        ino = self._live_ino(handle)
        append = bool(handle.flags & OpenFlags.APPEND)
        yield from task.cpu(self.costs.fs_op)
        if self.direct_io:
            from repro.common.errors import FileNotFound

            if append:
                # Resolved after the entry CPU slice, atomically with the
                # dispatch of the backend write.
                offset = self._local_size(ino)
            yield from self.cluster.write_extent(ino, offset, data)
            new_size = max(self._local_size(ino), offset + len(data))
            self._sizes[ino] = new_size
            path = self._paths.get(ino)
            if path is not None:
                try:
                    yield from self.cluster.mds_call(
                        "setattr_size", path, new_size,
                        **self._mds_op_ids()
                    )
                except FileNotFound:
                    pass  # concurrently unlinked
            self.metrics.counter("bytes_written").add(len(data))
            return len(data)
        cf = self._cached_file(ino)
        account = self._account(task)
        inode_lock = self._inode_lock(ino)
        yield inode_lock.acquire(who=task)
        try:
            if append:
                # The O_APPEND offset is resolved under i_rwsem, as the
                # kernel client does: concurrent appenders each see the
                # size the other already advanced.
                offset = self._local_size(ino)
            pages = self.costs.pages_of(offset, len(data))
            yield from task.cpu(
                self.costs.kernel_lock_section + self.costs.page_op * pages
            )
            buffer = self._pending.get(ino)
            if buffer is None:
                buffer = self._pending[ino] = ExtentBuffer()
            buffer.write(offset, data)
            self._sizes[ino] = max(self._local_size(ino), offset + len(data))
            self.kernel.page_cache.mark_dirty(
                cf, offset, len(data), self.sim.now, account
            )
        finally:
            inode_lock.release()
        # Page allocation touches the host-global LRU lock (see LocalFs).
        yield from self.kernel.locks.locked_section(
            task, self.kernel.locks.get("lru_lock"),
            self.costs.kernel_lock_section / 4,
        )
        self.metrics.counter("bytes_written").add(len(data))
        yield from self.kernel.writeback.balance_dirty_pages(task, account)
        return len(data)

    def fsync(self, task, handle):
        ino = self._live_ino(handle)
        yield from task.cpu(self.costs.fs_op)
        cf = self.kernel.page_cache.peek(self._cache_key(ino))
        if cf is not None:
            yield from self.kernel.writeback.fsync(task, cf)
        # Anything the page bookkeeping missed still drains here.
        yield from self._flush_bytes(ino, None)

    def stat(self, task, path):
        from repro.common.errors import FileNotFound

        path = pathutil.normalize(path)
        yield from task.cpu(self.costs.fs_op / 2)
        info = self.attr_cache.get(path)
        if info is _NEGATIVE:
            raise FileNotFound(path=path)
        if info is None:
            try:
                info = yield from self.cluster.mds_call("lookup", path)
            except FileNotFound:
                self.attr_cache[path] = _NEGATIVE
                raise
            self._remember(path, info)
        size = self._local_size(info.ino, info.size)
        return FileStat(info.ino, info.is_dir, size, info.mtime, info.nlink)

    def mkdir(self, task, path, mode=0o755):
        yield from task.cpu(self.costs.fs_op)
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(pathutil.parent_of(path)),
            self.costs.kernel_lock_section,
        )
        info = yield from self.cluster.mds_call("mkdir", path, mode,
                                                **self._mds_op_ids())
        self._remember(pathutil.normalize(path), info)

    def rmdir(self, task, path):
        yield from task.cpu(self.costs.fs_op)
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(pathutil.parent_of(path)),
            self.costs.kernel_lock_section,
        )
        yield from self.cluster.mds_call("rmdir", path,
                                         **self._mds_op_ids())
        self.attr_cache[pathutil.normalize(path)] = _NEGATIVE

    def unlink(self, task, path):
        path = pathutil.normalize(path)
        yield from task.cpu(self.costs.fs_op)
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(pathutil.parent_of(path)),
            self.costs.kernel_lock_section,
        )
        yield from self.kernel.locks.locked_section(
            task, self.kernel.locks.get("inode_hash_lock"),
            self.costs.kernel_lock_section / 2,
        )
        ino, _size = yield from self.cluster.mds_call(
            "unlink", path, **self._mds_op_ids()
        )
        self.cluster.purge(ino)
        self.kernel.page_cache.drop_file(self._cache_key(ino))
        self._prefetcher.forget(ino)
        self._pending.pop(ino, None)
        self.attr_cache[path] = _NEGATIVE
        self._sizes.pop(ino, None)
        self._paths.pop(ino, None)
        self.metrics.counter("unlinks").add(1)

    def readdir(self, task, path):
        yield from task.cpu(self.costs.fs_op)
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(pathutil.normalize(path)),
            self.costs.kernel_lock_section / 2,
        )
        names = yield from self.cluster.mds_call("readdir", path)
        yield from task.cpu(self.costs.dirent_op * max(len(names), 1))
        return names

    def rename(self, task, old_path, new_path):
        old_path = pathutil.normalize(old_path)
        new_path = pathutil.normalize(new_path)
        yield from task.cpu(self.costs.fs_op)
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(pathutil.parent_of(old_path)),
            self.costs.kernel_lock_section,
        )
        yield from self.cluster.mds_call("rename", old_path, new_path,
                                         **self._mds_op_ids())
        info = self.attr_cache.get(old_path)
        self.attr_cache[old_path] = _NEGATIVE
        if info is not None and info is not _NEGATIVE:
            self._remember(new_path, info)

    def truncate(self, task, path, size):
        path = pathutil.normalize(path)
        info = self.attr_cache.get(path)
        if info is None or info is _NEGATIVE:
            info = yield from self.cluster.mds_call("lookup", path)
            self._remember(path, info)
        yield from self._truncate_ino(task, info.ino, path, size)

    def _truncate_ino(self, task, ino, path, size):
        from repro.common.errors import FileNotFound

        yield from self.kernel.locks.locked_section(
            task, self._inode_lock(ino), self.costs.kernel_lock_section
        )
        pending = self._pending.get(ino)
        if pending is not None:
            # Keep unflushed bytes below the cut; drop the rest.
            pending.truncate(size)
        yield from self.cluster.truncate(ino, size)
        self._sizes[ino] = size
        if size == 0:
            self.kernel.page_cache.drop_file(self._cache_key(ino))
        try:
            info = yield from self.cluster.mds_call(
                "setattr_size", path, size, **self._mds_op_ids()
            )
        except FileNotFound:
            return  # concurrently unlinked; the open handle stays usable
        self._remember(path, info)

    def peek(self, path, offset, size):
        """Zero-cost resident-data read (see Filesystem.peek)."""
        info = self.attr_cache.get(pathutil.normalize(path))
        if info is None or info is _NEGATIVE or info.is_dir:
            return None
        ino = info.ino
        pending = self._pending.get(ino)
        file_size = max(
            self._local_size(ino, info.size), pending.max_end() if pending else 0
        )
        if offset >= file_size:
            return b""
        size = min(size, file_size - offset)
        base = self.cluster.peek(ino, offset, size)
        out = pending.overlay(offset, size, base) if pending else base
        return out[:size]

    def _live_ino(self, handle):
        if handle.closed:
            raise BadFileDescriptor(path=handle.path)
        if not isinstance(handle, _KernelCephHandle):
            raise InvalidArgument("foreign handle %r" % (handle,))
        return handle.ino
