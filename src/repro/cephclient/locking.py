"""Client-side locking policies for the user-level Ceph client.

The paper names the global ``client_lock`` (ceph tracker #23844) as the
user-level client's own cached-Seqread bottleneck and proposes sharding
it as future work. This module makes that sharding a first-class,
*audited* policy instead of a bench-only flag. Four policies:

``global``
    One ``client_lock`` serialises every client-side critical section —
    the faithful libcephfs default. The event schedule of this mode is
    byte-identical to the historical code path (engine-bench
    fingerprints pin it).
``inode``
    One lock per inode (the old ``fine_grained_locking=True``): ops on
    different files stop contending; ops on one file still serialise.
``range``
    Per-inode *state* lock plus per-object-range *data* locks: readers
    of different ranges of one file, and the flusher pushing other
    ranges, proceed concurrently. Ranges are object-size stripes, so a
    data lock maps one-to-one onto the RADOS object a section touches.
``adaptive``
    Starts at ``global`` and watches the measured lock contention (the
    same wait/hold accounting the PR 2 lock-contention profile reads)
    at runtime, escalating ``global -> inode -> range`` under contention
    and de-escalating when it subsides. Every decision is traced and
    exported through ``repro.obs`` (metric scope ``locking``).

Locking discipline (see ``docs/architecture.md`` for the field table):

* **state sections** guard the per-inode bookkeeping — ``attr_cache``,
  ``_sizes``, ``_seq_end``, ``_dirty_since``, cap masks, dirty-buffer
  membership. Acquired via :meth:`LockingPolicy.acquire_state`.
* **data sections** guard the cached bytes of one byte range — block
  insert, dirty write, overlay/copy-out, in-flight flush. Acquired via
  :meth:`LockingPolicy.acquire_data`.

Adaptive mode switches must never break mutual exclusion mid-flight, so
its acquisition rules are monotone: a state section *always* takes the
inode lock (plus the global lock while the decision is ``global``), and
a data section *always* takes the range locks covering its byte range
(plus the inode/global locks in the coarser decisions). Same-inode and
same-range exclusion therefore holds across any switch instant — the
coarser locks only ever *add* serialisation.

Lock order (deadlock freedom): ``inode(ino) < client_lock < range(ino,
stripe) < range(ino, stripe')`` for ``stripe < stripe'``; every section
acquires along this order and no section holds locks of two inodes.
"""

from repro.common.errors import ConfigError
from repro.sim.sync import LockStats, Mutex

__all__ = ["POLICIES", "AdaptiveLockController", "LockingPolicy"]

#: Effective lock modes, coarse to fine.
MODES = ("global", "inode", "range")
#: Accepted ``locking=`` policy names (modes plus the runtime switcher).
POLICIES = MODES + ("adaptive",)

#: Numeric mode index exported as the ``locking``-scope ``mode`` gauge.
MODE_INDEX = {mode: index for index, mode in enumerate(MODES)}


class _RetiredLocks(object):
    """Stats holder for locks dropped on unlink.

    The contention table reads ``.stats`` off every registered lock;
    folding departed per-inode/per-range stats into one retired bucket
    keeps their accumulated wait time attributable after the inode (and
    its registry entries) are gone.
    """

    __slots__ = ("stats",)

    def __init__(self):
        self.stats = LockStats()


class LockingPolicy(object):
    """The lock table and acquisition discipline of one client."""

    def __init__(self, sim, name, client_lock, policy="global",
                 range_stripe=4 * 1024 * 1024):
        if policy not in POLICIES:
            raise ConfigError(
                "unknown locking policy %r (one of: %s)"
                % (policy, ", ".join(POLICIES))
            )
        if range_stripe <= 0:
            raise ConfigError("range_stripe must be positive")
        self.sim = sim
        self.name = name
        self.policy = policy
        #: current effective mode; fixed for static policies, moved by
        #: the :class:`AdaptiveLockController` for ``adaptive``
        self.mode = "global" if policy == "adaptive" else policy
        self.client_lock = client_lock
        self.range_stripe = range_stripe
        self._ino_locks = {}  # ino -> Mutex
        self._range_locks = {}  # ino -> {stripe index -> Mutex}
        self._retired = None  # registered lazily on first drop
        #: adaptive decision trace: (time, from_mode, to_mode, reason)
        self.decisions = []

    # -- lock table ------------------------------------------------------

    def inode_lock(self, ino):
        """The state lock of ``ino`` (get-or-create, registered)."""
        lock = self._ino_locks.get(ino)
        if lock is None:
            lock = self._ino_locks[ino] = Mutex(
                self.sim, name="%s.ino%d" % (self.name, ino)
            )
            self.sim.register_lock(self.name, "ino_lock", ino, lock)
        return lock

    def range_locks(self, ino, offset, size):
        """Stripe-ordered data locks covering ``[offset, offset+size)``."""
        table = self._range_locks.get(ino)
        if table is None:
            table = self._range_locks[ino] = {}
        first = offset // self.range_stripe
        last = (offset + size - 1) // self.range_stripe if size > 0 else first
        locks = []
        for stripe in range(first, last + 1):
            lock = table.get(stripe)
            if lock is None:
                lock = table[stripe] = Mutex(
                    self.sim,
                    name="%s.ino%d.r%d" % (self.name, ino, stripe),
                )
                self.sim.register_lock(
                    self.name, "range_lock", (ino, stripe), lock
                )
            locks.append(lock)
        return locks

    def drop_ino(self, ino):
        """Forget the locks of an unlinked inode.

        The Mutex objects are unregistered from the simulator's lock
        registry (a recycled ino gets fresh locks) and their accumulated
        wait/hold stats are folded into a single retired bucket so the
        contention table keeps attributing them.
        """
        departing = []
        lock = self._ino_locks.pop(ino, None)
        if lock is not None:
            departing.append(lock)
        table = self._range_locks.pop(ino, None)
        if table:
            departing.extend(table.values())
        if not departing:
            return
        if self._retired is None:
            self._retired = _RetiredLocks()
            self.sim.register_lock(
                self.name, "ino_lock", "retired", self._retired
            )
        for lock in departing:
            self._retired.stats.merge(lock.stats)
            self.sim.unregister_lock(lock)

    # -- acquisition discipline ------------------------------------------

    def acquire_state(self, ino, who=None):
        """Generator: acquire the locks guarding ``ino``'s shared state.

        Returns a token for :meth:`release`. Static ``global`` mode
        acquires exactly the ``client_lock`` (the historical schedule);
        static fine modes acquire the inode lock. Adaptive mode always
        takes the inode lock and adds the global lock while the current
        decision is ``global`` — see the module docstring for why this
        is switch-safe.
        """
        if self.policy == "adaptive":
            ino_lock = self.inode_lock(ino)
            yield ino_lock.acquire(who=who)
            if self.mode == "global":
                yield self.client_lock.acquire(who=who)
                return (ino_lock, self.client_lock)
            return (ino_lock,)
        if self.mode == "global":
            yield self.client_lock.acquire(who=who)
            return (self.client_lock,)
        ino_lock = self.inode_lock(ino)
        yield ino_lock.acquire(who=who)
        return (ino_lock,)

    def acquire_data(self, ino, offset, size, who=None):
        """Generator: acquire the locks guarding one byte range's data.

        In the coarse modes this is the same acquisition as a state
        section (one client/inode lock — the historical behaviour, and
        the ``client_lock`` copy-out bottleneck the paper measures). In
        ``range`` mode it is the stripe locks covering the range, so
        disjoint-range readers and the flusher stop serialising.
        Adaptive mode layers them: range locks are always taken, the
        coarser locks added per the current decision.
        """
        if self.policy == "adaptive":
            held = []
            ino_lock = self.inode_lock(ino)
            if self.mode != "range":
                yield ino_lock.acquire(who=who)
                held.append(ino_lock)
                if self.mode == "global":
                    yield self.client_lock.acquire(who=who)
                    held.append(self.client_lock)
            for lock in self.range_locks(ino, offset, size):
                yield lock.acquire(who=who)
                held.append(lock)
            return tuple(held)
        if self.mode == "range":
            locks = self.range_locks(ino, offset, size)
            for lock in locks:
                yield lock.acquire(who=who)
            return tuple(locks)
        return (yield from self.acquire_state(ino, who=who))

    def acquire_fetch(self, ino, offset, size, who=None):
        """Generator: locks held across a backend fetch + cache insert.

        Coarse modes return an *empty* token and yield nothing — the
        fetch deliberately travels outside the client lock (as in
        libcephfs) and the caller inserts under a separate state
        section, preserving the historical event schedule. Range and
        adaptive modes hold the covering range locks across the fetch so
        a flush-in-flight of the same range (whose extents already left
        the dirty buffer but have not landed on the OSDs) cannot be
        overtaken by a stale read. Range locks are safe to hold here:
        no fetch section ever acquires an inode or global lock, so the
        lock order is respected.
        """
        if self.wants_range_data():
            locks = self.range_locks(ino, offset, size)
            for lock in locks:
                yield lock.acquire(who=who)
            return tuple(locks)
        return ()

    def wants_range_data(self):
        """True when data sections must take range locks (range mode
        statically, or any adaptive decision — see module docstring)."""
        return self.policy == "adaptive" or self.mode == "range"

    def extent_range_locks(self, ino, extents):
        """Deduped, stripe-ordered range locks covering ``extents``
        (``(offset, data)`` pairs) — the flusher's in-flight batch."""
        stripes = set()
        for offset, data in extents:
            size = len(data)
            first = offset // self.range_stripe
            last = (offset + size - 1) // self.range_stripe if size else first
            stripes.update(range(first, last + 1))
        locks = []
        for stripe in sorted(stripes):
            locks.extend(self.range_locks(
                ino, stripe * self.range_stripe, 1
            ))
        return locks

    @staticmethod
    def release(token):
        """Release a token from an acquire method (reverse order)."""
        for lock in reversed(token):
            lock.release()

    # -- contention sampling (read by the adaptive controller) -----------

    def _stats_of(self, mode):
        """Aggregate ``(acquisitions, contended, wait)`` of one tier.

        The ``global`` tier includes the inode locks: adaptive sections
        acquire the inode lock *before* the global lock, so same-inode
        waiters queue there and a shared-hot-file pile-up would be
        invisible to the client_lock alone.
        """
        if mode == "global":
            locks = [self.client_lock]
            locks.extend(self._ino_locks.values())
        elif mode == "inode":
            locks = list(self._ino_locks.values())
        else:
            locks = [
                lock for table in self._range_locks.values()
                for lock in table.values()
            ]
        acq = cont = 0
        wait = 0.0
        for lock in locks:
            acq += lock.stats.acquisitions
            cont += lock.stats.contended
            wait += lock.stats.total_wait
        return acq, cont, wait


class AdaptiveLockController(object):
    """Watches lock contention and moves an adaptive policy's mode.

    A periodic daemon (spawned only for ``locking="adaptive"`` — no
    events are added to any other policy's schedule) samples the
    wait/hold deltas of the current tier's locks each interval: the same
    :class:`~repro.sim.sync.LockStats` the PR 2 lock-contention profile
    aggregates. When the contended fraction of acquisitions exceeds
    ``escalate_frac`` the mode escalates one step (global -> inode ->
    range); when the acquisition rate drops below ``idle_acqs`` for
    ``calm_rounds`` consecutive intervals the mode steps back down (low
    contention of *fine* locks cannot predict coarse-tier contention, so
    only a dying op rate de-escalates). Every decision is
    appended to ``policy.decisions``, traced (``client/lock_policy``)
    and exported through the observer's ``locking`` metric scope.
    """

    def __init__(self, policy, costs, metrics_scope="locking"):
        self.policy = policy
        self.sim = policy.sim
        self.interval = costs.lock_adapt_interval
        self.escalate_frac = costs.lock_escalate_frac
        self.idle_acqs = costs.lock_idle_acqs
        self.calm_rounds = costs.lock_calm_rounds
        self.metrics_scope = metrics_scope
        self._stopped = False
        self._calm = 0

    def start(self):
        self.sim.spawn(self._loop(), name="%s.lockadapt" % self.policy.name)

    def stop(self):
        self._stopped = True

    def _registry(self):
        obs = self.sim.observer
        return obs.metrics(self.metrics_scope) if obs is not None else None

    def _switch(self, to_mode, reason, frac):
        policy = self.policy
        from_mode = policy.mode
        policy.mode = to_mode
        policy.decisions.append((self.sim.now, from_mode, to_mode, reason))
        self.sim.trace(
            "client", "lock_policy", client=policy.name,
            from_mode=from_mode, to_mode=to_mode, reason=reason,
            contended_frac=round(frac, 4),
        )
        registry = self._registry()
        if registry is not None:
            registry.counter("switches").add(1)
            registry.counter("to_%s" % to_mode).add(1)
            registry.gauge("mode").set(MODE_INDEX[to_mode])

    def _loop(self):
        policy = self.policy
        registry = self._registry()
        if registry is not None:
            registry.gauge("mode").set(MODE_INDEX[policy.mode])
        prev = policy._stats_of(policy.mode)
        while not self._stopped:
            yield self.sim.timeout(self.interval)
            if self._stopped:
                return
            # Re-resolve each round: the observer may attach after the
            # client (worlds arm observation before building stacks, but
            # tests attach late).
            registry = self._registry()
            mode = policy.mode
            acq, cont, wait = policy._stats_of(mode)
            d_acq = acq - prev[0]
            d_cont = cont - prev[1]
            frac = (d_cont / d_acq) if d_acq else 0.0
            if registry is not None:
                registry.histogram("contended_frac").observe(frac)
            if d_acq >= self.idle_acqs and frac > self.escalate_frac:
                self._calm = 0
                index = MODE_INDEX[mode]
                if index + 1 < len(MODES):
                    self._switch(
                        MODES[index + 1],
                        "contended %.0f%% of %d acquisitions"
                        % (frac * 100.0, d_acq),
                        frac,
                    )
            elif d_acq < self.idle_acqs:
                # Low contention of *fine* locks cannot predict whether
                # the coarse tier would contend (that is why we left it);
                # only a dying op rate justifies stepping back down.
                self._calm += 1
                index = MODE_INDEX[mode]
                if index > 0 and self._calm >= self.calm_rounds:
                    self._calm = 0
                    self._switch(
                        MODES[index - 1],
                        "idle for %d intervals (%d acquisitions)"
                        % (self.calm_rounds, d_acq),
                        frac,
                    )
            else:
                self._calm = 0
            prev = policy._stats_of(policy.mode)
