"""The user-level Ceph client: the libcephfs analogue Danaus builds on.

One instance serves one mount (Danaus runs one or more per tenant). The
client keeps everything at user level: the object cache, the attribute
cache, the write-behind buffers and the flusher thread, which is pinned to
the *pool's* cores — flushing never steals neighbour cores, which is the
isolation half of the paper's story.

The efficiency caveat is modelled faithfully too: by default every
client-side critical section serialises on one global ``client_lock``
(ceph tracker #23844), which limits cached-read concurrency — the paper's
explanation for Danaus losing to the kernel client on cached sequential
reads (Fig. 9 bottom). The ``locking=`` policy switches the sharding the
paper proposes as future work (see :mod:`repro.cephclient.locking`):
``"global"`` (the faithful default — its event schedule is pinned by the
engine-bench fingerprints), ``"inode"`` (per-inode locks, the old
``fine_grained_locking=True``), ``"range"`` (per-inode state locks plus
per-object-range data locks) and ``"adaptive"`` (watches the measured
contention and switches between the three at runtime). The ``abl-locking``
ablation quantifies each step.
"""

from repro.cephclient.cache import ObjectCache
from repro.cephclient.locking import AdaptiveLockController, LockingPolicy
from repro.common.errors import (
    RETRYABLE,
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    FsError,
    InvalidArgument,
    IsADirectory,
    ThreadKilled,
)
from repro.fs import pathutil
from repro.fs.api import FileHandle, FileStat, Filesystem, OpenFlags
from repro.fs.readahead import Prefetcher, next_window, plan_fetch
from repro.metrics import MetricSet
from repro.sim.cpu import SimThread
from repro.sim.sync import Mutex

__all__ = ["CephLibClient"]

#: Sentinel for cached negative lookups (the dentry cache caches ENOENT
#: too — without it every union whiteout probe would be an MDS round
#: trip). Negatives are invalidated by local creates/renames; remote
#: creates become visible through open()'s revalidation, matching the
#: close-to-open consistency of §3.4.
_NEGATIVE = object()


class _CephHandle(FileHandle):
    __slots__ = ("ino",)

    def __init__(self, fs, path, flags, ino):
        super().__init__(fs, path, flags)
        self.ino = ino


class CephLibClient(Filesystem):
    """libcephfs-like user-level client over the simulated cluster."""

    def __init__(
        self,
        sim,
        cluster,
        costs,
        account,
        cpuset,
        name="libceph",
        cache_bytes=None,
        fine_grained_locking=False,
        locking=None,
        readahead_bytes=128 * 1024,
        start_flusher=True,
        consistency="close-to-open",
        cache_dedup=False,
    ):
        self.sim = sim
        self.cluster = cluster
        #: this client's view of the osdmap epoch — kept current by a
        #: monitor subscription (the MON -> client map push; the cluster
        #: stamps the actual data-path ops with its own snapshot)
        self.osdmap_epoch = cluster.monitor.epoch
        cluster.monitor.subscribe(self._on_osdmap)
        self.costs = costs
        self.account = account
        self.name = name
        if cache_bytes is None:
            cache_bytes = max(account.capacity // 2, costs.object_size)
        fingerprint_fn = self._block_fingerprint if cache_dedup else None
        self.cache = ObjectCache(
            cache_bytes, account, dedup=cache_dedup,
            fingerprint_fn=fingerprint_fn,
        )
        self.max_dirty = cache_bytes // 2
        if locking is None:
            # Legacy spelling: fine_grained_locking=True was per-inode.
            locking = "inode" if fine_grained_locking else "global"
        self.readahead_bytes = readahead_bytes
        self.client_lock = Mutex(sim, name="%s.client_lock" % name)
        sim.register_lock(name, "client_lock", name, self.client_lock)
        self._locking = LockingPolicy(
            sim, name, self.client_lock, locking,
            range_stripe=costs.object_size,
        )
        self.fine_grained = locking != "global"
        self._lock_controller = None
        if locking == "adaptive":
            self._lock_controller = AdaptiveLockController(
                self._locking, costs
            )
            self._lock_controller.start()
        self.attr_cache = {}  # path -> InodeInfo (sizes kept current locally)
        self._sizes = {}  # ino -> local authoritative size
        self._paths = {}  # ino -> path (for size flush to the MDS)
        self._dirty_since = {}  # ino -> first dirty time
        #: ino -> count of in-flight flushes whose MDS size update has not
        #: landed yet; while non-zero the local size stays authoritative
        #: (the Fw-caps analogue of "dirty": take_dirty cleared the buffer
        #: but the data/size is still ours until the MDS acknowledges).
        self._size_flushing = {}
        self._seq_end = {}  # ino -> end offset of last read (readahead)
        #: pipelined readahead: one detached next-window prefetch per ino
        self._prefetcher = Prefetcher(sim)
        self._flush_waiters = []
        self.metrics = MetricSet(name)
        # The ObjectCacher writes back *asynchronously*: many OSD writes in
        # flight at once, not one serial stream. We model that with a small
        # pool of flusher threads — pinned to the pool's cores, matching
        # the kernel's flusher count so the comparison is about placement
        # and locking, not writeback parallelism.
        self.flusher_thread = SimThread(sim, "%s.flusher" % name, cpuset)
        self.flusher_threads = [self.flusher_thread] + [
            SimThread(sim, "%s.flusher%d" % (name, index), cpuset)
            for index in range(1, 4)
        ]
        self._stopped = False
        if consistency not in ("close-to-open", "caps"):
            raise InvalidArgument("unknown consistency %r" % consistency)
        self.consistency = consistency
        self.client_id = (
            cluster.register_client(self) if consistency == "caps" else None
        )
        self._session_epoch = cluster.mds.session_epoch
        self._held_caps = {}  # ino -> caps mask held under this session
        #: exactly-once metadata stamps (allocated lazily when HA arms)
        self._mds_session_id = None
        self._mds_op_seq = 0
        if start_flusher:
            sim.spawn(self._flusher_loop(), name="%s.flusher" % name)

    def _on_osdmap(self, osdmap):
        """Monitor pushed a new osdmap (membership/CRUSH change)."""
        self.osdmap_epoch = osdmap.epoch

    # -- locking ---------------------------------------------------------
    #
    # Every access to the shared per-inode state (``attr_cache``,
    # ``_sizes``, ``_seq_end``, ``_dirty_since``, cap masks, the dirty
    # buffer) goes through the policy's *state* sections; cached-byte
    # sections (insert/write/overlay/flush) go through its *data* and
    # *fetch* sections. Path-namespace ops share the ``-1`` pseudo-inode
    # state lock. The discipline table lives in ``docs/architecture.md``.

    def _locked_cpu(self, task, ino, cpu_seconds):
        """Run CPU work under the state lock(s) — the serialisation point."""
        token = yield from self._locking.acquire_state(ino, who=task)
        try:
            yield from task.cpu(cpu_seconds)
        finally:
            self._locking.release(token)

    # -- attribute handling ------------------------------------------------

    def _remember(self, path, info):
        self.attr_cache[path] = info
        self._paths[info.ino] = path
        if info.ino not in self._sizes \
                or not self._size_authoritative(info.ino):
            self._sizes[info.ino] = info.size

    def _has_dirty(self, ino):
        buffer = self.cache._dirty.get(ino)
        return buffer is not None and bool(buffer)

    def _size_pin(self, ino):
        self._size_flushing[ino] = self._size_flushing.get(ino, 0) + 1

    def _size_unpin(self, ino):
        count = self._size_flushing.get(ino, 0) - 1
        if count > 0:
            self._size_flushing[ino] = count
        else:
            self._size_flushing.pop(ino, None)

    def _size_authoritative(self, ino):
        """True while our local size must not be displaced by MDS attrs:
        dirty data buffered, a flush in flight, or a size resend pending."""
        return self._has_dirty(ino) or ino in self._size_flushing

    def _local_size(self, ino, fallback=0):
        return self._sizes.get(ino, fallback)

    # -- Filesystem interface ---------------------------------------------------

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        path = pathutil.normalize(path)
        yield from self._locked_cpu(task, -1, self.costs.ceph_client_op)
        info = None
        if not flags & OpenFlags.CREAT:
            # Close-to-open consistency: revalidate attributes at the MDS.
            try:
                info = yield from self.cluster.mds_call("lookup", path)
            except FileNotFound:
                self.attr_cache[path] = _NEGATIVE
                raise
        else:
            try:
                info = yield from self.cluster.mds_call(
                    "create", path, bool(flags & OpenFlags.EXCL), mode,
                    **self._mds_op_ids()
                )
            except FileExists:
                raise
        if info.is_dir and flags.wants_write:
            raise IsADirectory(path=path)
        self._remember(path, info)
        if self.consistency == "caps" and not info.is_dir:
            from repro.storage.caps import CAP_READ_CACHE, CAP_WRITE_BUFFER

            yield from self._ensure_session()
            want = CAP_READ_CACHE
            if flags.wants_write:
                want |= CAP_WRITE_BUFFER
            yield from self.cluster.acquire_caps(self.client_id, info.ino, want)
            self._held_caps[info.ino] = self._held_caps.get(info.ino, 0) | want
            # Holding fresh caps means our attribute view is authoritative;
            # any prior writer flushed during the revocation, so refetch.
            info = yield from self.cluster.mds_call("lookup", path)
            self._remember(path, info)
            self._sizes[info.ino] = max(
                info.size,
                self._sizes.get(info.ino, 0)
                if self._size_authoritative(info.ino) else 0,
            )
        if flags & OpenFlags.TRUNC and not info.is_dir:
            yield from self._truncate_ino(task, info.ino, path, 0)
        self.metrics.counter("opens").add(1)
        return _CephHandle(self, path, flags, info.ino)

    def handle_cap_revoke(self, ino, caps):
        """MDS revocation callback: flush and/or invalidate, then ack.

        Sim generator run by the cluster while a conflicting open waits.
        """
        from repro.fs.api import Task
        from repro.storage.caps import CAP_READ_CACHE, CAP_WRITE_BUFFER

        revoke_task = Task(self.flusher_thread, pool=None)
        if caps & CAP_WRITE_BUFFER and self._has_dirty(ino):
            yield from self._flush_ino(revoke_task, ino)
        # Invalidate and shrink the cap mask under the inode's state lock:
        # in the fine-grained policies a reader holds that lock across its
        # scan/copy-out sections, so the revoke cannot interleave with a
        # half-done read between the reader's lock drops (the flush above
        # takes — and must take — the same lock internally, hence two
        # sections rather than one).
        token = yield from self._locking.acquire_state(ino, who=revoke_task)
        try:
            if caps & CAP_READ_CACHE:
                # Drop cached data and attributes; the next access refetches.
                self.cache.drop_ino(ino)
                path = self._paths.get(ino)
                if path is not None:
                    self.attr_cache.pop(path, None)
                self._seq_end.pop(ino, None)
                self._prefetcher.forget(ino)
            held = self._held_caps.get(ino)
            if held is not None:
                held &= ~caps
                if held:
                    self._held_caps[ino] = held
                else:
                    del self._held_caps[ino]
        finally:
            self._locking.release(token)
        self.metrics.counter("caps_revoked").add(1)
        self.sim.trace("client", "cap_revoke", client=self.name, ino=ino,
                       caps=caps)

    def _mds_op_ids(self):
        """Stamps for one mutating metadata op (exactly-once resends).

        Disarmed (no MdsService) this returns ``{}`` and the call site
        expands to nothing — the single-MDS event schedule is untouched.
        Armed, every mutation carries a ``(client_id, op_id)`` pair that
        lands in the rank journal: a post-failover resend of the same op
        dedups against the replayed op-id table instead of re-running,
        so rename/create/unlink apply exactly once. The pair is built
        once per logical op — the cluster retry loop reuses it across
        resends, which is the whole point.
        """
        if self.cluster.mds_service is None:
            return {}
        if self._mds_session_id is None:
            self._mds_session_id = (
                self.client_id if self.client_id is not None
                else self.cluster.mds_session_id()
            )
        self._mds_op_seq += 1
        return {"client_id": self._mds_session_id,
                "op_id": self._mds_op_seq}

    def _ensure_session(self):
        """Reestablish the MDS session after an MDS restart (caps mode).

        A restarted MDS lost its caps table; every capability this
        client held is reacquired under the new session epoch before the
        triggering operation proceeds — the CephFS session-reconnect
        protocol.
        """
        if self.client_id is None:
            return
        epoch = self.cluster.mds.session_epoch
        if epoch == self._session_epoch:
            return
        self._session_epoch = epoch
        for ino, want in list(self._held_caps.items()):
            yield from self.cluster.acquire_caps(self.client_id, ino, want)
        self.metrics.counter("sessions_reestablished").add(1)
        self.sim.trace("client", "session_reestablish", client=self.name,
                       epoch=epoch)

    def close(self, task, handle):
        yield from task.cpu(self.costs.ceph_client_op / 2)
        handle.closed = True

    def read(self, task, handle, offset, size):
        ino = self._live_ino(handle)
        obs = self.sim.observer
        span = obs.span(task, "client.read", "client", ino=ino,
                        size=size) if obs is not None else None
        try:
            data = yield from self._read(task, ino, offset, size, obs)
        finally:
            if span is not None:
                span.end()
        return data

    def _read(self, task, ino, offset, size, obs):
        locking = self._locking
        token = yield from locking.acquire_state(ino, who=task)
        try:
            yield from task.cpu(self.costs.ceph_client_op)
            file_size = max(
                self._local_size(ino),
                self.cache.dirty_buffer(ino).max_end() if self._has_dirty(ino) else 0,
            )
            if offset >= file_size or size <= 0:
                return b""
            size = min(size, file_size - offset)
            hit_blocks, miss_ranges = self.cache.scan(ino, offset, size)
            if obs is not None:
                registry = obs.metrics(self.name)
                registry.counter("cache_hit_blocks").add(hit_blocks)
                registry.counter("cache_miss_ranges").add(len(miss_ranges))
            if hit_blocks:
                yield from task.cpu(self.costs.page_op * hit_blocks)
            sequential = offset == self._seq_end.get(ino, 0)
        finally:
            locking.release(token)
        if sequential and miss_ranges and self._prefetcher.active(ino):
            # The previous read's pipelined prefetch covers (part of) this
            # window and is still travelling: adopt it instead of issuing
            # a duplicate fetch, then rescan for whatever remains missing.
            yield from self._prefetcher.join(ino)
            token = yield from locking.acquire_state(ino, who=task)
            try:
                rescanned, miss_ranges = self.cache.scan(ino, offset, size)
                if rescanned > hit_blocks:
                    yield from task.cpu(
                        self.costs.page_op * (rescanned - hit_blocks)
                    )
            finally:
                locking.release(token)
        for miss_offset, miss_size in miss_ranges:
            fetch = plan_fetch(miss_offset, miss_size, file_size,
                               self.readahead_bytes, sequential)
            # Network fetch happens outside the client/inode lock (dropped
            # while waiting on the OSDs, as in libcephfs); the fine data
            # policies instead hold the covering *range* locks so a
            # flush-in-flight of the same bytes cannot be overtaken.
            fetch_token = yield from locking.acquire_fetch(
                ino, miss_offset, fetch, who=task
            )
            try:
                yield from self.cluster.read_extent(ino, miss_offset, fetch)
                yield from task.cpu(self.costs.payload_cost(fetch))
                if fetch_token:
                    self.cache.insert(ino, miss_offset, fetch)
            finally:
                locking.release(fetch_token)
            if not fetch_token:
                token = yield from locking.acquire_state(ino, who=task)
                try:
                    self.cache.insert(ino, miss_offset, fetch)
                finally:
                    locking.release(token)
        # Assemble and copy out *under the lock*: this serialisation is the
        # client_lock bottleneck the paper identifies for cached reads —
        # under the range policy only the covering stripes serialise.
        token = yield from locking.acquire_data(ino, offset, size, who=task)
        try:
            base = self.cluster_peek(ino, offset, size)
            data = self.cache.overlay(ino, offset, size, base)
            if len(data) > size:
                data = data[:size]
            yield from task.cpu(self.costs.copy_cost(len(data)))
            self._seq_end[ino] = offset + len(data)
        finally:
            locking.release(token)
        if sequential:
            # Pipelined readahead: fetch the next window with a detached
            # child while the caller copies the current one out. The
            # prefetch pays the full network/OSD cost; its payload work
            # happens on the async messenger path (plain delay, no core).
            window = next_window(
                offset + len(data), self.readahead_bytes, file_size
            )
            if window is not None:
                self._prefetcher.launch(
                    ino, self._prefetch(ino, window[0], window[1]),
                    name="%s.readahead" % self.name,
                )
        self.metrics.counter("bytes_read").add(len(data))
        return data

    def _prefetch(self, ino, offset, size):
        """Detached next-window prefetch (see :class:`Prefetcher`)."""
        locking = self._locking
        token = yield from locking.acquire_state(ino, who=None)
        try:
            if ino not in self._sizes:
                return  # unlinked while queued
            _hits, missing = self.cache.scan(ino, offset, size)
        finally:
            locking.release(token)
        for miss_offset, miss_size in missing:
            miss_size = min(
                miss_size, max(self._local_size(ino) - miss_offset, 0)
            )
            if miss_size <= 0:
                continue
            fetch_token = yield from locking.acquire_fetch(
                ino, miss_offset, miss_size, who=None
            )
            try:
                yield from self.cluster.read_extent(
                    ino, miss_offset, miss_size
                )
                yield self.sim.timeout(self.costs.payload_cost(miss_size))
                if fetch_token and ino in self._sizes:
                    self.cache.insert(ino, miss_offset, miss_size)
            finally:
                locking.release(fetch_token)
            if not fetch_token:
                token = yield from locking.acquire_state(ino, who=None)
                try:
                    if ino in self._sizes:
                        self.cache.insert(ino, miss_offset, miss_size)
                finally:
                    locking.release(token)

    def cluster_peek(self, ino, offset, size):
        """Resident-byte assembly; see :meth:`CephCluster.peek`."""
        return self.cluster.peek(ino, offset, size)

    def _block_fingerprint(self, ino, offset):
        """Content digest of one cache block (for dedup mode).

        Zero-cost by design: a block being inserted was just fetched, so
        its bytes are authoritative in the object store already. Blocks of
        files with unflushed writes are *not* fingerprinted — their
        content is still in flight, so deduplicating them would alias
        unknown data.
        """
        import hashlib

        if self._has_dirty(ino):
            return None
        data = self.cluster.peek(ino, offset, self.cache.block_size)
        return hashlib.blake2b(data, digest_size=16).digest()

    def write(self, task, handle, offset, data):
        ino = self._live_ino(handle)
        append = bool(handle.flags & OpenFlags.APPEND)
        obs = self.sim.observer
        span = obs.span(task, "client.write", "client", ino=ino,
                        size=len(data)) if obs is not None else None
        try:
            written = yield from self._write(task, ino, offset, data,
                                             append=append)
        finally:
            if span is not None:
                span.end()
        return written

    def _write(self, task, ino, offset, data, append=False):
        locking = self._locking
        # The O_APPEND offset is resolved *under the state lock*: two
        # concurrent appenders each see the size the other already
        # advanced, instead of picking the same offset and clobbering.
        token = yield from locking.acquire_state(ino, who=task)
        try:
            if append:
                offset = self._local_size(ino)
            if locking.wants_range_data():
                # Write sections take state + covering range locks (in
                # that order): the buffered bytes are data a concurrent
                # flusher or reader of the same stripes serialises with.
                for lock in locking.range_locks(ino, offset, len(data)):
                    yield lock.acquire(who=task)
                    token = token + (lock,)
            yield from task.cpu(
                self.costs.ceph_client_op + self.costs.copy_cost(len(data))
            )
            self.cache.write(ino, offset, data)
            new_size = max(self._local_size(ino), offset + len(data))
            self._sizes[ino] = new_size
            self._dirty_since.setdefault(ino, self.sim.now)
        finally:
            locking.release(token)
        self.metrics.counter("bytes_written").add(len(data))
        # User-level dirty throttling: wait for the (pool-core) flusher.
        while self.cache.dirty_bytes > self.max_dirty:
            progress = self.sim.event()
            self._flush_waiters.append(progress)
            yield self.sim.any_of(
                [progress, self.sim.timeout(self.costs.writeback_interval)]
            )
            if not progress.triggered:
                # The timeout branch won: drop the stale waiter so a later
                # flush does not wake (and leak callbacks on) a dead event.
                try:
                    self._flush_waiters.remove(progress)
                except ValueError:
                    pass
            self.metrics.counter("throttle_waits").add(1)
        return len(data)

    def fsync(self, task, handle):
        ino = self._live_ino(handle)
        yield from self._flush_ino(task, ino)

    def stat(self, task, path):
        path = pathutil.normalize(path)
        if self._locking.policy == "global":
            # Faithful libcephfs fast path (and pinned by the engine-bench
            # fingerprints): stat consults the attr cache without a lock.
            yield from task.cpu(self.costs.ceph_client_op / 2)
        else:
            # Fine-grained policies route stat through the same namespace
            # state section as the other path ops (open/mkdir/rename).
            yield from self._locked_cpu(task, -1,
                                        self.costs.ceph_client_op / 2)
        info = self.attr_cache.get(path)
        if info is _NEGATIVE:
            raise FileNotFound(path=path)
        if info is None:
            try:
                info = yield from self.cluster.mds_call("lookup", path)
            except FileNotFound:
                self.attr_cache[path] = _NEGATIVE
                raise
            self._remember(path, info)
        size = self._local_size(info.ino, info.size)
        return FileStat(info.ino, info.is_dir, size, info.mtime, info.nlink)

    def mkdir(self, task, path, mode=0o755):
        yield from self._locked_cpu(task, -1, self.costs.ceph_client_op)
        info = yield from self.cluster.mds_call("mkdir", path, mode,
                                                **self._mds_op_ids())
        self._remember(pathutil.normalize(path), info)

    def rmdir(self, task, path):
        yield from self._locked_cpu(task, -1, self.costs.ceph_client_op)
        yield from self.cluster.mds_call("rmdir", path,
                                         **self._mds_op_ids())
        self.attr_cache[pathutil.normalize(path)] = _NEGATIVE

    def unlink(self, task, path):
        path = pathutil.normalize(path)
        yield from self._locked_cpu(task, -1, self.costs.ceph_client_op)
        ino, _size = yield from self.cluster.mds_call(
            "unlink", path, **self._mds_op_ids()
        )
        self.cluster.purge(ino)
        self.cache.drop_ino(ino)
        self._prefetcher.forget(ino)
        self.attr_cache[path] = _NEGATIVE
        self._sizes.pop(ino, None)
        self._paths.pop(ino, None)
        self._dirty_since.pop(ino, None)
        self._size_flushing.pop(ino, None)
        self._seq_end.pop(ino, None)
        self._held_caps.pop(ino, None)
        # Retire the inode's locks: a recycled ino gets fresh ones, and
        # their stats fold into the registry's "retired" bucket instead
        # of lingering as unreachable entries.
        self._locking.drop_ino(ino)
        self.metrics.counter("unlinks").add(1)

    def readdir(self, task, path):
        yield from task.cpu(self.costs.ceph_client_op)
        names = yield from self.cluster.mds_call("readdir", path)
        yield from task.cpu(self.costs.dirent_op * max(len(names), 1))
        return names

    def rename(self, task, old_path, new_path):
        old_path = pathutil.normalize(old_path)
        new_path = pathutil.normalize(new_path)
        yield from self._locked_cpu(task, -1, self.costs.ceph_client_op)
        yield from self.cluster.mds_call("rename", old_path, new_path,
                                         **self._mds_op_ids())
        info = self.attr_cache.get(old_path)
        self.attr_cache[old_path] = _NEGATIVE
        if info is not None and info is not _NEGATIVE:
            self._remember(new_path, info)
            self._paths[info.ino] = new_path

    def truncate(self, task, path, size):
        path = pathutil.normalize(path)
        info = self.attr_cache.get(path)
        if info is None or info is _NEGATIVE:
            info = yield from self.cluster.mds_call("lookup", path)
            self._remember(path, info)
        yield from self._truncate_ino(task, info.ino, path, size)

    def _truncate_ino(self, task, ino, path, size):
        if self._locking.policy == "global":
            # Faithful default: the lock covers only the CPU section; the
            # backend truncate travels unlocked (pinned by the engine-bench
            # fingerprints, and every write_file(TRUNC) crosses this path).
            yield from self._locked_cpu(task, ino, self.costs.ceph_client_op)
            # Buffered data beyond the cut is discarded; data below survives.
            self.cache.truncate_dirty(ino, size)
            yield from self.cluster.truncate(ino, size)
            self._sizes[ino] = size
        else:
            # Fine-grained policies hold the state lock across the backend
            # truncate: an appender resolving its offset between the object
            # cut and the size update would write beyond the new end and
            # then be silently clobbered by ``_sizes[ino] = size``.
            token = yield from self._locking.acquire_state(ino, who=task)
            try:
                yield from task.cpu(self.costs.ceph_client_op)
                self.cache.truncate_dirty(ino, size)
                yield from self.cluster.truncate(ino, size)
                self._sizes[ino] = size
            finally:
                self._locking.release(token)
        try:
            info = yield from self.cluster.mds_call(
                "setattr_size", path, size, **self._mds_op_ids()
            )
        except FileNotFound:
            return  # concurrently unlinked; the open handle stays usable
        self._remember(path, info)

    def peek(self, path, offset, size):
        """Zero-cost resident-data read (see Filesystem.peek)."""
        info = self.attr_cache.get(pathutil.normalize(path))
        if info is None or info is _NEGATIVE or info.is_dir:
            return None
        ino = info.ino
        file_size = max(
            self._local_size(ino, info.size),
            self.cache.dirty_buffer(ino).max_end() if self._has_dirty(ino) else 0,
        )
        if offset >= file_size:
            return b""
        size = min(size, file_size - offset)
        base = self.cluster.peek(ino, offset, size)
        return self.cache.overlay(ino, offset, size, base)[:size]

    # -- flushing -----------------------------------------------------------------

    def _flush_ino(self, task, ino, max_bytes=None):
        """Flush dirty extents of ``ino`` on the caller's thread.

        On a backend failure the unwritten extents are *re-dirtied*
        before the error propagates — buffered data is never lost to a
        transient fault; the flusher simply tries again next interval.
        """
        # The per-ino lock is held for the whole flush: from take_dirty
        # until the cluster writes land, the extents are in flight — gone
        # from the dirty buffer but not yet readable from the OSDs. A read
        # slipping in between would fetch stale object data, so readers
        # and writers of this ino wait out the flush (the in-flight "tx"
        # state of the real ObjectCacher).
        obs = self.sim.observer
        span = obs.span(task, "client.flush", "client",
                        ino=ino) if obs is not None else None
        try:
            flushed = yield from self._flush_ino_locked(task, ino, max_bytes)
        finally:
            if span is not None:
                span.end()
        return flushed

    def _flush_ino_locked(self, task, ino, max_bytes):
        if self._locking.wants_range_data():
            return (yield from self._flush_ino_ranged(task, ino, max_bytes))
        token = yield from self._locking.acquire_state(ino, who=task)
        try:
            extents = self.cache.take_dirty(ino, max_bytes)
            if not extents:
                return 0
            # Until the MDS size lands the buffer looks clean while the
            # data is still only ours; pin the local size so a concurrent
            # revalidating open cannot adopt a stale MDS length.
            self._size_pin(ino)
            try:
                try:
                    nbytes = sum(len(data) for _off, data in extents)
                    yield from task.cpu(self.costs.payload_cost(nbytes))
                    # One vectored fan-out carries the whole batch:
                    # contiguous runs coalesce per target OSD instead of
                    # paying one RPC per dirty block.
                    flushed = yield from self.cluster.write_vector(
                        ino, extents
                    )
                except (FsError, ThreadKilled):
                    # Re-dirty the whole batch: with fan-out any subset
                    # may have landed, and rewriting a landed extent is
                    # idempotent (same bytes, same offset).
                    for r_offset, r_data in extents:
                        self.cache.write(ino, r_offset, r_data)
                    self._dirty_since.setdefault(ino, self.sim.now)
                    self.metrics.counter("flush_failures").add(1)
                    raise
                path = self._paths.get(ino)
                if path is not None:
                    try:
                        info = yield from self.cluster.mds_call(
                            "setattr_size", path, self._local_size(ino),
                            **self._mds_op_ids()
                        )
                        self._remember(path, info)
                    except FileNotFound:
                        pass  # concurrently unlinked
                    except RETRYABLE:
                        # MDS unreachable: resend the size in the background
                        # so a later revalidating open never sees a stale
                        # length.
                        self.metrics.counter("size_flush_failures").add(1)
                        self._size_pin(ino)  # released by _resend_size
                        self.sim.spawn(
                            self._resend_size(ino),
                            name="%s.size-resend" % self.name,
                        )
            finally:
                self._size_unpin(ino)
        finally:
            self._locking.release(token)
        if not self._has_dirty(ino):
            self._dirty_since.pop(ino, None)
        self.metrics.counter("bytes_flushed").add(flushed)
        if self.sim.tracer is not None:
            self.sim.trace("client", "flush", client=self.name, bytes=flushed)
        self._notify_flush_progress()
        return flushed

    def _flush_ino_ranged(self, task, ino, max_bytes):
        """Range-policy flush: three sections instead of one long hold.

        1. *State* section: take the dirty batch, pin the size, and —
           still under the inode lock, so the order inode < range holds —
           acquire the range locks covering the batch.
        2. Network phase under the *range locks only*: the in-flight
           extents left the dirty buffer but have not landed on the
           OSDs, so reads and writes of those stripes wait — but every
           other stripe of the file stays available, which is the point
           of the range policy. The inode lock is never reacquired while
           ranges are held (deadlock freedom).
        3. *State* section: publish the flushed size to the MDS and
           unpin. A failure re-dirties the batch before propagating,
           exactly like the coarse path.
        """
        locking = self._locking
        held = []
        state = yield from locking.acquire_state(ino, who=task)
        try:
            extents = self.cache.take_dirty(ino, max_bytes)
            if not extents:
                return 0
            self._size_pin(ino)
            try:
                for lock in locking.extent_range_locks(ino, extents):
                    yield lock.acquire(who=task)
                    held.append(lock)
            except BaseException:
                # Killed while queueing for a range: nothing was sent, so
                # the whole batch goes back to the dirty buffer.
                for r_offset, r_data in extents:
                    self.cache.write(ino, r_offset, r_data)
                self._dirty_since.setdefault(ino, self.sim.now)
                self._size_unpin(ino)
                raise
        finally:
            locking.release(state)
        try:
            nbytes = sum(len(data) for _off, data in extents)
            yield from task.cpu(self.costs.payload_cost(nbytes))
            flushed = yield from self.cluster.write_vector(ino, extents)
        except (FsError, ThreadKilled):
            # Re-dirty the whole batch under the still-held range locks:
            # with fan-out any subset may have landed, and rewriting a
            # landed extent is idempotent (same bytes, same offset).
            for r_offset, r_data in extents:
                self.cache.write(ino, r_offset, r_data)
            self._dirty_since.setdefault(ino, self.sim.now)
            self.metrics.counter("flush_failures").add(1)
            self._size_unpin(ino)
            locking.release(tuple(held))
            raise
        locking.release(tuple(held))
        state = yield from locking.acquire_state(ino, who=task)
        try:
            path = self._paths.get(ino)
            if path is not None:
                try:
                    info = yield from self.cluster.mds_call(
                        "setattr_size", path, self._local_size(ino),
                        **self._mds_op_ids()
                    )
                    self._remember(path, info)
                except FileNotFound:
                    pass  # concurrently unlinked
                except RETRYABLE:
                    self.metrics.counter("size_flush_failures").add(1)
                    self._size_pin(ino)  # released by _resend_size
                    self.sim.spawn(
                        self._resend_size(ino),
                        name="%s.size-resend" % self.name,
                    )
        finally:
            self._size_unpin(ino)
            locking.release(state)
        if not self._has_dirty(ino):
            self._dirty_since.pop(ino, None)
        self.metrics.counter("bytes_flushed").add(flushed)
        if self.sim.tracer is not None:
            self.sim.trace("client", "flush", client=self.name, bytes=flushed)
        self._notify_flush_progress()
        return flushed

    def _resend_size(self, ino):
        """Background retry of a failed MDS size flush (no CPU cost)."""
        try:
            delay = self.costs.retry_backoff
            for _ in range(self.costs.retry_attempts):
                yield self.sim.timeout(delay)
                delay = min(delay * 2.0, self.costs.retry_backoff_max)
                path = self._paths.get(ino)
                if path is None:
                    return
                try:
                    info = yield from self.cluster.mds_call(
                        "setattr_size", path, self._local_size(ino),
                        **self._mds_op_ids()
                    )
                except FileNotFound:
                    return
                except RETRYABLE:
                    continue
                self._remember(path, info)
                return
        finally:
            self._size_unpin(ino)

    def _notify_flush_progress(self):
        waiters, self._flush_waiters = self._flush_waiters, []
        for event in waiters:
            event.succeed()

    def flush_all(self, task):
        """Flush every dirty file (used by shutdown and tests)."""
        total = 0
        for ino in list(self.cache.dirty_inos()):
            total += yield from self._flush_ino(task, ino)
        return total

    def _flusher_loop(self):
        """Background write-back pinned to the pool's cores.

        Eligible files are flushed *concurrently* across the flusher
        thread pool — the asynchronous in-flight writes of the
        ObjectCacher — so the drain rate scales with the backend, not
        with one thread's round-trip latency.
        """
        from repro.fs.api import Task

        flusher_tasks = [Task(thread) for thread in self.flusher_threads]
        while not self._stopped:
            yield self.sim.timeout(self.costs.writeback_interval)
            if self._stopped:
                return
            background = self.cache.dirty_bytes > self.max_dirty // 2
            jobs = []
            for slot, ino in enumerate(list(self.cache.dirty_inos())):
                since = self._dirty_since.get(ino, self.sim.now)
                expired = self.sim.now - since >= self.costs.expire_interval
                if background or expired:
                    flusher_task = flusher_tasks[slot % len(flusher_tasks)]
                    jobs.append(self.sim.spawn(
                        task_flush(self, flusher_task, ino),
                        name="%s.flush" % self.name,
                    ))
            if jobs:
                yield self.sim.all_of(jobs)

    def stop(self):
        self._stopped = True
        if self._lock_controller is not None:
            self._lock_controller.stop()

    # -- internals -------------------------------------------------------------------

    def _live_ino(self, handle):
        if handle.closed:
            raise BadFileDescriptor(path=handle.path)
        if not isinstance(handle, _CephHandle):
            raise InvalidArgument("foreign handle %r" % (handle,))
        return handle.ino


def task_flush(client, task, ino):
    """Module-level flush helper (kept separate for ablation hooks)."""
    try:
        yield from client._flush_ino(task, ino, max_bytes=client.costs.flush_batch)
    except FsError:
        pass  # re-dirtied inside _flush_ino; retried next interval
