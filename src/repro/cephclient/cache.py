"""The user-level object cache (libcephfs ObjectCacher analogue).

One cache per user-level Ceph client. It tracks which file blocks are
resident (so repeated reads skip the network), buffers dirty writes as
real bytes (see :class:`~repro.cephclient.extents.ExtentBuffer`), enforces
a configurable capacity — the paper sets it to 50 % of the pool's memory —
and charges every resident byte to the tenant's RAM account, so memory
comparisons between stacks (Fig. 11) fall out of the accounting.
"""

from collections import OrderedDict

from repro.cephclient.extents import ExtentBuffer
from repro.common.errors import ConfigError

__all__ = ["ObjectCache"]


class ObjectCache(object):
    """Presence + dirty tracking with LRU eviction and a byte capacity.

    With ``dedup=True`` the cache is content-addressed at block level
    (the §9 future-work feature, cf. Slacker): blocks whose content
    fingerprint is already resident are cached by reference and charge no
    additional memory — cloned containers whose files share bytes then
    share cache too, even without a union filesystem. ``fingerprint_fn``
    maps ``(ino, block_offset)`` to a content digest; the client supplies
    one backed by the authoritative store (resident data is by definition
    already fetched, so fingerprinting costs nothing extra).
    """

    def __init__(self, capacity_bytes, account, block_size=64 * 1024,
                 dedup=False, fingerprint_fn=None):
        if capacity_bytes <= 0:
            raise ConfigError("cache capacity must be positive")
        if dedup and fingerprint_fn is None:
            raise ConfigError("dedup=True needs a fingerprint_fn")
        self.capacity = capacity_bytes
        self.account = account
        self.block_size = block_size
        self.dedup = dedup
        self.fingerprint_fn = fingerprint_fn
        self._blocks = {}  # ino -> set of resident block indices
        self._lru = OrderedDict()  # (ino, block) -> None
        self._dirty = {}  # ino -> ExtentBuffer
        self._fingerprints = {}  # (ino, block) -> digest
        self._fp_refs = {}  # digest -> refcount
        self.cached_bytes = 0
        self.dedup_saved_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- block math -------------------------------------------------------

    def block_range(self, offset, size):
        if size <= 0:
            return range(0, 0)
        return range(offset // self.block_size,
                     (offset + size - 1) // self.block_size + 1)

    # -- residency -----------------------------------------------------------

    def scan(self, ino, offset, size):
        """Return ``(hit_blocks, miss_ranges)`` for a read of the range."""
        resident = self._blocks.get(ino, ())
        hit = 0
        misses = []
        run_start = None
        for block in self.block_range(offset, size):
            if block in resident:
                hit += 1
                self.hits += 1
                key = (ino, block)
                if key in self._lru:
                    self._lru.move_to_end(key)
                if run_start is not None:
                    misses.append(self._run(run_start, block))
                    run_start = None
            else:
                self.misses += 1
                if run_start is None:
                    run_start = block
        if run_start is not None:
            end_block = (offset + size - 1) // self.block_size + 1
            misses.append(self._run(run_start, end_block))
        return hit, misses

    def _run(self, start_block, end_block):
        return (start_block * self.block_size,
                (end_block - start_block) * self.block_size)

    def insert(self, ino, offset, size):
        """Mark blocks resident, evicting cold clean blocks to fit."""
        resident = self._blocks.setdefault(ino, set())
        inserted = 0
        for block in self.block_range(offset, size):
            if block in resident:
                continue
            digest = None
            if self.dedup:
                digest = self.fingerprint_fn(ino, block * self.block_size)
                if digest is not None and self._fp_refs.get(digest, 0) > 0:
                    # Content already resident: cache by reference, free.
                    self._fingerprints[(ino, block)] = digest
                    self._fp_refs[digest] += 1
                    resident.add(block)
                    self._lru[(ino, block)] = None
                    self.dedup_saved_bytes += self.block_size
                    inserted += 1
                    continue
            while self.cached_bytes + self.block_size > self.capacity:
                if not self._evict_one():
                    return inserted  # all resident data is hot/dirty
            if not self.account.can_charge(self.block_size):
                if not self._evict_one():
                    return inserted
                continue
            self.account.charge(self.block_size)
            resident.add(block)
            self._lru[(ino, block)] = None
            self.cached_bytes += self.block_size
            if digest is not None:
                self._fingerprints[(ino, block)] = digest
                self._fp_refs[digest] = 1
            inserted += 1
        return inserted

    def _release_block(self, ino, block):
        """Uncharge a departing block, honouring dedup refcounts.

        Returns the bytes actually freed (0 for a deduplicated reference).
        """
        digest = self._fingerprints.pop((ino, block), None)
        if digest is not None:
            remaining = self._fp_refs.get(digest, 1) - 1
            if remaining > 0:
                self._fp_refs[digest] = remaining
                self.dedup_saved_bytes -= self.block_size
                return 0
            self._fp_refs.pop(digest, None)
        self.cached_bytes -= self.block_size
        self.account.uncharge(self.block_size)
        return self.block_size

    def _evict_one(self):
        while self._lru:
            (ino, block), _ = self._lru.popitem(last=False)
            resident = self._blocks.get(ino)
            if resident is None or block not in resident:
                continue
            resident.discard(block)
            self._release_block(ino, block)
            self.evictions += 1
            return True
        return False

    # -- dirty data ------------------------------------------------------------

    def dirty_buffer(self, ino):
        buffer = self._dirty.get(ino)
        if buffer is None:
            buffer = self._dirty[ino] = ExtentBuffer()
        return buffer

    def write(self, ino, offset, data):
        """Buffer a write: real bytes into the extent buffer + residency."""
        buffer = self.dirty_buffer(ino)
        before = buffer.dirty_bytes
        buffer.write(offset, data)
        grown = buffer.dirty_bytes - before
        if grown > 0:
            # Dirty bytes are charged to the tenant too.
            if self.account.can_charge(grown):
                self.account.charge(grown)
            self.cached_bytes += grown
        self.insert(ino, offset, len(data))

    def take_dirty(self, ino, max_bytes=None):
        """Pop dirty extents of ``ino`` for flushing; uncharges memory."""
        buffer = self._dirty.get(ino)
        if buffer is None or not buffer:
            return []
        taken = buffer.take(max_bytes)
        released = sum(len(data) for _off, data in taken)
        self.cached_bytes -= released
        if released <= self.account.used:
            self.account.uncharge(released)
        if not buffer:
            del self._dirty[ino]
        return taken

    def truncate_dirty(self, ino, size):
        """Trim buffered dirty data to ``size`` bytes (file truncation)."""
        buffer = self._dirty.get(ino)
        if buffer is None:
            return 0
        freed = buffer.truncate(size)
        if freed:
            self.cached_bytes -= freed
            if freed <= self.account.used:
                self.account.uncharge(freed)
        if not buffer:
            del self._dirty[ino]
        return freed

    def dirty_inos(self):
        return list(self._dirty.keys())

    @property
    def dirty_bytes(self):
        return sum(buffer.dirty_bytes for buffer in self._dirty.values())

    def overlay(self, ino, offset, size, base):
        """Apply any buffered dirty data of ``ino`` over ``base``."""
        buffer = self._dirty.get(ino)
        if buffer is None:
            return bytes(base)
        return buffer.overlay(offset, size, base)

    def drop_ino(self, ino):
        """Forget everything about a file (unlink)."""
        resident = self._blocks.pop(ino, None)
        if resident:
            for block in resident:
                self._lru.pop((ino, block), None)
                self._release_block(ino, block)
        buffer = self._dirty.pop(ino, None)
        if buffer is not None and buffer.dirty_bytes:
            self.cached_bytes -= buffer.dirty_bytes
            if buffer.dirty_bytes <= self.account.used:
                self.account.uncharge(buffer.dirty_bytes)

    def stats(self):
        return {
            "cached_bytes": self.cached_bytes,
            "dirty_bytes": self.dirty_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
