"""FUSE transport: a user-level filesystem daemon behind /dev/fuse.

Every operation crossing this layer pays the FUSE tax the paper measures
against (§2, [69]):

* the request is queued through the kernel to the daemon (queue management
  CPU plus a request copy);
* the caller blocks and the daemon wakes — **two context switches per
  round trip** (counted; Fig. 8b reports D doing 9-39x fewer than F/F);
* large reads/writes are split into ``fuse_max_write`` chunks, each its
  own round trip;
* optionally the kernel page cache sits above the daemon (ceph-fuse
  without ``direct_io``): read hits skip the daemon entirely, but every
  cached byte now lives twice — in the page cache *and* in the daemon's
  user-level cache. That is the double-caching memory blow-up of FP/FP in
  Fig. 11b.

The daemon's threads run inside the container pool's cpuset (the FUSE
process lives in the pool's cgroup), so FUSE does not steal foreign cores;
its problem is crossing overhead, not placement.
"""

from repro.common.errors import ServiceFailed
from repro.fs.api import FileHandle, Filesystem, OpenFlags, Task
from repro.metrics import MetricSet
from repro.sim.cpu import SimThread
from repro.sim.sync import Store

__all__ = ["FuseTransport"]


class _FuseRequest(object):
    __slots__ = ("op", "args", "reply", "payload_out")

    def __init__(self, sim, op, args, payload_out=0):
        self.op = op
        self.args = args
        self.reply = sim.event(name="fuse-reply:%s" % op)
        self.payload_out = payload_out


class _FuseHandle(FileHandle):
    __slots__ = ("inner",)

    def __init__(self, fs, path, flags, inner):
        super().__init__(fs, path, flags)
        self.inner = inner


class FuseTransport(Filesystem):
    """Filesystem adapter routing every op through a FUSE-style daemon."""

    _next_id = [1]

    def __init__(
        self,
        kernel,
        inner,
        cpuset,
        name="fuse",
        daemon_threads=4,
        use_page_cache=False,
        metrics=None,
        pool=None,
    ):
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.costs
        self.inner = inner
        self.name = name
        self.pool = pool
        self.use_page_cache = use_page_cache
        self.metrics = metrics if metrics is not None else MetricSet(name)
        self.fs_id = FuseTransport._next_id[0]
        FuseTransport._next_id[0] += 1
        self._queue = Store(kernel.sim, name="fuse:%s" % name)
        self._failed = False
        self.daemon_threads = []
        for index in range(daemon_threads):
            thread = SimThread(kernel.sim, "%s.d%d" % (name, index), cpuset)
            self.daemon_threads.append(thread)
            kernel.sim.spawn(self._daemon_loop(thread), name=thread.name)

    # -- crash injection -----------------------------------------------------

    def fail(self):
        """Kill the daemon: every in-flight and future request errors.

        Models the fault-containment property of §5 — a dead user-level
        filesystem service breaks its own mount, not the host kernel.
        """
        self._failed = True
        while True:
            ok, request = self._queue.try_get()
            if not ok:
                break
            request.reply.fail(ServiceFailed("fuse daemon %s died" % self.name))

    # -- transport -------------------------------------------------------------

    def _call(self, task, op, args, payload_out=0, payload_in=0):
        """One FUSE round trip; returns the daemon's result."""
        if self._failed:
            raise ServiceFailed("fuse daemon %s died" % self.name)
        obs = self.sim.observer
        span = obs.span(task, "fuse.call", "fuse", transport=self.name,
                        op=op) if obs is not None else None
        costs = self.costs
        try:
            yield from task.cpu(
                costs.fuse_queue_op + costs.copy_cost(payload_out)
            )
            request = _FuseRequest(self.sim, op, args, payload_out)
            yield self._queue.put(request)
            if self.sim.tracer is not None:
                self.sim.trace("fuse", "call", transport=self.name, op=op)
            self.metrics.counter("fuse_calls").add(1)
            self.metrics.counter("ctx_switches").add(
                costs.fuse_switches_per_call
            )
            result = yield request.reply
            # The caller resumes: pays its switch-in and the reply copy.
            yield from task.cpu(
                costs.context_switch + costs.copy_cost(payload_in)
            )
        finally:
            if span is not None:
                span.end()
        return result

    def _daemon_loop(self, thread):
        task = Task(thread, pool=self.pool)
        costs = self.costs
        while not self._failed:
            request = yield self._queue.get()
            if self._failed:
                request.reply.fail(ServiceFailed("fuse daemon died"))
                return
            # Daemon switch-in + request copy out of the kernel.
            yield self.sim.timeout(costs.wakeup_latency)
            yield from task.cpu(
                costs.context_switch
                + costs.fuse_queue_op
                + costs.copy_cost(request.payload_out)
            )
            handler = getattr(self.inner, request.op)
            try:
                result = yield from handler(task, *request.args)
            except Exception as err:  # noqa: BLE001 - forwarded to the caller
                request.reply.fail(err)
                continue
            request.reply.succeed(result)

    # -- page-cache layer (FP mode) ------------------------------------------------

    def _cache_key(self, path):
        return ("fuse", self.fs_id, path)

    def _account(self, task):
        if task.pool is not None:
            return task.pool.ram
        if self.pool is not None:
            return self.pool.ram
        return self.kernel.machine.ram

    # -- Filesystem interface ----------------------------------------------------------

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        inner = yield from self._call(task, "open", (path, flags, mode))
        return _FuseHandle(self, path, flags, inner)

    def close(self, task, handle):
        yield from self._call(task, "close", (handle.inner,))
        handle.closed = True

    def read(self, task, handle, offset, size):
        parts = []
        chunk = self.costs.fuse_max_write
        position = offset
        remaining = size
        while remaining > 0:
            piece = min(chunk, remaining)
            data = yield from self._read_piece(task, handle, position, piece)
            parts.append(data)
            position += len(data)
            remaining -= piece
            if len(data) < piece:
                break
        return b"".join(parts)

    def _read_piece(self, task, handle, offset, size):
        if self.use_page_cache:
            cf = self.kernel.page_cache.file(self._cache_key(handle.path))
            hit_pages, miss_ranges = self.kernel.page_cache.scan(cf, offset, size)
            if not miss_ranges:
                resident = self.inner.peek(handle.path, offset, size)
                if resident is not None:
                    yield from task.cpu(
                        self.costs.page_op * hit_pages
                        + self.costs.copy_cost(len(resident))
                    )
                    self.metrics.counter("pc_hits").add(1)
                    return resident
            data = yield from self._call(
                task, "read", (handle.inner, offset, size), payload_in=size
            )
            self.kernel.page_cache.insert(
                cf, offset, max(len(data), 1), self._account(task)
            )
            return data
        return (
            yield from self._call(
                task, "read", (handle.inner, offset, size), payload_in=size
            )
        )

    def write(self, task, handle, offset, data):
        chunk = self.costs.fuse_max_write
        written = 0
        view = memoryview(bytes(data))
        while written < len(view):
            piece = bytes(view[written:written + chunk])
            count = yield from self._call(
                task,
                "write",
                (handle.inner, offset + written, piece),
                payload_out=len(piece),
            )
            if self.use_page_cache:
                cf = self.kernel.page_cache.file(self._cache_key(handle.path))
                self.kernel.page_cache.insert(
                    cf, offset + written, len(piece), self._account(task)
                )
            written += count
        return written

    def fsync(self, task, handle):
        yield from self._call(task, "fsync", (handle.inner,))

    def stat(self, task, path):
        return (yield from self._call(task, "stat", (path,)))

    def mkdir(self, task, path, mode=0o755):
        yield from self._call(task, "mkdir", (path, mode))

    def rmdir(self, task, path):
        yield from self._call(task, "rmdir", (path,))

    def unlink(self, task, path):
        yield from self._call(task, "unlink", (path,))
        if self.use_page_cache:
            self.kernel.page_cache.drop_file(self._cache_key(path))

    def readdir(self, task, path):
        return (yield from self._call(task, "readdir", (path,), payload_in=4096))

    def rename(self, task, old_path, new_path):
        yield from self._call(task, "rename", (old_path, new_path))
        if self.use_page_cache:
            self.kernel.page_cache.drop_file(self._cache_key(old_path))

    def truncate(self, task, path, size):
        yield from self._call(task, "truncate", (path, size))
        if self.use_page_cache:
            self.kernel.page_cache.drop_file(self._cache_key(path))

    def peek(self, path, offset, size):
        """Delegate peeks to the daemon's filesystem (no crossing cost)."""
        return self.inner.peek(path, offset, size)
