"""FUSE transport: user-level filesystems behind a kernel queue."""

from repro.fuse.transport import FuseTransport

__all__ = ["FuseTransport"]
