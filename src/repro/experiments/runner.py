"""The sweep runner: specs -> deterministic per-seed runs -> one record.

:func:`run_spec` expands a validated spec into one compiled experiment
per seed, runs them, folds every measured row into a single
:class:`~repro.bench.harness.ExperimentResult` (rows gain a ``seed``
column when the spec sweeps more than one seed), checks the spec's SLO
assertions against the rows, and emits the unified run record
(``repro.experiments.record``): rows + fingerprint + wall-clock +
resolved spec, plus any per-seed detail the experiment exposes (the
chaos kind's plan log and digests).
"""

import time

from repro.experiments.compiler import compile_spec
from repro.experiments.record import make_record

__all__ = ["check_slos", "run_spec"]

_OPS = {
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def check_slos(spec, result):
    """Evaluate the spec's SLO assertions against measured rows.

    Returns ``{"checked": N, "violations": [message, ...]}``; an SLO
    whose ``where`` filter matches no rows is itself a violation (the
    assertion silently checking nothing is the worst failure mode).
    """
    violations = []
    for entry in spec["slo"]:
        metric = entry["metric"]
        op = entry["op"]
        want = entry["value"]
        where = entry["where"]
        rows = result.rows_where(**where) if where else result.rows
        if not rows:
            violations.append(
                "slo %s %s %r: no rows match %r" % (metric, op, want, where)
            )
            continue
        for row in rows:
            if metric not in row:
                violations.append(
                    "slo %s %s %r: row %r has no such metric"
                    % (metric, op, want, row)
                )
                continue
            got = row[metric]
            try:
                ok = _OPS[op](got, want)
            except TypeError:
                ok = False
            if not ok:
                violations.append(
                    "slo violated: %s=%r not %s %r (row %r)"
                    % (metric, got, op, want,
                       {k: v for k, v in row.items() if not isinstance(v, float)})
                )
    return {"checked": len(spec["slo"]), "violations": violations}


def _run_seed(spec, quick, seed):
    """One seed's compiled run — module-level so the parallel slicer can
    ship it to a forked worker."""
    experiment = compile_spec(spec, quick=quick, seed=seed)
    outcome = experiment.run()
    return {
        "id": experiment.experiment_id,
        "title": experiment.title,
        "expectation": experiment.paper_expectation,
        "rows": [dict(row) for row in outcome.rows],
        "notes": list(outcome.notes),
        "detail": getattr(experiment, "detail", None),
    }


def run_spec(spec, quick=False, parallel=1):
    """Run one validated spec; returns ``(ExperimentResult, record)``.

    The result carries the merged rows/notes for printing; the record is
    the unified JSON artifact. Two calls with the same spec and seeds
    yield identical rows and fingerprints (wall-clock aside).

    ``parallel`` > 1 runs the spec's seeds as independent simulation
    tasks over that many worker processes (each seed's compiled run is a
    self-contained world — the embarrassingly-parallel partition case).
    Results merge in seed order, so rows and fingerprints are identical
    to the sequential run; a single-seed spec just runs sequentially.
    """
    from repro.bench.harness import ExperimentResult
    from repro.sim.parallel import map_tasks

    started = time.perf_counter()
    seeds = list(spec["seeds"])
    multi_seed = len(seeds) > 1
    tasks = [
        ("seed%d" % seed, _run_seed,
         {"spec": spec, "quick": quick, "seed": seed})
        for seed in seeds
    ]
    outcomes, task_rows = map_tasks(tasks, workers=parallel)
    merged = None
    details = {}
    for seed, outcome in zip(seeds, outcomes):
        if merged is None:
            merged = ExperimentResult(
                outcome["id"], outcome["title"], outcome["expectation"],
            )
        for row in outcome["rows"]:
            row = dict(row)
            if multi_seed:
                row.setdefault("seed", seed)
            merged.add_row(**row)
        for note in outcome["notes"]:
            merged.note("seed %d: %s" % (seed, note) if multi_seed else note)
        if outcome["detail"]:
            details[str(seed)] = outcome["detail"]
    if parallel > 1:
        details["partitions"] = task_rows
    slo = check_slos(spec, merged)
    for violation in slo["violations"]:
        merged.note("SLO: %s" % violation)
    record = make_record(
        merged.experiment_id,
        merged.title,
        merged.paper_expectation,
        rows=merged.rows,
        notes=merged.notes,
        seeds=seeds,
        wall_s=time.perf_counter() - started,
        spec=spec,
        slo=slo,
        detail=details or None,
    )
    return merged, record
