"""Spec-file discovery: the declarative experiment registry.

Committed spec files live under ``experiments/`` at the repository
root — one JSON (or YAML, when PyYAML is importable) file per
experiment. ``python -m repro run <name>`` and ``python -m repro list``
resolve names through this registry, so every runnable experiment is a
config file, not harness code.

Search order (first definition of an id wins):

1. every directory on ``$REPRO_EXPERIMENTS_PATH`` (os.pathsep-joined);
2. ``./experiments`` under the current working directory;
3. ``experiments/`` at the repository root, located relative to this
   package (works regardless of cwd for a source checkout).
"""

import json
import os

from repro.experiments.spec import SpecError, validate_spec

__all__ = ["discover", "get", "names", "load_spec_file", "search_paths"]

_EXTENSIONS = (".json", ".yaml", ".yml")


def search_paths():
    """Directories scanned for spec files, in priority order."""
    paths = []
    env = os.environ.get("REPRO_EXPERIMENTS_PATH")
    if env:
        paths.extend(part for part in env.split(os.pathsep) if part)
    paths.append(os.path.join(os.getcwd(), "experiments"))
    package_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(package_dir)))
    paths.append(os.path.join(repo_root, "experiments"))
    seen = set()
    out = []
    for path in paths:
        real = os.path.realpath(path)
        if real in seen or not os.path.isdir(real):
            continue
        seen.add(real)
        out.append(real)
    return out


def load_spec_file(path):
    """Parse and validate one spec file; returns the normalised spec."""
    with open(path) as handle:
        text = handle.read()
    if path.endswith((".yaml", ".yml")):
        try:
            import yaml
        except ImportError:
            raise SpecError(
                "%s is YAML but PyYAML is not installed; use JSON specs "
                "or install pyyaml" % path
            )
        raw = yaml.safe_load(text)
    else:
        try:
            raw = json.loads(text)
        except ValueError as err:
            raise SpecError("%s is not valid JSON: %s" % (path, err))
    return validate_spec(raw, source=path)


def discover():
    """Scan the search paths; returns ``{id: spec}`` (validated).

    A spec whose ``id`` was already defined by an earlier search path is
    skipped (user/env overrides shadow committed specs); two files in
    the *same* directory claiming one id is an error.
    """
    specs = {}
    for directory in search_paths():
        local = {}
        for entry in sorted(os.listdir(directory)):
            if not entry.endswith(_EXTENSIONS):
                continue
            path = os.path.join(directory, entry)
            spec = load_spec_file(path)
            spec_id = spec["id"]
            if spec_id in local:
                raise SpecError(
                    "duplicate spec id %r in %s (%s and %s)"
                    % (spec_id, directory, local[spec_id], entry)
                )
            local[spec_id] = entry
            specs.setdefault(spec_id, spec)
    return specs


def names():
    """All registered experiment ids, sorted."""
    return sorted(discover())


def get(name):
    """The validated spec registered under ``name``."""
    specs = discover()
    if name not in specs:
        raise SpecError(
            "unknown experiment %r (known: %s)"
            % (name, ", ".join(sorted(specs)) or "none — no spec files found "
               "under %s" % ", ".join(search_paths()))
        )
    return specs[name]
