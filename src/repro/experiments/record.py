"""The unified run record: one JSON shape for every experiment artifact.

Every way of running an experiment — ``python -m repro run`` (with or
without ``--report``), the spec-matrix CI job, the nightly chaos matrix —
emits the same record: stable keys, a schema version field, the measured
rows, and a *fingerprint* (a stable hash of the rows) that doubles as a
determinism witness across runs with the same seed.

The record is deliberately a superset of the old
``ExperimentResult.to_dict()`` shape (``id``/``title``/
``paper_expectation``/``rows``/``notes`` keys are unchanged) and is
convertible to the ``BENCH_engine`` trend format via :func:`to_trend`,
so ``scripts/bench_engine.py``'s ``check_against`` gate can consume
spec-matrix records too.

This module is intentionally dependency-free (stdlib only): it sits at
the bottom of the import graph so ``repro.bench.harness`` and the
scripts can use it without cycles.
"""

import hashlib
import json

__all__ = [
    "RECORD_SCHEMA",
    "RecordError",
    "make_record",
    "rows_fingerprint",
    "to_trend",
    "validate_record",
]

#: Version of the unified run-record shape. Bump on any key change and
#: extend :func:`validate_record` — the CI spec-matrix job fails on
#: records it cannot validate, which is the schema-drift gate.
RECORD_SCHEMA = 2

#: Keys every record must carry, in canonical order.
REQUIRED_KEYS = (
    "schema", "id", "title", "paper_expectation", "rows", "notes",
    "fingerprint",
)

#: Optional keys a record may carry (anything else is drift).
OPTIONAL_KEYS = ("seeds", "wall_s", "spec", "slo", "profile", "detail")


class RecordError(ValueError):
    """A run record does not match the unified schema."""


def rows_fingerprint(rows):
    """A stable hex hash of measured rows (the determinism witness).

    Canonical JSON keeps the hash independent of dict insertion order;
    two runs that measure identical rows fingerprint identically.
    """
    canonical = json.dumps(list(rows), sort_keys=True, default=repr)
    return hashlib.blake2b(canonical.encode(), digest_size=16).hexdigest()


def make_record(experiment_id, title="", paper_expectation="", rows=(),
                notes=(), seeds=None, wall_s=None, spec=None, slo=None,
                profile=None, detail=None):
    """Assemble a schema-versioned run record with stable keys."""
    record = {
        "schema": RECORD_SCHEMA,
        "id": experiment_id,
        "title": title,
        "paper_expectation": paper_expectation,
        "rows": [dict(row) for row in rows],
        "notes": list(notes),
    }
    record["fingerprint"] = rows_fingerprint(record["rows"])
    if seeds is not None:
        record["seeds"] = list(seeds)
    if wall_s is not None:
        record["wall_s"] = round(float(wall_s), 4)
    if spec is not None:
        record["spec"] = spec
    if slo is not None:
        record["slo"] = slo
    if profile is not None:
        record["profile"] = profile
    if detail is not None:
        record["detail"] = detail
    return record


def validate_record(record):
    """Check a record against the unified schema; returns it.

    Raises :class:`RecordError` on any drift: wrong schema version,
    missing or unknown keys, rows that are not dicts, or a fingerprint
    that does not match the rows (a tampered or hand-edited artifact).
    """
    if not isinstance(record, dict):
        raise RecordError("record must be a dict, got %s" % type(record).__name__)
    if record.get("schema") != RECORD_SCHEMA:
        raise RecordError(
            "record schema %r != expected %d (id=%r)"
            % (record.get("schema"), RECORD_SCHEMA, record.get("id"))
        )
    missing = [key for key in REQUIRED_KEYS if key not in record]
    if missing:
        raise RecordError(
            "record %r missing keys: %s" % (record.get("id"), ", ".join(missing))
        )
    known = set(REQUIRED_KEYS) | set(OPTIONAL_KEYS)
    unknown = sorted(set(record) - known)
    if unknown:
        raise RecordError(
            "record %r has unknown keys: %s (schema drift?)"
            % (record.get("id"), ", ".join(unknown))
        )
    if not isinstance(record["rows"], list) or any(
            not isinstance(row, dict) for row in record["rows"]):
        raise RecordError("record %r rows must be a list of dicts"
                          % record.get("id"))
    expected = rows_fingerprint(record["rows"])
    if record["fingerprint"] != expected:
        raise RecordError(
            "record %r fingerprint %s does not match its rows (%s)"
            % (record.get("id"), record["fingerprint"], expected)
        )
    return record


def to_trend(records, calibration_s=None):
    """Fold run records into the ``BENCH_engine`` trend shape.

    Returns ``{"schema": 1, "scenarios": {id: {"wall_s", "fingerprint",
    "detail"}}, "total_wall_s"}`` — the format
    ``scripts/bench_engine.py check_against`` diffs across runs, so
    spec-matrix records slot into the same trend-over-time tooling as
    the engine benchmarks.
    """
    trend = {"schema": 1, "scenarios": {}, "total_wall_s": 0.0}
    if calibration_s is not None:
        trend["calibration_s"] = round(float(calibration_s), 5)
    for record in records:
        wall = float(record.get("wall_s") or 0.0)
        trend["scenarios"][record["id"]] = {
            "wall_s": round(wall, 4),
            "fingerprint": record["fingerprint"],
            "detail": {"rows": record["rows"]},
        }
        trend["total_wall_s"] = round(trend["total_wall_s"] + wall, 4)
    return trend
