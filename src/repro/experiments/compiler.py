"""Compile validated experiment specs onto runnable experiments.

Each spec ``kind`` names one compiled shape: a builder that lowers the
spec's sweep axes and params onto the constructor of a
:class:`~repro.bench.harness.Experiment` subclass (which in turn builds
:class:`~repro.world.World`\\ s, :class:`~repro.stacks.StackFactory`
stacks and workloads per sweep cell), or — for the ``chaos`` kind — onto
a :class:`~repro.faults.ChaosConfig` whose fault mix becomes a
:class:`~repro.faults.FaultPlan`.

The mapping is deliberately thin and explicit: a spec that mirrors one
of the old ``cli._experiments()`` closures compiles to *exactly* the
experiment object that closure built, which is what the
closure-vs-spec equivalence tests pin.

Builders import ``repro.bench`` lazily (same as the old CLI closures)
so that ``repro.experiments`` stays importable from low-level modules
without cycles.
"""

import hashlib

from repro.experiments.spec import SpecError, resolve_axes

__all__ = ["AXES", "KINDS", "ChaosSweep", "compile_spec"]

#: Sweep axis names each kind accepts (validated by ``spec.validate_spec``).
AXES = {
    "colocation": ("symbol", "n_fls"),
    "rocksdb_scaleout": ("symbol", "pools"),
    "rocksdb_scaleup": ("symbol", "clones"),
    "startup": ("symbol", "containers"),
    "sequential_scaleout": ("symbol", "pools"),
    "fileserver_scaleout": ("symbol", "pools"),
    "file_scaleup": ("symbol", "clones"),
    "pool_scaleup": ("symbol", "pools", "clones_per_pool"),
    "serverless": ("symbol",),
    "ablation_lock": (),
    "ablation_locking": (),
    "ablation_ipc": (),
    "ablation_dedup": (),
    "chaos": (),
}

KINDS = tuple(AXES)


def _axis(axes, name, default):
    values = axes.get(name)
    return tuple(values) if values is not None else tuple(default)


def _build_colocation(axes, params):
    from repro.bench import FlsColocation

    return FlsColocation(
        symbols=_axis(axes, "symbol", ("K", "D")),
        fls_counts=_axis(axes, "n_fls", (1, 3)),
        neighbor=params.pop("neighbor", "RND"),
        duration=params.pop("duration", 8.0),
        **params,
    )


def _build_rocksdb_scaleout(axes, params):
    from repro.bench import RocksDbScaleout

    return RocksDbScaleout(
        symbols=_axis(axes, "symbol", ("D", "F", "K")),
        pool_counts=_axis(axes, "pools", (1, 4)),
        mode=params.pop("mode", "put"),
        **params,
    )


def _build_rocksdb_scaleup(axes, params):
    from repro.bench import RocksDbScaleup

    return RocksDbScaleup(
        symbols=_axis(axes, "symbol", ("D", "F/F", "F/K", "K/K")),
        clone_counts=_axis(axes, "clones", (2, 8)),
        mode=params.pop("mode", "put"),
        **params,
    )


def _build_startup(axes, params):
    from repro.bench import LighttpdStartup

    return LighttpdStartup(
        symbols=_axis(axes, "symbol", ("D", "K/K", "F/K", "F/F")),
        container_counts=_axis(axes, "containers", (1, 8)),
        **params,
    )


def _build_sequential_scaleout(axes, params):
    from repro.bench import SequentialScaleout

    return SequentialScaleout(
        symbols=_axis(axes, "symbol", ("D", "F", "K")),
        pool_counts=_axis(axes, "pools", (1, 4)),
        mode=params.pop("mode", "write"),
        **params,
    )


def _build_fileserver_scaleout(axes, params):
    from repro.bench import FileserverScaleout

    return FileserverScaleout(
        symbols=_axis(axes, "symbol", ("D", "F", "K")),
        pool_counts=_axis(axes, "pools", (1, 4)),
        **params,
    )


def _build_file_scaleup(axes, params):
    from repro.bench import FileScaleup

    return FileScaleup(
        symbols=_axis(axes, "symbol", ("D", "K/K", "F/F", "FP/FP")),
        clone_counts=_axis(axes, "clones", (2, 8, 16)),
        mode=params.pop("mode", "append"),
        **params,
    )


def _build_pool_scaleup(axes, params):
    from repro.bench import PoolScaleup

    return PoolScaleup(
        symbols=_axis(axes, "symbol", ("D",)),
        pool_counts=_axis(axes, "pools", (8, 16)),
        clones_per_pool_counts=_axis(axes, "clones_per_pool", (2,)),
        mode=params.pop("mode", "append"),
        **params,
    )


def _build_serverless(axes, params):
    from repro.bench import ServerlessColocation

    return ServerlessColocation(
        symbols=_axis(axes, "symbol", ("K", "D")),
        **params,
    )


def _build_ablation_lock(axes, params):
    from repro.bench import ClientLockAblation

    return ClientLockAblation(**params)


def _build_ablation_locking(axes, params):
    from repro.bench import LockingPolicyAblation

    return LockingPolicyAblation(**params)


def _build_ablation_ipc(axes, params):
    from repro.bench import IpcQueueAblation

    return IpcQueueAblation(**params)


def _build_ablation_dedup(axes, params):
    from repro.bench import CacheDedupAblation

    return CacheDedupAblation(**params)


class ChaosSweep(object):
    """Experiment adapter over :class:`~repro.faults.ChaosConfig`.

    Runs the configured chaos pipeline for one seed and reports the
    integrity/convergence verdict as a row; the full evidence (fault
    plan log, per-file digests, violation lists) lands in
    :attr:`detail`, which the sweep runner folds into the run record —
    the same shape the nightly chaos matrix uploads.
    """

    experiment_id = "chaos"
    title = "Chaos pipeline under a seeded fault plan"
    paper_expectation = ""

    def __init__(self, config):
        self.config = config
        self.detail = {}

    def run(self):
        from repro.bench.harness import ExperimentResult

        result = ExperimentResult(
            self.experiment_id, self.title, self.paper_expectation
        )
        outcome = self.config.run()
        fingerprint = hashlib.blake2b(
            repr(outcome.fingerprint()).encode(), digest_size=16
        ).hexdigest()
        result.add_row(
            seed=outcome.seed,
            ok=outcome.ok,
            converged=outcome.converged,
            scrub_converged=outcome.scrub_converged,
            membership_converged=outcome.membership_converged,
            map_epoch=outcome.map_epoch,
            corruptions=outcome.corruptions,
            repairs=outcome.repairs,
            retries=outcome.retries,
            service_restarts=outcome.service_restarts,
            files_checked=outcome.files_checked,
            files_skipped=outcome.files_skipped,
            backfill_objects=outcome.backfill_objects,
            backfill_bytes=outcome.backfill_bytes,
            fingerprint=fingerprint,
        )
        self.detail = {
            "plan_log": [list(entry) for entry in outcome.plan_log],
            "digests": {str(k): v for k, v in sorted(outcome.digests.items())},
            "mismatches": [list(m) for m in outcome.mismatches],
            "read_mismatches": [list(m) for m in outcome.read_mismatches],
            "integrity_errors": [list(e) for e in outcome.integrity_errors],
            "quarantined": [list(key) for key in outcome.quarantined],
            "under_replicated": [list(k) for k in outcome.under_replicated],
        }
        if not outcome.ok:
            result.note("chaos run seed=%d FAILED integrity/convergence"
                        % outcome.seed)
        return result


def _build_chaos(axes, params, spec, seed):
    from repro.faults import ChaosConfig

    fields = dict(spec.get("faults") or {})
    fields.update(params)
    cluster = spec["cluster"]
    fields.setdefault("num_osds", cluster["osds"])
    fields.setdefault("replicas", cluster["replicas"])
    config = ChaosConfig.from_dict(fields, seed=seed if seed is not None else 0)
    return ChaosSweep(config)


_BUILDERS = {
    "colocation": _build_colocation,
    "rocksdb_scaleout": _build_rocksdb_scaleout,
    "rocksdb_scaleup": _build_rocksdb_scaleup,
    "startup": _build_startup,
    "sequential_scaleout": _build_sequential_scaleout,
    "fileserver_scaleout": _build_fileserver_scaleout,
    "file_scaleup": _build_file_scaleup,
    "pool_scaleup": _build_pool_scaleup,
    "serverless": _build_serverless,
    "ablation_lock": _build_ablation_lock,
    "ablation_locking": _build_ablation_locking,
    "ablation_ipc": _build_ablation_ipc,
    "ablation_dedup": _build_ablation_dedup,
}


def compile_spec(spec, quick=False, seed=None):
    """Lower a validated spec to a runnable experiment object.

    ``seed`` plugs one seed of the spec's seed list into the runner
    (``None`` keeps the experiment's own default, which is how the
    legacy closures behaved). The returned object carries the spec's
    ``id``/``title``/``expectation``.
    """
    kind = spec["kind"]
    axes, params = resolve_axes(spec, quick=quick)
    if kind == "chaos":
        experiment = _build_chaos(axes, params, spec, seed)
    else:
        builder = _BUILDERS.get(kind)
        if builder is None:
            raise SpecError("unknown experiment kind %r" % kind)
        if seed is not None:
            params.setdefault("seed", seed)
        try:
            experiment = builder(axes, dict(params))
        except TypeError as err:
            raise SpecError(
                "spec %r: params do not fit kind %r (%s)"
                % (spec["id"], kind, err)
            )
    experiment.experiment_id = spec["id"]
    if spec["title"]:
        experiment.title = spec["title"]
    if spec["expectation"]:
        experiment.paper_expectation = spec["expectation"]
    return experiment
