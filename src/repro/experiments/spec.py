"""Declarative experiment specs: schema, validation and defaulting.

An :data:`ExperimentSpec` is a plain dict (JSON- and YAML-friendly)
describing one experiment end to end:

``id``
    Registry name (``fig6a``, ``chaos-corruption``, ...).
``kind``
    Which compiled shape runs it — see ``repro.experiments.compiler``.
``cluster``
    Cluster topology: OSD count, replica count, client hosts. The chaos
    kind lowers this onto :class:`~repro.world.World` directly; figure
    kinds document the topology their runners build.
``stacks`` / ``workloads``
    The Table-1 stack symbols and Table-2 workload symbols the
    experiment exercises (validated against the registries).
``sweep``
    Axis matrices (axis name -> value list); the compiler expands them
    onto the experiment's sweep arguments. Axis names are per-kind.
``params``
    Scalar knobs forwarded to the runner (durations, modes, sizes).
``seeds``
    The deterministic seed list; the sweep runner runs the whole matrix
    once per seed.
``faults``
    A :class:`~repro.faults.ChaosConfig` field dict (chaos kind only).
``slo``
    Assertions checked against the measured rows after the run.
``quick``
    Sweep/param overrides applied under ``--quick``.

:func:`validate_spec` normalises a raw dict: fills defaults, rejects
unknown keys/symbols/axes with actionable errors, and returns a deep
copy safe to mutate. Everything downstream (compiler, runner, registry,
CLI) consumes only validated specs.
"""

import copy
import json
import re

from repro.common.errors import ConfigError

__all__ = ["SPEC_SCHEMA", "SpecError", "resolve_axes", "validate_spec"]

#: Version of the spec shape; validation rejects any other value.
SPEC_SCHEMA = 1

_TOP_KEYS = frozenset((
    "schema", "id", "kind", "title", "expectation", "tags", "cluster",
    "stacks", "workloads", "sweep", "params", "seeds", "faults", "slo",
    "quick",
))

_ID_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]*$")

_CLUSTER_DEFAULTS = {"osds": 6, "replicas": 1, "hosts": 1}

_SLO_OPS = ("<=", "<", ">=", ">", "==", "!=")


class SpecError(ConfigError):
    """An experiment spec failed validation."""


def _fail(spec_id, message):
    prefix = "spec %r: " % spec_id if spec_id else "spec: "
    raise SpecError(prefix + message)


def _check_stack_symbol(spec_id, symbol):
    from repro.stacks import validate_symbol

    try:
        validate_symbol(symbol)
    except SpecError:
        raise
    except ConfigError as err:
        _fail(spec_id, str(err))


def _workload_symbols():
    from repro.bench.registry import COMPOSITES, WORKLOADS

    return set(WORKLOADS) | set(COMPOSITES)


def _kind_axes(kind):
    from repro.experiments.compiler import AXES, KINDS

    if kind not in KINDS:
        raise SpecError(
            "unknown experiment kind %r (known: %s)" % (kind, ", ".join(KINDS))
        )
    return AXES[kind]


def _chaos_fields():
    from repro.faults import ChaosConfig

    return ChaosConfig.field_names()


def _check_scalar_list(spec_id, name, values):
    if not isinstance(values, (list, tuple)) or not values:
        _fail(spec_id, "%s must be a non-empty list" % name)
    return list(values)


def validate_spec(raw, source=None):
    """Validate and normalise a raw spec dict; returns a deep copy.

    ``source`` (a file path) is included in error messages when given.
    """
    if not isinstance(raw, dict):
        raise SpecError(
            "spec%s must be a mapping, got %s"
            % (" (%s)" % source if source else "", type(raw).__name__)
        )
    spec = copy.deepcopy(raw)
    spec_id = spec.get("id")
    if source and not isinstance(spec_id, str):
        _fail(None, "%s has no string 'id'" % source)

    unknown = sorted(set(spec) - _TOP_KEYS)
    if unknown:
        _fail(spec_id, "unknown keys: %s" % ", ".join(unknown))

    schema = spec.setdefault("schema", SPEC_SCHEMA)
    if schema != SPEC_SCHEMA:
        _fail(spec_id, "schema %r != supported %d" % (schema, SPEC_SCHEMA))

    if not isinstance(spec_id, str) or not _ID_RE.match(spec_id):
        _fail(spec_id, "id must match %s" % _ID_RE.pattern)

    kind = spec.get("kind")
    if not isinstance(kind, str):
        _fail(spec_id, "kind is required")
    axes_allowed = _kind_axes(kind)

    for key, default in (("title", ""), ("expectation", "")):
        value = spec.setdefault(key, default)
        if not isinstance(value, str):
            _fail(spec_id, "%s must be a string" % key)

    tags = spec.setdefault("tags", [])
    if not isinstance(tags, list) or any(not isinstance(t, str) for t in tags):
        _fail(spec_id, "tags must be a list of strings")

    # -- cluster topology -------------------------------------------------
    cluster = spec.setdefault("cluster", {})
    if not isinstance(cluster, dict):
        _fail(spec_id, "cluster must be a mapping")
    unknown = sorted(set(cluster) - set(_CLUSTER_DEFAULTS))
    if unknown:
        _fail(spec_id, "unknown cluster keys: %s" % ", ".join(unknown))
    for key, default in _CLUSTER_DEFAULTS.items():
        value = cluster.setdefault(key, default)
        if not isinstance(value, int) or value < 1:
            _fail(spec_id, "cluster.%s must be a positive int" % key)
    if cluster["replicas"] > cluster["osds"]:
        _fail(spec_id, "cluster.replicas (%d) exceeds cluster.osds (%d)"
              % (cluster["replicas"], cluster["osds"]))

    # -- sweep axes -------------------------------------------------------
    sweep = spec.setdefault("sweep", {})
    if not isinstance(sweep, dict):
        _fail(spec_id, "sweep must be a mapping of axis -> values")
    for axis, values in sweep.items():
        if axis not in axes_allowed:
            _fail(spec_id, "kind %r has no sweep axis %r (known: %s)"
                  % (kind, axis, ", ".join(axes_allowed) or "none"))
        sweep[axis] = _check_scalar_list(spec_id, "sweep.%s" % axis, values)

    # -- params -----------------------------------------------------------
    params = spec.setdefault("params", {})
    if not isinstance(params, dict):
        _fail(spec_id, "params must be a mapping")
    conflicts = sorted(set(params) & set(axes_allowed))
    if conflicts:
        _fail(spec_id, "conflicting sweep axes: %s given as both axis and "
              "param" % ", ".join(conflicts))
    try:
        json.dumps(params)
    except (TypeError, ValueError):
        _fail(spec_id, "params must be JSON-serialisable")
    if kind == "chaos":
        bad = sorted(set(params) - set(_chaos_fields()))
        if bad:
            _fail(spec_id, "chaos params %s are not ChaosConfig fields"
                  % ", ".join(bad))

    # -- stacks / workloads ----------------------------------------------
    stacks = spec.get("stacks")
    symbol_axis = sweep.get("symbol", [])
    if stacks is None:
        stacks = sorted(set(symbol_axis)) if symbol_axis else []
        spec["stacks"] = stacks
    if not isinstance(stacks, list):
        _fail(spec_id, "stacks must be a list of Table-1 symbols")
    for symbol in list(stacks) + list(symbol_axis):
        _check_stack_symbol(spec_id, symbol)
    workloads = spec.setdefault("workloads", [])
    if not isinstance(workloads, list):
        _fail(spec_id, "workloads must be a list of Table-2 symbols")
    known_workloads = _workload_symbols()
    for symbol in workloads:
        if symbol not in known_workloads:
            _fail(spec_id, "unknown workload symbol %r (Table 2: %s)"
                  % (symbol, ", ".join(sorted(known_workloads))))

    # -- seeds ------------------------------------------------------------
    seeds = spec.setdefault("seeds", [1])
    if not isinstance(seeds, list) or not seeds:
        _fail(spec_id, "seeds must be a non-empty list of ints")
    for seed in seeds:
        if not isinstance(seed, int) or isinstance(seed, bool):
            _fail(spec_id, "bad seed %r: seeds must be ints" % (seed,))
    if len(set(seeds)) != len(seeds):
        _fail(spec_id, "seeds contain duplicates: %r" % (seeds,))

    # -- faults (chaos kind only) ----------------------------------------
    faults = spec.setdefault("faults", None)
    if faults is not None:
        if kind != "chaos":
            _fail(spec_id, "faults only apply to the chaos kind, not %r" % kind)
        if not isinstance(faults, dict):
            _fail(spec_id, "faults must be a ChaosConfig field mapping")
        unknown = sorted(set(faults) - set(_chaos_fields()))
        if unknown:
            _fail(spec_id, "unknown ChaosConfig fields in faults: %s"
                  % ", ".join(unknown))

    # -- SLO assertions ---------------------------------------------------
    slo = spec.setdefault("slo", [])
    if not isinstance(slo, list):
        _fail(spec_id, "slo must be a list of assertions")
    for index, entry in enumerate(slo):
        if not isinstance(entry, dict):
            _fail(spec_id, "slo[%d] must be a mapping" % index)
        unknown = sorted(set(entry) - {"metric", "op", "value", "where"})
        if unknown:
            _fail(spec_id, "slo[%d] has unknown keys: %s"
                  % (index, ", ".join(unknown)))
        if not isinstance(entry.get("metric"), str):
            _fail(spec_id, "slo[%d] needs a string metric" % index)
        if entry.get("op") not in _SLO_OPS:
            _fail(spec_id, "slo[%d] op %r not one of %s"
                  % (index, entry.get("op"), ", ".join(_SLO_OPS)))
        if "value" not in entry:
            _fail(spec_id, "slo[%d] needs a value" % index)
        where = entry.setdefault("where", {})
        if not isinstance(where, dict):
            _fail(spec_id, "slo[%d].where must be a mapping" % index)

    # -- quick overrides --------------------------------------------------
    quick = spec.setdefault("quick", {})
    if not isinstance(quick, dict):
        _fail(spec_id, "quick must be a mapping")
    unknown = sorted(set(quick) - {"sweep", "params"})
    if unknown:
        _fail(spec_id, "unknown quick keys: %s" % ", ".join(unknown))
    quick_sweep = quick.setdefault("sweep", {})
    if not isinstance(quick_sweep, dict):
        _fail(spec_id, "quick.sweep must be a mapping")
    for axis, values in quick_sweep.items():
        if axis not in sweep:
            _fail(spec_id, "quick.sweep overrides unknown axis %r "
                  "(declared axes: %s)" % (axis, ", ".join(sweep) or "none"))
        quick_sweep[axis] = _check_scalar_list(
            spec_id, "quick.sweep.%s" % axis, values
        )
    for symbol in quick_sweep.get("symbol", []):
        _check_stack_symbol(spec_id, symbol)
    quick_params = quick.setdefault("params", {})
    if not isinstance(quick_params, dict):
        _fail(spec_id, "quick.params must be a mapping")
    conflicts = sorted(set(quick_params) & set(axes_allowed))
    if conflicts:
        _fail(spec_id, "conflicting sweep axes in quick.params: %s"
              % ", ".join(conflicts))

    return spec


def resolve_axes(spec, quick=False):
    """The effective ``(axes, params)`` view of a validated spec.

    With ``quick`` the spec's ``quick.sweep``/``quick.params`` overrides
    are merged on top — this is the single place quick-mode resolution
    happens, so the CLI, the runner and ``list --specs`` agree.
    """
    axes = {axis: list(values) for axis, values in spec["sweep"].items()}
    params = dict(spec["params"])
    if quick:
        for axis, values in spec["quick"]["sweep"].items():
            axes[axis] = list(values)
        params.update(spec["quick"]["params"])
    return axes, params
