"""Declarative experiment specs: one config API from cluster topology
to regression report.

The subsystem the ROADMAP's CBT-orchestration item asked for (Ceph's
cbt provisions a cluster, mounts stacks and runs workloads from one
config file; this is the simulated analogue):

* :mod:`repro.experiments.spec` — the :data:`ExperimentSpec` schema
  (plain dict, JSON/YAML-friendly), validation and defaulting;
* :mod:`repro.experiments.compiler` — lowers a spec onto
  ``World``/``StackFactory``/``FaultPlan``/``bench`` experiments;
* :mod:`repro.experiments.runner` — expands sweep axes into
  deterministic per-seed runs, checks SLO assertions, emits the unified
  run record;
* :mod:`repro.experiments.record` — the schema-versioned run record
  every artifact (CLI reports, chaos matrix, spec-matrix CI) shares,
  convertible to the ``BENCH_engine`` trend format;
* :mod:`repro.experiments.registry` — spec-file discovery under
  ``experiments/``; the CLI resolves every ``run``/``list`` name here.

See ``docs/experiments.md`` for the schema reference and a worked
example.
"""

from repro.experiments.record import (
    RECORD_SCHEMA,
    RecordError,
    make_record,
    rows_fingerprint,
    to_trend,
    validate_record,
)
from repro.experiments.spec import SPEC_SCHEMA, SpecError, validate_spec

__all__ = [
    "RECORD_SCHEMA",
    "RecordError",
    "SPEC_SCHEMA",
    "SpecError",
    "make_record",
    "rows_fingerprint",
    "to_trend",
    "validate_record",
    "validate_spec",
]
