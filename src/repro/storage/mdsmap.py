"""MdsMap: epoch-versioned metadata-rank assignment (the OsdMap analogue).

Where the OsdMap tells clients which OSDs hold an object, the MdsMap
tells them which MDS daemon serves a namespace operation: the directory
tree is hash-partitioned over ``num_ranks`` *ranks*, each rank is filled
by one daemon gid, and spare daemons wait in the standby pool tailing
the active ranks' journals (standby-replay). The Monitor publishes a new
immutable snapshot on every membership change — failover, rank split,
daemon rejoin — and bumps ``epoch``; daemons holding a newer epoch
reject ops stamped with an older one (EOLDEPOCH fencing for metadata),
which is what keeps a deposed active from serving after its standby took
over.

Routing is by *directory*: the rank that owns directory ``d`` serves
``readdir(d)`` and every entry mutation inside ``d`` (create, unlink,
rename-from, lookup of a child), so one directory's entries are always
journaled by a single rank. Inode-addressed ops (caps, size flushes by
ino) hash the ino instead. With one rank every op maps to rank 0 and the
hash never runs.
"""

import zlib

from repro.fs import pathutil

__all__ = ["MdsMap"]

#: ops routed by the directory argument itself (its entries' owner)
_DIR_OPS = frozenset(("readdir",))

#: ops routed by an inode number (first positional argument)
_INO_OPS = frozenset((
    "caps_conflicts", "caps_commit", "caps_release", "setattr_size_by_ino",
))


class MdsMap(object):
    """Immutable snapshot of the metadata-rank assignment."""

    __slots__ = ("epoch", "ranks", "standbys", "session_epoch")

    def __init__(self, epoch, ranks, standbys, session_epoch=1):
        self.epoch = epoch
        #: rank index -> daemon gid serving it
        self.ranks = tuple(ranks)
        #: spare daemon gids (standby-replay pool)
        self.standbys = tuple(standbys)
        #: bumps on every failover; clients reestablish sessions past it
        self.session_epoch = session_epoch

    @property
    def num_ranks(self):
        return len(self.ranks)

    def gid_of(self, rank):
        return self.ranks[rank]

    def rank_of_dir(self, dirpath):
        """The rank owning directory ``dirpath`` (and its entries)."""
        if len(self.ranks) == 1:
            return 0
        key = pathutil.normalize(dirpath).encode("utf-8")
        return zlib.crc32(key) % len(self.ranks)

    def rank_of_path(self, path):
        """The rank serving ops on the entry at ``path``."""
        return self.rank_of_dir(pathutil.parent_of(path))

    def rank_of_ino(self, ino):
        """The rank serving inode-addressed ops (caps, flushes) on ``ino``."""
        if len(self.ranks) == 1:
            return 0
        return ino % len(self.ranks)

    def rank_for(self, op_name, args):
        """Route one MDS op (by name + positional args) to its rank."""
        if len(self.ranks) == 1:
            return 0
        if op_name in _INO_OPS:
            return self.rank_of_ino(args[0])
        if op_name in _DIR_OPS:
            return self.rank_of_dir(args[0])
        # Path ops route by the entry's parent directory; rename routes by
        # the source path so the op lands where the dentry is journaled.
        return self.rank_of_path(args[0])

    def __repr__(self):
        return "<MdsMap epoch=%d ranks=%r standbys=%r>" % (
            self.epoch, self.ranks, self.standbys,
        )
