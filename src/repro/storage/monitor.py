"""Cluster monitor: OSD liveness, map epochs, degraded placement.

The Ceph MON analogue. It tracks which OSDs are up, bumps a map epoch on
every change, and lets the placement logic route around failed devices:

* an object's *acting set* is its CRUSH placement filtered to live OSDs
  (with replacements drawn by rehashing, like CRUSH retries);
* reads fall back to any acting replica holding the data (degraded
  reads);
* :meth:`recover` re-replicates under-replicated objects onto their new
  acting members, paying real network and device costs.

With :meth:`start_heartbeats` running, the monitor drives the full Ceph
failure lifecycle instead of reacting to direct ``mark_down`` calls::

    up --(missed probes / report quorum)--> suspect --> down
    down --(osd_out_interval elapses)-----> out   (backfill re-replicates)
    down --(probe answers)----------------> up    (flap damping may hold
                                                   a bouncy OSD back)

Every transition bumps the osdmap epoch and publishes an immutable
:class:`OsdMap` snapshot to subscribers; OSDs learn the epoch too and
reject data-path ops stamped with an older one (the EOLDEPOCH analogue),
forcing clients to refresh before retrying. None of this machinery runs
— or perturbs the event schedule — until something arms the lifecycle.

The paper leaves backend fault tolerance to future work (§9) — this
module makes the substrate whole enough to test that direction.
"""

from repro.common.errors import DataUnavailable
from repro.metrics import MetricSet

__all__ = ["Monitor", "OsdMap"]


class OsdMap(object):
    """An immutable published view of cluster membership at one epoch.

    Clients resolve placement against a snapshot and stamp data-path RPCs
    with its ``epoch``; OSDs holding a newer map reject the op, which is
    what forces a refresh. ``crush`` is a live reference (the map object
    mutates in place), so ``crush_version`` records the placement
    generation this snapshot was cut at.
    """

    __slots__ = ("epoch", "down", "out", "crush", "crush_version")

    def __init__(self, epoch, down, out, crush):
        self.epoch = epoch
        self.down = frozenset(down)
        self.out = frozenset(out)
        self.crush = crush
        self.crush_version = crush.map_version

    def is_up(self, osd_id):
        return osd_id not in self.down

    def acting_set(self, ino, index):
        """The live OSDs responsible for an object, primary first.

        On a pristine map this is the exact historical CRUSH retry walk
        (bounded at 64 rehash attempts) skipping down devices; after a
        mutation the straw2 preference order is filtered instead.
        """
        crush = self.crush
        if not crush._mutated:
            chosen = []
            attempt = 0
            while len(chosen) < crush.replicas and attempt < 64:
                osd_id = crush._hash(ino, index, attempt) % crush._slots
                attempt += 1
                if osd_id in chosen or osd_id in self.down:
                    continue
                chosen.append(osd_id)
        else:
            chosen = [
                osd_id for osd_id in crush._straw_order(ino, index)
                if osd_id not in self.down
            ][:crush.replicas]
        if not chosen:
            raise DataUnavailable("no OSD available for (%d,%d)" % (ino, index))
        return chosen

    def __repr__(self):
        return "<OsdMap e%d down=%s out=%s>" % (
            self.epoch, sorted(self.down), sorted(self.out)
        )


class Monitor(object):
    """Tracks OSD liveness and drives recovery."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.epoch = 1
        self._down = set()       # down OR out (out is a subset)
        self._out = set()
        self._suspect = set()
        self._failure_reports = {}  # osd_id -> [report times] in the window
        self._stale = {}  # osd_id -> keys rewritten while that OSD was dead
        self.metrics = MetricSet("monitor")
        #: True once heartbeats run; gates suspect/out/flap handling
        self.heartbeats_enabled = False
        #: True once any lifecycle feature armed; epoch pushes to OSDs and
        #: map snapshots only matter then
        self.lifecycle = False
        self._down_since = {}     # osd_id -> sim time of mark_down
        self._down_reason = {}    # osd_id -> "admin" | "heartbeat" | "reports"
        self._flap_times = {}     # osd_id -> [times of down->up transitions]
        self._probation = {}      # osd_id -> earliest rejoin time
        self._hb_misses = {}      # osd_id -> consecutive missed probes
        self._heartbeat_proc = None
        self._subscribers = []
        self._map = OsdMap(self.epoch, self._down, self._out,
                           self.cluster.crush)
        #: the current MdsMap snapshot, once metadata HA is armed
        self.mdsmap = None

    # -- map publication -------------------------------------------------

    def get_map(self):
        """The current immutable :class:`OsdMap` snapshot."""
        return self._map

    def subscribe(self, callback):
        """Call ``callback(osdmap)`` after every epoch bump (pure only:
        subscribers run inline inside the bump, never yield)."""
        self._subscribers.append(callback)

    def _bump_epoch(self, event, osd_id=None):
        self.epoch += 1
        self._map = OsdMap(self.epoch, self._down, self._out,
                           self.cluster.crush)
        trace = {"epoch": self.epoch}
        if osd_id is not None:
            trace["osd"] = osd_id
        self.cluster.sim.trace("mon", event, **trace)
        self.metrics.counter("epoch_bumps").add(1)
        observer = self.cluster.sim.observer
        if observer is not None:
            scope = observer.metrics("recovery")
            scope.counter("map_epoch_bumps").add(1)
            scope.gauge("map_epoch").set(self.epoch)
        if self.lifecycle:
            # OSDs learn the new epoch; ops stamped older get rejected.
            for osd in self.cluster.osds:
                osd.map_epoch = self.epoch
        for callback in self._subscribers:
            callback(self._map)

    def publish_mdsmap(self, mdsmap, event="mdsmap", rank=None):
        """Publish a new :class:`~repro.storage.mdsmap.MdsMap` snapshot.

        The metadata analogue of an osdmap epoch bump: the MdsService
        builds the immutable map (failover, rank split, rejoin) and the
        monitor records + announces it. Clients resolve MDS routing
        against :attr:`mdsmap` and refresh on retry boundaries, which is
        what makes a deposed active's EOLDEPOCH reject observable.
        """
        self.mdsmap = mdsmap
        trace = {"epoch": mdsmap.epoch}
        if rank is not None:
            trace["rank"] = rank
        self.cluster.sim.trace("mon", event, **trace)
        self.metrics.counter("mdsmap_epochs").add(1)

    def note_crush_change(self, event):
        """A CRUSH mutation (add/drain/reweight) is a map change too."""
        self.lifecycle = True
        self._bump_epoch(event)

    # -- liveness --------------------------------------------------------

    def is_up(self, osd_id):
        return osd_id not in self._down

    def is_out(self, osd_id):
        return osd_id in self._out

    def is_suspect(self, osd_id):
        return osd_id in self._suspect

    def up_osds(self):
        return [
            osd_id for osd_id in range(len(self.cluster.osds))
            if self.is_up(osd_id)
        ]

    def has_failures(self):
        """Any OSD currently down, out or under suspicion?"""
        return bool(self._down or self._suspect)

    def mark_down(self, osd_id, reason="admin"):
        """Declare an OSD failed; future placements route around it."""
        self._suspect.discard(osd_id)
        if osd_id not in self._down:
            self._down.add(osd_id)
            self._down_since[osd_id] = self.cluster.sim.now
            self._down_reason[osd_id] = reason
            self.metrics.counter("osd_failures").add(1)
            self._bump_epoch("osd_down", osd_id=osd_id)

    def mark_out(self, osd_id):
        """Down long enough: stop waiting, let backfill re-replicate."""
        if osd_id in self._down and osd_id not in self._out:
            self._out.add(osd_id)
            self.metrics.counter("osd_out").add(1)
            self._bump_epoch("osd_out", osd_id=osd_id)

    def mark_suspect(self, osd_id):
        """Blamed but unconfirmed; the next missed probe confirms down."""
        if osd_id not in self._down:
            self._suspect.add(osd_id)

    def mark_up(self, osd_id):
        """Bring an OSD back; its device contents decide what it holds.

        Without the lifecycle armed, copies of objects rewritten while
        the OSD was dead are dropped immediately (the historical eager
        analogue of backfill). Under the lifecycle the stale records are
        *retained* — the rejoined OSD is excluded from serving those
        objects until the backfill scheduler pushes fresh bytes and
        clears the record. With heartbeats running, a bouncy OSD is also
        held in probation (flap damping) instead of rejoining instantly.
        """
        self._failure_reports.pop(osd_id, None)
        self._suspect.discard(osd_id)
        self._hb_misses.pop(osd_id, None)
        if not self.lifecycle:
            stale = self._stale.pop(osd_id, ())
            for ino, index in stale:
                self.cluster.osds[osd_id].drop_object(ino, index)
            if stale:
                self.metrics.counter("stale_dropped").add(len(stale))
        if osd_id not in self._down:
            return
        if self.heartbeats_enabled and self._flapping(osd_id):
            # Flap damping: the rejoin waits out a probation instead of
            # thrashing the map with another down->up->down cycle.
            now = self.cluster.sim.now
            probation = now + self.cluster.costs.flap_probation
            if self._probation.get(osd_id, 0.0) < probation:
                self._probation[osd_id] = probation
                self.metrics.counter("flaps_damped").add(1)
                self.cluster.sim.trace("mon", "flap_damped", osd=osd_id,
                                       until=probation)
            return
        self._complete_up(osd_id)

    def _complete_up(self, osd_id):
        self._down.discard(osd_id)
        self._out.discard(osd_id)
        self._down_since.pop(osd_id, None)
        self._down_reason.pop(osd_id, None)
        self._probation.pop(osd_id, None)
        self._record_flap(osd_id)
        self._bump_epoch("osd_up", osd_id=osd_id)

    def _record_flap(self, osd_id):
        now = self.cluster.sim.now
        window = self.cluster.costs.flap_window
        times = [
            t for t in self._flap_times.get(osd_id, []) if now - t <= window
        ]
        times.append(now)
        self._flap_times[osd_id] = times

    def _flapping(self, osd_id):
        now = self.cluster.sim.now
        window = self.cluster.costs.flap_window
        times = [
            t for t in self._flap_times.get(osd_id, []) if now - t <= window
        ]
        return len(times) >= self.cluster.costs.flap_threshold

    def report_failure(self, osd_id):
        """Client op-timeout report; enough reports act on the OSD.

        Mirrors the Ceph failure-report path: reports against one OSD are
        counted over a sliding ``failure_report_window`` and only a
        quorum of ``osd_failure_reports`` within it acts — one transient
        blame expires harmlessly. With heartbeats running the quorum
        makes the OSD *suspect* (the next missed probe confirms down);
        without them it marks the OSD down directly, as before.
        """
        if osd_id in self._down:
            return
        now = self.cluster.sim.now
        window = self.cluster.costs.failure_report_window
        times = [
            t for t in self._failure_reports.get(osd_id, [])
            if now - t <= window
        ]
        times.append(now)
        self._failure_reports[osd_id] = times
        if len(times) < self.cluster.costs.osd_failure_reports:
            return
        self._failure_reports.pop(osd_id, None)
        if self.heartbeats_enabled:
            self.mark_suspect(osd_id)
        else:
            self.mark_down(osd_id, reason="reports")

    def record_stale(self, osd_id, key):
        """Remember that ``key`` was rewritten while ``osd_id`` was dead."""
        self._stale.setdefault(osd_id, set()).add(key)

    def is_stale(self, osd_id, key):
        """Does ``osd_id`` hold a known-stale copy of ``key``?"""
        return key in self._stale.get(osd_id, ())

    def clear_stale(self, osd_id, key):
        """Fresh bytes landed on ``osd_id``; the copy is current again."""
        stale = self._stale.get(osd_id)
        if stale is not None:
            stale.discard(key)
            if not stale:
                del self._stale[osd_id]

    # -- heartbeats ------------------------------------------------------

    def start_heartbeats(self, interval=None):
        """Spawn the heartbeat prober; arms the failure lifecycle."""
        if self._heartbeat_proc is not None:
            return self._heartbeat_proc
        self.heartbeats_enabled = True
        self.lifecycle = True
        self.cluster.arm_lifecycle()
        if interval is None:
            interval = self.cluster.costs.heartbeat_interval
        self._heartbeat_proc = self.cluster.sim.spawn(
            self._heartbeat_loop(interval), name="mon-heartbeat"
        )
        return self._heartbeat_proc

    def _heartbeat_loop(self, interval):
        sim = self.cluster.sim
        costs = self.cluster.costs
        while True:
            yield sim.timeout(interval)
            for osd in self.cluster.osds:
                osd_id = osd.osd_id
                if osd.crashed:
                    if osd_id in self._down:
                        continue
                    misses = self._hb_misses.get(osd_id, 0) + 1
                    self._hb_misses[osd_id] = misses
                    # A suspect OSD (blamed by reports) is confirmed on
                    # the very next miss; a quiet one gets full grace.
                    grace = 1 if osd_id in self._suspect else \
                        costs.heartbeat_grace
                    if misses >= grace:
                        self._hb_misses.pop(osd_id, None)
                        self.metrics.counter("heartbeat_failures").add(1)
                        self.mark_down(osd_id, reason="heartbeat")
                    continue
                # The probe answered.
                self._hb_misses.pop(osd_id, None)
                self._suspect.discard(osd_id)
                if osd_id in self._down:
                    reason = self._down_reason.get(osd_id)
                    probation = self._probation.get(osd_id)
                    if probation is not None:
                        if sim.now >= probation:
                            self._complete_up(osd_id)
                        continue
                    if reason in ("heartbeat", "reports"):
                        # The daemon answers again; auto-rejoin. Admin
                        # downs (tests, drains) stay down until mark_up.
                        self.mark_up(osd_id)
                    continue
            # down -> out promotion for OSDs that stayed silent
            for osd_id in list(self._down):
                if osd_id in self._out:
                    continue
                since = self._down_since.get(osd_id)
                if since is not None and \
                        sim.now - since >= costs.osd_out_interval:
                    self.mark_out(osd_id)
            # MDS rank liveness rides the same probe cadence. Pure
            # attribute read when HA is disarmed (mds_service is None),
            # so heartbeat-only runs keep their exact event schedule.
            service = self.cluster.mds_service
            if service is not None:
                service.check_heartbeats()

    # -- placement under failure ------------------------------------------------

    def acting_set(self, ino, index):
        """The live OSDs responsible for an object, primary first."""
        return self._map.acting_set(ino, index)

    def holders(self, ino, index):
        """Live OSDs that currently store a *current* copy of the object.

        Known-stale copies (rewritten while the holder was dead, not yet
        backfilled) are excluded — a rejoined OSD must not serve them.
        """
        return [
            osd_id for osd_id in self.up_osds()
            if (self.cluster.osds[osd_id].object_size(ino, index) > 0
                or (ino, index) in self.cluster.osds[osd_id]._objects)
            and not self.is_stale(osd_id, (ino, index))
        ]

    # -- recovery ----------------------------------------------------------------

    def under_replicated(self):
        """Objects whose acting set lacks a copy: [(ino, index, missing)]."""
        out = []
        seen = set()
        for osd in self.cluster.osds:
            for key in osd._objects:
                if key in seen:
                    continue
                seen.add(key)
                ino, index = key
                acting = self.acting_set(ino, index)
                holders = set(self.holders(ino, index))
                missing = [m for m in acting if m not in holders]
                if missing and holders:
                    out.append((ino, index, missing))
        return out

    def misplaced(self):
        """Live current copies sitting outside the acting set:
        [(ino, index, strays)]. Cleaned up by backfill trimming once the
        acting set holds the object."""
        out = []
        seen = set()
        for osd in self.cluster.osds:
            for key in osd._objects:
                if key in seen:
                    continue
                seen.add(key)
                ino, index = key
                acting = set(self.acting_set(ino, index))
                strays = [
                    osd_id for osd_id in self.holders(ino, index)
                    if osd_id not in acting
                ]
                if strays:
                    out.append((ino, index, strays))
        return out

    def _clean_holders(self, ino, index):
        """Live holders whose copy passes digest verification (no cost).

        With integrity unarmed no digests exist, so every holder reports
        clean and this degenerates to :meth:`holders`.
        """
        return [
            osd_id for osd_id in self.holders(ino, index)
            if self.cluster.osds[osd_id].replica_clean(ino, index)
        ]

    def _pick_source(self, ino, index):
        """The best replica to copy from: clean before dirty, acting
        members before stragglers. ``None`` when nothing is stored live."""
        clean = self._clean_holders(ino, index)
        pool = clean or self.holders(ino, index)
        if not pool:
            return None
        acting = set(self.acting_set(ino, index))
        for osd_id in pool:
            if osd_id in acting:
                return osd_id
        return pool[0]

    def _push_object(self, ino, index, source_id, target_id):
        """Copy one object onto ``target`` without resurrecting stale bytes.

        A client write can land mid-copy (recovery targets are acting
        members, so foreground writes race the backfill). The push
        snapshots the source, transfers, then re-checks the source's
        mutation version: if a write raced the copy the transfer redoes
        from fresh bytes — the pg-log ordering that keeps backfill from
        clobbering newer data. Returns bytes moved.
        """
        source = self.cluster.osds[source_id]
        target = self.cluster.osds[target_id]
        moved = 0
        for _ in range(8):
            obj = source._objects.get((ino, index))
            if obj is None:
                return moved
            version = source.object_version(ino, index)
            data = bytes(obj)
            if target.object_size(ino, index) > len(data):
                # Cut a longer stale copy first so the full-object write
                # below covers every surviving chunk — a rewrite that
                # fully covers a chunk clears its poison, a partial one
                # must not.
                target.apply_truncate(ino, index, len(data))
            yield from self.cluster.fabric.rpc(
                target.write(ino, index, 0, data),
                send_bytes=len(data), recv_bytes=0,
                edge="osd%d" % target.osd_id,
            )
            moved += len(data)
            if source.object_version(ino, index) != version:
                continue  # a write raced the copy: redo from fresh bytes
            self.clear_stale(target_id, (ino, index))
            return moved
        self.metrics.counter("push_races_abandoned").add(1)
        return moved

    def recover(self):
        """Re-replicate every under-replicated object; sim generator.

        Copies flow from a surviving holder (preferring verified-clean
        replicas) to each missing acting member over the fabric with full
        OSD write costs (journal + store). The eager, unthrottled path;
        :class:`~repro.storage.backfill.BackfillScheduler` is the
        budgeted lifecycle replacement.
        """
        moved = 0
        for ino, index, missing in self.under_replicated():
            source = self._pick_source(ino, index)
            if source is None:
                continue  # data loss: nothing to copy from
            for osd_id in missing:
                moved += yield from self._push_object(
                    ino, index, source, osd_id
                )
        self.cluster.sim.trace("mon", "recovered", bytes=moved)
        self.metrics.counter("recovered_bytes").add(moved)
        return moved

    def repair_object(self, ino, index, bad):
        """Overwrite replicas that failed verification from a clean copy.

        Used by read-repair and the scrub daemon; sim generator. Returns
        the number of replicas repaired — 0 when no verified-clean source
        exists (the caller quarantines the object instead).
        """
        bad = set(bad)
        clean = [
            osd_id for osd_id in self._clean_holders(ino, index)
            if osd_id not in bad
        ]
        if not clean:
            return 0
        acting = set(self.acting_set(ino, index))
        source = next(
            (osd_id for osd_id in clean if osd_id in acting), clean[0]
        )
        repaired = 0
        for osd_id in sorted(bad):
            osd = self.cluster.osds[osd_id]
            if osd.crashed or not self.is_up(osd_id):
                continue  # a dead replica heals through mark_up/recover
            yield from self._push_object(ino, index, source, osd_id)
            repaired += 1
        if repaired:
            self.metrics.counter("objects_repaired").add(repaired)
            self.cluster.sim.trace("mon", "repair", ino=ino, index=index,
                                   source=source, replicas=repaired)
            self.cluster.quarantined.discard((ino, index))
        return repaired
