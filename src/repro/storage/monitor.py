"""Cluster monitor: OSD liveness, map epochs, degraded placement.

The Ceph MON analogue. It tracks which OSDs are up, bumps a map epoch on
every change, and lets the placement logic route around failed devices:

* an object's *acting set* is its CRUSH placement filtered to live OSDs
  (with replacements drawn by rehashing, like CRUSH retries);
* reads fall back to any acting replica holding the data (degraded
  reads);
* :meth:`recover` re-replicates under-replicated objects onto their new
  acting members, paying real network and device costs.

The paper leaves backend fault tolerance to future work (§9) — this
module makes the substrate whole enough to test that direction.
"""

from repro.common.errors import DataUnavailable
from repro.metrics import MetricSet

__all__ = ["Monitor"]


class Monitor(object):
    """Tracks OSD liveness and drives recovery."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.epoch = 1
        self._down = set()
        self._failure_reports = {}  # osd_id -> count of client op timeouts
        self._stale = {}  # osd_id -> keys rewritten while that OSD was dead
        self.metrics = MetricSet("monitor")

    # -- liveness --------------------------------------------------------

    def is_up(self, osd_id):
        return osd_id not in self._down

    def up_osds(self):
        return [
            osd_id for osd_id in range(len(self.cluster.osds))
            if self.is_up(osd_id)
        ]

    def mark_down(self, osd_id):
        """Declare an OSD failed; future placements route around it."""
        if osd_id not in self._down:
            self._down.add(osd_id)
            self.epoch += 1
            self.cluster.sim.trace("mon", "osd_down", osd=osd_id,
                                   epoch=self.epoch)
            self.metrics.counter("osd_failures").add(1)

    def mark_up(self, osd_id):
        """Bring an OSD back; its device contents decide what it holds.

        Copies of objects that were rewritten while the OSD was dead are
        dropped first (the pg-log/backfill analogue), so a returning OSD
        never serves stale bytes; :meth:`recover` then re-replicates.
        """
        self._failure_reports.pop(osd_id, None)
        stale = self._stale.pop(osd_id, ())
        for ino, index in stale:
            self.cluster.osds[osd_id].drop_object(ino, index)
        if stale:
            self.metrics.counter("stale_dropped").add(len(stale))
        if osd_id in self._down:
            self._down.discard(osd_id)
            self.epoch += 1
            self.cluster.sim.trace("mon", "osd_up", osd=osd_id,
                                   epoch=self.epoch)

    def report_failure(self, osd_id):
        """Client op-timeout report; enough reports mark the OSD down.

        Mirrors the Ceph failure-report path: the monitor declares an OSD
        down only once ``osd_failure_reports`` independent op timeouts
        accumulated, so one lost message never reshapes the map.
        """
        if osd_id in self._down:
            return
        count = self._failure_reports.get(osd_id, 0) + 1
        self._failure_reports[osd_id] = count
        if count >= self.cluster.costs.osd_failure_reports:
            self._failure_reports.pop(osd_id, None)
            self.mark_down(osd_id)

    def record_stale(self, osd_id, key):
        """Remember that ``key`` was rewritten while ``osd_id`` was dead."""
        self._stale.setdefault(osd_id, set()).add(key)

    # -- placement under failure ------------------------------------------------

    def acting_set(self, ino, index):
        """The live OSDs responsible for an object, primary first."""
        crush = self.cluster.crush
        chosen = []
        attempt = 0
        # Same CRUSH retry walk, but skipping down devices.
        while len(chosen) < crush.replicas and attempt < 64:
            osd_id = crush._hash(ino, index, attempt) % crush.num_osds
            attempt += 1
            if osd_id in chosen or not self.is_up(osd_id):
                continue
            chosen.append(osd_id)
        if not chosen:
            raise DataUnavailable("no OSD available for (%d,%d)" % (ino, index))
        return chosen

    def holders(self, ino, index):
        """Live OSDs that currently store the object (degraded reads)."""
        return [
            osd_id for osd_id in self.up_osds()
            if self.cluster.osds[osd_id].object_size(ino, index) > 0
            or (ino, index) in self.cluster.osds[osd_id]._objects
        ]

    # -- recovery ----------------------------------------------------------------

    def under_replicated(self):
        """Objects whose acting set lacks a copy: [(ino, index, missing)]."""
        out = []
        seen = set()
        for osd in self.cluster.osds:
            for key in osd._objects:
                if key in seen:
                    continue
                seen.add(key)
                ino, index = key
                acting = self.acting_set(ino, index)
                holders = set(self.holders(ino, index))
                missing = [m for m in acting if m not in holders]
                if missing and holders:
                    out.append((ino, index, missing))
        return out

    def recover(self):
        """Re-replicate every under-replicated object; sim generator.

        Copies flow from a surviving holder to each missing acting member
        over the fabric with full OSD write costs (journal + store).
        """
        moved = 0
        for ino, index, missing in self.under_replicated():
            holders = self.holders(ino, index)
            if not holders:
                continue  # data loss: nothing to copy from
            source = self.cluster.osds[holders[0]]
            data = bytes(source._objects[(ino, index)])
            for osd_id in missing:
                target = self.cluster.osds[osd_id]
                yield from self.cluster.fabric.rpc(
                    target.write(ino, index, 0, data),
                    send_bytes=len(data), recv_bytes=0,
                )
                moved += len(data)
        self.cluster.sim.trace("mon", "recovered", bytes=moved)
        self.metrics.counter("recovered_bytes").add(moved)
        return moved
