"""Cluster monitor: OSD liveness, map epochs, degraded placement.

The Ceph MON analogue. It tracks which OSDs are up, bumps a map epoch on
every change, and lets the placement logic route around failed devices:

* an object's *acting set* is its CRUSH placement filtered to live OSDs
  (with replacements drawn by rehashing, like CRUSH retries);
* reads fall back to any acting replica holding the data (degraded
  reads);
* :meth:`recover` re-replicates under-replicated objects onto their new
  acting members, paying real network and device costs.

The paper leaves backend fault tolerance to future work (§9) — this
module makes the substrate whole enough to test that direction.
"""

from repro.common.errors import DataUnavailable
from repro.metrics import MetricSet

__all__ = ["Monitor"]


class Monitor(object):
    """Tracks OSD liveness and drives recovery."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.epoch = 1
        self._down = set()
        self._failure_reports = {}  # osd_id -> count of client op timeouts
        self._stale = {}  # osd_id -> keys rewritten while that OSD was dead
        self.metrics = MetricSet("monitor")

    # -- liveness --------------------------------------------------------

    def is_up(self, osd_id):
        return osd_id not in self._down

    def up_osds(self):
        return [
            osd_id for osd_id in range(len(self.cluster.osds))
            if self.is_up(osd_id)
        ]

    def mark_down(self, osd_id):
        """Declare an OSD failed; future placements route around it."""
        if osd_id not in self._down:
            self._down.add(osd_id)
            self.epoch += 1
            self.cluster.sim.trace("mon", "osd_down", osd=osd_id,
                                   epoch=self.epoch)
            self.metrics.counter("osd_failures").add(1)

    def mark_up(self, osd_id):
        """Bring an OSD back; its device contents decide what it holds.

        Copies of objects that were rewritten while the OSD was dead are
        dropped first (the pg-log/backfill analogue), so a returning OSD
        never serves stale bytes; :meth:`recover` then re-replicates.
        """
        self._failure_reports.pop(osd_id, None)
        stale = self._stale.pop(osd_id, ())
        for ino, index in stale:
            self.cluster.osds[osd_id].drop_object(ino, index)
        if stale:
            self.metrics.counter("stale_dropped").add(len(stale))
        if osd_id in self._down:
            self._down.discard(osd_id)
            self.epoch += 1
            self.cluster.sim.trace("mon", "osd_up", osd=osd_id,
                                   epoch=self.epoch)

    def report_failure(self, osd_id):
        """Client op-timeout report; enough reports mark the OSD down.

        Mirrors the Ceph failure-report path: the monitor declares an OSD
        down only once ``osd_failure_reports`` independent op timeouts
        accumulated, so one lost message never reshapes the map.
        """
        if osd_id in self._down:
            return
        count = self._failure_reports.get(osd_id, 0) + 1
        self._failure_reports[osd_id] = count
        if count >= self.cluster.costs.osd_failure_reports:
            self._failure_reports.pop(osd_id, None)
            self.mark_down(osd_id)

    def record_stale(self, osd_id, key):
        """Remember that ``key`` was rewritten while ``osd_id`` was dead."""
        self._stale.setdefault(osd_id, set()).add(key)

    # -- placement under failure ------------------------------------------------

    def acting_set(self, ino, index):
        """The live OSDs responsible for an object, primary first."""
        crush = self.cluster.crush
        chosen = []
        attempt = 0
        # Same CRUSH retry walk, but skipping down devices.
        while len(chosen) < crush.replicas and attempt < 64:
            osd_id = crush._hash(ino, index, attempt) % crush.num_osds
            attempt += 1
            if osd_id in chosen or not self.is_up(osd_id):
                continue
            chosen.append(osd_id)
        if not chosen:
            raise DataUnavailable("no OSD available for (%d,%d)" % (ino, index))
        return chosen

    def holders(self, ino, index):
        """Live OSDs that currently store the object (degraded reads)."""
        return [
            osd_id for osd_id in self.up_osds()
            if self.cluster.osds[osd_id].object_size(ino, index) > 0
            or (ino, index) in self.cluster.osds[osd_id]._objects
        ]

    # -- recovery ----------------------------------------------------------------

    def under_replicated(self):
        """Objects whose acting set lacks a copy: [(ino, index, missing)]."""
        out = []
        seen = set()
        for osd in self.cluster.osds:
            for key in osd._objects:
                if key in seen:
                    continue
                seen.add(key)
                ino, index = key
                acting = self.acting_set(ino, index)
                holders = set(self.holders(ino, index))
                missing = [m for m in acting if m not in holders]
                if missing and holders:
                    out.append((ino, index, missing))
        return out

    def _clean_holders(self, ino, index):
        """Live holders whose copy passes digest verification (no cost).

        With integrity unarmed no digests exist, so every holder reports
        clean and this degenerates to :meth:`holders`.
        """
        return [
            osd_id for osd_id in self.holders(ino, index)
            if self.cluster.osds[osd_id].replica_clean(ino, index)
        ]

    def _pick_source(self, ino, index):
        """The best replica to copy from: clean before dirty, acting
        members before stragglers. ``None`` when nothing is stored live."""
        clean = self._clean_holders(ino, index)
        pool = clean or self.holders(ino, index)
        if not pool:
            return None
        acting = set(self.acting_set(ino, index))
        for osd_id in pool:
            if osd_id in acting:
                return osd_id
        return pool[0]

    def _push_object(self, ino, index, source_id, target_id):
        """Copy one object onto ``target`` without resurrecting stale bytes.

        A client write can land mid-copy (recovery targets are acting
        members, so foreground writes race the backfill). The push
        snapshots the source, transfers, then re-checks the source's
        mutation version: if a write raced the copy the transfer redoes
        from fresh bytes — the pg-log ordering that keeps backfill from
        clobbering newer data. Returns bytes moved.
        """
        source = self.cluster.osds[source_id]
        target = self.cluster.osds[target_id]
        moved = 0
        for _ in range(8):
            obj = source._objects.get((ino, index))
            if obj is None:
                return moved
            version = source.object_version(ino, index)
            data = bytes(obj)
            if target.object_size(ino, index) > len(data):
                # Cut a longer stale copy first so the full-object write
                # below covers every surviving chunk — a rewrite that
                # fully covers a chunk clears its poison, a partial one
                # must not.
                target.apply_truncate(ino, index, len(data))
            yield from self.cluster.fabric.rpc(
                target.write(ino, index, 0, data),
                send_bytes=len(data), recv_bytes=0,
            )
            moved += len(data)
            if source.object_version(ino, index) != version:
                continue  # a write raced the copy: redo from fresh bytes
            return moved
        self.metrics.counter("push_races_abandoned").add(1)
        return moved

    def recover(self):
        """Re-replicate every under-replicated object; sim generator.

        Copies flow from a surviving holder (preferring verified-clean
        replicas) to each missing acting member over the fabric with full
        OSD write costs (journal + store).
        """
        moved = 0
        for ino, index, missing in self.under_replicated():
            source = self._pick_source(ino, index)
            if source is None:
                continue  # data loss: nothing to copy from
            for osd_id in missing:
                moved += yield from self._push_object(
                    ino, index, source, osd_id
                )
        self.cluster.sim.trace("mon", "recovered", bytes=moved)
        self.metrics.counter("recovered_bytes").add(moved)
        return moved

    def repair_object(self, ino, index, bad):
        """Overwrite replicas that failed verification from a clean copy.

        Used by read-repair and the scrub daemon; sim generator. Returns
        the number of replicas repaired — 0 when no verified-clean source
        exists (the caller quarantines the object instead).
        """
        bad = set(bad)
        clean = [
            osd_id for osd_id in self._clean_holders(ino, index)
            if osd_id not in bad
        ]
        if not clean:
            return 0
        acting = set(self.acting_set(ino, index))
        source = next(
            (osd_id for osd_id in clean if osd_id in acting), clean[0]
        )
        repaired = 0
        for osd_id in sorted(bad):
            osd = self.cluster.osds[osd_id]
            if osd.crashed or not self.is_up(osd_id):
                continue  # a dead replica heals through mark_up/recover
            yield from self._push_object(ino, index, source, osd_id)
            repaired += 1
        if repaired:
            self.metrics.counter("objects_repaired").add(repaired)
            self.cluster.sim.trace("mon", "repair", ino=ino, index=index,
                                   source=source, replicas=repaired)
            self.cluster.quarantined.discard((ino, index))
        return repaired
