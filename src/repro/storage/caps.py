"""File capabilities: MDS-mediated cache coherence (Ceph-style caps).

The default client consistency in this reproduction is close-to-open
(§3.4): a writer's data reaches other clients once flushed, and readers
revalidate attributes on open. Real CephFS is stronger — the MDS issues
per-file *capabilities* and revokes them on conflicting access, forcing
writers to flush and readers to invalidate before the conflicting open
completes. This module provides that protocol; clients opt in with
``consistency="caps"``.

Capability bits:

* ``CAP_READ_CACHE`` — the holder may serve reads from its cache;
* ``CAP_WRITE_BUFFER`` — the holder may buffer dirty writes.

Grant rules (simplified from Ceph's Fc/Fb caps):

* any number of concurrent ``CAP_READ_CACHE`` holders;
* a ``CAP_WRITE_BUFFER`` grant revokes every other holder's caps
  (writers flush, readers invalidate);
* a ``CAP_READ_CACHE`` grant revokes other holders' write caps.
"""

__all__ = ["CAP_READ_CACHE", "CAP_WRITE_BUFFER", "CapsTable"]

CAP_READ_CACHE = 1
CAP_WRITE_BUFFER = 2


class CapsTable(object):
    """MDS-side bookkeeping of which client holds which caps per inode."""

    def __init__(self):
        self._caps = {}  # ino -> {client_id: caps bitmask}

    def holders(self, ino):
        return dict(self._caps.get(ino, {}))

    def conflicts(self, ino, client_id, want):
        """Revocations required before ``client_id`` can hold ``want``.

        Returns ``[(holder_id, caps_to_drop)]``.
        """
        out = []
        for holder, held in self._caps.get(ino, {}).items():
            if holder == client_id:
                continue
            drop = 0
            if want & CAP_WRITE_BUFFER:
                drop = held  # exclusive writer: everyone else drops all
            elif want & CAP_READ_CACHE and held & CAP_WRITE_BUFFER:
                drop = CAP_WRITE_BUFFER
            if drop:
                out.append((holder, drop))
        return out

    def grant(self, ino, client_id, caps):
        self._caps.setdefault(ino, {})
        self._caps[ino][client_id] = self._caps[ino].get(client_id, 0) | caps

    def revoke(self, ino, client_id, caps):
        holders = self._caps.get(ino)
        if not holders or client_id not in holders:
            return
        holders[client_id] &= ~caps
        if holders[client_id] == 0:
            del holders[client_id]
        if not holders:
            self._caps.pop(ino, None)

    def drop_client(self, client_id):
        """Forget every cap of a departed client."""
        for ino in list(self._caps):
            self._caps[ino].pop(client_id, None)
            if not self._caps[ino]:
                del self._caps[ino]

    def drop_ino(self, ino):
        self._caps.pop(ino, None)

    def held(self, ino, client_id):
        return self._caps.get(ino, {}).get(client_id, 0)

    def export_inos(self, predicate):
        """Remove and return the cap records of inos matching ``predicate``.

        Used when metadata ranks split and cap state must re-home to the
        rank that owns the ino under the new map: the old owner exports,
        the new owner :meth:`absorb`\\ s.
        """
        moved = {}
        for ino in [i for i in self._caps if predicate(i)]:
            moved[ino] = self._caps.pop(ino)
        return moved

    def absorb(self, records):
        """Merge cap records exported from another table."""
        for ino, holders in records.items():
            mine = self._caps.setdefault(ino, {})
            for client_id, caps in holders.items():
                mine[client_id] = mine.get(client_id, 0) | caps
