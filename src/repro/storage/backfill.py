"""Throttled backfill: budgeted recovery traffic under client I/O.

The lifecycle replacement for the monitor's eager ``recover()``. A
:class:`BackfillScheduler` process wakes every ``backfill_interval``
seconds and drains the under-replicated / misplaced set, but each target
OSD only accepts ``backfill_bytes_per_osd`` bytes and
``backfill_ops_per_osd`` pushes per cycle — recovery traffic shares the
OSD op queue (and therefore the per-OSD inflight/qdepth profiles) with
foreground client I/O instead of starving it, which is exactly the
recovery-vs-tenant interference the observer's dispatch profiles exist
to show.

Two refinements over the eager path:

* **Deferral for down-not-out OSDs.** An object whose only missing
  member is merely *down* (the daemon usually comes back) is deferred
  until the monitor promotes the OSD to *out* — re-replicating early
  would waste budget moving bytes the rejoining OSD already holds.
* **Trimming.** After the acting set fully holds an object, stray
  copies (on drained devices or left behind by remapping) and stale
  records are dropped, converging the cluster to exactly
  ``replicas`` current copies per object.
"""

from repro.metrics import MetricSet
from repro.sim import Interrupt

__all__ = ["BackfillScheduler"]


class BackfillScheduler(object):
    """Budgeted background re-replication sharing the OSD queues."""

    def __init__(self, cluster, interval=None, bytes_per_osd=None,
                 ops_per_osd=None):
        costs = cluster.costs
        self.cluster = cluster
        self.interval = (
            interval if interval is not None else costs.backfill_interval
        )
        self.bytes_per_osd = (
            bytes_per_osd if bytes_per_osd is not None
            else costs.backfill_bytes_per_osd
        )
        self.ops_per_osd = (
            ops_per_osd if ops_per_osd is not None
            else costs.backfill_ops_per_osd
        )
        self.metrics = MetricSet("backfill")
        self._proc = None

    # -- lifecycle -------------------------------------------------------

    @property
    def running(self):
        return self._proc is not None and self._proc.is_alive

    def start(self):
        """Spawn the scheduler loop (idempotent)."""
        if self.running:
            return self._proc
        self._proc = self.cluster.sim.spawn(self._loop(), name="backfill")
        return self._proc

    def stop(self):
        if self.running:
            self._proc.interrupt("backfill stopped")
        self._proc = None

    def _loop(self):
        sim = self.cluster.sim
        try:
            while True:
                yield sim.timeout(self.interval)
                yield from self.cycle()
        except Interrupt:
            return

    # -- work discovery --------------------------------------------------

    def _deferred(self, key):
        """Hold off while a down-not-out OSD still holds a current copy.

        The daemon usually returns before ``osd_out_interval``; pushing
        replicas early wastes budget. Never defers when heartbeats are
        off — nothing would ever promote down to out.
        """
        monitor = self.cluster.monitor
        if not monitor.heartbeats_enabled:
            return False
        for osd_id in monitor._down:
            if osd_id in monitor._out:
                continue
            osd = self.cluster.osds[osd_id]
            if key in osd._objects and not monitor.is_stale(osd_id, key):
                return True
        return False

    def _work(self):
        """Under-replicated objects due now: [(ino, index, missing)]."""
        return [
            (ino, index, missing)
            for ino, index, missing in self.cluster.monitor.under_replicated()
            if not self._deferred((ino, index))
        ]

    def _strays(self):
        """Live copies to trim: [(ino, index, osd_id)] where the acting
        set already fully holds the object and ``osd_id`` is not acting —
        a stale leftover or a copy orphaned by remapping/drain."""
        monitor = self.cluster.monitor
        out = []
        seen = set()
        for osd in self.cluster.osds:
            for key in list(osd._objects):
                if key in seen:
                    continue
                seen.add(key)
                ino, index = key
                acting = monitor.acting_set(ino, index)
                holders = set(monitor.holders(ino, index))
                if not all(m in holders for m in acting):
                    continue  # still degraded: keep every copy
                for candidate in self.cluster.osds:
                    osd_id = candidate.osd_id
                    if osd_id in acting or key not in candidate._objects:
                        continue
                    if candidate.crashed or not monitor.is_up(osd_id):
                        continue  # unreachable; revisit when it returns
                    out.append((ino, index, osd_id))
        return out

    def idle(self):
        """Nothing left to push or trim (deferred work counts as busy)."""
        return not self.cluster.monitor.under_replicated() \
            and not self._strays()

    # -- one cycle -------------------------------------------------------

    def cycle(self):
        """One budgeted pass; sim generator returning bytes moved."""
        monitor = self.cluster.monitor
        observer = self.cluster.sim.observer
        scope = observer.metrics("recovery") if observer is not None else None
        budget_bytes = {}
        budget_ops = {}
        moved = 0
        pushes = 0
        deferrals = 0
        for ino, index, missing in self._work():
            source = monitor._pick_source(ino, index)
            if source is None:
                continue  # data loss: nothing to copy from
            for osd_id in missing:
                target = self.cluster.osds[osd_id]
                if target.crashed:
                    continue
                spent = budget_bytes.get(osd_id, 0)
                ops = budget_ops.get(osd_id, 0)
                size = max(target.object_size(ino, index),
                           self.cluster.osds[source].object_size(ino, index))
                if ops >= self.ops_per_osd or (
                        spent and spent + size > self.bytes_per_osd):
                    deferrals += 1
                    continue  # over budget: next cycle
                pushed = yield from monitor._push_object(
                    ino, index, source, osd_id
                )
                moved += pushed
                pushes += 1
                budget_bytes[osd_id] = spent + pushed
                budget_ops[osd_id] = ops + 1
        trimmed = self._trim()
        self.metrics.counter("cycles").add(1)
        if moved:
            self.metrics.counter("bytes_moved").add(moved)
        if pushes:
            self.metrics.counter("objects_pushed").add(pushes)
        if trimmed:
            self.metrics.counter("objects_trimmed").add(trimmed)
        if deferrals:
            self.metrics.counter("budget_deferrals").add(deferrals)
        if scope is not None:
            if moved:
                scope.counter("backfill_bytes").add(moved)
            if pushes:
                scope.counter("backfill_pushes").add(pushes)
            if trimmed:
                scope.counter("backfill_trims").add(trimmed)
            if deferrals:
                scope.counter("budget_deferrals").add(deferrals)
            scope.gauge("degraded_objects").set(
                len(monitor.under_replicated())
            )
            scope.gauge("misplaced_objects").set(len(monitor.misplaced()))
        if (moved or trimmed) and self.idle():
            # Converged: remapped placements are fully materialised, so
            # the fast read path may trust CRUSH again.
            self.cluster.note_backfill_clean()
        return moved

    def _trim(self):
        """Drop stray copies once the acting set fully holds the object."""
        monitor = self.cluster.monitor
        trimmed = 0
        for ino, index, osd_id in self._strays():
            self.cluster.osds[osd_id].drop_object(ino, index)
            monitor.clear_stale(osd_id, (ino, index))
            trimmed += 1
        return trimmed

    def drain(self, max_cycles=200):
        """Run cycles until idle or the cap; sim generator -> idle()."""
        sim = self.cluster.sim
        for _ in range(max_cycles):
            if self.idle():
                return True
            yield from self.cycle()
            yield sim.timeout(self.interval)
        return self.idle()
