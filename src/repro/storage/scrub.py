"""Background scrub: latent-corruption detection and repair.

The Ceph scrub analogue. A :class:`ScrubDaemon` walks the stored object
set on the sim clock in bounded batches: *light* cycles compare object
size and digest fingerprints across replicas at metadata cost only, and
every ``deep_scrub_every``-th cycle re-reads stored bytes and checks them
against their chunk digests (``costs.verify_cost``). A replica that fails
verification is repaired from a verified-clean copy through the monitor's
recovery machinery (:meth:`Monitor.repair_object`); an object with no
clean copy left is quarantined — reads raise ``DataCorrupt`` instead of
returning garbage — until a clean source reappears or a fresh write
replaces the data.

Starting the daemon arms cluster integrity (digest recording + verified
reads). A world that never starts it and never injects corruption keeps
the exact pre-integrity event schedule.
"""

from repro.common.errors import RETRYABLE, DataUnavailable
from repro.metrics import MetricSet

__all__ = ["ScrubDaemon"]


class ScrubDaemon(object):
    """Periodic light/deep scrub over one cluster's object set."""

    def __init__(self, cluster, interval=None, deep_every=None, batch=None,
                 repair=None):
        costs = cluster.costs
        self.cluster = cluster
        self.sim = cluster.sim
        self.interval = interval if interval is not None else costs.scrub_interval
        self.deep_every = (
            deep_every if deep_every is not None else costs.deep_scrub_every
        )
        self.batch = batch if batch is not None else costs.scrub_batch
        self.repair = repair if repair is not None else costs.scrub_repair
        self.metrics = MetricSet("scrub")
        self.running = False
        self._cursor = 0
        self._cycle = 0

    # -- lifecycle -------------------------------------------------------

    def start(self):
        """Arm integrity and start the periodic scrub loop."""
        if self.running:
            return self
        self.cluster.enable_integrity()
        self.running = True
        self.sim.spawn(self._loop(), name="scrub-daemon")
        self.sim.trace("scrub", "start", interval=self.interval,
                       deep_every=self.deep_every)
        return self

    def stop(self):
        """Stop scheduling new cycles (an in-flight cycle completes)."""
        self.running = False

    def _loop(self):
        while self.running:
            yield self.sim.timeout(self.interval)
            if not self.running:
                return
            self._cycle += 1
            deep = self.deep_every > 0 and self._cycle % self.deep_every == 0
            try:
                yield from self.scrub_cycle(deep=deep)
            except RETRYABLE:
                self.metrics.counter("cycles_aborted").add(1)

    # -- scrubbing -------------------------------------------------------

    def _universe(self):
        """Sorted union of object keys stored on live, running OSDs."""
        keys = set()
        for osd in self.cluster.osds:
            if osd.crashed or not self.cluster.monitor.is_up(osd.osd_id):
                continue
            keys.update(osd._objects)
        return sorted(keys)

    def _holders(self, ino, index):
        """Live, non-crashed OSDs storing the object."""
        return [
            osd_id for osd_id in self.cluster.monitor.holders(ino, index)
            if not self.cluster.osds[osd_id].crashed
        ]

    def scrub_cycle(self, deep=False):
        """One bounded scrub round; sim generator, returns errors found.

        Walks ``scrub_batch`` objects from a persistent cursor so
        successive cycles cover the whole store round-robin.
        """
        obs = self.sim.observer
        span = None
        if obs is not None:
            span = obs.span(None, "scrub.deep" if deep else "scrub.light",
                            "scrub", cycle=self._cycle)
        errors = 0
        scanned = 0
        try:
            keys = self._universe()
            if keys:
                start = self._cursor % len(keys)
                batch = [
                    keys[(start + i) % len(keys)]
                    for i in range(min(self.batch, len(keys)))
                ]
                self._cursor = (start + len(batch)) % len(keys)
                for key in batch:
                    try:
                        errors += yield from self._scrub_object(key, deep)
                    except RETRYABLE:
                        self.metrics.counter("objects_deferred").add(1)
                    scanned += 1
        finally:
            if span is not None:
                span.end()
        self.metrics.counter("cycles").add(1)
        if deep:
            self.metrics.counter("deep_cycles").add(1)
        self.metrics.counter("objects_scrubbed").add(scanned)
        if obs is not None:
            obs.metrics("scrub").counter("objects").add(scanned)
            if errors:
                obs.metrics("scrub").counter("errors_found").add(errors)
        return errors

    def sweep(self, deep=True):
        """Scrub every stored object once (no batch bound); sim generator.

        Returns the number of corrupt replicas found *or left unverified*
        (a deferred object counts: the sweep cannot vouch for it).
        """
        errors = 0
        for key in self._universe():
            try:
                errors += yield from self._scrub_object(key, deep)
            except RETRYABLE:
                self.metrics.counter("objects_deferred").add(1)
                errors += 1
        return errors

    def drain(self, max_passes=6):
        """Deep-scrub to convergence: sweep until a pass finds nothing.

        Sim generator; returns True when a clean pass was reached (the
        chaos harness's "scrub converged" condition).
        """
        for _ in range(max_passes):
            if (yield from self.sweep(deep=True)) == 0:
                return True
        return False

    def _pending_backfill(self, key):
        """Skip objects the backfill scheduler is still converging.

        While an object is under-replicated its acting set is about to
        receive a push; scrubbing (and especially reconciling) it now
        would duplicate backfill's work or fight its version rechecks.
        The next cycle revisits it once backfill has settled it.
        """
        backfill = self.cluster.backfill
        if backfill is None or not backfill.running:
            return False
        ino, index = key
        monitor = self.cluster.monitor
        try:
            acting = monitor.acting_set(ino, index)
        except DataUnavailable:
            return True
        holders = set(monitor.holders(ino, index))
        return not all(member in holders for member in acting)

    def _scrub_object(self, key, deep):
        """Scrub one object across its replicas; returns bad replicas."""
        ino, index = key
        cluster = self.cluster
        if self._pending_backfill(key):
            self.metrics.counter("objects_deferred").add(1)
            return 0
        holders = self._holders(ino, index)
        if not holders:
            return 0
        if not deep:
            probes = []
            for osd_id in holders:
                probes.append((
                    yield from cluster.osds[osd_id].scrub_meta(ino, index)
                ))
            if len(set(probes)) <= 1:
                return 0
            # Replicas disagree on size or digests: escalate this object
            # to a deep check to find which copies are bad.
            self.metrics.counter("meta_mismatches").add(1)
        bad = []
        clean = []
        for osd_id in holders:
            ok = yield from cluster.osds[osd_id].verify_range(ino, index)
            (clean if ok else bad).append(osd_id)
        if not bad:
            if len(clean) > 1:
                yield from self._reconcile(ino, index, clean)
            cluster.quarantined.discard(key)
            return 0
        self.metrics.counter("errors_found").add(len(bad))
        cluster.metrics.counter("scrub_errors").add(len(bad))
        self.sim.trace("scrub", "corrupt", ino=ino, index=index,
                       osds=tuple(bad))
        if not clean:
            cluster._quarantine(ino, index)
            return len(bad)
        if self.repair:
            repaired = yield from cluster.monitor.repair_object(
                ino, index, bad
            )
            self.metrics.counter("repaired").add(repaired)
            obs = self.sim.observer
            if obs is not None and repaired:
                obs.metrics("scrub").counter("repaired").add(repaired)
        return len(bad)

    def _reconcile(self, ino, index, clean):
        """Self-consistent but diverged replicas: the acting copy wins.

        Every copy passes its own digests, yet replicas may hold different
        acknowledged states (a replica missed a write while unmarked-dead
        and was never recorded stale). The acting primary's content is
        authoritative; stragglers are rewritten from it.
        """
        cluster = self.cluster
        acting = set(cluster.monitor.acting_set(ino, index))
        source = next(
            (osd_id for osd_id in clean if osd_id in acting), clean[0]
        )
        want = bytes(
            cluster.osds[source]._objects.get((ino, index), b"")
        )
        stale = [
            osd_id for osd_id in clean
            if osd_id != source
            and bytes(cluster.osds[osd_id]._objects.get((ino, index), b""))
            != want
        ]
        for osd_id in stale:
            yield from cluster.monitor._push_object(
                ino, index, source, osd_id
            )
        if stale:
            self.metrics.counter("reconciled").add(len(stale))
            self.sim.trace("scrub", "reconcile", ino=ino, index=index,
                           source=source, replicas=len(stale))
