"""Ceph-like storage backend: CRUSH placement, OSDs, MDS, cluster."""

from repro.storage.backfill import BackfillScheduler
from repro.storage.cluster import CephCluster
from repro.storage.crush import CrushMap
from repro.storage.mds import InodeInfo, Mds, MdsJournal, MdsService
from repro.storage.mdsmap import MdsMap
from repro.storage.monitor import Monitor, OsdMap
from repro.storage.osd import Osd
from repro.storage.scrub import ScrubDaemon

__all__ = [
    "BackfillScheduler",
    "CephCluster",
    "CrushMap",
    "InodeInfo",
    "Mds",
    "MdsJournal",
    "MdsMap",
    "MdsService",
    "Monitor",
    "Osd",
    "OsdMap",
    "ScrubDaemon",
]
