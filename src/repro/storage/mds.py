"""Metadata service: journaled MDS ranks with standby-replay failover.

The single-MDS shape of the testbed is preserved exactly: a disarmed
:class:`Mds` is one daemon serving the whole namespace with the same op
costs and the same event schedule as before (no journal, no fencing, no
op-id bookkeeping — those branches never yield when HA is off).

Arming metadata HA (``cluster.enable_mds_ha``) wraps a pool of daemons
in an :class:`MdsService`:

* the namespace is hash-partitioned over *ranks* by an epoch-versioned
  :class:`~repro.storage.mdsmap.MdsMap`, published through the Monitor;
* every namespace mutation is **journaled before it is applied or
  acked**: the record goes out as object bytes through the ordinary OSD
  write path (so replication, bitrot, scrub and read-repair cover
  metadata for free), and only then does the daemon touch the shared
  store — an MDS SIGKILL therefore honestly loses exactly the in-flight
  ops that never reached the journal;
* mutations carry ``(client_id, op_id)`` stamps which land in the
  journal record; a per-rank dedup table — rebuilt on replay — answers
  client resends with the recorded result, making rename/create/unlink
  exactly-once across a failover;
* standbys tail the active ranks' journals (*standby-replay*), so a
  heartbeat-detected failure promotes one with only the journal lag
  left to replay; the deposed active is fenced by mdsmap-epoch
  rejection (:class:`~repro.common.errors.OldEpoch`), the EOLDEPOCH
  analogue the OSDs already implement.

A per-inode version counter lets clients validate cached attributes
cheaply (the revalidate-on-open consistency the clients implement).
"""

import json

from repro.common.errors import (
    FileExists,
    FileNotFound,
    FsError,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    OldEpoch,
    OpTimeout,
    ServiceRestarting,
)
from repro.fs import pathutil
from repro.fs.memtree import MemTree
from repro.metrics import MetricSet
from repro.sim.sync import Semaphore
from repro.storage.caps import CapsTable
from repro.storage.mdsmap import MdsMap

__all__ = ["InodeInfo", "Mds", "MdsJournal", "MdsService", "MdsStore"]

#: object-id base of the per-rank journals: far above any MemTree ino,
#: so journal objects never collide with file data on the OSDs.
JOURNAL_INO_BASE = 1 << 40

#: dedup-table miss sentinel (None is a legitimate recorded result)
_MISS = object()


class InodeInfo(object):
    """Attribute snapshot shipped to clients."""

    __slots__ = ("ino", "is_dir", "size", "mtime", "nlink", "version")

    def __init__(self, ino, is_dir, size, mtime, nlink, version):
        self.ino = ino
        self.is_dir = is_dir
        self.size = size
        self.mtime = mtime
        self.nlink = nlink
        self.version = version

    def __repr__(self):
        return "<InodeInfo ino=%d size=%d v%d>" % (self.ino, self.size, self.version)


class MdsStore(object):
    """Shared namespace state: the metadata-pool contents.

    Conceptually this is what lives *in RADOS* — the tree and the
    per-inode version counters — as opposed to per-daemon session state
    (caps, dedup tables) which dies with a SIGKILL. The journal-before-
    apply discipline guarantees the store only ever holds journaled
    mutations, so sharing it between rank daemons is exactly as durable
    as the journal itself. ``applied`` records which journal seqs have
    reached the store, making replay idempotent.
    """

    def __init__(self):
        self.tree = MemTree()
        self.versions = {}  # ino -> version counter
        self.applied = {}   # rank -> set of applied journal seqs


class MdsJournal(object):
    """One rank's append-only metadata journal, stored as OSD objects.

    Records are newline-delimited JSON written through
    ``cluster.write_extent`` under a reserved object id — the same
    replicated, digest-checked, scrubbed path file data takes. Appends
    reserve their offset before yielding, so concurrent ops land at
    disjoint offsets; a SIGKILL mid-append leaves a zero hole and the
    reader treats everything behind the first unparsable line as torn.
    """

    def __init__(self, cluster, rank):
        self.cluster = cluster
        self.rank = rank
        self.ino = JOURNAL_INO_BASE + rank
        self.length = 0    # durable-reserved byte length
        self.next_seq = 1
        self.entries = 0   # completed appends

    def append(self, record):
        """Append one record (sim generator; pays the OSD write)."""
        payload = (json.dumps(record, sort_keys=True,
                              separators=(",", ":")) + "\n").encode("utf-8")
        offset = self.length
        self.length += len(payload)
        yield from self.cluster.write_extent(self.ino, offset, payload)
        self.entries += 1

    def read_from(self, offset):
        """Read + parse records from ``offset`` (sim generator).

        Returns ``(records, consumed_bytes)``; parsing stops at the
        first torn/unwritten line so a replay never trusts a hole.
        """
        size = self.length - offset
        if size <= 0:
            return [], 0
        data = yield from self.cluster.read_extent(self.ino, offset, size)
        records = []
        consumed = 0
        for line in bytes(data).splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break
            try:
                records.append(json.loads(line))
            except ValueError:
                break
            consumed += len(line)
        return records, consumed


class Mds(object):
    """One metadata daemon: the single-MDS shape, HA-capable.

    Disarmed (``journal is None``, no :class:`MdsService`) this is
    byte-identical to the historical single MDS. Attached to a service
    it serves one rank with journal-before-apply semantics, op-id
    dedup, and mdsmap-epoch fencing.
    """

    def __init__(self, sim, costs, store=None, gid=0):
        self.sim = sim
        self.costs = costs
        self.store = store if store is not None else MdsStore()
        self.tree = self.store.tree
        self._versions = self.store.versions
        self._slots = Semaphore(sim, costs.mds_concurrency, name="mds")
        self.caps = CapsTable()
        self.available = True
        #: bumps on every restart/failover; clients compare it against
        #: the epoch they opened their session under and reestablish
        #: (reacquiring caps) when it moved — the CephFS
        #: session-reconnect protocol.
        self.session_epoch = 1
        self.metrics = MetricSet("mds")
        # --- HA state (inert until a journal/service is attached) -----
        self.gid = gid
        self.rank = 0
        #: active | replay | standby | stopped
        self.state = "active"
        self.crashed = False
        #: the daemon's view of the mdsmap epoch (fencing)
        self.map_epoch = 1
        self.journal = None
        self.service = None
        self.dedup = {}      # (client_id, op_id) -> recorded result
        self.sessions = {}   # client_id -> highest op_id seen
        self._tail_pos = {}  # rank -> journal bytes absorbed while standby
        self._pending_apply = {}  # seq -> record tailed before the active applied it

    # -- fault injection -------------------------------------------------

    def set_available(self, flag):
        """Begin (False) or end (True) an unavailability window."""
        self.available = bool(flag)
        self.sim.trace("mds", "up" if flag else "down")
        if not flag:
            self.metrics.counter("outages").add(1)

    def restart(self):
        """Oracle recovery: namespace survives, client sessions do not.

        This is the legacy (pre-journal) heal: the in-memory tree is
        resurrected wholesale — including mutations that were never
        journaled or acked. Fault plans use it only under
        ``oracle_meta=True``; the honest path is :meth:`recover_local`,
        which rebuilds through journal replay.
        """
        self.caps = CapsTable()
        self.dedup = {}
        self.sessions = {}
        self.crashed = False
        self.session_epoch += 1
        self.available = True
        self.sim.trace("mds", "restart", session_epoch=self.session_epoch)
        self.metrics.counter("restarts").add(1)

    def crash(self):
        """SIGKILL: in-flight un-journaled mutations are lost, and the
        session/caps/dedup tables die with the process. The shared store
        is untouched — it only ever held journaled state."""
        self.crashed = True
        self.sim.trace("mds", "crash", gid=self.gid, rank=self.rank)
        self.metrics.counter("crashes").add(1)

    def recover_local(self):
        """Journal-backed in-place recovery (sim generator).

        The honest replacement for :meth:`restart` when journaling is
        armed: sessions and caps are lost (clients reestablish), the
        op-id dedup table is rebuilt from the journal, and records that
        were journaled but never applied land now.
        """
        self.state = "replay"
        self.crashed = False
        self.available = True
        self.caps = CapsTable()
        self.dedup = {}
        self.sessions = {}
        self.session_epoch += 1
        self.sim.trace("mds", "replay_recover", gid=self.gid,
                       session_epoch=self.session_epoch)
        yield from self.replay_journal(self.journal, self.rank, from_bytes=0)
        self.state = "active"
        self.metrics.counter("restarts").add(1)

    # -- bookkeeping -------------------------------------------------------

    def _bump(self, node):
        self._versions[node.ino] = self._versions.get(node.ino, 0) + 1

    def _info(self, node):
        return InodeInfo(
            node.ino,
            node.is_dir,
            node.size,
            node.mtime,
            node.nlink,
            self._versions.get(node.ino, 0),
        )

    def _obs_scope(self):
        obs = self.sim.observer
        return None if obs is None else obs.metrics("mds")

    def _obs_count(self, name):
        scope = self._obs_scope()
        if scope is not None:
            scope.counter("r%s.%s" % (self.rank, name)).add(1)

    def _op(self, map_epoch=None):
        """Pay the MDS service cost under the concurrency bound."""
        if self.crashed or not self.available:
            # Dead MDS: the request goes unanswered until the client-side
            # op timeout declares it lost.
            yield self.sim.timeout(self.costs.op_timeout)
            raise OpTimeout("mds unavailable")
        if map_epoch is not None:
            self._fence(map_epoch)
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.mds_op)
        finally:
            self._slots.release()
        self.metrics.counter("ops").add(1)

    def _fence(self, map_epoch):
        """Reject ops this daemon must not serve under the current map."""
        if self.state in ("standby", "stopped") or map_epoch < self.map_epoch:
            self.metrics.counter("fenced_ops").add(1)
            self._obs_count("fenced_ops")
            raise OldEpoch(
                "mds gid %d fenced (op epoch %s < map epoch %d)"
                % (self.gid, map_epoch, self.map_epoch)
            )
        if self.state == "replay":
            raise ServiceRestarting("mds rank %d replaying journal" % self.rank)

    def _session_hit(self, client_id, op_id):
        """A resent mutation's recorded result, or the miss sentinel."""
        if client_id is None or op_id is None or self.journal is None:
            return _MISS
        hit = self.dedup.get((client_id, op_id), _MISS)
        if hit is not _MISS:
            self.metrics.counter("dedup_hits").add(1)
            self._obs_count("dedup_hits")
        return hit

    def _journal_mutation(self, op, fields, client_id, op_id):
        """Append one journal record before the mutation applies.

        Sim generator; yields nothing (and returns None) when the
        journal is disarmed. On the armed path the caller must have
        validated the op already — a doomed mutation must never reach
        the journal — and must apply + :meth:`_commit` atomically (no
        yields) after this returns.
        """
        if self.journal is None:
            return None
        record = {"op": op, "client": client_id, "op_id": op_id,
                  "seq": self.journal.next_seq}
        self.journal.next_seq += 1
        record.update(fields)
        yield from self.journal.append(record)
        self.metrics.counter("journal_entries").add(1)
        self._obs_count("journal_entries")
        if self.crashed:
            # SIGKILL raced the append: the record is durable but this
            # process never applies it — the promoted standby's replay
            # will, and the client's resend dedups against it.
            raise OpTimeout("mds crashed")
        if self.state != "active":
            raise OldEpoch("mds gid %d deposed during journal append" % self.gid)
        return record["seq"]

    def _commit(self, seq, client_id, op_id, result):
        """Record an applied mutation: seq into the store's applied set,
        the result into the dedup/session tables (pure, no yields)."""
        if seq is None:
            return
        self.store.applied.setdefault(self.rank, set()).add(seq)
        self._pending_apply.pop(seq, None)
        if client_id is not None and op_id is not None:
            self.dedup[(client_id, op_id)] = result
            prev = self.sessions.get(client_id)
            if prev is None or op_id > prev:
                self.sessions[client_id] = op_id

    def _meta_file(self, path, exclusive, mode, ino=None):
        node = self.tree.create_file(
            path, now=self.sim.now, exclusive=exclusive, mode=mode, ino=ino
        )
        # The MDS never stores file bytes.
        if node.data is not None and not node.data:
            node.data = None
            node.meta_size = 0
        return node

    # -- server-side operations (sim generators) ---------------------------

    def lookup(self, path, map_epoch=None):
        yield from self._op(map_epoch)
        return self._info(self.tree.lookup(path))

    def create(self, path, exclusive=False, mode=0o644, client_id=None,
               op_id=None, map_epoch=None):
        yield from self._op(map_epoch)
        hit = self._session_hit(client_id, op_id)
        if hit is not _MISS:
            return hit
        if self.journal is None:
            node = self._meta_file(path, exclusive, mode)
            self._bump(node)
            return self._info(node)
        # Journaled path: validate, append, then apply atomically.
        parent_path, name = pathutil.split(path)
        if not name:
            raise InvalidArgument("cannot create root")
        parent = self.tree.lookup_dir(parent_path)
        existing = parent.children.get(name)
        if existing is not None:
            if exclusive:
                raise FileExists(path=path)
            if existing.is_dir:
                raise IsADirectory(path=path)
            # Open-existing: no namespace mutation, nothing to journal.
            node = self._meta_file(path, exclusive, mode)
            self._bump(node)
            return self._info(node)
        ino = self.tree._alloc_ino()
        seq = yield from self._journal_mutation(
            "create",
            {"path": path, "mode": mode, "ino": ino, "mtime": self.sim.now},
            client_id, op_id,
        )
        node = self._meta_file(path, exclusive, mode, ino=ino)
        self._bump(node)
        info = self._info(node)
        self._commit(seq, client_id, op_id, info)
        return info

    def mkdir(self, path, mode=0o755, client_id=None, op_id=None,
              map_epoch=None):
        yield from self._op(map_epoch)
        hit = self._session_hit(client_id, op_id)
        if hit is not _MISS:
            return hit
        if self.journal is None:
            node = self.tree.mkdir(path, now=self.sim.now, mode=mode)
            self._bump(node)
            return self._info(node)
        parent_path, name = pathutil.split(path)
        if not name:
            raise FileExists(path="/")
        parent = self.tree.lookup_dir(parent_path)
        if name in parent.children:
            raise FileExists(path=path)
        ino = self.tree._alloc_ino()
        seq = yield from self._journal_mutation(
            "mkdir",
            {"path": path, "mode": mode, "ino": ino, "mtime": self.sim.now},
            client_id, op_id,
        )
        node = self.tree.mkdir(path, now=self.sim.now, mode=mode, ino=ino)
        self._bump(node)
        info = self._info(node)
        self._commit(seq, client_id, op_id, info)
        return info

    def rmdir(self, path, client_id=None, op_id=None, map_epoch=None):
        yield from self._op(map_epoch)
        hit = self._session_hit(client_id, op_id)
        if hit is not _MISS:
            return hit
        if self.journal is None:
            self.tree.rmdir(path, now=self.sim.now)
            return None
        parent_path, name = pathutil.split(path)
        if not name:
            raise InvalidArgument("cannot remove root")
        parent = self.tree.lookup_dir(parent_path)
        node = parent.children.get(name)
        if node is None:
            raise FileNotFound(path=path)
        if not node.is_dir:
            raise NotADirectory(path=path)
        if node.children:
            from repro.common.errors import DirectoryNotEmpty
            raise DirectoryNotEmpty(path=path)
        seq = yield from self._journal_mutation(
            "rmdir", {"path": path, "mtime": self.sim.now}, client_id, op_id,
        )
        self.tree.rmdir(path, now=self.sim.now)
        self._commit(seq, client_id, op_id, None)
        return None

    def unlink(self, path, client_id=None, op_id=None, map_epoch=None):
        """Remove a file; returns its (ino, size) for object purging."""
        yield from self._op(map_epoch)
        hit = self._session_hit(client_id, op_id)
        if hit is not _MISS:
            return hit
        node = self.tree.lookup(path)
        if node.is_dir:
            raise IsADirectory(path=path)
        ino, size = node.ino, node.size
        seq = yield from self._journal_mutation(
            "unlink",
            {"path": path, "ino": ino, "size": size, "mtime": self.sim.now},
            client_id, op_id,
        )
        self.tree.unlink(path, now=self.sim.now)
        self._versions.pop(ino, None)
        self._commit(seq, client_id, op_id, (ino, size))
        return ino, size

    def readdir(self, path, map_epoch=None):
        yield from self._op(map_epoch)
        names = self.tree.readdir(path)
        # Marshalling grows with the directory size.
        yield self.sim.timeout(self.costs.dirent_op * max(len(names), 1))
        return names

    def rename(self, old_path, new_path, client_id=None, op_id=None,
               map_epoch=None):
        yield from self._op(map_epoch)
        hit = self._session_hit(client_id, op_id)
        if hit is not _MISS:
            return hit
        if self.journal is None:
            self.tree.rename(old_path, new_path, now=self.sim.now)
            return None
        self._validate_rename(old_path, new_path)
        seq = yield from self._journal_mutation(
            "rename",
            {"old": old_path, "new": new_path, "mtime": self.sim.now},
            client_id, op_id,
        )
        self.tree.rename(old_path, new_path, now=self.sim.now)
        self._commit(seq, client_id, op_id, None)
        return None

    def _validate_rename(self, old_path, new_path):
        """Mirror MemTree.rename's checks without mutating (the journal
        must never record a doomed rename)."""
        from repro.common.errors import DirectoryNotEmpty
        old_parent_path, old_name = pathutil.split(old_path)
        new_parent_path, new_name = pathutil.split(new_path)
        if not old_name or not new_name:
            raise InvalidArgument("cannot rename the root")
        if pathutil.is_ancestor(old_path, new_path) and old_path != new_path:
            raise InvalidArgument("cannot move a directory under itself")
        old_parent = self.tree.lookup_dir(old_parent_path)
        node = old_parent.children.get(old_name)
        if node is None:
            raise FileNotFound(path=old_path)
        new_parent = self.tree.lookup_dir(new_parent_path)
        target = new_parent.children.get(new_name)
        if target is not None:
            if target.is_dir and not node.is_dir:
                raise IsADirectory(path=new_path)
            if not target.is_dir and node.is_dir:
                raise NotADirectory(path=new_path)
            if target.is_dir and target.children:
                raise DirectoryNotEmpty(path=new_path)

    def setattr_size(self, path, size, mtime=None, client_id=None,
                     op_id=None, map_epoch=None):
        """Client cap flush: record the new size/mtime of a file."""
        yield from self._op(map_epoch)
        hit = self._session_hit(client_id, op_id)
        if hit is not _MISS:
            return hit
        node = self.tree.lookup(path)
        if node.is_dir:
            raise IsADirectory(path=path)
        if size < 0:
            raise InvalidArgument("negative size")
        when = mtime if mtime is not None else self.sim.now
        seq = yield from self._journal_mutation(
            "setattr",
            {"path": path, "ino": node.ino, "size": size, "mtime": when},
            client_id, op_id,
        )
        node.meta_size = size
        node.mtime = when
        self._bump(node)
        info = self._info(node)
        self._commit(seq, client_id, op_id, info)
        return info

    def setattr_size_by_ino(self, ino, size, mtime=None, client_id=None,
                            op_id=None, map_epoch=None):
        """Size update addressed by inode (used after renames)."""
        yield from self._op(map_epoch)
        hit = self._session_hit(client_id, op_id)
        if hit is not _MISS:
            return hit
        for _path, node in self.tree.walk("/"):
            if node.ino == ino:
                when = mtime if mtime is not None else self.sim.now
                seq = yield from self._journal_mutation(
                    "setattr_ino",
                    {"ino": ino, "size": size, "mtime": when},
                    client_id, op_id,
                )
                node.meta_size = size
                node.mtime = when
                self._bump(node)
                info = self._info(node)
                self._commit(seq, client_id, op_id, info)
                return info
        raise FileNotFound(path="ino:%d" % ino)

    # -- capabilities (caps-mode clients only) --------------------------------

    def caps_conflicts(self, ino, client_id, want, map_epoch=None):
        """Which holders must drop caps before ``client_id`` gets ``want``."""
        yield from self._op(map_epoch)
        return self.caps.conflicts(ino, client_id, want)

    def caps_commit(self, ino, client_id, want, revoked, map_epoch=None):
        """Record completed revocations and grant ``want``."""
        yield from self._op(map_epoch)
        for holder, caps in revoked:
            self.caps.revoke(ino, holder, caps)
        self.caps.grant(ino, client_id, want)
        return self.caps.held(ino, client_id)

    def caps_release(self, ino, client_id, caps, map_epoch=None):
        yield from self._op(map_epoch)
        self.caps.revoke(ino, client_id, caps)

    # -- journal replay ----------------------------------------------------

    def absorb(self, rank, record, apply=True):
        """Fold one journal record into this daemon's rank state.

        Session/dedup tables always rebuild. With ``apply`` (promotion
        or local recovery) a record the crashed active journaled but
        never applied lands in the store now; a tailing standby passes
        ``apply=False`` — the live active still owns the store — and
        parks unapplied records in ``_pending_apply`` for promotion.
        """
        seq = record["seq"]
        applied = self.store.applied.setdefault(rank, set())
        if seq not in applied:
            if apply:
                try:
                    self._apply_record(record)
                except FsError:
                    self.metrics.counter("replay_skips").add(1)
                applied.add(seq)
                self._pending_apply.pop(seq, None)
            else:
                self._pending_apply[seq] = record
        else:
            self._pending_apply.pop(seq, None)
        client_id = record.get("client")
        op_id = record.get("op_id")
        if client_id is not None and op_id is not None:
            self.dedup[(client_id, op_id)] = self._result_of(record)
            prev = self.sessions.get(client_id)
            if prev is None or op_id > prev:
                self.sessions[client_id] = op_id

    def _apply_record(self, record):
        """Apply one journal record to the shared store (replay path)."""
        op = record["op"]
        tree = self.tree
        now = record.get("mtime", self.sim.now)
        if op == "create":
            node = self._meta_file(record["path"], False,
                                   record.get("mode", 0o644),
                                   ino=record["ino"])
            node.mtime = now
            self._bump(node)
        elif op == "mkdir":
            node = tree.mkdir(record["path"], now=now,
                              mode=record.get("mode", 0o755),
                              ino=record["ino"])
            self._bump(node)
        elif op == "unlink":
            tree.unlink(record["path"], now=now)
            self._versions.pop(record["ino"], None)
        elif op == "rmdir":
            tree.rmdir(record["path"], now=now)
        elif op == "rename":
            tree.rename(record["old"], record["new"], now=now)
        elif op == "setattr":
            node = tree.lookup(record["path"])
            node.meta_size = record["size"]
            node.mtime = record["mtime"]
            self._bump(node)
        elif op == "setattr_ino":
            for _path, node in tree.walk("/"):
                if node.ino == record["ino"]:
                    node.meta_size = record["size"]
                    node.mtime = record["mtime"]
                    self._bump(node)
                    return
            raise FileNotFound(path="ino:%d" % record["ino"])

    def _result_of(self, record):
        """Reconstruct a mutation's acked result from its journal record
        (what a post-failover resend of the same op-id receives)."""
        op = record["op"]
        if op in ("create", "mkdir"):
            ino = record["ino"]
            return InodeInfo(ino, op == "mkdir", 0, record["mtime"],
                             2 if op == "mkdir" else 1,
                             self._versions.get(ino, 1))
        if op == "unlink":
            return (record["ino"], record["size"])
        if op in ("setattr", "setattr_ino"):
            ino = record["ino"]
            return InodeInfo(ino, False, record["size"], record["mtime"], 1,
                             self._versions.get(ino, 1))
        return None  # rmdir, rename

    def replay_journal(self, journal, rank, from_bytes=0):
        """Replay a journal tail into this daemon (sim generator).

        Pays the OSD reads plus per-record replay CPU; flushes any
        records tailed earlier that the dead active never applied.
        Returns the number of records replayed.
        """
        started = self.sim.now
        records, consumed = yield from journal.read_from(from_bytes)
        for record in records:
            yield self.sim.timeout(self.costs.mds_replay_op)
            self.absorb(rank, record, apply=True)
        # Records absorbed while tailing whose apply never happened
        # (the active died between journal append and apply).
        applied = self.store.applied.setdefault(rank, set())
        for seq in sorted(self._pending_apply):
            record = self._pending_apply[seq]
            if seq not in applied:
                yield self.sim.timeout(self.costs.mds_replay_op)
                try:
                    self._apply_record(record)
                except FsError:
                    self.metrics.counter("replay_skips").add(1)
                applied.add(seq)
        self._pending_apply = {}
        self._tail_pos[rank] = from_bytes + consumed
        duration = self.sim.now - started
        self.metrics.counter("replays").add(1)
        self.metrics.counter("replayed_records").add(len(records))
        scope = self._obs_scope()
        if scope is not None:
            scope.counter("r%s.replays" % rank).add(1)
            scope.gauge("r%s.replay_s" % rank).set(duration)
            scope.gauge("r%s.sessions" % rank).set(len(self.sessions))
        self.sim.trace("mds", "replayed", gid=self.gid, rank=rank,
                       records=len(records), duration=duration)
        return len(records)

    # -- helpers used by the cluster (no cost) --------------------------------

    def path_exists(self, path):
        return self.tree.try_lookup(path) is not None

    def node_of(self, path):
        return self.tree.lookup(path)


class MdsService(object):
    """Coordinator for metadata HA: the daemon pool, per-rank journals
    and the Monitor-published :class:`MdsMap`.

    Created by ``cluster.enable_mds_ha``; never on the fault-free path.
    The cluster's original single daemon becomes rank 0's active, spare
    daemons join the standby pool and tail the active journals, and the
    monitor's heartbeat loop calls :meth:`check_heartbeats` each probe
    round to drive failover.
    """

    def __init__(self, cluster, standbys=1, ranks=1):
        self.cluster = cluster
        self.sim = cluster.sim
        self.costs = cluster.costs
        primary = cluster._mds
        primary.service = self
        self.store = primary.store
        self.daemons = {primary.gid: primary}
        self._next_gid = primary.gid + 1
        self.session_epoch = primary.session_epoch
        self.epoch = 0
        self.active_gids = [primary.gid]   # rank -> gid
        self.standby_gids = []
        self.journals = {0: MdsJournal(cluster, 0)}
        primary.journal = self.journals[0]
        primary.rank = 0
        primary.state = "active"
        self.metrics = MetricSet("mds_ha")
        self._tails = {}       # gid -> tail process
        self._promoting = set()
        self._hb_misses = {}   # rank -> consecutive missed probes
        for _ in range(max(0, standbys)):
            self.add_standby()
        self._publish("mds_ha_armed")
        for _ in range(max(1, ranks) - 1):
            self.split_rank()

    # -- map publication ---------------------------------------------------

    def _publish(self, event, rank=None):
        self.epoch += 1
        mdsmap = MdsMap(self.epoch, self.active_gids, self.standby_gids,
                        self.session_epoch)
        for daemon in self.daemons.values():
            daemon.map_epoch = self.epoch
        self.cluster.monitor.publish_mdsmap(mdsmap, event, rank=rank)
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("mds").gauge("map_epoch").set(self.epoch)
        return mdsmap

    # -- pool management ---------------------------------------------------

    def _new_daemon(self):
        daemon = Mds(self.sim, self.costs, store=self.store,
                     gid=self._next_gid)
        daemon.service = self
        daemon.session_epoch = self.session_epoch
        daemon.map_epoch = self.epoch
        self.daemons[daemon.gid] = daemon
        self._next_gid += 1
        return daemon

    def add_standby(self):
        """Add one standby-replay daemon tailing the active journals."""
        daemon = self._new_daemon()
        daemon.state = "standby"
        daemon.rank = None
        self.standby_gids.append(daemon.gid)
        self._start_tail(daemon)
        return daemon

    def active_daemon(self, rank):
        return self.daemons[self.active_gids[rank]]

    @property
    def num_ranks(self):
        return len(self.active_gids)

    def healthy(self):
        """Every rank has a live, non-replaying active daemon."""
        if self._promoting:
            return False
        for gid in self.active_gids:
            daemon = self.daemons[gid]
            if daemon.crashed or not daemon.available \
                    or daemon.state != "active":
                return False
        return True

    # -- standby-replay tail ----------------------------------------------

    def _start_tail(self, daemon):
        self._tails[daemon.gid] = self.sim.spawn(
            self._tail_loop(daemon), name="mds-standby-tail"
        )

    def _tail_loop(self, daemon):
        """Standby-replay: periodically absorb the tail of one rank's
        journal so promotion only replays the remaining lag."""
        while daemon.state == "standby" and not daemon.crashed:
            yield self.sim.timeout(self.costs.mds_tail_interval)
            if daemon.state != "standby" or daemon.crashed:
                break
            try:
                index = self.standby_gids.index(daemon.gid)
            except ValueError:
                break
            rank = index % max(1, len(self.active_gids))
            journal = self.journals[rank]
            pos = daemon._tail_pos.get(rank, 0)
            lag = journal.length - pos
            obs = self.sim.observer
            if lag <= 0:
                if obs is not None:
                    obs.metrics("mds").gauge("r%d.journal_lag" % rank).set(0)
                continue
            records, consumed = yield from journal.read_from(pos)
            if daemon.state != "standby" or daemon.crashed:
                break
            for record in records:
                daemon.absorb(rank, record, apply=False)
            daemon._tail_pos[rank] = pos + consumed
            if obs is not None:
                obs.metrics("mds").gauge("r%d.journal_lag" % rank).set(
                    journal.length - daemon._tail_pos[rank]
                )

    # -- heartbeats / failover ---------------------------------------------

    def check_heartbeats(self):
        """One monitor probe round over the active daemons (pure).

        Promotions are spawned, never run inline, so the heartbeat loop
        keeps its cadence regardless of replay duration.
        """
        for rank, gid in enumerate(list(self.active_gids)):
            daemon = self.daemons[gid]
            if not daemon.crashed:
                self._hb_misses.pop(rank, None)
                continue
            if rank in self._promoting:
                continue
            misses = self._hb_misses.get(rank, 0) + 1
            self._hb_misses[rank] = misses
            if misses >= self.costs.mds_heartbeat_grace and self.standby_gids:
                self._hb_misses.pop(rank, None)
                self.metrics.counter("heartbeat_failures").add(1)
                self._promoting.add(rank)
                self.sim.spawn(self._promote(rank), name="mds-promote")

    def failover(self, rank=0):
        """Administrative failover (sim generator): promote a standby and
        fence the still-live active via mdsmap-epoch rejection."""
        if rank in self._promoting or not self.standby_gids:
            return
        self._promoting.add(rank)
        yield from self._promote(rank)

    def _promote(self, rank):
        """Promote a standby into ``rank``: publish the new map (fencing
        the deposed active), bump session epochs, replay the journal lag.
        The caller must already have claimed ``rank`` in ``_promoting``.
        """
        try:
            old = self.daemons[self.active_gids[rank]]
            gid = self._pick_standby(rank)
            standby = self.daemons[gid]
            self.standby_gids.remove(gid)
            started = self.sim.now
            standby.state = "replay"
            standby.rank = rank
            standby.journal = self.journals[rank]
            standby.caps = CapsTable()
            old.state = "stopped"
            old.journal = None
            self.active_gids[rank] = gid
            self.session_epoch += 1
            for daemon in self.daemons.values():
                daemon.session_epoch = self.session_epoch
            self._publish("mds_failover", rank=rank)
            self.metrics.counter("failovers").add(1)
            obs = self.sim.observer
            if obs is not None:
                obs.metrics("mds").counter("failovers").add(1)
            pos = standby._tail_pos.get(rank, 0)
            yield from standby.replay_journal(self.journals[rank], rank,
                                              from_bytes=pos)
            standby.state = "active"
            self.sim.trace("mds", "promoted", rank=rank, gid=gid,
                           replay_s=self.sim.now - started)
        finally:
            self._promoting.discard(rank)

    def _pick_standby(self, rank):
        """Prefer the standby that has been tailing this rank's journal."""
        best = self.standby_gids[0]
        best_pos = -1
        for gid in self.standby_gids:
            pos = self.daemons[gid]._tail_pos.get(rank, 0)
            if pos > best_pos:
                best, best_pos = gid, pos
        return best

    def restore(self, gid):
        """Restart a SIGKILLed daemon (fault heal; sim generator).

        If a standby already took its rank it rejoins as an empty
        standby; if no standby ever did, it recovers in place through
        journal replay — never the oracle ``restart()``.
        """
        daemon = self.daemons[gid]
        if not daemon.crashed:
            return
        if gid in self.active_gids:
            rank = self.active_gids.index(gid)
            daemon.crashed = False
            daemon.caps = CapsTable()
            daemon.dedup = {}
            daemon.sessions = {}
            daemon._tail_pos = {}
            daemon._pending_apply = {}
            daemon.state = "replay"
            self.session_epoch += 1
            for other in self.daemons.values():
                other.session_epoch = self.session_epoch
            self._publish("mds_recover", rank=rank)
            yield from daemon.replay_journal(self.journals[rank], rank,
                                             from_bytes=0)
            daemon.state = "active"
        else:
            self.rejoin(gid)

    def rejoin(self, gid):
        """A deposed or SIGKILLed daemon restarts as an empty standby."""
        daemon = self.daemons[gid]
        daemon.crashed = False
        daemon.available = True
        daemon.state = "standby"
        daemon.rank = None
        daemon.journal = None
        daemon.dedup = {}
        daemon.sessions = {}
        daemon.caps = CapsTable()
        daemon._tail_pos = {}
        daemon._pending_apply = {}
        if gid not in self.standby_gids and gid not in self.active_gids:
            self.standby_gids.append(gid)
            self._start_tail(daemon)
        self.metrics.counter("rejoins").add(1)
        self._publish("mds_rejoin")

    # -- rank growth -------------------------------------------------------

    def split_rank(self):
        """Grow max_mds by one rank (the mds_rank_split fault).

        A standby (or a fresh daemon) takes the new rank with an empty
        journal; directory hashes repartition over the larger rank
        count, dedup tables are unioned across all actives so pre-split
        resends stay exactly-once wherever they now route, and cap
        records re-home to the rank that owns their ino under the new
        map.
        """
        rank = len(self.active_gids)
        if not self.standby_gids:
            self.add_standby()
        gid = self.standby_gids.pop(0)
        daemon = self.daemons[gid]
        daemon.rank = rank
        daemon.state = "active"
        daemon.caps = CapsTable()
        daemon._tail_pos = {}
        daemon._pending_apply = {}
        journal = MdsJournal(self.cluster, rank)
        self.journals[rank] = journal
        daemon.journal = journal
        self.active_gids.append(gid)
        union = {}
        for other_gid in self.active_gids:
            union.update(self.daemons[other_gid].dedup)
        for other_gid in self.active_gids:
            self.daemons[other_gid].dedup.update(union)
        self.metrics.counter("rank_splits").add(1)
        mdsmap = self._publish("mds_rank_split", rank=rank)
        # Re-home cap records onto the rank owning their ino.
        for owner_gid in list(self.active_gids):
            owner = self.daemons[owner_gid]
            moved = owner.caps.export_inos(
                lambda ino: mdsmap.rank_of_ino(ino) != owner.rank
            )
            for ino, holders in moved.items():
                target = self.daemons[
                    self.active_gids[mdsmap.rank_of_ino(ino)]
                ]
                target.caps.absorb({ino: holders})
        return rank
