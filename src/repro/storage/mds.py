"""Metadata server: the Ceph MDS analogue.

The MDS owns the shared filesystem namespace — every client of every host
sees the same tree. It stores attributes only (sizes via
``Node.meta_size``); file bytes live on the OSDs. Namespace operations pay
an op cost under a concurrency bound, modelling the single MDS VM of the
testbed.

A per-inode version counter lets clients validate cached attributes
cheaply (the revalidate-on-open consistency the clients implement).
"""

from repro.common.errors import (
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    OpTimeout,
)
from repro.fs.memtree import MemTree
from repro.metrics import MetricSet
from repro.sim.sync import Semaphore
from repro.storage.caps import CapsTable

__all__ = ["InodeInfo", "Mds"]


class InodeInfo(object):
    """Attribute snapshot shipped to clients."""

    __slots__ = ("ino", "is_dir", "size", "mtime", "nlink", "version")

    def __init__(self, ino, is_dir, size, mtime, nlink, version):
        self.ino = ino
        self.is_dir = is_dir
        self.size = size
        self.mtime = mtime
        self.nlink = nlink
        self.version = version

    def __repr__(self):
        return "<InodeInfo ino=%d size=%d v%d>" % (self.ino, self.size, self.version)


class Mds(object):
    """The metadata server: one shared namespace for all clients."""

    def __init__(self, sim, costs):
        self.sim = sim
        self.costs = costs
        self.tree = MemTree()
        self._slots = Semaphore(sim, costs.mds_concurrency, name="mds")
        self._versions = {}  # ino -> version counter
        self.caps = CapsTable()
        self.available = True
        #: bumps on every restart; clients compare it against the epoch
        #: they opened their session under and reestablish (reacquiring
        #: caps) when it moved — the CephFS session-reconnect protocol.
        self.session_epoch = 1
        self.metrics = MetricSet("mds")

    # -- fault injection -------------------------------------------------

    def set_available(self, flag):
        """Begin (False) or end (True) an unavailability window."""
        self.available = bool(flag)
        self.sim.trace("mds", "up" if flag else "down")
        if not flag:
            self.metrics.counter("outages").add(1)

    def restart(self):
        """Recover the MDS: namespace survives, client sessions do not.

        The metadata tree is journal-backed and replays intact; the caps
        table is session state and is lost, so every caps-mode client
        must reestablish its session and reacquire its capabilities.
        """
        self.caps = CapsTable()
        self.session_epoch += 1
        self.available = True
        self.sim.trace("mds", "restart", session_epoch=self.session_epoch)
        self.metrics.counter("restarts").add(1)

    def _bump(self, node):
        self._versions[node.ino] = self._versions.get(node.ino, 0) + 1

    def _info(self, node):
        return InodeInfo(
            node.ino,
            node.is_dir,
            node.size,
            node.mtime,
            node.nlink,
            self._versions.get(node.ino, 0),
        )

    def _op(self):
        """Pay the MDS service cost under the concurrency bound."""
        if not self.available:
            # Dead MDS: the request goes unanswered until the client-side
            # op timeout declares it lost.
            yield self.sim.timeout(self.costs.op_timeout)
            raise OpTimeout("mds unavailable")
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.mds_op)
        finally:
            self._slots.release()
        self.metrics.counter("ops").add(1)

    def _meta_file(self, path, exclusive, mode):
        node = self.tree.create_file(
            path, now=self.sim.now, exclusive=exclusive, mode=mode
        )
        # The MDS never stores file bytes.
        if node.data is not None and not node.data:
            node.data = None
            node.meta_size = 0
        return node

    # -- server-side operations (sim generators) ---------------------------

    def lookup(self, path):
        yield from self._op()
        return self._info(self.tree.lookup(path))

    def create(self, path, exclusive=False, mode=0o644):
        yield from self._op()
        node = self._meta_file(path, exclusive, mode)
        self._bump(node)
        return self._info(node)

    def mkdir(self, path, mode=0o755):
        yield from self._op()
        node = self.tree.mkdir(path, now=self.sim.now, mode=mode)
        self._bump(node)
        return self._info(node)

    def rmdir(self, path):
        yield from self._op()
        self.tree.rmdir(path, now=self.sim.now)

    def unlink(self, path):
        """Remove a file; returns its (ino, size) for object purging."""
        yield from self._op()
        node = self.tree.lookup(path)
        if node.is_dir:
            raise IsADirectory(path=path)
        ino, size = node.ino, node.size
        self.tree.unlink(path, now=self.sim.now)
        self._versions.pop(ino, None)
        return ino, size

    def readdir(self, path):
        yield from self._op()
        names = self.tree.readdir(path)
        # Marshalling grows with the directory size.
        yield self.sim.timeout(self.costs.dirent_op * max(len(names), 1))
        return names

    def rename(self, old_path, new_path):
        yield from self._op()
        self.tree.rename(old_path, new_path, now=self.sim.now)

    def setattr_size(self, path, size, mtime=None):
        """Client cap flush: record the new size/mtime of a file."""
        yield from self._op()
        node = self.tree.lookup(path)
        if node.is_dir:
            raise IsADirectory(path=path)
        if size < 0:
            raise InvalidArgument("negative size")
        node.meta_size = size
        node.mtime = mtime if mtime is not None else self.sim.now
        self._bump(node)
        return self._info(node)

    def setattr_size_by_ino(self, ino, size, mtime=None):
        """Size update addressed by inode (used after renames)."""
        yield from self._op()
        for _path, node in self.tree.walk("/"):
            if node.ino == ino:
                node.meta_size = size
                node.mtime = mtime if mtime is not None else self.sim.now
                self._bump(node)
                return self._info(node)
        raise FileNotFound(path="ino:%d" % ino)

    # -- capabilities (caps-mode clients only) --------------------------------

    def caps_conflicts(self, ino, client_id, want):
        """Which holders must drop caps before ``client_id`` gets ``want``."""
        yield from self._op()
        return self.caps.conflicts(ino, client_id, want)

    def caps_commit(self, ino, client_id, want, revoked):
        """Record completed revocations and grant ``want``."""
        yield from self._op()
        for holder, caps in revoked:
            self.caps.revoke(ino, holder, caps)
        self.caps.grant(ino, client_id, want)
        return self.caps.held(ino, client_id)

    def caps_release(self, ino, client_id, caps):
        yield from self._op()
        self.caps.revoke(ino, client_id, caps)

    # -- helpers used by the cluster (no cost) --------------------------------

    def path_exists(self, path):
        return self.tree.try_lookup(path) is not None

    def node_of(self, path):
        return self.tree.lookup(path)
