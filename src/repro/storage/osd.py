"""Object storage device: the Ceph OSD analogue.

Each OSD owns a ramdisk-backed object store (the testbed stores OSD data
and journal on 24 GB ramdisks) and serves a bounded number of concurrent
operations. A write is journaled before it is applied — both land on the
ramdisk, so writes pay roughly twice the device time of reads, which is
one reason the paper's write workloads exercise the backend harder.

Objects hold *real bytes*: the OSD store is the authoritative copy of all
flushed file data in the simulation.

Integrity. When checksums are armed (``verify_enabled``, set by
:meth:`CephCluster.enable_integrity`), every write records a blake2b
digest per ``costs.integrity_chunk_size`` chunk of the object, bluestore
style: a partial overwrite re-digests only the chunks it touched, and a
boundary chunk whose surviving old bytes no longer match their digest is
*poisoned* rather than silently re-blessed — verification keeps failing
until repair replaces the replica. Digest bookkeeping is pure Python
dictionary work with no sim events, and it is entirely skipped when
``verify_enabled`` is False, so integrity-off runs keep the exact
pre-integrity event schedule.
"""

import hashlib

from repro.common.errors import InvalidArgument, OldEpoch, OpTimeout
from repro.hw.disk import RamDisk
from repro.metrics import MetricSet
from repro.sim.sync import Semaphore

__all__ = ["Osd"]

#: Marks a chunk whose old bytes failed verification during a partial
#: overwrite: its digest is unknowable without re-reading clean data, so
#: the chunk stays permanently dirty until repair rewrites the object.
_POISON = object()


class Osd(object):
    """One object storage daemon with journal + data on a ramdisk.

    An OSD can *crash* (fault injection): the daemon process dies but its
    ramdisk contents survive, exactly like an OSD process kill on the
    testbed. Requests to a crashed OSD hang until the client-side op
    timeout expires, then surface as :class:`OpTimeout` — clients report
    the failure to the monitor and resend against the surviving replicas.
    ``restart()`` brings the daemon back with its stored objects intact.
    """

    def __init__(self, sim, osd_id, costs, device=None):
        self.sim = sim
        self.osd_id = osd_id
        self.costs = costs
        self.device = device if device is not None else RamDisk(
            sim, name="osd%d.ram" % osd_id
        )
        self._slots = Semaphore(sim, costs.osd_concurrency, name="osd%d" % osd_id)
        self._objects = {}  # (ino, index) -> bytearray
        self._by_ino = {}  # ino -> set of indices
        #: bumped on *every* stored-byte mutation, including the silent
        #: fault injections that deliberately leave ``_versions`` stale.
        #: Engine-level cache-invalidation hook (peek memoisation) only —
        #: never consulted by the modelled metadata paths, so injected
        #: corruption stays invisible to verification until digests catch
        #: it, exactly as before.
        self.store_epoch = 0
        #: last osdmap epoch the monitor pushed to this OSD. Data-path
        #: ops stamped with an older epoch are rejected (EOLDEPOCH);
        #: stays 0 — and the check vacuous — until the lifecycle arms.
        self.map_epoch = 0
        self.crashed = False
        #: record/check per-chunk digests; armed by enable_integrity()
        self.verify_enabled = False
        self._digests = {}  # (ino, index) -> {chunk_idx: digest | _POISON}
        #: monotonic per-object mutation counter (always on: pure dict
        #: work, no events). Recovery pushes use it to detect a write
        #: racing their source snapshot.
        self._versions = {}  # (ino, index) -> int
        #: ops currently inside the service section (fan-out visibility)
        self.inflight = 0
        self.metrics = MetricSet("osd%d" % osd_id)

    # -- fault injection -------------------------------------------------

    def crash(self):
        """Kill the OSD daemon; the backing device keeps its objects."""
        self.crashed = True
        self.sim.trace("osd", "crash", osd=self.osd_id)
        self.metrics.counter("crashes").add(1)

    def restart(self):
        """Restart the daemon over the surviving object store."""
        self.crashed = False
        self.sim.trace("osd", "restart", osd=self.osd_id)

    def inject_bitrot(self, ino, index, rng, flips=8):
        """Silently flip bits in this replica's stored bytes.

        The recorded digests are deliberately left stale — that is the
        fault being modelled: the device returns different bytes than
        were acknowledged. No version bump, no trace of the mutation in
        the object's own metadata; only verification can tell.
        """
        obj = self._objects.get((ino, index))
        if not obj:
            return 0
        flips = min(flips, len(obj))
        for _ in range(flips):
            obj[rng.randrange(len(obj))] ^= 1 << rng.randrange(8)
        self.store_epoch += 1
        self.metrics.counter("bitrot_injected").add(1)
        self.sim.trace("osd", "bitrot", osd=self.osd_id, ino=ino,
                       index=index, flips=flips)
        return flips

    def inject_torn_write(self, ino, index, keep_fraction=0.5):
        """Silently truncate this replica's copy (a torn replica write).

        Models a write acknowledged by the primary whose tail never
        reached this replica's store. Digests for the lost tail stay
        recorded, so verification detects the short copy.
        """
        obj = self._objects.get((ino, index))
        if obj is None or len(obj) < 2:
            return 0
        keep = max(1, min(int(len(obj) * keep_fraction), len(obj) - 1))
        lost = len(obj) - keep
        del obj[keep:]
        self.store_epoch += 1
        self.metrics.counter("torn_injected").add(1)
        self.sim.trace("osd", "torn_write", osd=self.osd_id, ino=ino,
                       index=index, lost=lost)
        return lost

    def _check_up(self):
        """Dead-daemon behaviour: silence until the op timeout expires."""
        if self.crashed:
            yield self.sim.timeout(self.costs.op_timeout)
            err = OpTimeout("osd %d is down" % self.osd_id)
            # Let the retry layer blame the right OSD even when the
            # timeout surfaces out of a multi-target write attempt.
            err.osd_id = self.osd_id
            raise err

    def _check_epoch(self, epoch):
        """Reject an op resolved against an older osdmap (EOLDEPOCH).

        ``epoch is None`` — the unstamped legacy/fast path — always
        passes; stamped ops must be at least as new as the map the
        monitor last pushed here. Pure state, no events.
        """
        if epoch is not None and epoch < self.map_epoch:
            self.metrics.counter("epoch_rejects").add(1)
            raise OldEpoch(
                "osd %d at e%d rejected op stamped e%d"
                % (self.osd_id, self.map_epoch, epoch)
            )

    def _enter_op(self):
        """Track one op entering service: inflight gauge + queue depth.

        Called right before the slot acquire so the histogram sees the
        queue the op found on arrival. Pure counter work unless an
        observer is attached.
        """
        self.inflight += 1
        obs = self.sim.observer
        if obs is not None:
            registry = obs.metrics("osd%d" % self.osd_id)
            registry.gauge("inflight").set(self.inflight)
            registry.histogram("qdepth").observe(self._slots.queue_len)

    def _exit_op(self):
        self.inflight -= 1
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("osd%d" % self.osd_id).gauge("inflight").set(
                self.inflight
            )

    # -- integrity bookkeeping (pure state, no sim events) ----------------

    def _digest(self, piece):
        return hashlib.blake2b(piece, digest_size=16).digest()

    def object_version(self, ino, index):
        """Mutation counter of one object (0 if never written here)."""
        return self._versions.get((ino, index), 0)

    def _bump_version(self, key):
        self._versions[key] = self._versions.get(key, 0) + 1

    def _precheck_overwrite(self, key, obj, touch_start, end):
        """Poison boundary chunks whose surviving old bytes are corrupt.

        ``[touch_start, end)`` is the range the write is about to redefine
        (including any zero-fill extension). A chunk only partially inside
        it keeps old bytes; if those no longer match the chunk's digest,
        re-digesting after the write would bless the corruption — so the
        chunk is poisoned instead and keeps failing verification until a
        repair replaces the whole replica.
        """
        dig = self._digests.get(key)
        if not dig or end <= touch_start:
            return
        size = self.costs.integrity_chunk_size
        old_len = len(obj)
        for chunk in {touch_start // size, (end - 1) // size}:
            lo = chunk * size
            hi = min(lo + size, old_len)
            if hi <= lo:
                continue  # the chunk held no bytes before this write
            if touch_start <= lo and end >= hi:
                continue  # every old byte of the chunk is overwritten
            want = dig.get(chunk)
            if want is None or want is _POISON:
                continue
            if self._digest(bytes(obj[lo:hi])) != want:
                dig[chunk] = _POISON

    def _record_digests(self, key, obj, touch_start, end):
        """Re-digest the chunks covering ``[touch_start, end)``."""
        if end <= touch_start:
            return
        dig = self._digests.setdefault(key, {})
        size = self.costs.integrity_chunk_size
        for chunk in range(touch_start // size, (end - 1) // size + 1):
            lo = chunk * size
            hi = min(lo + size, len(obj))
            if dig.get(chunk) is _POISON and not (touch_start <= lo and end >= hi):
                continue  # partially-rewritten poisoned chunk stays poisoned
            dig[chunk] = self._digest(bytes(obj[lo:hi]))

    def _apply_object_truncate(self, key, size):
        """Cut one stored object to ``size`` bytes, maintaining digests."""
        obj = self._objects.get(key)
        if obj is None or size >= len(obj):
            return
        dig = self._digests.get(key)
        csize = self.costs.integrity_chunk_size
        if dig and size % csize:
            # The cut chunk's surviving head keeps old bytes: verify them
            # before re-digesting the now-shorter chunk.
            chunk = size // csize
            lo = chunk * csize
            hi = min(lo + csize, len(obj))
            want = dig.get(chunk)
            if want is not None and want is not _POISON \
                    and self._digest(bytes(obj[lo:hi])) != want:
                dig[chunk] = _POISON
        del obj[size:]
        self.store_epoch += 1
        self._bump_version(key)
        if dig is not None:
            keep = (size + csize - 1) // csize
            for chunk in [c for c in dig if c >= keep]:
                del dig[chunk]
            if size % csize:
                chunk = size // csize
                if dig.get(chunk) is not _POISON:
                    dig[chunk] = self._digest(bytes(obj[chunk * csize:size]))

    def replica_clean(self, ino, index, offset=None, size=None):
        """Digest-check this replica over a byte range; pure state, no cost.

        Checks the chunks covering ``[offset, offset+size)`` (the whole
        object when ``offset`` is None) against the recorded digests.
        Chunks written before integrity was armed have no digest and are
        adopted (digested as-is) on first check. The checked span extends
        to whatever the digests claim the object holds, so a torn replica
        — shorter than its recorded chunks — fails even though every byte
        it still has is intact. Returns False on any mismatch or poison.
        """
        key = (ino, index)
        obj = self._objects.get(key)
        dig = self._digests.get(key)
        if obj is None:
            # No copy here: clean unless digests claim we should have one
            # (the fully-torn case is handled by drop_object purging both).
            return not dig
        if not dig:
            if self.verify_enabled and len(obj):
                self._record_digests(key, obj, 0, len(obj))
            return True
        csize = self.costs.integrity_chunk_size
        top = max(len(obj), (max(dig) + 1) * csize)
        start = 0 if offset is None else max(offset, 0)
        end = top if offset is None else min(offset + size, top)
        if end <= start:
            return True
        for chunk in range(start // csize, (end - 1) // csize + 1):
            piece = bytes(obj[chunk * csize:(chunk + 1) * csize])
            want = dig.get(chunk)
            if want is None:
                if piece and self.verify_enabled:
                    dig[chunk] = self._digest(piece)
                continue
            if want is _POISON or self._digest(piece) != want:
                return False
        return True

    # -- server-side operations (sim generators) -------------------------

    def read(self, ino, index, offset, size, epoch=None):
        """Serve an object read; returns the bytes (b'' for a hole)."""
        if offset < 0 or size < 0:
            raise InvalidArgument("negative offset/size")
        yield from self._check_up()
        self._check_epoch(epoch)
        started = self.sim.now
        self._enter_op()
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.osd_op)
            obj = self._objects.get((ino, index))
            data = (
                bytes(memoryview(obj)[offset:offset + size])
                if obj is not None else b""
            )
            if data:
                yield from self.device.transfer(len(data))
        finally:
            self._slots.release()
            self._exit_op()
        self.metrics.counter("reads").add(1)
        self.metrics.counter("bytes_read").add(len(data))
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("osd%d" % self.osd_id).histogram(
                "read_service_s"
            ).observe(self.sim.now - started)
        return data

    def _apply_write(self, ino, index, offset, data):
        """Splice one write into the store with full digest bookkeeping."""
        key = (ino, index)
        obj = self._objects.get(key)
        if obj is None:
            obj = self._objects[key] = bytearray()
            self._by_ino.setdefault(ino, set()).add(index)
        end = offset + len(data)
        old_len = len(obj)
        touch_start = min(offset, old_len)
        if self.verify_enabled:
            self._precheck_overwrite(key, obj, touch_start, end)
        if offset > old_len:
            obj.extend(b"\x00" * (offset - old_len))
        obj[offset:end] = data
        self.store_epoch += 1
        self._bump_version(key)
        if self.verify_enabled:
            self._record_digests(key, obj, touch_start, end)

    def write(self, ino, index, offset, data, epoch=None):
        """Apply an object write: journal first, then the data store."""
        if offset < 0:
            raise InvalidArgument("negative offset")
        yield from self._check_up()
        self._check_epoch(epoch)
        started = self.sim.now
        self._enter_op()
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.osd_op)
            # Journal append, then in-place data write.
            yield from self.device.transfer(len(data), write=True)
            yield from self.device.transfer(len(data), write=True)
            self._apply_write(ino, index, offset, data)
        finally:
            self._slots.release()
            self._exit_op()
        self.metrics.counter("writes").add(1)
        self.metrics.counter("bytes_written").add(len(data))
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("osd%d" % self.osd_id).histogram(
                "write_service_s"
            ).observe(self.sim.now - started)
        return len(data)

    def write_vector(self, ino, pieces, epoch=None):
        """Apply several extent writes of one file as a single op.

        ``pieces`` is ``[(index, obj_off, bytes)]`` — the coalesced dirty
        run a flush batched for this OSD. One queue slot, one op charge
        and one journal+data commit cover the batch's total bytes; every
        piece then splices into its object with the same digest
        bookkeeping as a lone :meth:`write`.
        """
        for _index, offset, _data in pieces:
            if offset < 0:
                raise InvalidArgument("negative offset")
        total = sum(len(data) for _index, _off, data in pieces)
        yield from self._check_up()
        self._check_epoch(epoch)
        started = self.sim.now
        self._enter_op()
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.osd_op)
            yield from self.device.transfer(total, write=True)
            yield from self.device.transfer(total, write=True)
            for index, offset, data in pieces:
                self._apply_write(ino, index, offset, data)
        finally:
            self._slots.release()
            self._exit_op()
        self.metrics.counter("writes").add(1)
        self.metrics.counter("vector_writes").add(1)
        self.metrics.counter("vector_pieces").add(len(pieces))
        self.metrics.counter("bytes_written").add(total)
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("osd%d" % self.osd_id).histogram(
                "write_service_s"
            ).observe(self.sim.now - started)
        return total

    def truncate(self, ino, index, size, epoch=None):
        """Truncate one object (used by file truncation)."""
        yield from self._check_up()
        self._check_epoch(epoch)
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.osd_op)
            self._apply_object_truncate((ino, index), size)
        finally:
            self._slots.release()

    def verify_range(self, ino, index, offset=None, size=None):
        """Deep verify: re-read stored bytes and digest-check them.

        Sim generator paying device read + checksum cost over the checked
        span; returns True when the replica passes. The digest comparison
        itself is :meth:`replica_clean`.
        """
        yield from self._check_up()
        started = self.sim.now
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.osd_op)
            obj = self._objects.get((ino, index))
            span = 0
            if obj is not None:
                if offset is None:
                    span = len(obj)
                else:
                    span = max(0, min(offset + size, len(obj)) - max(offset, 0))
            if span:
                yield from self.device.transfer(span)
                yield self.sim.timeout(self.costs.verify_cost(span))
            ok = self.replica_clean(ino, index, offset=offset, size=size)
        finally:
            self._slots.release()
        self.metrics.counter("verifies").add(1)
        if not ok:
            self.metrics.counter("verify_failures").add(1)
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("osd%d" % self.osd_id).histogram(
                "verify_service_s"
            ).observe(self.sim.now - started)
        return ok

    def scrub_meta(self, ino, index):
        """Light-scrub probe: object size + digest fingerprint.

        Metadata-only cost (no byte re-read); replicas whose probes
        disagree are escalated to a deep verify by the scrub daemon.
        """
        yield from self._check_up()
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.scrub_meta_op)
            obj = self._objects.get((ino, index))
            dig = self._digests.get((ino, index)) or {}
            size = len(obj) if obj is not None else -1
            fingerprint = tuple(sorted(
                (chunk, b"!poison" if d is _POISON else d)
                for chunk, d in dig.items()
            ))
        finally:
            self._slots.release()
        self.metrics.counter("scrub_probes").add(1)
        return size, fingerprint

    def apply_truncate(self, ino, index, size):
        """Apply a truncate directly to the store (recovery replay, no cost)."""
        self._apply_object_truncate((ino, index), size)

    def drop_object(self, ino, index):
        """Discard one stored object (stale-copy cleanup on recovery)."""
        if self._objects.pop((ino, index), None) is not None:
            indices = self._by_ino.get(ino)
            if indices is not None:
                indices.discard(index)
            self.store_epoch += 1
        self._digests.pop((ino, index), None)
        self._versions.pop((ino, index), None)

    # -- maintenance (no cost: background purge) -----------------------------

    def purge_ino(self, ino):
        """Drop every object of ``ino`` (async purge after unlink)."""
        for index in self._by_ino.pop(ino, set()):
            self._objects.pop((ino, index), None)
            self._digests.pop((ino, index), None)
            self._versions.pop((ino, index), None)
            self.store_epoch += 1

    def object_size(self, ino, index):
        obj = self._objects.get((ino, index))
        return len(obj) if obj is not None else 0

    @property
    def stored_bytes(self):
        return sum(len(obj) for obj in self._objects.values())

    @property
    def object_count(self):
        return len(self._objects)
