"""Object storage device: the Ceph OSD analogue.

Each OSD owns a ramdisk-backed object store (the testbed stores OSD data
and journal on 24 GB ramdisks) and serves a bounded number of concurrent
operations. A write is journaled before it is applied — both land on the
ramdisk, so writes pay roughly twice the device time of reads, which is
one reason the paper's write workloads exercise the backend harder.

Objects hold *real bytes*: the OSD store is the authoritative copy of all
flushed file data in the simulation.
"""

from repro.common.errors import InvalidArgument, OpTimeout
from repro.hw.disk import RamDisk
from repro.metrics import MetricSet
from repro.sim.sync import Semaphore

__all__ = ["Osd"]


class Osd(object):
    """One object storage daemon with journal + data on a ramdisk.

    An OSD can *crash* (fault injection): the daemon process dies but its
    ramdisk contents survive, exactly like an OSD process kill on the
    testbed. Requests to a crashed OSD hang until the client-side op
    timeout expires, then surface as :class:`OpTimeout` — clients report
    the failure to the monitor and resend against the surviving replicas.
    ``restart()`` brings the daemon back with its stored objects intact.
    """

    def __init__(self, sim, osd_id, costs, device=None):
        self.sim = sim
        self.osd_id = osd_id
        self.costs = costs
        self.device = device if device is not None else RamDisk(
            sim, name="osd%d.ram" % osd_id
        )
        self._slots = Semaphore(sim, costs.osd_concurrency, name="osd%d" % osd_id)
        self._objects = {}  # (ino, index) -> bytearray
        self._by_ino = {}  # ino -> set of indices
        self.crashed = False
        self.metrics = MetricSet("osd%d" % osd_id)

    # -- fault injection -------------------------------------------------

    def crash(self):
        """Kill the OSD daemon; the backing device keeps its objects."""
        self.crashed = True
        self.sim.trace("osd", "crash", osd=self.osd_id)
        self.metrics.counter("crashes").add(1)

    def restart(self):
        """Restart the daemon over the surviving object store."""
        self.crashed = False
        self.sim.trace("osd", "restart", osd=self.osd_id)

    def _check_up(self):
        """Dead-daemon behaviour: silence until the op timeout expires."""
        if self.crashed:
            yield self.sim.timeout(self.costs.op_timeout)
            err = OpTimeout("osd %d is down" % self.osd_id)
            # Let the retry layer blame the right OSD even when the
            # timeout surfaces out of a multi-target write attempt.
            err.osd_id = self.osd_id
            raise err

    # -- server-side operations (sim generators) -------------------------

    def read(self, ino, index, offset, size):
        """Serve an object read; returns the bytes (b'' for a hole)."""
        if offset < 0 or size < 0:
            raise InvalidArgument("negative offset/size")
        yield from self._check_up()
        started = self.sim.now
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.osd_op)
            obj = self._objects.get((ino, index))
            data = bytes(obj[offset:offset + size]) if obj is not None else b""
            if data:
                yield from self.device.transfer(len(data))
        finally:
            self._slots.release()
        self.metrics.counter("reads").add(1)
        self.metrics.counter("bytes_read").add(len(data))
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("osd%d" % self.osd_id).histogram(
                "read_service_s"
            ).observe(self.sim.now - started)
        return data

    def write(self, ino, index, offset, data):
        """Apply an object write: journal first, then the data store."""
        if offset < 0:
            raise InvalidArgument("negative offset")
        yield from self._check_up()
        started = self.sim.now
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.osd_op)
            # Journal append, then in-place data write.
            yield from self.device.transfer(len(data), write=True)
            yield from self.device.transfer(len(data), write=True)
            key = (ino, index)
            obj = self._objects.get(key)
            if obj is None:
                obj = self._objects[key] = bytearray()
                self._by_ino.setdefault(ino, set()).add(index)
            end = offset + len(data)
            if offset > len(obj):
                obj.extend(b"\x00" * (offset - len(obj)))
            obj[offset:end] = data
        finally:
            self._slots.release()
        self.metrics.counter("writes").add(1)
        self.metrics.counter("bytes_written").add(len(data))
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("osd%d" % self.osd_id).histogram(
                "write_service_s"
            ).observe(self.sim.now - started)
        return len(data)

    def truncate(self, ino, index, size):
        """Truncate one object (used by file truncation)."""
        yield from self._check_up()
        yield self._slots.acquire()
        try:
            yield self.sim.timeout(self.costs.osd_op)
            obj = self._objects.get((ino, index))
            if obj is not None:
                del obj[size:]
        finally:
            self._slots.release()

    def apply_truncate(self, ino, index, size):
        """Apply a truncate directly to the store (recovery replay, no cost)."""
        obj = self._objects.get((ino, index))
        if obj is not None:
            del obj[size:]

    def drop_object(self, ino, index):
        """Discard one stored object (stale-copy cleanup on recovery)."""
        if self._objects.pop((ino, index), None) is not None:
            indices = self._by_ino.get(ino)
            if indices is not None:
                indices.discard(index)

    # -- maintenance (no cost: background purge) -----------------------------

    def purge_ino(self, ino):
        """Drop every object of ``ino`` (async purge after unlink)."""
        for index in self._by_ino.pop(ino, set()):
            self._objects.pop((ino, index), None)

    def object_size(self, ino, index):
        obj = self._objects.get((ino, index))
        return len(obj) if obj is not None else 0

    @property
    def stored_bytes(self):
        return sum(len(obj) for obj in self._objects.values())

    @property
    def object_count(self):
        return len(self._objects)
