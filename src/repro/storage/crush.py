"""CRUSH-style deterministic object placement.

Ceph places each object on OSDs by hashing its identity through the CRUSH
function; clients compute placements locally, so no directory service sits
on the data path. We reproduce that property with a stable hash over
``(ino, object_index, replica)``: any client maps an object to the same
primary and replica OSDs without talking to a server.
"""

import hashlib

from repro.common.errors import ConfigError

__all__ = ["CrushMap"]


class CrushMap(object):
    """Deterministic placement of objects onto ``num_osds`` devices."""

    def __init__(self, num_osds, replicas=1):
        if num_osds <= 0:
            raise ConfigError("need at least one OSD")
        if not 1 <= replicas <= num_osds:
            raise ConfigError(
                "replicas=%d impossible with %d OSDs" % (replicas, num_osds)
            )
        self.num_osds = num_osds
        self.replicas = replicas

    def _hash(self, ino, index, attempt):
        payload = ("%d/%d/%d" % (ino, index, attempt)).encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def placement(self, ino, index):
        """The OSD ids holding object ``(ino, index)``, primary first.

        Replica choices are distinct OSDs, selected by rehashing until a
        fresh device appears (CRUSH's collision-retry behaviour).
        """
        chosen = []
        attempt = 0
        while len(chosen) < self.replicas:
            osd = self._hash(ino, index, attempt) % self.num_osds
            attempt += 1
            if osd not in chosen:
                chosen.append(osd)
        return chosen

    def primary(self, ino, index):
        """The primary OSD for an object."""
        return self.placement(ino, index)[0]
