"""CRUSH-style deterministic object placement.

Ceph places each object on OSDs by hashing its identity through the CRUSH
function; clients compute placements locally, so no directory service sits
on the data path. We reproduce that property with a stable hash over
``(ino, object_index, replica)``: any client maps an object to the same
primary and replica OSDs without talking to a server.

The map is mutable: devices can be added, removed and reweighted at
runtime (``add_device`` / ``remove_device`` / ``reweight``), which is how
the cluster grows and drains under the membership lifecycle. Two placement
modes keep both worlds honest:

* **Pristine maps** (never mutated) use the original collision-retry hash
  walk over a fixed device count. Byte-for-byte identical placements with
  the historical implementation — the committed schedule-fingerprint
  baselines and placement-sensitive tests depend on this.
* **Mutated maps** switch to straw2-style weighted rendezvous hashing:
  each device draws an independent "straw" ``log(u) / weight`` per object
  and the longest straws win. Adding, removing or reweighting one device
  only moves the objects that device wins or loses — the minimal-remapping
  property CRUSH's straw2 bucket was designed for.
"""

import hashlib
import math

from repro.common.errors import ConfigError

__all__ = ["CrushMap"]


class CrushMap(object):
    """Deterministic placement of objects onto weighted devices."""

    def __init__(self, num_osds, replicas=1):
        if num_osds <= 0:
            raise ConfigError("need at least one OSD")
        if not 1 <= replicas <= num_osds:
            raise ConfigError(
                "replicas=%d impossible with %d OSDs" % (replicas, num_osds)
            )
        self.replicas = replicas
        #: device id -> weight; insertion order is the historical id order
        self._devices = {osd_id: 1.0 for osd_id in range(num_osds)}
        #: modulus of the legacy hash walk. Frozen at construction: the
        #: pristine placement must not shift when devices are added later.
        self._slots = num_osds
        #: False until the first mutation; gates the placement mode
        self._mutated = False
        #: bumped on every mutation (the monitor folds it into its epoch)
        self.map_version = 0

    # -- device set ----------------------------------------------------

    @property
    def num_osds(self):
        return len(self._devices)

    def __contains__(self, osd_id):
        return osd_id in self._devices

    def devices(self):
        """Device ids currently in the map (positive weight or not)."""
        return list(self._devices)

    def weight(self, osd_id):
        return self._devices.get(osd_id, 0.0)

    def _mutate(self):
        self._mutated = True
        self.map_version += 1

    def _check_capacity(self, exclude=None):
        live = sum(
            1 for osd_id, weight in self._devices.items()
            if weight > 0 and osd_id != exclude
        )
        if live < self.replicas:
            raise ConfigError(
                "mutation would leave %d weighted devices for %d replicas"
                % (live, self.replicas)
            )

    def add_device(self, osd_id=None, weight=1.0):
        """Add a device; returns its id (next free id when omitted)."""
        if weight <= 0:
            raise ConfigError("device weight must be positive")
        if osd_id is None:
            osd_id = max(self._devices, default=-1) + 1
        if osd_id in self._devices:
            raise ConfigError("device %d already mapped" % osd_id)
        self._devices[osd_id] = float(weight)
        self._mutate()
        return osd_id

    def remove_device(self, osd_id):
        """Remove a device; its objects remap onto the survivors."""
        if osd_id not in self._devices:
            raise ConfigError("device %d not in the map" % osd_id)
        self._check_capacity(exclude=osd_id)
        del self._devices[osd_id]
        self._mutate()

    def reweight(self, osd_id, weight):
        """Change a device's weight; 0 drains it without removing the id."""
        if osd_id not in self._devices:
            raise ConfigError("device %d not in the map" % osd_id)
        if weight < 0:
            raise ConfigError("device weight must be non-negative")
        if weight == 0:
            self._check_capacity(exclude=osd_id)
        self._devices[osd_id] = float(weight)
        self._mutate()

    # -- placement ------------------------------------------------------

    def _hash(self, ino, index, attempt):
        payload = ("%d/%d/%d" % (ino, index, attempt)).encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def _straw(self, ino, index, osd_id, weight):
        payload = ("%d/%d/dev%d" % (ino, index, osd_id)).encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=8).digest()
        u = (int.from_bytes(digest, "big") + 1) / 2.0 ** 64
        # log(u) is negative; dividing by a larger weight shrinks its
        # magnitude, so heavier devices draw longer (less negative) straws.
        return math.log(u) / weight

    def _straw_order(self, ino, index):
        scored = [
            (self._straw(ino, index, osd_id, weight), osd_id)
            for osd_id, weight in self._devices.items()
            if weight > 0
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [osd_id for _, osd_id in scored]

    def placement(self, ino, index):
        """The OSD ids holding object ``(ino, index)``, primary first.

        On a pristine map replica choices rehash until a fresh device
        appears (CRUSH's collision-retry behaviour); after a mutation the
        straw2 rendezvous order is used instead.
        """
        if not self._mutated:
            chosen = []
            attempt = 0
            while len(chosen) < self.replicas:
                osd = self._hash(ino, index, attempt) % self._slots
                attempt += 1
                if osd not in chosen:
                    chosen.append(osd)
            return chosen
        return self._straw_order(ino, index)[:self.replicas]

    def primary(self, ino, index):
        """The primary OSD for an object."""
        return self.placement(ino, index)[0]
