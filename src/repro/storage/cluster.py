"""The storage cluster: OSDs + MDS + placement, behind the network fabric.

This is the "server machine" of the testbed: 6 OSDs and 1 MDS in VMs over
ramdisks. Clients interact with it exclusively through the *protocol
methods* here, each of which wraps server work in a network round trip on
the shared fabric — so many clients on the host contend for the same link
and the same OSD queues, exactly like the real deployment.

File data is striped over fixed-size objects (``costs.object_size``);
object placement is computed client-side through the CRUSH map.
"""

from repro.common.errors import (
    RETRYABLE,
    DataCorrupt,
    DataUnavailable,
    InvalidArgument,
    OldEpoch,
    OpTimeout,
)
from repro.metrics import MetricSet
from repro.sim.sync import Semaphore
from repro.storage.crush import CrushMap
from repro.storage.mds import Mds
from repro.storage.monitor import Monitor
from repro.storage.osd import Osd

__all__ = ["CephCluster"]


class CephCluster(object):
    """A Ceph-like cluster reachable over one network fabric."""

    def __init__(self, sim, fabric, costs, num_osds=6, replicas=1):
        self.sim = sim
        self.fabric = fabric
        self.costs = costs
        self.crush = CrushMap(num_osds, replicas=replicas)
        self.osds = [Osd(sim, i, costs) for i in range(num_osds)]
        self._mds = Mds(sim, costs)
        #: metadata-HA coordinator, once enable_mds_ha runs; None keeps
        #: the historical single-MDS shape (and event schedule) exactly.
        self.mds_service = None
        #: client-side MdsMap snapshot (set when HA arms); like _osdmap,
        #: refreshed only on retry boundaries so fencing is observable.
        self._mdsmap = None
        self.monitor = Monitor(self)
        self.metrics = MetricSet("cluster")
        self._cap_clients = {}  # client_id -> client (caps-mode only)
        self._next_client_id = 1
        self._faults_armed = False
        self._integrity_armed = False
        #: membership lifecycle armed (heartbeats, backfill, or a CRUSH
        #: mutation): resilient ops stamp their osdmap epoch and resolve
        #: placement from the client-side map snapshot below.
        self._lifecycle_armed = False
        #: True from the first CRUSH mutation until backfill converges:
        #: placements may name OSDs that do not hold the bytes yet, so
        #: the fast read path must not trust ``crush.primary`` blindly.
        self._remapped = False
        #: the throttled backfill scheduler, once started (see
        #: start_backfill); None means the eager recover() era.
        self.backfill = None
        #: objects with no verified-clean replica left; reads raise
        #: DataCorrupt until scrub or a fresh write clears the entry.
        self.quarantined = set()
        #: the background scrub daemon, once started (see start_scrub)
        self.scrub = None
        self._op_hooks = []  # zero-arg callbacks fired after each data op
        #: completed data ops (reads + writes), drives op-count fault triggers
        self.op_count = 0
        #: RPC attempts currently in flight through the retry machinery;
        #: chaos runs assert this drains to zero at convergence.
        self.inflight_attempts = 0
        #: fan-out inflight window: striped per-object ops dispatched
        #: concurrently per client call are bounded by this semaphore
        #: (the objecter's inflight cap). Capacity 1 degenerates to the
        #: old fully-serial dispatch.
        self._window = Semaphore(
            sim,
            max(1, int(getattr(costs, "client_inflight_ops", 16))),
            name="client_window",
        )
        #: fan-out children currently holding a window slot (gauge feed)
        self._fanout_inflight = 0
        #: peek() assembly memo: (ino, offset, size) -> (witness, bytes).
        #: The witness records which OSD backed each extent and its
        #: store_epoch at assembly time; any byte mutation anywhere on a
        #: backing OSD (including silent fault injection) changes the
        #: epoch and invalidates the entry. See peek().
        self._peek_memo = {}
        #: the client-side osdmap snapshot resilient ops resolve against
        #: and stamp RPCs with. Deliberately NOT refreshed on every
        #: monitor bump — only on retry boundaries (_refresh_map), which
        #: is what makes an OSD's EOLDEPOCH reject observable.
        self._osdmap = self.monitor.get_map()

    @property
    def mds(self):
        """The metadata daemon the single-MDS surface talks to.

        Disarmed this is the one historical daemon; with HA armed it is
        rank 0's current active, so legacy reaches (``.tree``,
        ``.session_epoch``, ``.node_of``) keep working across failover.
        """
        if self.mds_service is not None:
            return self.mds_service.active_daemon(0)
        return self._mds

    def mds_healthy(self):
        """Every metadata rank live and serving (single daemon: up)."""
        if self.mds_service is not None:
            return self.mds_service.healthy()
        return self._mds.available and not self._mds.crashed

    @property
    def degraded(self):
        """True while any OSD is marked down."""
        return bool(self.monitor._down)

    # -- retry machinery (active only under faults/degradation) -----------

    def arm_faults(self):
        """Route every op through the retry/timeout machinery.

        Called by :class:`repro.faults.FaultPlan` on install. Without
        faults armed (and with the cluster healthy) the fast path skips
        the attempt/timeout race entirely, so fault-free experiments keep
        the exact event schedule — and therefore timing — of the
        pre-fault code.
        """
        self._faults_armed = True

    def enable_integrity(self):
        """Arm end-to-end checksums: digest recording + verified reads.

        Guarded exactly like :meth:`arm_faults`: never called on the
        fault-free fast path, so integrity-off runs keep the exact
        pre-integrity event schedule. Once armed, every OSD records
        per-chunk digests on write and every resilient read verifies the
        replica it was served from.
        """
        self._integrity_armed = True
        for osd in self.osds:
            osd.verify_enabled = True

    @property
    def integrity_armed(self):
        return self._integrity_armed

    def arm_lifecycle(self):
        """Arm the membership lifecycle: epoch-stamped resilient ops.

        Called by :meth:`start_backfill`, the monitor's heartbeat starter
        and the CRUSH mutators. Like :meth:`arm_faults`, never invoked on
        the fault-free fast path, so lifecycle-off runs keep the exact
        pre-lifecycle event schedule.
        """
        self._lifecycle_armed = True
        self.monitor.lifecycle = True
        self._osdmap = self.monitor.get_map()

    def enable_mds_ha(self, standbys=1, ranks=1):
        """Arm metadata HA: journaled MDS ranks + standby-replay pool.

        Guarded exactly like :meth:`arm_faults`: never called on the
        fault-free fast path, so HA-off runs keep the exact single-MDS
        event schedule. Once armed, every metadata mutation journals
        through the OSD write path before acking, clients stamp ops with
        the mdsmap epoch (fencing) and op ids (exactly-once resends),
        and the monitor's heartbeat loop drives failover. ``standbys=0``
        journals without a failover pool — the honest-crash substrate
        for in-place ``mds_down`` recovery.
        """
        from repro.storage.mds import MdsService
        if self.mds_service is None:
            self.mds_service = MdsService(self, standbys=standbys,
                                          ranks=ranks)
        else:
            while len(self.mds_service.standby_gids) < standbys:
                self.mds_service.add_standby()
            while self.mds_service.num_ranks < max(1, ranks):
                self.mds_service.split_rank()
        self._mdsmap = self.monitor.mdsmap
        return self.mds_service

    def mds_session_id(self):
        """Allocate a metadata session id (shares the caps id space so
        one client is one principal across both tables)."""
        client_id = self._next_client_id
        self._next_client_id += 1
        return client_id

    def _refresh_mds_map(self):
        """Adopt the monitor's current mdsmap if ours is stale."""
        current = self.monitor.mdsmap
        if current is not None and current is not self._mdsmap:
            self._mdsmap = current
            self.metrics.counter("mdsmap_refreshes").add(1)

    def _mds_target(self, op_name, args):
        """The daemon serving one op under the current mdsmap snapshot."""
        rank = self._mdsmap.rank_for(op_name, args)
        return self.mds_service.daemons[self._mdsmap.gid_of(rank)]

    def start_backfill(self, **kwargs):
        """Create (if needed) and start the throttled backfill scheduler."""
        from repro.storage.backfill import BackfillScheduler
        if self.backfill is None:
            self.backfill = BackfillScheduler(self, **kwargs)
        self.arm_lifecycle()
        self.backfill.start()
        return self.backfill

    def add_osd(self, weight=1.0, backfill=True):
        """Grow the cluster by one OSD at runtime; returns the new OSD.

        The CRUSH mutation remaps a weight-proportional slice of objects
        onto the newcomer; the map epoch bumps so in-flight clients get
        EOLDEPOCH'd into refreshing, and backfill (started unless
        ``backfill=False``) materialises the remapped objects before
        trimming the copies they left behind.
        """
        osd_id = self.crush.add_device(osd_id=len(self.osds), weight=weight)
        osd = Osd(self.sim, osd_id, self.costs)
        osd.verify_enabled = self._integrity_armed
        self.osds.append(osd)
        self.arm_lifecycle()
        self._remapped = True
        self.monitor.note_crush_change("osd_add")
        if backfill:
            self.start_backfill()
        return osd

    def drain_osd(self, osd_id, backfill=True):
        """Remove an OSD from the CRUSH map; its objects remap away.

        The drained OSD keeps serving reads for the objects it still
        holds until backfill copies them to their new acting sets and
        trims them here — a graceful drain, not a failure.
        """
        self.crush.remove_device(osd_id)
        self.arm_lifecycle()
        self._remapped = True
        self.monitor.note_crush_change("osd_drain")
        if backfill:
            self.start_backfill()

    def note_backfill_clean(self):
        """Backfill converged: placements are materialised everywhere."""
        self._remapped = False

    def _refresh_map(self):
        """Adopt the monitor's current osdmap if ours is stale."""
        if self._osdmap.epoch < self.monitor.epoch:
            self._osdmap = self.monitor.get_map()
            self.metrics.counter("map_refreshes").add(1)
            obs = self.sim.observer
            if obs is not None:
                obs.metrics("recovery").counter("map_refreshes").add(1)

    @property
    def resilient(self):
        """True when ops must go through the retry/timeout machinery."""
        return (
            self._faults_armed
            or self._integrity_armed
            or self._lifecycle_armed
            or self.degraded
            or self.mds_service is not None
            or not self._mds.available
            or self._mds.crashed
            or any(osd.crashed for osd in self.osds)
        )

    def add_op_hook(self, callback):
        """Register a zero-arg callback fired after every data op.

        Fault plans use this for op-count triggers ("crash OSD 3 after
        500 ops").
        """
        self._op_hooks.append(callback)

    def _notify_op(self):
        self.op_count += 1
        for callback in list(self._op_hooks):
            callback()

    def _attempt(self, gen):
        """Run one RPC attempt; returns ``(ok, value_or_error)``.

        Retryable failures are folded into the tuple so an attempt
        abandoned by the timeout race can never surface an unobserved
        exception and abort the whole simulation.
        """
        self.inflight_attempts += 1
        try:
            value = yield from gen
            return (True, value)
        except RETRYABLE as err:
            return (False, err)
        finally:
            self.inflight_attempts -= 1

    def _retry(self, what, resolve, timeout_scale=1):
        """Retry loop: race each attempt against the client op timeout.

        ``resolve`` re-resolves placement *per attempt* (epoch-aware
        resend) and returns ``(report_osd, gen)``: the attempt generator
        plus the OSD to blame if the race timer — rather than the attempt
        itself — declares the attempt lost (``None`` when blame would be
        ambiguous, e.g. multi-replica writes). An attempt that loses the
        race is abandoned, never interrupted: interrupting work blocked
        inside a server-side semaphore would leak the slot forever, while
        an abandoned attempt completes harmlessly against idempotent
        object state.
        """
        delay = self.costs.retry_backoff
        last_err = None
        for attempt in range(self.costs.retry_attempts):
            if attempt:
                self.metrics.counter("retries").add(1)
                self.metrics.counter("retries_%s" % what).add(1)
                self.sim.trace("cluster", "retry", what=what, attempt=attempt,
                               error=type(last_err).__name__)
                yield self.sim.timeout(delay)
                delay = min(delay * 2.0, self.costs.retry_backoff_max)
                if self._lifecycle_armed:
                    # Epoch-aware resend: refresh the osdmap snapshot so
                    # resolve() re-resolves against current membership.
                    self._refresh_map()
            try:
                report_osd, gen = resolve()
            except RETRYABLE as err:
                last_err = err
                continue
            proc = self.sim.spawn(self._attempt(gen), name="rpc:%s" % what)
            timer = self.sim.timeout(self.costs.op_timeout * timeout_scale)
            index, value = yield self.sim.any_of([proc, timer])
            if index == 0:
                ok, outcome = value
                if ok:
                    return outcome
                last_err = outcome
            else:
                last_err = OpTimeout("%s timed out" % what)
                self.metrics.counter("op_timeouts").add(1)
                self.metrics.counter("op_timeouts_%s" % what).add(1)
            if isinstance(last_err, OldEpoch):
                # The OSD holds a newer map than the stamp we sent; no
                # blame — refresh immediately so the next attempt (after
                # its backoff) resolves placement from current membership.
                self.metrics.counter("stale_map_rejects").add(1)
                obs = self.sim.observer
                if obs is not None:
                    obs.metrics("recovery").counter(
                        "stale_map_rejects"
                    ).add(1)
                self._refresh_map()
            if isinstance(last_err, OpTimeout):
                blame = getattr(last_err, "osd_id", report_osd)
                if blame is not None:
                    self.monitor.report_failure(blame)
        raise last_err

    def _object_unreachable(self, ino, index):
        """Stored bytes exist, but on no live OSD (data currently lost).

        Distinguishes *lost* data (every replica on a crashed or down
        OSD → :class:`DataUnavailable`) from a genuine hole (no replica
        stored anywhere → reads as zeros/short, never an error).
        """
        key = (ino, index)
        stored = False
        for osd in self.osds:
            if key in osd._objects:
                stored = True
                if not osd.crashed and self.monitor.is_up(osd.osd_id) \
                        and not self.monitor.is_stale(osd.osd_id, key):
                    return False
        return stored

    def _record_stale(self, ino, index):
        """Mark dead OSDs' copies of an object stale after a resend.

        A write that routed around a dead OSD leaves that OSD's surviving
        device copy outdated; the monitor drops those copies on
        ``mark_up`` (the pg-log/backfill analogue) so a restarted OSD can
        never serve stale bytes.
        """
        key = (ino, index)
        for osd in self.osds:
            if not (osd.crashed or not self.monitor.is_up(osd.osd_id)):
                continue
            if (key in osd._objects
                    or osd.osd_id in self.crush.placement(ino, index)):
                self.monitor.record_stale(osd.osd_id, key)
        if self._lifecycle_armed and self._remapped:
            # Remapping leaves live copies outside the acting set (on a
            # drained OSD, or stranded by a straw reshuffle). The write
            # that just landed on the acting members makes those copies
            # outdated: mark them so degraded reads never serve them.
            # Safe because the write succeeded on every acting member.
            try:
                acting = set(self.monitor.acting_set(ino, index))
            except DataUnavailable:
                return
            for osd in self.osds:
                if osd.osd_id in acting or osd.crashed \
                        or not self.monitor.is_up(osd.osd_id):
                    continue
                if key in osd._objects:
                    self.monitor.record_stale(osd.osd_id, key)

    def _read_target(self, ino, index, exclude=(), osdmap=None):
        """The OSD id to read an object from, or ``None`` when no live
        OSD can serve it.

        Honours failures (degraded reads fall back to any live holder)
        and skips ``exclude`` (replicas already rejected by checksum
        verification) as well as known-stale copies (a rejoined OSD must
        not serve bytes a write superseded while it was away). The hole
        fallback — no live OSD stores the object — picks a live,
        non-crashed acting member so the read returns zeros; it never
        targets a dead daemon just because CRUSH named it, which would be
        a doomed RPC (the caller surfaces :class:`DataUnavailable`
        instead). With ``osdmap`` given, placement resolves against that
        snapshot (the epoch-stamped lifecycle path).
        """
        if not self.degraded and not self._remapped and not exclude:
            primary = self.crush.primary(ino, index)
            if not (self._lifecycle_armed
                    and self.monitor.is_stale(primary, (ino, index))):
                return primary
            # The primary rejoined with a known-stale copy that backfill
            # has not refreshed yet: fall through to a current holder.
        monitor = self.monitor
        if osdmap is None:
            osdmap = monitor.get_map()
        acting = osdmap.acting_set(ino, index)
        for osd_id in acting:
            if osd_id not in exclude \
                    and (ino, index) in self.osds[osd_id]._objects \
                    and not monitor.is_stale(osd_id, (ino, index)):
                return osd_id
        for osd_id in monitor.holders(ino, index):
            if osd_id not in exclude:
                return osd_id
        for osd_id in acting:
            if osd_id not in exclude and not self.osds[osd_id].crashed:
                return osd_id
        return None

    def _write_targets(self, ino, index, osdmap=None):
        if not self.degraded and not self._remapped:
            return self.crush.placement(ino, index)
        if osdmap is None:
            osdmap = self.monitor.get_map()
        return osdmap.acting_set(ino, index)

    # -- object striping -------------------------------------------------

    def object_extents(self, offset, size):
        """Split a byte range into per-object ``(index, obj_off, length)``."""
        if offset < 0 or size < 0:
            raise InvalidArgument("negative offset/size")
        extents = []
        object_size = self.costs.object_size
        position = offset
        remaining = size
        while remaining > 0:
            index = position // object_size
            obj_off = position % object_size
            length = min(object_size - obj_off, remaining)
            extents.append((index, obj_off, length))
            position += length
            remaining -= length
        return extents

    # -- fan-out dispatch --------------------------------------------------

    def _windowed(self, gen):
        """Run one fan-out child under the inflight window.

        Failures fold into the returned ``(ok, value_or_error)`` tuple —
        a sibling's failure must never leave this child as an abandoned
        process whose late exception would abort the whole simulation
        (see :meth:`_attempt` for the same pattern on the retry path).
        """
        yield self._window.acquire()
        self._fanout_inflight += 1
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("dispatch").gauge("inflight").set(
                self._fanout_inflight
            )
        try:
            value = yield from gen
            return (True, value)
        except Exception as err:
            return (False, err)
        finally:
            self._fanout_inflight -= 1
            if obs is not None:
                obs.metrics("dispatch").gauge("inflight").set(
                    self._fanout_inflight
                )
            self._window.release()

    def _dispatch(self, jobs, what):
        """Run per-object job generators concurrently; returns their
        results in job order.

        A single job runs inline — no spawn, no window — so single-object
        ops keep the exact pre-fan-out event schedule. Multiple jobs
        spawn one child each, bounded by ``costs.client_inflight_ops``;
        every child settles (fold, never raise) before the first failure,
        in dispatch order, is re-raised — so no child is ever abandoned
        mid-RPC holding a server slot.
        """
        if len(jobs) == 1:
            return [(yield from jobs[0])]
        obs = self.sim.observer
        if obs is not None:
            obs.metrics("dispatch").histogram("width").observe(len(jobs))
        children = [
            self.sim.spawn(self._windowed(gen), name="fanout:%s" % what)
            for gen in jobs
        ]
        outcomes = yield self.sim.all_of(children)
        results = []
        failure = None
        for ok, value in outcomes:
            results.append(value if ok else None)
            if not ok and failure is None:
                failure = value
        if failure is not None:
            raise failure
        return results

    # -- data path (client-callable generators) ---------------------------------

    def read_extent(self, ino, offset, size):
        """Fetch ``[offset, offset+size)`` of file ``ino`` from the OSDs.

        Per-object reads of a striped range fan out concurrently under
        the inflight window. Returns the bytes actually stored (holes
        read as zeros only within stored objects; fully absent tails
        return shorter data). When every replica of a stored object sits
        on a crashed or down OSD, the retries exhaust and
        :class:`DataUnavailable` (EIO) surfaces — never silently-empty
        data.
        """
        resilient = self.resilient
        jobs = []
        for index, obj_off, length in self.object_extents(offset, size):
            if resilient:
                jobs.append(self._resilient_read(ino, index, obj_off, length))
            else:
                jobs.append(self._plain_read(ino, index, obj_off, length))
        parts = yield from self._dispatch(jobs, "read")
        self.metrics.counter("read_bytes").add(size)
        self._notify_op()
        return b"".join(parts)

    def _plain_read(self, ino, index, obj_off, length):
        """One fast-path object read (healthy cluster, no retry race)."""
        osd_id = self._read_target(ino, index)
        return (yield from self.fabric.rpc(
            self.osds[osd_id].read(ino, index, obj_off, length),
            send_bytes=0,
            recv_bytes=length,
            edge="osd%d" % osd_id,
        ))

    def _resilient_read(self, ino, index, obj_off, length):
        if self._integrity_armed:
            return (yield from self._verified_read(ino, index, obj_off, length))

        def resolve():
            osdmap = self._osdmap if self._lifecycle_armed else None
            epoch = osdmap.epoch if osdmap is not None else None
            if self._object_unreachable(ino, index):
                raise DataUnavailable(
                    "no live replica of object (%d, %d)" % (ino, index)
                )
            osd_id = self._read_target(ino, index, osdmap=osdmap)
            if osd_id is None:
                raise DataUnavailable(
                    "no live OSD can serve object (%d, %d)" % (ino, index)
                )
            gen = self.fabric.rpc(
                self.osds[osd_id].read(ino, index, obj_off, length,
                                       epoch=epoch),
                send_bytes=0,
                recv_bytes=length,
                edge="osd%d" % osd_id,
            )
            return osd_id, gen

        return (yield from self._retry("read", resolve))

    def _verified_read(self, ino, index, obj_off, length):
        """Checksum-verified read: replica failover plus read-repair.

        The bytes served are digest-verified against the replica they
        came from (a separate RPC, *outside* the attempt/timeout race —
        :class:`DataCorrupt` must never become an abandoned attempt's
        unobserved exception). A replica failing verification is set
        aside, the read fails over to the next copy, and the corrupt
        replica is repaired in the background from the verified one.
        Only when every live copy fails verification does
        :class:`DataCorrupt` (EIO) surface — bad bytes are never silently
        returned.
        """
        rejected = set()
        served_by = [None]

        def resolve():
            osdmap = self._osdmap if self._lifecycle_armed else None
            epoch = osdmap.epoch if osdmap is not None else None
            if self._object_unreachable(ino, index):
                raise DataUnavailable(
                    "no live replica of object (%d, %d)" % (ino, index)
                )
            osd_id = self._read_target(ino, index, exclude=rejected,
                                       osdmap=osdmap)
            if osd_id is None:
                raise DataUnavailable(
                    "no live OSD can serve object (%d, %d)" % (ino, index)
                )
            served_by[0] = osd_id
            gen = self.fabric.rpc(
                self.osds[osd_id].read(ino, index, obj_off, length,
                                       epoch=epoch),
                send_bytes=0,
                recv_bytes=length,
                edge="osd%d" % osd_id,
            )
            return osd_id, gen

        verify_redos = 0
        while True:
            data = yield from self._retry("read", resolve)
            osd_id = served_by[0]
            try:
                clean = yield from self.fabric.rpc(
                    self.osds[osd_id].verify_range(
                        ino, index, offset=obj_off, size=length
                    ),
                    send_bytes=0,
                    recv_bytes=64,
                    edge="osd%d" % osd_id,
                )
            except RETRYABLE as err:
                # The OSD or fabric died mid-verification: the bytes in
                # hand have unknown provenance, so back off and redo the
                # whole read against the then-current map.
                verify_redos += 1
                if verify_redos >= self.costs.retry_attempts:
                    raise err
                yield self.sim.timeout(self.costs.retry_backoff)
                continue
            if clean:
                # a fresh overwrite makes a quarantined object whole again
                self.quarantined.discard((ino, index))
                if rejected:
                    self.sim.spawn(
                        self._read_repair(ino, index, frozenset(rejected)),
                        name="read-repair",
                    )
                return data
            rejected.add(osd_id)
            self.metrics.counter("checksum_failures").add(1)
            self.sim.trace("cluster", "checksum_fail", ino=ino, index=index,
                           osd=osd_id)
            obs = self.sim.observer
            if obs is not None:
                obs.metrics("integrity").counter("checksum_failures").add(1)
            remaining = [
                holder for holder in self.monitor.holders(ino, index)
                if holder not in rejected
            ]
            if not remaining:
                self._quarantine(ino, index)
                raise DataCorrupt(
                    "object (%d, %d): every replica fails checksum "
                    "verification" % (ino, index)
                )

    def _read_repair(self, ino, index, bad):
        """Background read-repair of replicas that failed verification."""
        try:
            repaired = yield from self.monitor.repair_object(ino, index, bad)
        except RETRYABLE:
            self.metrics.counter("repair_deferred").add(1)
            return
        if repaired:
            self.metrics.counter("read_repairs").add(repaired)
            obs = self.sim.observer
            if obs is not None:
                obs.metrics("integrity").counter("read_repairs").add(repaired)

    def _quarantine(self, ino, index):
        """Mark an object as having no verified-clean replica."""
        if (ino, index) not in self.quarantined:
            self.quarantined.add((ino, index))
            self.metrics.counter("quarantined").add(1)
            self.sim.trace("cluster", "quarantine", ino=ino, index=index)
            obs = self.sim.observer
            if obs is not None:
                obs.metrics("integrity").counter("quarantined").add(1)

    def integrity_errors(self):
        """Corrupt replicas on live OSDs: ``[(osd_id, ino, index)]``.

        Zero-cost sweep over recorded digests (no sim events); the chaos
        harness asserts this is empty at convergence.
        """
        errors = []
        for osd in self.osds:
            if osd.crashed or not self.monitor.is_up(osd.osd_id):
                continue
            for key in sorted(osd._objects):
                ino, index = key
                if not osd.replica_clean(ino, index):
                    errors.append((osd.osd_id, ino, index))
        return errors

    def start_scrub(self, **kwargs):
        """Create (if needed) and start the background scrub daemon."""
        from repro.storage.scrub import ScrubDaemon
        if self.scrub is None:
            self.scrub = ScrubDaemon(self, **kwargs)
        self.scrub.start()
        return self.scrub

    def write_extent(self, ino, offset, data):
        """Write ``data`` at ``offset`` of file ``ino`` to all replicas.

        Striped writes fan out per object under the inflight window; on
        the fast path replica pushes are independent leaf jobs too, so
        distinct OSDs absorb the copies concurrently. Both the plain and
        the resilient path dispatch through :meth:`_dispatch`.
        """
        resilient = self.resilient
        position = 0
        # Slice every piece up front through one memoryview (single copy
        # each) and release it before the first yield, so a caller-owned
        # bytearray is never buffer-locked across a suspension.
        view = memoryview(data)
        sliced = []
        for index, obj_off, length in self.object_extents(offset, len(data)):
            sliced.append((index, obj_off, bytes(view[position:position + length])))
            position += length
        view.release()
        if resilient:
            jobs = [
                self._resilient_write(ino, index, obj_off, piece)
                for index, obj_off, piece in sliced
            ]
        else:
            # Flat object x replica leaf RPCs: idempotent and order-free,
            # so one windowed dispatch covers stripe and replica fan-out
            # without nesting window acquisitions (which could deadlock).
            jobs = [
                self._push_replica(ino, index, obj_off, piece, osd_id)
                for index, obj_off, piece in sliced
                for osd_id in self._write_targets(ino, index)
            ]
        yield from self._dispatch(jobs, "write")
        self.metrics.counter("write_bytes").add(len(data))
        self._notify_op()
        return len(data)

    def _push_replica(self, ino, index, obj_off, piece, osd_id, epoch=None):
        """One replica push (epoch-stamped on the lifecycle path)."""
        return (yield from self.fabric.rpc(
            self.osds[osd_id].write(ino, index, obj_off, piece, epoch=epoch),
            send_bytes=len(piece),
            recv_bytes=0,
            edge="osd%d" % osd_id,
        ))

    def _pull_before_write(self, ino, index, targets, spans):
        """Recovery-on-write: materialise the object on copy-less targets.

        A partial overwrite sent to an acting member that never held the
        object would splice onto zero-fill, and a degraded read served
        from that member later would return fabricated zeros for the
        untouched range. Before applying such a write, push the current
        object from a surviving holder onto every acting target lacking
        a current copy. ``spans`` is ``[(obj_off, length)]`` of the
        pieces about to land; a span covering the whole stored object
        makes the pull unnecessary. Lifecycle path only.
        """
        key = (ino, index)
        monitor = self.monitor
        holders = set(monitor.holders(ino, index))
        if not holders:
            return  # first write anywhere: the object is being created
        size = max(self.osds[h].object_size(ino, index) for h in holders)
        if any(off == 0 and off + length >= size for off, length in spans):
            return  # the write fully redefines the object
        for osd_id in targets:
            if osd_id in holders or self.osds[osd_id].crashed:
                continue
            source = monitor._pick_source(ino, index)
            if source is None or source == osd_id:
                continue
            yield from monitor._push_object(ino, index, source, osd_id)

    def _fanned_replicas(self, pushes):
        """Run replica-push generators concurrently inside one attempt.

        Children fold their own failures via :meth:`_attempt` (so an
        attempt abandoned by the timeout race can never strand a child
        whose late exception aborts the sim), every push settles before
        the first error re-raises, and rewriting a replica stays
        idempotent — the retry loop simply redoes the whole set.
        """
        if len(pushes) == 1:
            return (yield from pushes[0])
        children = [
            self.sim.spawn(self._attempt(gen), name="replica-push")
            for gen in pushes
        ]
        outcomes = yield self.sim.all_of(children)
        for ok, value in outcomes:
            if not ok:
                raise value
        return outcomes[0][1]

    def _resilient_write(self, ino, index, obj_off, piece):
        """Replicated object write with per-attempt target re-resolution.

        Each attempt pushes the *current* target set concurrently; a
        mid-attempt failure retries the whole set (rewriting a replica is
        idempotent: same bytes, same offset). The race timeout keeps the
        conservative replica scaling — a degraded backend can still
        serialise the copies behind one slow OSD.
        """
        def resolve():
            osdmap = self._osdmap if self._lifecycle_armed else None
            epoch = osdmap.epoch if osdmap is not None else None
            targets = self._write_targets(ino, index, osdmap=osdmap)
            if len(targets) < self.costs.pool_min_size:
                raise DataUnavailable(
                    "acting set of (%d, %d) below min_size %d"
                    % (ino, index, self.costs.pool_min_size)
                )

            def attempt():
                if osdmap is not None:
                    yield from self._pull_before_write(
                        ino, index, targets, [(obj_off, len(piece))]
                    )
                yield from self._fanned_replicas([
                    self._push_replica(ino, index, obj_off, piece, osd_id,
                                       epoch=epoch)
                    for osd_id in targets
                ])
                return len(piece)

            report = targets[0] if len(targets) == 1 else None
            return report, attempt()

        written = yield from self._retry(
            "write", resolve, timeout_scale=self.crush.replicas
        )
        self._record_stale(ino, index)
        return written

    def write_vector(self, ino, extents):
        """Write many dirty extents of one file in a single fan-out.

        ``extents`` is ``[(offset, bytes)]`` — a flush batch. Extents are
        split at object boundaries and grouped per target OSD; each group
        ships as *one* vectored RPC (one request, one queue slot, one
        journal+data commit covering the group's total bytes) instead of
        one RPC per dirty block. Groups dispatch concurrently under the
        inflight window. Returns the total bytes written.
        """
        pieces_by_object = {}  # index -> [(obj_off, bytes)]
        total = 0
        for offset, data in extents:
            position = 0
            view = memoryview(data)
            for index, obj_off, length in self.object_extents(offset, len(data)):
                pieces_by_object.setdefault(index, []).append(
                    (obj_off, bytes(view[position:position + length]))
                )
                position += length
            view.release()
            total += len(data)
        if not pieces_by_object:
            return 0
        if self.resilient:
            # Per-object retry keeps blame, resend and stale-marking at
            # object granularity, exactly like single-extent writes.
            jobs = [
                self._resilient_write_vector(ino, index, pieces)
                for index, pieces in sorted(pieces_by_object.items())
            ]
        else:
            groups = {}  # osd_id -> [(index, obj_off, bytes)]
            for index, pieces in sorted(pieces_by_object.items()):
                for osd_id in self._write_targets(ino, index):
                    groups.setdefault(osd_id, []).extend(
                        (index, obj_off, piece) for obj_off, piece in pieces
                    )
            jobs = [
                self._push_vector(ino, osd_id, chunk)
                for osd_id, chunk in sorted(groups.items())
            ]
        yield from self._dispatch(jobs, "writev")
        self.metrics.counter("write_bytes").add(total)
        self._notify_op()
        return total

    def _push_vector(self, ino, osd_id, pieces, epoch=None):
        """One vectored push: many pieces, one RPC, one commit."""
        nbytes = sum(len(piece) for _index, _off, piece in pieces)
        return (yield from self.fabric.rpc(
            self.osds[osd_id].write_vector(ino, pieces, epoch=epoch),
            send_bytes=nbytes,
            recv_bytes=0,
            edge="osd%d" % osd_id,
        ))

    def _resilient_write_vector(self, ino, index, pieces):
        """Vectored write of one object's pieces through the retry race."""
        chunk = [(index, obj_off, piece) for obj_off, piece in pieces]
        nbytes = sum(len(piece) for _off, piece in pieces)

        def resolve():
            osdmap = self._osdmap if self._lifecycle_armed else None
            epoch = osdmap.epoch if osdmap is not None else None
            targets = self._write_targets(ino, index, osdmap=osdmap)
            if len(targets) < self.costs.pool_min_size:
                raise DataUnavailable(
                    "acting set of (%d, %d) below min_size %d"
                    % (ino, index, self.costs.pool_min_size)
                )

            def attempt():
                if osdmap is not None:
                    yield from self._pull_before_write(
                        ino, index, targets,
                        [(obj_off, len(piece)) for obj_off, piece in pieces],
                    )
                yield from self._fanned_replicas([
                    self._push_vector(ino, osd_id, chunk, epoch=epoch)
                    for osd_id in targets
                ])
                return nbytes

            report = targets[0] if len(targets) == 1 else None
            return report, attempt()

        written = yield from self._retry(
            "write", resolve, timeout_scale=self.crush.replicas
        )
        self._record_stale(ino, index)
        return written

    def truncate(self, ino, size):
        """Truncate the object set of ``ino`` to ``size`` bytes.

        A dead OSD's copy is truncated directly on its device, without
        cost: the operation lands in the pg log and replays during
        recovery, so a restarted OSD can never resurrect bytes past EOF.
        """
        object_size = self.costs.object_size
        keep_objects = (size + object_size - 1) // object_size
        for osd in self.osds:
            dead = osd.crashed or not self.monitor.is_up(osd.osd_id)
            stale = [
                (i, o) for (i, o) in list(osd._objects) if i == ino
            ]
            for _ino, index in stale:
                if index >= keep_objects:
                    if dead:
                        osd.apply_truncate(ino, index, 0)
                    else:
                        yield from self.fabric.rpc(
                            osd.truncate(ino, index, 0),
                            send_bytes=0, recv_bytes=0,
                            edge="osd%d" % osd.osd_id,
                        )
                elif index == keep_objects - 1 and size % object_size:
                    if dead:
                        osd.apply_truncate(ino, index, size % object_size)
                    else:
                        yield from self.fabric.rpc(
                            osd.truncate(ino, index, size % object_size),
                            send_bytes=0,
                            recv_bytes=0,
                            edge="osd%d" % osd.osd_id,
                        )

    def peek(self, ino, offset, size):
        """Zero-cost assembly of stored bytes (cache-hit reads).

        A client that holds a range resident in its cache already paid the
        network/OSD cost when it fetched the range; re-reading it costs
        nothing, so cache hits read the authoritative object store
        directly. Holes and unwritten tails read as zeros.
        """
        extents = self.object_extents(offset, size)
        sources = [
            self._peek_source(ino, index, obj_off, length)
            for index, obj_off, length in extents
        ]
        # Cache-hit reads re-assemble the same unchanged ranges thousands
        # of times per run; memoise the immutable result, validated by a
        # witness of (osd, store_epoch) per extent. The source choice is
        # recomputed on every call, so replica failover and digest-driven
        # source changes refresh the entry even with no byte mutation.
        witness = tuple(
            (osd.osd_id, osd.store_epoch) if osd is not None else (-1, -1)
            for osd in sources
        )
        key = (ino, offset, size)
        cached = self._peek_memo.get(key)
        if cached is not None and cached[0] == witness:
            return cached[1]
        parts = []
        for (index, obj_off, length), osd in zip(extents, sources):
            obj = osd._objects.get((ino, index)) if osd is not None else None
            if obj is None:
                parts.append(b"\x00" * length)
                continue
            # Slice through a memoryview: one copy instead of three
            # (bytearray slice -> bytes -> padded concat) on the cache-hit
            # read path.
            piece = bytes(memoryview(obj)[obj_off:obj_off + length])
            if len(piece) < length:
                piece += b"\x00" * (length - len(piece))
            parts.append(piece)
        data = parts[0] if len(parts) == 1 else b"".join(parts)
        if len(self._peek_memo) >= 256:
            self._peek_memo.clear()
        self._peek_memo[key] = (witness, data)
        return data

    def _peek_source(self, ino, index, obj_off, length):
        """The OSD whose store backs a zero-cost peek of one extent.

        A cache hit models re-reading the client's resident copy, which
        was verified when it was fetched — so with integrity armed the
        peek prefers a replica whose digests still pass over the peeked
        range, falling back to the primary's bytes only when every copy
        is suspect (the client's RAM copy cannot rot with the backend).
        """
        target = self._read_target(ino, index)
        if not self._integrity_armed:
            return self.osds[target] if target is not None else None
        candidates = [] if target is None else [target]
        candidates += [
            holder for holder in self.monitor.holders(ino, index)
            if holder != target
        ]
        for osd_id in candidates:
            if self.osds[osd_id].replica_clean(ino, index, obj_off, length):
                return self.osds[osd_id]
        return self.osds[target] if target is not None else None

    def purge(self, ino):
        """Background object deletion after unlink (no client-visible cost)."""
        for osd in self.osds:
            osd.purge_ino(ino)

    # -- capabilities (caps-mode clients) -------------------------------------------

    def register_client(self, client):
        """Register a caps-mode client; returns its client id."""
        client_id = self._next_client_id
        self._next_client_id += 1
        self._cap_clients[client_id] = client
        return client_id

    def acquire_caps(self, client_id, ino, want):
        """Grant ``want`` caps on ``ino``, revoking conflicting holders.

        Sim generator. The conflicting holders' revocation handlers run to
        completion (flushing dirty data, invalidating caches) before the
        grant commits — so the caller pays the coherence latency, exactly
        like a CephFS open racing a writer.
        """
        conflicts = yield from self.mds_call(
            "caps_conflicts", ino, client_id, want
        )
        if conflicts:
            pending = []
            for holder_id, caps in conflicts:
                holder = self._cap_clients.get(holder_id)
                if holder is None:
                    continue
                pending.append(self.sim.spawn(
                    holder.handle_cap_revoke(ino, caps),
                    name="cap-revoke",
                ))
            if pending:
                yield self.sim.all_of(pending)
        held = yield from self.mds_call(
            "caps_commit", ino, client_id, want, conflicts
        )
        self.metrics.counter("caps_grants").add(1)
        return held

    # -- metadata path ------------------------------------------------------------

    def mds_call(self, op_name, *args, **kwargs):
        """Run an MDS operation over the network; returns its result."""
        if self.resilient:
            inner = self._mds_retry(op_name, args, kwargs)
        else:
            op = getattr(self.mds, op_name)
            inner = self.fabric.rpc(
                op(*args, **kwargs), send_bytes=256, recv_bytes=256,
                edge="mds",
            )
        obs = self.sim.observer
        if obs is None:
            return inner
        return self._observed_mds_call(op_name, inner, obs)

    def _observed_mds_call(self, op_name, inner, obs):
        """Time one MDS round trip: a span on the "net" track plus a
        service-time histogram (runs only with an observer attached)."""
        span = obs.span(None, "mds.%s" % op_name, "mds")
        try:
            result = yield from inner
        finally:
            span.end()
        obs.metrics("mds").histogram("service_s").observe(span.duration)
        return result

    def _mds_retry(self, op_name, args, kwargs):
        """Backed-off MDS resend: at-least-once metadata semantics.

        Only transport-level failures (:data:`RETRYABLE`) are retried;
        filesystem errors (``FileNotFound``, ``FileExists``, …) are real
        answers and propagate immediately. No race is needed here — a
        dead MDS raises its own :class:`OpTimeout` after the detection
        window.

        With metadata HA armed the target daemon is re-resolved *per
        attempt* through the client's mdsmap snapshot — refreshed only on
        retry boundaries, so a deposed active observably fences a stale
        op (:class:`OldEpoch`) before the resend re-routes to the
        promoted standby — and every op is stamped with the snapshot's
        epoch. Client op-id stamps (exactly-once dedup) ride through in
        ``kwargs`` untouched.
        """
        service = self.mds_service
        edge = "mds"
        if service is None:
            op = getattr(self._mds, op_name)
        delay = self.costs.retry_backoff
        last_err = None
        for attempt in range(self.costs.retry_attempts):
            if attempt:
                self.metrics.counter("mds_retries").add(1)
                self.sim.trace("cluster", "mds_retry", op=op_name,
                               attempt=attempt,
                               error=type(last_err).__name__)
                yield self.sim.timeout(delay)
                delay = min(delay * 2.0, self.costs.retry_backoff_max)
                if service is not None:
                    self._refresh_mds_map()
            if service is not None:
                daemon = self._mds_target(op_name, args)
                op = getattr(daemon, op_name)
                kwargs["map_epoch"] = self._mdsmap.epoch
                edge = "mds.%d" % daemon.gid
            try:
                return (yield from self.fabric.rpc(
                    op(*args, **kwargs), send_bytes=256, recv_bytes=256,
                    edge=edge,
                ))
            except OldEpoch as err:
                self.metrics.counter("mds_stale_map_rejects").add(1)
                last_err = err
            except RETRYABLE as err:
                last_err = err
        raise last_err

    # -- reporting ---------------------------------------------------------------

    @property
    def stored_bytes(self):
        return sum(osd.stored_bytes for osd in self.osds)

    def file_bytes(self, ino):
        """Total stored bytes of a file across OSDs (test helper)."""
        return sum(
            osd.object_size(ino, index)
            for osd in self.osds
            for (obj_ino, index) in list(osd._objects)
            if obj_ino == ino
        )
