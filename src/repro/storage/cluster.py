"""The storage cluster: OSDs + MDS + placement, behind the network fabric.

This is the "server machine" of the testbed: 6 OSDs and 1 MDS in VMs over
ramdisks. Clients interact with it exclusively through the *protocol
methods* here, each of which wraps server work in a network round trip on
the shared fabric — so many clients on the host contend for the same link
and the same OSD queues, exactly like the real deployment.

File data is striped over fixed-size objects (``costs.object_size``);
object placement is computed client-side through the CRUSH map.
"""

from repro.common.errors import InvalidArgument
from repro.metrics import MetricSet
from repro.storage.crush import CrushMap
from repro.storage.mds import Mds
from repro.storage.monitor import Monitor
from repro.storage.osd import Osd

__all__ = ["CephCluster"]


class CephCluster(object):
    """A Ceph-like cluster reachable over one network fabric."""

    def __init__(self, sim, fabric, costs, num_osds=6, replicas=1):
        self.sim = sim
        self.fabric = fabric
        self.costs = costs
        self.crush = CrushMap(num_osds, replicas=replicas)
        self.osds = [Osd(sim, i, costs) for i in range(num_osds)]
        self.mds = Mds(sim, costs)
        self.monitor = Monitor(self)
        self.metrics = MetricSet("cluster")
        self._cap_clients = {}  # client_id -> client (caps-mode only)
        self._next_client_id = 1

    @property
    def degraded(self):
        """True while any OSD is marked down."""
        return bool(self.monitor._down)

    def _read_target(self, ino, index):
        """The OSD id to read an object from, honouring failures."""
        if not self.degraded:
            return self.crush.primary(ino, index)
        for osd_id in self.monitor.acting_set(ino, index):
            if (ino, index) in self.osds[osd_id]._objects:
                return osd_id
        holders = self.monitor.holders(ino, index)
        if holders:
            return holders[0]
        return self.monitor.acting_set(ino, index)[0]

    def _write_targets(self, ino, index):
        if not self.degraded:
            return self.crush.placement(ino, index)
        return self.monitor.acting_set(ino, index)

    # -- object striping -------------------------------------------------

    def object_extents(self, offset, size):
        """Split a byte range into per-object ``(index, obj_off, length)``."""
        if offset < 0 or size < 0:
            raise InvalidArgument("negative offset/size")
        extents = []
        object_size = self.costs.object_size
        position = offset
        remaining = size
        while remaining > 0:
            index = position // object_size
            obj_off = position % object_size
            length = min(object_size - obj_off, remaining)
            extents.append((index, obj_off, length))
            position += length
            remaining -= length
        return extents

    # -- data path (client-callable generators) ---------------------------------

    def read_extent(self, ino, offset, size):
        """Fetch ``[offset, offset+size)`` of file ``ino`` from the OSDs.

        Returns the bytes actually stored (holes read as zeros only within
        stored objects; fully absent tails return shorter data).
        """
        parts = []
        for index, obj_off, length in self.object_extents(offset, size):
            osd = self.osds[self._read_target(ino, index)]
            data = yield from self.fabric.rpc(
                osd.read(ino, index, obj_off, length),
                send_bytes=0,
                recv_bytes=length,
            )
            parts.append(data)
        self.metrics.counter("read_bytes").add(size)
        return b"".join(parts)

    def write_extent(self, ino, offset, data):
        """Write ``data`` at ``offset`` of file ``ino`` to all replicas."""
        position = 0
        for index, obj_off, length in self.object_extents(offset, len(data)):
            piece = bytes(data[position:position + length])
            position += length
            for osd_id in self._write_targets(ino, index):
                osd = self.osds[osd_id]
                yield from self.fabric.rpc(
                    osd.write(ino, index, obj_off, piece),
                    send_bytes=length,
                    recv_bytes=0,
                )
        self.metrics.counter("write_bytes").add(len(data))
        return len(data)

    def truncate(self, ino, size):
        """Truncate the object set of ``ino`` to ``size`` bytes."""
        object_size = self.costs.object_size
        keep_objects = (size + object_size - 1) // object_size
        for osd in self.osds:
            stale = [
                (i, o) for (i, o) in list(osd._objects) if i == ino
            ]
            for _ino, index in stale:
                if index >= keep_objects:
                    yield from self.fabric.rpc(
                        osd.truncate(ino, index, 0), send_bytes=0, recv_bytes=0
                    )
                elif index == keep_objects - 1 and size % object_size:
                    yield from self.fabric.rpc(
                        osd.truncate(ino, index, size % object_size),
                        send_bytes=0,
                        recv_bytes=0,
                    )

    def peek(self, ino, offset, size):
        """Zero-cost assembly of stored bytes (cache-hit reads).

        A client that holds a range resident in its cache already paid the
        network/OSD cost when it fetched the range; re-reading it costs
        nothing, so cache hits read the authoritative object store
        directly. Holes and unwritten tails read as zeros.
        """
        parts = []
        for index, obj_off, length in self.object_extents(offset, size):
            osd = self.osds[self._read_target(ino, index)]
            obj = osd._objects.get((ino, index))
            piece = bytes(obj[obj_off:obj_off + length]) if obj is not None else b""
            if len(piece) < length:
                piece += b"\x00" * (length - len(piece))
            parts.append(piece)
        return b"".join(parts)

    def purge(self, ino):
        """Background object deletion after unlink (no client-visible cost)."""
        for osd in self.osds:
            osd.purge_ino(ino)

    # -- capabilities (caps-mode clients) -------------------------------------------

    def register_client(self, client):
        """Register a caps-mode client; returns its client id."""
        client_id = self._next_client_id
        self._next_client_id += 1
        self._cap_clients[client_id] = client
        return client_id

    def acquire_caps(self, client_id, ino, want):
        """Grant ``want`` caps on ``ino``, revoking conflicting holders.

        Sim generator. The conflicting holders' revocation handlers run to
        completion (flushing dirty data, invalidating caches) before the
        grant commits — so the caller pays the coherence latency, exactly
        like a CephFS open racing a writer.
        """
        conflicts = yield from self.mds_call(
            "caps_conflicts", ino, client_id, want
        )
        if conflicts:
            pending = []
            for holder_id, caps in conflicts:
                holder = self._cap_clients.get(holder_id)
                if holder is None:
                    continue
                pending.append(self.sim.spawn(
                    holder.handle_cap_revoke(ino, caps),
                    name="cap-revoke",
                ))
            if pending:
                yield self.sim.all_of(pending)
        held = yield from self.mds_call(
            "caps_commit", ino, client_id, want, conflicts
        )
        self.metrics.counter("caps_grants").add(1)
        return held

    # -- metadata path ------------------------------------------------------------

    def mds_call(self, op_name, *args, **kwargs):
        """Run an MDS operation over the network; returns its result."""
        op = getattr(self.mds, op_name)
        return self.fabric.rpc(
            op(*args, **kwargs), send_bytes=256, recv_bytes=256
        )

    # -- reporting ---------------------------------------------------------------

    @property
    def stored_bytes(self):
        return sum(osd.stored_bytes for osd in self.osds)

    def file_bytes(self, ino):
        """Total stored bytes of a file across OSDs (test helper)."""
        return sum(
            osd.object_size(ino, index)
            for osd in self.osds
            for (obj_ino, index) in list(osd._objects)
            if obj_ino == ino
        )
