"""Kernel lock registry with lockdep-style class aggregation.

The paper profiles kernel locking by *lock class* (``i_mutex_key``,
``i_mutex_dir_key``, superblock locks) and reports average wait/hold time
per lock request (Fig. 1b) and total lock wait time (§6.3). The registry
hands out one :class:`~repro.sim.sync.Mutex` per (class, instance) pair and
aggregates statistics per class, exactly like lockdep keys group instances.

Lock classes used by the simulated kernel:

* ``i_mutex_key`` — per-inode mutex serialising writes/truncates.
* ``i_mutex_dir_key`` — per-directory mutex for create/unlink/readdir.
* ``sb_lock`` — per-superblock lock touched by inode allocation/eviction.
* ``inode_hash_lock`` — one global lock for the host's inode hash.
* ``lru_lock`` — one global page-cache LRU lock.
* ``wb_list_lock`` — one global writeback dirty-list lock.

The *global* classes are what couple container pools that never share a
filesystem — the mechanism behind the cross-workload interference of
Fig. 1 and Fig. 6.
"""

from repro.sim.sync import LockStats, Mutex

__all__ = ["LockRegistry", "GLOBAL_INSTANCE"]

#: Instance key for host-global locks (one instance per class).
GLOBAL_INSTANCE = "<global>"


class LockRegistry(object):
    """Creates kernel locks on demand and aggregates stats per class."""

    def __init__(self, sim):
        self.sim = sim
        self._locks = {}  # (lock_class, instance) -> Mutex

    def get(self, lock_class, instance=GLOBAL_INSTANCE, scope=None):
        """The mutex for ``(lock_class, instance)``, created on first use.

        ``scope`` names the owner for contention profiling — a mount
        (``"fls0.cephk"``), or ``"kernel"`` for host-global classes (the
        default). It only matters on the creating call; later lookups of
        the same key may omit it.
        """
        key = (lock_class, instance)
        lock = self._locks.get(key)
        if lock is None:
            lock = Mutex(self.sim, name="%s[%s]" % (lock_class, instance))
            self._locks[key] = lock
            self.sim.register_lock(
                scope if scope is not None else "kernel",
                lock_class, instance, lock,
            )
        return lock

    def classes(self):
        """Sorted list of lock classes seen so far."""
        return sorted({lock_class for lock_class, _ in self._locks})

    def class_stats(self, lock_class):
        """Merged :class:`LockStats` across every instance of a class."""
        merged = LockStats()
        for (cls, _instance), lock in self._locks.items():
            if cls == lock_class:
                merged.merge(lock.stats)
        return merged

    def total_stats(self):
        """Merged stats across every kernel lock (paper: total wait time)."""
        merged = LockStats()
        for lock in self._locks.values():
            merged.merge(lock.stats)
        return merged

    def hottest(self, limit=5):
        """Lock classes ranked by total wait time (profiling helper)."""
        ranked = sorted(
            ((cls, self.class_stats(cls)) for cls in self.classes()),
            key=lambda pair: pair[1].total_wait,
            reverse=True,
        )
        return ranked[:limit]

    def locked_section(self, task, lock, section_cpu):
        """Run ``section_cpu`` seconds of work under ``lock``.

        Generator helper: acquire, burn CPU on the task's thread, release.
        The hold time recorded therefore includes any core contention the
        critical section experiences — the amplification loop the paper
        describes (busy cores make holds longer, longer holds make waits
        longer).
        """
        yield lock.acquire(who=task)
        try:
            if section_cpu > 0:
                yield from task.cpu(section_cpu)
        finally:
            lock.release()
