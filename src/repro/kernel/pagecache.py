"""The host kernel page cache with global dirty accounting.

The page cache is a *shared kernel resource*: pages from every container
pool live in one LRU, dirty pages from every pool appear on one writeback
list, and memory is charged to the cgroup of the task that faulted the page
in. This sharing — and the paper calls it out explicitly — is what makes
kernel-based clients couple the performance of unrelated tenants.

This implementation tracks page *presence and dirtiness* (real file bytes
live in the authoritative stores: the local filesystem tree or the OSDs;
dirty user data in flight lives in the owning client's write-behind
buffers). All methods are plain functions — callers account the CPU cost
via the cost model.
"""

from collections import OrderedDict

__all__ = ["Page", "CachedFile", "PageCache"]


class Page(object):
    """One cached page: clean or dirty, charged to a memory account."""

    __slots__ = ("dirty", "dirty_since", "account", "under_writeback")

    def __init__(self, account):
        self.dirty = False
        self.dirty_since = 0.0
        self.account = account
        self.under_writeback = False


class CachedFile(object):
    """Per-file page mapping plus the backend flush callback.

    ``flush_fn(nbytes, page_indices)`` is a sim generator that performs the
    backend write (disk transfer or network push) for a batch of pages.
    """

    __slots__ = ("key", "pages", "dirty_pages", "flush_fn", "read_sequential_end")

    def __init__(self, key, flush_fn=None):
        self.key = key
        self.pages = {}
        self.dirty_pages = {}  # index -> dirty_since (insertion ordered)
        self.flush_fn = flush_fn
        self.read_sequential_end = 0  # readahead heuristic state

    @property
    def nr_pages(self):
        return len(self.pages)

    @property
    def nr_dirty(self):
        return len(self.dirty_pages)

    def oldest_dirty_age(self, now):
        for since in self.dirty_pages.values():
            return now - since
        return 0.0


class PageCache(object):
    """Host-wide page cache: presence, dirtiness, LRU and memory charging."""

    def __init__(self, page_size, host_account):
        self.page_size = page_size
        self.host_account = host_account
        self._files = {}  # key -> CachedFile
        self._lru = OrderedDict()  # (key, index) -> None, clean pages only
        self.dirty_bytes = 0
        self._account_dirty = {}  # account -> dirty bytes
        self.evictions = 0
        self.insertions = 0

    # -- file table -------------------------------------------------------

    def file(self, key, flush_fn=None):
        """The :class:`CachedFile` for ``key``, created on first use."""
        cf = self._files.get(key)
        if cf is None:
            cf = CachedFile(key, flush_fn=flush_fn)
            self._files[key] = cf
        elif flush_fn is not None and cf.flush_fn is None:
            cf.flush_fn = flush_fn
        return cf

    def peek(self, key):
        return self._files.get(key)

    def drop_file(self, key):
        """Invalidate every page of a file (unlink/eviction)."""
        cf = self._files.pop(key, None)
        if cf is None:
            return
        for index, page in cf.pages.items():
            if page.dirty:
                self._account_for_clean(cf, index, page)
            else:
                self._lru.pop((key, index), None)
            page.account.uncharge(self.page_size)
        cf.pages.clear()
        cf.dirty_pages.clear()

    # -- range math -----------------------------------------------------------

    def page_range(self, offset, size):
        """Page indices covering ``[offset, offset+size)``."""
        if size <= 0:
            return range(0, 0)
        return range(offset // self.page_size, (offset + size - 1) // self.page_size + 1)

    def scan(self, cf, offset, size):
        """Split a byte range into cached page count and missing subranges.

        Returns ``(hit_pages, miss_ranges)`` where ``miss_ranges`` is a
        list of ``(offset, size)`` byte ranges to fetch from the backend.
        """
        hit_pages = 0
        miss_ranges = []
        run_start = None
        for index in self.page_range(offset, size):
            if index in cf.pages:
                hit_pages += 1
                self._lru_touch(cf, index)
                if run_start is not None:
                    miss_ranges.append(self._run_to_range(run_start, index))
                    run_start = None
            else:
                if run_start is None:
                    run_start = index
        if run_start is not None:
            end_index = (offset + size - 1) // self.page_size + 1
            miss_ranges.append(self._run_to_range(run_start, end_index))
        return hit_pages, miss_ranges

    def _run_to_range(self, start_index, end_index):
        start = start_index * self.page_size
        return (start, (end_index - start_index) * self.page_size)

    def _lru_touch(self, cf, index):
        key = (cf.key, index)
        if key in self._lru:
            self._lru.move_to_end(key)

    # -- insertion / eviction --------------------------------------------------

    def insert(self, cf, offset, size, account):
        """Add clean pages covering the range, charging ``account``.

        Evicts cold clean pages under memory pressure. Returns the number
        of newly inserted pages (pages that could not be charged even after
        eviction are simply not cached — the kernel serves them uncached).
        """
        pages = cf.pages
        lru = self._lru
        key = cf.key
        missing = []
        for index in self.page_range(offset, size):
            if index in pages:
                lru_key = (key, index)
                if lru_key in lru:
                    lru.move_to_end(lru_key)
            else:
                missing.append(index)
        if not missing:
            return 0
        page_size = self.page_size
        if account.can_charge(page_size * len(missing)):
            # Fast path: the whole batch fits without eviction, so charge
            # once and materialise the pages in a tight loop.
            account.charge(page_size * len(missing))
            for index in missing:
                pages[index] = Page(account)
                lru[(key, index)] = None
            self.insertions += len(missing)
            return len(missing)
        inserted = 0
        for index in missing:
            if not account.can_charge(page_size):
                if not self._evict_one():
                    continue  # nothing reclaimable: serve uncached
                if not account.can_charge(page_size):
                    continue
            account.charge(page_size)
            pages[index] = Page(account)
            lru[(key, index)] = None
            inserted += 1
            self.insertions += 1
        return inserted

    def _evict_one(self):
        """Drop the coldest clean page anywhere in the host. True on success."""
        while self._lru:
            (key, index), _ = self._lru.popitem(last=False)
            cf = self._files.get(key)
            if cf is None:
                continue
            page = cf.pages.get(index)
            if page is None or page.dirty:
                continue
            del cf.pages[index]
            page.account.uncharge(self.page_size)
            self.evictions += 1
            return True
        return False

    # -- dirty tracking --------------------------------------------------------

    def mark_dirty(self, cf, offset, size, now, account):
        """Dirty the pages of a written range (inserting missing ones)."""
        self.insert(cf, offset, size, account)
        for index in self.page_range(offset, size):
            page = cf.pages.get(index)
            if page is None:
                # Could not be cached (memory exhausted): account the write
                # as immediately-cleaned dirtiness; the caller's fsync or
                # write path pays the device cost directly.
                continue
            if not page.dirty:
                page.dirty = True
                page.dirty_since = now
                cf.dirty_pages[index] = now
                self._lru.pop((cf.key, index), None)
                self.dirty_bytes += self.page_size
                acct = page.account
                self._account_dirty[acct] = (
                    self._account_dirty.get(acct, 0) + self.page_size
                )

    def _account_for_clean(self, cf, index, page):
        cf.dirty_pages.pop(index, None)
        self.dirty_bytes -= self.page_size
        acct = page.account
        remaining = self._account_dirty.get(acct, 0) - self.page_size
        if remaining <= 0:
            self._account_dirty.pop(acct, None)
        else:
            self._account_dirty[acct] = remaining

    def clean(self, cf, indices):
        """Mark pages clean after a successful flush; returns bytes cleaned."""
        cleaned = 0
        for index in indices:
            page = cf.pages.get(index)
            if page is None or not page.dirty:
                continue
            page.dirty = False
            page.under_writeback = False
            self._account_for_clean(cf, index, page)
            self._lru[(cf.key, index)] = None
            cleaned += self.page_size
        return cleaned

    def account_dirty(self, account):
        """Dirty bytes currently charged to ``account``."""
        return self._account_dirty.get(account, 0)

    def dirty_files(self):
        """Files that currently have dirty pages (writeback scan)."""
        return [cf for cf in self._files.values() if cf.dirty_pages]

    def pick_flush_batch(self, cf, max_pages, now=None, min_age=None):
        """Select up to ``max_pages`` dirty pages of ``cf`` for writeback.

        Skips pages already under writeback; optionally only pages dirtied
        at least ``min_age`` seconds ago. Marks the picked pages as under
        writeback so concurrent flushers do not double-flush.
        """
        picked = []
        for index, since in cf.dirty_pages.items():
            if len(picked) >= max_pages:
                break
            page = cf.pages[index]
            if page.under_writeback:
                continue
            if min_age is not None and now is not None and now - since < min_age:
                continue
            page.under_writeback = True
            picked.append(index)
        return picked

    def cancel_writeback(self, cf, indices):
        """Undo the under-writeback mark (flush failed or was aborted)."""
        for index in indices:
            page = cf.pages.get(index)
            if page is not None:
                page.under_writeback = False

    # -- reporting ---------------------------------------------------------------

    @property
    def cached_bytes(self):
        return sum(cf.nr_pages for cf in self._files.values()) * self.page_size

    def stats(self):
        return {
            "cached_bytes": self.cached_bytes,
            "dirty_bytes": self.dirty_bytes,
            "files": len(self._files),
            "insertions": self.insertions,
            "evictions": self.evictions,
        }
