"""Kernel writeback: flusher threads, dirty thresholds, writer throttling.

This module encodes the paper's *core stealing* mechanism (Fig. 1a): the
kernel's flusher threads are not confined to any container pool's cpuset —
they run on **any activated core of the host**. When a pool's neighbours
are idle, the kernel happily burns their cores to flush the pool's dirty
pages (the paper measures 87-122 % utilisation of the neighbour's cores);
when the neighbours become busy, that capacity disappears and the
write-intensive workload collapses behind dirty throttling.

Components:

* :class:`WritebackDaemon` — ``nr_flushers`` threads waking every
  ``writeback_interval`` (1 s), flushing pages dirtied longer than
  ``expire_interval`` (5 s) ago, and *all* dirty pages of any cgroup above
  its background threshold.
* ``balance_dirty_pages`` — writer-side throttling: a task whose cgroup
  exceeds its ``max_dirty`` limit blocks until flushers make progress.
"""

from repro.common.errors import SimulationError
from repro.sim.cpu import SimThread

__all__ = ["WritebackDaemon"]


class WritebackDaemon(object):
    """Host-wide flusher thread pool with per-cgroup dirty limits."""

    def __init__(self, sim, machine, page_cache, costs, lock_registry,
                 metrics=None):
        self.sim = sim
        self.machine = machine
        self.page_cache = page_cache
        self.costs = costs
        self.locks = lock_registry
        self.metrics = metrics
        self._max_dirty = {}  # account -> byte limit
        self._progress_waiters = []
        self._kick_events = []
        self._threads = []
        self._stopped = False
        self._stalled_until = 0.0
        self.pages_flushed = 0
        for index in range(costs.nr_flushers):
            thread = SimThread(
                sim, "flusher%d" % index, machine.activated
            )
            self._threads.append(thread)
            sim.spawn(self._flusher_loop(thread), name=thread.name)

    # -- configuration ---------------------------------------------------

    def set_max_dirty(self, account, limit_bytes):
        """Set the dirty-byte ceiling of a cgroup (paper: 50 % of pool RAM)."""
        self._max_dirty[account] = limit_bytes

    def max_dirty(self, account):
        # Default: 20% of the account capacity, echoing dirty_ratio.
        return self._max_dirty.get(account, account.capacity // 5)

    def background_threshold(self, account):
        return self.max_dirty(account) // 2

    def stop(self):
        """Stop the flusher loops (used by tests)."""
        self._stopped = True
        self._kick()

    def stall(self, duration):
        """Fault injection: freeze writeback progress for ``duration``.

        Models a hung kernel flusher (device stall, lock convoy). Because
        the flusher pool is *host-wide*, every colocated container's
        writers pile up in ``balance_dirty_pages`` for the whole window —
        the contrast to a Danaus service crash, whose damage stays inside
        one pool.
        """
        self._stalled_until = max(self._stalled_until, self.sim.now + duration)
        self.sim.trace("wb", "stall", duration=duration)
        if self.metrics is not None:
            self.metrics.counter("wb.stalls").add(1)

    def _wait_stall(self):
        while self.sim.now < self._stalled_until and not self._stopped:
            yield self.sim.timeout(self._stalled_until - self.sim.now)

    # -- flusher threads -----------------------------------------------------

    def _kick(self):
        events, self._kick_events = self._kick_events, []
        for event in events:
            event.succeed()

    def _notify_progress(self):
        waiters, self._progress_waiters = self._progress_waiters, []
        for event in waiters:
            event.succeed()

    def _flusher_loop(self, thread):
        sim = self.sim
        while not self._stopped:
            kick = sim.event()
            self._kick_events.append(kick)
            yield sim.any_of([sim.timeout(self.costs.writeback_interval), kick])
            if self._stopped:
                return
            yield from self._wait_stall()
            # Core stealing: flushers always run on whatever cores are
            # currently activated on the host.
            thread.set_cpuset(self.machine.activated)
            yield from self._flush_round(thread)

    def _flush_round(self, thread):
        """One pass over the dirty files, flushing what policy demands."""
        sim = self.sim
        wb_lock = self.locks.get("wb_list_lock")
        yield wb_lock.acquire(who=thread)
        try:
            yield from thread.run(self.costs.fs_op, quantum=self.costs.quantum)
            candidates = self.page_cache.dirty_files()
        finally:
            wb_lock.release()
        for cf in candidates:
            if not cf.dirty_pages:
                continue
            over_background = False
            for _index, since in cf.dirty_pages.items():
                page = cf.pages[_index]
                acct_dirty = self.page_cache.account_dirty(page.account)
                if acct_dirty > self.background_threshold(page.account):
                    over_background = True
                break
            min_age = None if over_background else self.costs.expire_interval
            yield from self.flush_file(thread, cf, min_age=min_age)

    def flush_file(self, thread, cf, min_age=None, all_pages=False):
        """Flush batches of one file's dirty pages on ``thread``.

        Generator. ``min_age=None`` flushes regardless of age;
        ``all_pages`` keeps batching until no dirty page remains (fsync).
        """
        costs = self.costs
        batch_pages = max(1, costs.flush_batch // costs.page_size)
        yield from self._wait_stall()
        obs = self.sim.observer
        span = obs.span(thread, "wb.flush", "wb",
                        file=str(cf.key)) if obs is not None else None
        try:
            while True:
                picked = self.page_cache.pick_flush_batch(
                    cf, batch_pages, now=self.sim.now, min_age=min_age
                )
                if not picked:
                    return
                if all_pages:
                    # fsync: coalesce every remaining dirty page into one
                    # vectored backend call instead of N batch-sized RPCs
                    # (pick marks pages under-writeback, so repeated picks
                    # return successive disjoint batches until dry).
                    while True:
                        more = self.page_cache.pick_flush_batch(
                            cf, batch_pages, now=self.sim.now, min_age=min_age
                        )
                        if not more:
                            break
                        picked.extend(more)
                # CPU to assemble the writeback batch, on *this* thread's cores.
                yield from thread.run(
                    costs.flush_page_op * len(picked), quantum=costs.quantum
                )
                nbytes = len(picked) * costs.page_size
                if cf.flush_fn is None:
                    raise SimulationError("dirty file %r has no flush_fn" % (cf.key,))
                yield from cf.flush_fn(nbytes, picked)
                self.page_cache.clean(cf, picked)
                self.pages_flushed += len(picked)
                if self.sim.tracer is not None:
                    self.sim.trace("wb", "flush", file=str(cf.key),
                                   pages=len(picked))
                if self.metrics is not None:
                    self.metrics.counter("wb.pages_flushed").add(len(picked))
                if obs is not None:
                    obs.sample("dirty_bytes", self.page_cache.dirty_bytes)
                self._notify_progress()
                if not all_pages and min_age is not None:
                    # Expire-driven flushing: one batch per round per file.
                    return
        finally:
            if span is not None:
                span.end()

    # -- writer-side throttling -------------------------------------------------

    def balance_dirty_pages(self, task, account):
        """Block the writer while its cgroup exceeds its dirty limit.

        This is the kernel's ``balance_dirty_pages``: the writing task
        kicks the flushers and sleeps until enough pages were cleaned.
        """
        if self.page_cache.account_dirty(account) <= self.max_dirty(account):
            return
        obs = self.sim.observer
        span = obs.span(task, "wb.throttle", "wb",
                        account=account.name) if obs is not None else None
        try:
            while self.page_cache.account_dirty(account) > self.max_dirty(account):
                self._kick()
                progress = self.sim.event()
                self._progress_waiters.append(progress)
                timeout = self.sim.timeout(self.costs.writeback_interval)
                yield self.sim.any_of([progress, timeout])
                if self.sim.tracer is not None:
                    self.sim.trace("wb", "throttle", account=account.name)
                if self.metrics is not None:
                    self.metrics.counter("wb.throttle_waits").add(1)
        finally:
            if span is not None:
                span.end()

    def fsync(self, task, cf):
        """Synchronously flush every dirty page of a file on the caller."""
        yield from self.flush_file(task.thread, cf, min_age=None, all_pages=True)
