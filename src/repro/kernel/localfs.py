"""An ext4-like local filesystem over a simulated block device.

This is the substrate for the paper's *local* workloads: Stress-ng
RandomIO and Filebench Webserver both run on "ext4 over 4 local disks in
RAID-0". The filesystem keeps its authoritative state in a
:class:`~repro.fs.memtree.MemTree` and uses the host kernel's shared page
cache, lock registry and writeback daemon — so its I/O *does* interfere
with every other kernel-path filesystem on the host, which is the point.

Locking follows the kernel convention the paper profiles:

* writes hold the file's ``i_mutex_key`` while dirtying pages;
* namespace changes hold the parent's ``i_mutex_dir_key``;
* inode allocation/eviction briefly holds the per-superblock ``sb_lock``
  and the host-global ``inode_hash_lock``.
"""

from repro.common.errors import (
    BadFileDescriptor,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
)
from repro.fs import pathutil
from repro.fs.api import FileHandle, FileStat, Filesystem, OpenFlags
from repro.fs.memtree import MemTree
from repro.fs.readahead import plan_fetch
from repro.metrics import MetricSet

__all__ = ["LocalFs"]


def _contiguous_runs(sorted_pages):
    """Group sorted page indices into (start, count) contiguous runs."""
    runs = []
    for index in sorted_pages:
        if runs and index == runs[-1][0] + runs[-1][1]:
            runs[-1][1] += 1
        else:
            runs.append([index, 1])
    return [(start, count) for start, count in runs]


class _LocalHandle(FileHandle):
    __slots__ = ("node", "path_key")

    def __init__(self, fs, path, flags, node):
        super().__init__(fs, path, flags)
        self.node = node
        self.path_key = path


class LocalFs(Filesystem):
    """ext4-like filesystem: MemTree state, page cache, kernel locks."""

    _next_fs_id = [1]

    def __init__(self, kernel, device, name="ext4", readahead_bytes=128 * 1024,
                 direct_io=False):
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.costs
        self.device = device
        self.name = name
        self.readahead_bytes = readahead_bytes
        self.direct_io = direct_io
        self.tree = MemTree()
        self.fs_id = LocalFs._next_fs_id[0]
        LocalFs._next_fs_id[0] += 1
        self.metrics = MetricSet("localfs:%s" % name)

    # -- helpers ---------------------------------------------------------

    def _cache_key(self, node):
        return ("localfs", self.fs_id, node.ino)

    def _cached_file(self, node):
        device = self.device

        def flush_fn(nbytes, pages):
            # Writeback efficiency depends on dirty-page contiguity: a
            # sequentially-written file flushes in one large transfer; a
            # randomly-dirtied one (Stress-ng RandomIO) degenerates into an
            # elevator pass over many scattered runs, each paying a
            # positioning delay — this is what monopolises the flushers.
            runs = _contiguous_runs(sorted(pages))
            if len(runs) <= 1:
                yield from device.transfer(nbytes, write=True)
                return
            yield from device.transfer(
                nbytes, write=True, random_access=True, positions=len(runs)
            )

        return self.kernel.page_cache.file(self._cache_key(node), flush_fn)

    def _account(self, task):
        if task.pool is not None:
            return task.pool.ram
        return self.kernel.machine.ram

    def _inode_lock(self, node):
        return self.kernel.locks.get(
            "i_mutex_key", (self.fs_id, node.ino), scope=self.name
        )

    def _dir_lock(self, node):
        return self.kernel.locks.get(
            "i_mutex_dir_key", (self.fs_id, node.ino), scope=self.name
        )

    def _sb_lock(self):
        return self.kernel.locks.get(
            "sb_lock", ("localfs", self.fs_id), scope=self.name
        )

    def _inode_hash_lock(self):
        return self.kernel.locks.get("inode_hash_lock")

    def _op_cpu(self, task, seconds=None):
        yield from task.cpu(self.costs.fs_op if seconds is None else seconds)

    # -- Filesystem interface --------------------------------------------------

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        path = pathutil.normalize(path)
        yield from self._op_cpu(task)
        node = self.tree.try_lookup(path)
        if node is None:
            if not flags & OpenFlags.CREAT:
                raise FileNotFound(path=path)
            parent = self.tree.lookup_dir(pathutil.parent_of(path))
            dir_lock = self._dir_lock(parent)
            yield from self.kernel.locks.locked_section(
                task, dir_lock, self.costs.kernel_lock_section
            )
            # Inode allocation touches the superblock and the global hash.
            yield from self.kernel.locks.locked_section(
                task, self._sb_lock(), self.costs.kernel_lock_section
            )
            yield from self.kernel.locks.locked_section(
                task, self._inode_hash_lock(), self.costs.kernel_lock_section / 2
            )
            node = self.tree.create_file(
                path, now=self.sim.now,
                exclusive=bool(flags & OpenFlags.EXCL), mode=mode,
            )
            self.metrics.counter("creates").add(1)
        elif flags & OpenFlags.EXCL and flags & OpenFlags.CREAT:
            from repro.common.errors import FileExists

            raise FileExists(path=path)
        if node.is_dir and flags.wants_write:
            raise IsADirectory(path=path)
        if flags & OpenFlags.TRUNC and not node.is_dir:
            yield from self._truncate_node(task, node, 0)
        handle = _LocalHandle(self, path, flags, node)
        self.metrics.counter("opens").add(1)
        return handle

    def close(self, task, handle):
        yield from self._op_cpu(task, self.costs.fs_op / 2)
        handle.closed = True

    def read(self, task, handle, offset, size):
        node = self._live_node(handle)
        yield from self._op_cpu(task)
        data = node.read(offset, size)
        if not data:
            return b""
        if self.direct_io:
            yield from self.device.transfer(len(data), random_access=True)
            self.metrics.counter("bytes_read").add(len(data))
            return data
        cf = self._cached_file(node)
        hit_pages, miss_ranges = self.kernel.page_cache.scan(
            cf, offset, len(data)
        )
        if hit_pages:
            yield from task.cpu(self.costs.page_op * hit_pages)
        account = self._account(task)
        sequential = offset == cf.read_sequential_end
        for miss_offset, miss_size in miss_ranges:
            fetch_size = plan_fetch(miss_offset, miss_size, node.size,
                                    self.readahead_bytes, sequential)
            yield from self.device.transfer(
                fetch_size, random_access=not sequential
            )
            self.kernel.page_cache.insert(cf, miss_offset, fetch_size, account)
            yield from task.cpu(
                self.costs.page_op * self.costs.pages_of(miss_offset, fetch_size)
            )
        cf.read_sequential_end = offset + len(data)
        self.metrics.counter("bytes_read").add(len(data))
        return data

    def write(self, task, handle, offset, data):
        node = self._live_node(handle)
        if handle.flags & OpenFlags.APPEND:
            offset = node.size
        yield from self._op_cpu(task)
        if self.direct_io:
            written = self.tree.write_node(node, offset, data, now=self.sim.now)
            yield from self.device.transfer(
                len(data), write=True, random_access=True
            )
            self.metrics.counter("bytes_written").add(written)
            return written
        cf = self._cached_file(node)
        account = self._account(task)
        inode_lock = self._inode_lock(node)
        pages = self.costs.pages_of(offset, len(data))
        yield inode_lock.acquire(who=task)
        try:
            # Dirtying pages happens under i_mutex: holds grow with I/O size
            # and with core contention, the amplification of Fig. 1b.
            yield from task.cpu(
                self.costs.kernel_lock_section + self.costs.page_op * pages
            )
            written = self.tree.write_node(node, offset, data, now=self.sim.now)
            self.kernel.page_cache.mark_dirty(
                cf, offset, len(data), self.sim.now, account
            )
        finally:
            inode_lock.release()
        # Page allocation touches the host-global LRU lock — contention
        # here couples pools that share nothing but the kernel.
        yield from self.kernel.locks.locked_section(
            task, self.kernel.locks.get("lru_lock"),
            self.costs.kernel_lock_section / 4,
        )
        self.metrics.counter("bytes_written").add(written)
        # Throttle outside the lock, like balance_dirty_pages().
        yield from self.kernel.writeback.balance_dirty_pages(task, account)
        return written

    def fsync(self, task, handle):
        node = self._live_node(handle)
        yield from self._op_cpu(task)
        cf = self.kernel.page_cache.peek(self._cache_key(node))
        if cf is not None:
            yield from self.kernel.writeback.fsync(task, cf)

    def stat(self, task, path):
        yield from self._op_cpu(task, self.costs.fs_op / 2)
        node = self.tree.lookup(path)
        return FileStat(node.ino, node.is_dir, node.size, node.mtime, node.nlink)

    def mkdir(self, task, path, mode=0o755):
        yield from self._op_cpu(task)
        parent = self.tree.lookup_dir(pathutil.parent_of(path))
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(parent), self.costs.kernel_lock_section
        )
        self.tree.mkdir(path, now=self.sim.now, mode=mode)

    def rmdir(self, task, path):
        yield from self._op_cpu(task)
        parent = self.tree.lookup_dir(pathutil.parent_of(path))
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(parent), self.costs.kernel_lock_section
        )
        self.tree.rmdir(path, now=self.sim.now)

    def unlink(self, task, path):
        yield from self._op_cpu(task)
        parent = self.tree.lookup_dir(pathutil.parent_of(path))
        node = self.tree.lookup(path)
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(parent), self.costs.kernel_lock_section
        )
        yield from self.kernel.locks.locked_section(
            task, self._inode_hash_lock(), self.costs.kernel_lock_section / 2
        )
        self.kernel.page_cache.drop_file(self._cache_key(node))
        self.tree.unlink(path, now=self.sim.now)
        self.metrics.counter("unlinks").add(1)

    def readdir(self, task, path):
        node = self.tree.lookup_dir(path)
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(node), self.costs.kernel_lock_section / 2
        )
        names = self.tree.readdir(path)
        yield from task.cpu(self.costs.dirent_op * max(len(names), 1))
        return names

    def rename(self, task, old_path, new_path):
        yield from self._op_cpu(task)
        old_parent = self.tree.lookup_dir(pathutil.parent_of(old_path))
        yield from self.kernel.locks.locked_section(
            task, self._dir_lock(old_parent), self.costs.kernel_lock_section
        )
        self.tree.rename(old_path, new_path, now=self.sim.now)

    def truncate(self, task, path, size):
        node = self.tree.lookup(path)
        if node.is_dir:
            raise IsADirectory(path=path)
        yield from self._truncate_node(task, node, size)

    def _truncate_node(self, task, node, size):
        yield from self.kernel.locks.locked_section(
            task, self._inode_lock(node), self.costs.kernel_lock_section
        )
        self.tree.truncate_node(node, size, now=self.sim.now)
        # Dropping cached pages beyond EOF: simplest correct behaviour is
        # dropping the whole mapping; the next read re-faults it.
        if size == 0:
            self.kernel.page_cache.drop_file(self._cache_key(node))

    def peek(self, path, offset, size):
        """Zero-cost resident-data read (see Filesystem.peek)."""
        node = self.tree.try_lookup(path)
        if node is None or node.is_dir:
            return None
        return node.read(offset, size)

    def _live_node(self, handle):
        if handle.closed:
            raise BadFileDescriptor(path=handle.path)
        if not isinstance(handle, _LocalHandle):
            raise InvalidArgument("foreign handle %r" % (handle,))
        return handle.node
