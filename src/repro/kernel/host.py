"""The host kernel: syscall layer, VFS mount table, shared caches.

One :class:`HostKernel` exists per machine. It owns the resources the
paper identifies as *shared* and therefore contention-prone:

* the lock registry (``i_mutex``, superblock and global locks),
* the page cache with host-global LRU and dirty accounting,
* the writeback daemon whose flushers run on any activated core,
* the VFS mount table every kernel-path I/O passes through.

The VFS itself implements the :class:`~repro.fs.api.Filesystem` interface:
each call pays the mode-switch cost, resolves the mount, pays per-component
path-walk CPU and user/kernel copy costs, then invokes the mounted
filesystem. Danaus's default path never enters here — that asymmetry *is*
the system under study.
"""

from repro.common.errors import NotMounted
from repro.costs import CostModel
from repro.fs import pathutil
from repro.fs.api import FileHandle, Filesystem, OpenFlags
from repro.kernel.locks import LockRegistry
from repro.kernel.pagecache import PageCache
from repro.kernel.writeback import WritebackDaemon
from repro.metrics import MetricSet
from repro.sim.cpu import SimThread
from repro.sim.sync import Store

__all__ = ["HostKernel", "Workqueue", "Vfs"]


class Workqueue(object):
    """Kernel workqueue: deferred CPU work on *any activated core*.

    The kernel Ceph client hands messenger processing (checksumming,
    scatter-gather assembly) to kworkers, which the scheduler places on
    whatever cores are idle — including cores reserved for other container
    pools. This is the second half of the paper's "core stealing": when
    the neighbours idle, a kernel-served workload borrows their cores and
    looks great; when they wake up, that capacity evaporates (Fig. 1a).
    """

    def __init__(self, sim, machine, costs):
        self.sim = sim
        self.machine = machine
        self.costs = costs
        self._queue = Store(sim, name="kworkqueue")
        self.items_done = 0
        self._threads = []
        for index in range(costs.nr_kworkers):
            thread = SimThread(sim, "kworker%d" % index, machine.activated)
            self._threads.append(thread)
            sim.spawn(self._worker_loop(thread), name=thread.name)

    def _worker_loop(self, thread):
        while True:
            cpu_seconds, done = yield self._queue.get()
            # kworkers follow whatever cores are currently activated.
            thread.set_cpuset(self.machine.activated)
            yield from thread.run(cpu_seconds, quantum=self.costs.quantum)
            self.items_done += 1
            done.succeed()

    def execute(self, cpu_seconds):
        """Queue ``cpu_seconds`` of kernel work; generator until done."""
        if cpu_seconds <= 0:
            return
        done = self.sim.event(name="wq-done")
        yield self._queue.put((cpu_seconds, done))
        yield done


class HostKernel(object):
    """Shared kernel state of one host machine."""

    def __init__(self, sim, machine, costs=None):
        self.sim = sim
        self.machine = machine
        self.costs = costs if costs is not None else CostModel()
        self.metrics = MetricSet("kernel")
        self.locks = LockRegistry(sim)
        self.page_cache = PageCache(self.costs.page_size, machine.ram)
        self.writeback = WritebackDaemon(
            sim, machine, self.page_cache, self.costs, self.locks,
            metrics=self.metrics,
        )
        self.workqueue = Workqueue(sim, machine, self.costs)
        self.vfs = Vfs(self)

    def syscall(self, task):
        """Pay the mode-switch cost of entering and leaving the kernel."""
        self.metrics.counter("syscalls").add(1)
        yield from task.cpu(self.costs.syscall)

    def copy_to_user(self, task, nbytes):
        """Pay the kernel->user copy cost for ``nbytes``."""
        if nbytes > 0:
            yield from task.cpu(self.costs.copy_cost(nbytes))

    def copy_from_user(self, task, nbytes):
        """Pay the user->kernel copy cost for ``nbytes``."""
        if nbytes > 0:
            yield from task.cpu(self.costs.copy_cost(nbytes))


class _VfsHandle(FileHandle):
    """VFS-level handle wrapping the mounted filesystem's handle."""

    __slots__ = ("inner_fs", "inner")

    def __init__(self, vfs, path, flags, inner_fs, inner):
        super().__init__(vfs, path, flags)
        self.inner_fs = inner_fs
        self.inner = inner


class Vfs(Filesystem):
    """The kernel's virtual filesystem switch.

    Routes each operation to the filesystem mounted closest above the path
    and charges the kernel-entry costs: one mode switch per call, path-walk
    CPU, and copy costs for data-carrying calls.
    """

    name = "vfs"

    def __init__(self, kernel):
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.costs
        self._mounts = {}  # normalised mountpoint -> Filesystem

    # -- mount management ---------------------------------------------------

    def mount(self, mountpoint, fs):
        """Mount ``fs`` at ``mountpoint``; nested mounts shadow parents."""
        self._mounts[pathutil.normalize(mountpoint)] = fs

    def umount(self, mountpoint):
        self._mounts.pop(pathutil.normalize(mountpoint), None)

    def mounted_at(self, mountpoint):
        return self._mounts.get(pathutil.normalize(mountpoint))

    def resolve(self, path):
        """Longest-prefix mount match; returns ``(fs, inner_path)``."""
        path = pathutil.normalize(path)
        best = None
        best_len = -1
        for mountpoint, fs in self._mounts.items():
            if pathutil.is_ancestor(mountpoint, path):
                depth = len(mountpoint)
                if depth > best_len:
                    best = (mountpoint, fs)
                    best_len = depth
        if best is None:
            raise NotMounted(path=path)
        mountpoint, fs = best
        return fs, pathutil.relative_to(mountpoint, path)

    # -- cost helpers ----------------------------------------------------

    def _enter(self, task, path=None):
        yield from self.kernel.syscall(task)
        if path is not None:
            components = len(pathutil.components(path))
            if components:
                yield from task.cpu(self.costs.path_component * components)

    # -- Filesystem interface -------------------------------------------------

    def _span(self, task, name, **args):
        """An open syscall span, or None when no observer is attached."""
        obs = self.sim.observer
        return obs.span(task, name, "vfs", **args) if obs is not None else None

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        span = self._span(task, "vfs.open", path=path)
        try:
            yield from self._enter(task, path)
            fs, inner_path = self.resolve(path)
            inner = yield from fs.open(task, inner_path, flags, mode)
        finally:
            if span is not None:
                span.end()
        return _VfsHandle(self, path, flags, fs, inner)

    def close(self, task, handle):
        yield from self._enter(task)
        yield from handle.inner_fs.close(task, handle.inner)
        handle.closed = True

    def read(self, task, handle, offset, size):
        span = self._span(task, "vfs.read", size=size)
        try:
            yield from self._enter(task)
            data = yield from handle.inner_fs.read(
                task, handle.inner, offset, size
            )
            yield from self.kernel.copy_to_user(task, len(data))
        finally:
            if span is not None:
                span.end()
        return data

    def write(self, task, handle, offset, data):
        span = self._span(task, "vfs.write", size=len(data))
        try:
            yield from self._enter(task)
            yield from self.kernel.copy_from_user(task, len(data))
            written = yield from handle.inner_fs.write(
                task, handle.inner, offset, data
            )
        finally:
            if span is not None:
                span.end()
        return written

    def fsync(self, task, handle):
        span = self._span(task, "vfs.fsync")
        try:
            yield from self._enter(task)
            yield from handle.inner_fs.fsync(task, handle.inner)
        finally:
            if span is not None:
                span.end()

    def stat(self, task, path):
        yield from self._enter(task, path)
        fs, inner_path = self.resolve(path)
        return (yield from fs.stat(task, inner_path))

    def mkdir(self, task, path, mode=0o755):
        yield from self._enter(task, path)
        fs, inner_path = self.resolve(path)
        yield from fs.mkdir(task, inner_path, mode)

    def rmdir(self, task, path):
        yield from self._enter(task, path)
        fs, inner_path = self.resolve(path)
        yield from fs.rmdir(task, inner_path)

    def unlink(self, task, path):
        yield from self._enter(task, path)
        fs, inner_path = self.resolve(path)
        yield from fs.unlink(task, inner_path)

    def readdir(self, task, path):
        yield from self._enter(task, path)
        fs, inner_path = self.resolve(path)
        return (yield from fs.readdir(task, inner_path))

    def rename(self, task, old_path, new_path):
        from repro.common.errors import CrossDevice

        yield from self._enter(task, old_path)
        fs, inner_old = self.resolve(old_path)
        other_fs, inner_new = self.resolve(new_path)
        if fs is not other_fs:
            raise CrossDevice(path=new_path)
        yield from fs.rename(task, inner_old, inner_new)

    def truncate(self, task, path, size):
        yield from self._enter(task, path)
        fs, inner_path = self.resolve(path)
        yield from fs.truncate(task, inner_path, size)
