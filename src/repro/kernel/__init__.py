"""The simulated host kernel: VFS, page cache, writeback, locks, local FS."""

from repro.kernel.host import HostKernel, Vfs
from repro.kernel.localfs import LocalFs
from repro.kernel.locks import GLOBAL_INSTANCE, LockRegistry
from repro.kernel.pagecache import CachedFile, Page, PageCache
from repro.kernel.writeback import WritebackDaemon

__all__ = [
    "HostKernel",
    "Vfs",
    "LocalFs",
    "LockRegistry",
    "GLOBAL_INSTANCE",
    "PageCache",
    "CachedFile",
    "Page",
    "WritebackDaemon",
]
