"""Deprecated tracing entry point — superseded by :mod:`repro.obs`.

``Tracer`` is now a thin compatibility alias over
:class:`repro.obs.Observer`: the event-sink surface (``emit`` /
``events`` / ``summary`` / ``to_jsonl``) is unchanged, but the buffer is
a ring — at capacity the *oldest* events are evicted so the most recent
window survives, with ``dropped`` counting evictions and surfaced by
``summary()``.

New code should attach through the world instead of poking the
simulator attribute::

    obs = world.observe(categories={"wb", "fuse"})
    ...
    print(obs.summary())

which additionally enables spans, CPU attribution and the lock
contention profile. The manual ``world.sim.tracer = Tracer(...)`` idiom
still works for the flat event stream only.
"""

from repro.obs.observer import Observer, TraceEvent

__all__ = ["TraceEvent", "Tracer"]


class Tracer(Observer):
    """Compatibility alias for :class:`repro.obs.Observer`.

    Kept for one release so existing attach-by-hand call sites keep
    working; it records events only (no spans or profiles) because it is
    installed as ``sim.tracer``, not ``sim.observer``.
    """

    def __init__(self, categories=None, capacity=100000):
        super().__init__(sim=None, categories=categories, capacity=capacity)
