"""Event tracing: a lightweight flight recorder for simulations.

Attach a :class:`Tracer` to a simulator and the instrumented components
(writeback, FUSE transport, Danaus IPC, services, the cluster monitor)
emit structured events — the equivalent of the kernel tracing the paper
used to attribute its slowdowns ("our kernel profiling showed…").

    world = World(...)
    tracer = Tracer(categories={"wb", "fuse"})
    world.sim.tracer = tracer
    ...
    print(tracer.summary())

Tracing is strictly opt-in: with no tracer attached the emit path is a
single attribute check.
"""

import json

__all__ = ["TraceEvent", "Tracer"]


class TraceEvent(object):
    """One recorded occurrence."""

    __slots__ = ("time", "category", "name", "detail")

    def __init__(self, time, category, name, detail):
        self.time = time
        self.category = category
        self.name = name
        self.detail = detail

    def as_dict(self):
        out = {"t": self.time, "cat": self.category, "name": self.name}
        out.update(self.detail)
        return out

    def __repr__(self):
        return "<TraceEvent %.6f %s/%s %r>" % (
            self.time, self.category, self.name, self.detail,
        )


class Tracer(object):
    """Collects :class:`TraceEvent` records with optional filtering."""

    def __init__(self, categories=None, capacity=100000):
        self.categories = set(categories) if categories is not None else None
        self.capacity = capacity
        self.records = []
        self.dropped = 0

    def wants(self, category):
        return self.categories is None or category in self.categories

    def emit(self, time, category, name, **detail):
        if not self.wants(category):
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(TraceEvent(time, category, name, detail))

    def events(self, category=None, name=None):
        """Recorded events, optionally filtered."""
        out = self.records
        if category is not None:
            out = [e for e in out if e.category == category]
        if name is not None:
            out = [e for e in out if e.name == name]
        return out

    def summary(self):
        """Counts per (category, name), sorted by frequency."""
        counts = {}
        for event in self.records:
            key = (event.category, event.name)
            counts[key] = counts.get(key, 0) + 1
        return sorted(counts.items(), key=lambda kv: kv[1], reverse=True)

    def to_jsonl(self, path):
        """Dump all events as JSON lines."""
        with open(path, "w") as handle:
            for event in self.records:
                handle.write(json.dumps(event.as_dict()) + "\n")
        return len(self.records)

    def clear(self):
        self.records = []
        self.dropped = 0
