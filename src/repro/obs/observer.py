"""The unified observability core: event sink, spans, metric registries.

One :class:`Observer` replaces the previously separate tracing and
metric surfaces. It is attached through ``World.observe(...)`` (which
also installs it as ``sim.tracer`` for the legacy ``sim.trace`` emit
path) and collects three kinds of evidence:

* **events** — the flat flight-recorder records the old ``Tracer`` kept,
  now in a ring buffer so the *most recent* window survives overflow;
* **spans** — nested begin/end intervals riding the DES clock, with
  parent/child structure and on-CPU time attribution (the profiling
  analogue of the paper's "our kernel profiling showed…");
* **metric registries** — get-or-create :class:`~repro.metrics.MetricSet`
  scopes, so instrumented layers share one registry instead of
  constructing metric objects per site.

Everything is strictly opt-in: with no observer attached, every
instrumented hot path is a single attribute check on the simulator.
"""

import json
from collections import deque

from repro.metrics import MetricSet

__all__ = ["TraceEvent", "Span", "Observer"]


class TraceEvent(object):
    """One recorded occurrence."""

    __slots__ = ("time", "category", "name", "detail")

    def __init__(self, time, category, name, detail):
        self.time = time
        self.category = category
        self.name = name
        self.detail = detail

    def as_dict(self):
        out = {"t": self.time, "cat": self.category, "name": self.name}
        out.update(self.detail)
        return out

    def __repr__(self):
        return "<TraceEvent %.6f %s/%s %r>" % (
            self.time, self.category, self.name, self.detail,
        )


class Span(object):
    """One timed interval on the simulation clock.

    Spans nest per thread: a span opened while another span of the same
    thread is open becomes its child, so exported stacks reproduce the
    layer structure (vfs → fuse → client → cluster). ``cpu`` is the
    thread's consumed CPU time over the interval; ``self_cpu`` excludes
    the CPU attributed to child spans.
    """

    __slots__ = ("obs", "name", "category", "thread", "pool", "args",
                 "t0", "t1", "cpu0", "cpu1", "parent", "path", "child_cpu",
                 "_open")

    def __init__(self, obs, name, category, thread, pool, args):
        self.obs = obs
        self.name = name
        self.category = category
        self.thread = thread
        self.pool = pool
        self.args = args
        self.t0 = obs.sim.now
        self.t1 = None
        self.cpu0 = thread.cpu_time if thread is not None else 0.0
        self.cpu1 = None
        self.parent = None
        self.path = (name,)
        self.child_cpu = 0.0
        self._open = True

    @property
    def duration(self):
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def cpu(self):
        return (self.cpu1 - self.cpu0) if self.cpu1 is not None else 0.0

    @property
    def self_cpu(self):
        return max(self.cpu - self.child_cpu, 0.0)

    def end(self):
        """Close the span at the current simulation time."""
        if self._open:
            self._open = False
            self.obs._end_span(self)
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.end()
        return False

    def __repr__(self):
        state = "open" if self._open else "%.6fs" % self.duration
        return "<Span %s %s>" % ("/".join(self.path), state)


class Observer(object):
    """One attached observability instance: events + spans + registries.

    Event-sink surface (``emit``/``events``/``summary``/``to_jsonl``)
    is drop-in compatible with the deprecated ``repro.trace.Tracer``.
    """

    def __init__(self, sim=None, categories=None, capacity=100000,
                 world=None):
        self.sim = sim
        self.world = world
        self.categories = set(categories) if categories is not None else None
        self.capacity = capacity
        self.records = deque(maxlen=capacity)
        self.dropped = 0
        self.spans = deque(maxlen=capacity)
        self._stacks = {}  # SimThread -> [open Span, ...]
        self._scopes = {}  # scope name -> MetricSet
        self._timelines = {}  # name -> [(t, value), ...]
        self._cpu = {}  # (core name, thread name) -> seconds
        self._switches = {}  # thread name -> involuntary switch count

    # -- event sink (Tracer-compatible) ---------------------------------

    def wants(self, category):
        return self.categories is None or category in self.categories

    def emit(self, time, category, name, **detail):
        if not self.wants(category):
            return
        if len(self.records) >= self.capacity:
            self.dropped += 1  # ring buffer: the oldest record falls off
        self.records.append(TraceEvent(time, category, name, detail))

    def events(self, category=None, name=None):
        """Recorded events, optionally filtered."""
        out = list(self.records)
        if category is not None:
            out = [e for e in out if e.category == category]
        if name is not None:
            out = [e for e in out if e.name == name]
        return out

    def summary(self):
        """Counts per (category, name), sorted by frequency.

        When the ring buffer overflowed, a ``("trace", "dropped")`` entry
        reports how many old events were evicted to keep the most recent
        window.
        """
        counts = {}
        for event in self.records:
            key = (event.category, event.name)
            counts[key] = counts.get(key, 0) + 1
        out = sorted(counts.items(), key=lambda kv: kv[1], reverse=True)
        if self.dropped:
            out.append((("trace", "dropped"), self.dropped))
        return out

    def to_jsonl(self, path):
        """Dump all buffered events as JSON lines."""
        with open(path, "w") as handle:
            for event in self.records:
                handle.write(json.dumps(event.as_dict()) + "\n")
        return len(self.records)

    def clear(self):
        self.records.clear()
        self.dropped = 0
        self.spans.clear()
        self._stacks.clear()
        self._timelines.clear()
        self._cpu.clear()
        self._switches.clear()

    # -- metric registries ------------------------------------------------

    def metrics(self, scope):
        """The get-or-create :class:`MetricSet` registry for ``scope``."""
        registry = self._scopes.get(scope)
        if registry is None:
            registry = self._scopes[scope] = MetricSet(scope)
        return registry

    def scopes(self):
        """Sorted scope names with a registry so far."""
        return sorted(self._scopes)

    # -- spans -------------------------------------------------------------

    @staticmethod
    def _thread_of(owner):
        """``owner`` may be a Task, a SimThread, or None."""
        return getattr(owner, "thread", owner)

    @staticmethod
    def _pool_of(owner):
        pool = getattr(owner, "pool", None)
        return pool.name if pool is not None else None

    def span(self, owner, name, category="span", **args):
        """Open a span on ``owner`` (Task, SimThread or None).

        Returns the open :class:`Span`; close it with ``end()`` or use it
        as a context manager. Spans of the same thread nest.
        """
        thread = self._thread_of(owner)
        span = Span(self, name, category, thread, self._pool_of(owner), args)
        if thread is not None:
            stack = self._stacks.get(thread)
            if stack is None:
                stack = self._stacks[thread] = []
            if stack:
                span.parent = stack[-1]
                span.path = span.parent.path + (name,)
            stack.append(span)
        return span

    def _end_span(self, span):
        span.t1 = self.sim.now if self.sim is not None else span.t0
        span.cpu1 = (
            span.thread.cpu_time if span.thread is not None else span.cpu0
        )
        if span.thread is not None:
            stack = self._stacks.get(span.thread)
            if stack is not None:
                # Remove by identity: concurrent coroutines may share a
                # thread (the flusher pool), so strict LIFO cannot be
                # assumed.
                for index in range(len(stack) - 1, -1, -1):
                    if stack[index] is span:
                        del stack[index]
                        break
                if not stack:
                    del self._stacks[span.thread]
        if span.parent is not None:
            span.parent.child_cpu += span.cpu
        if len(self.spans) >= self.capacity:
            self.dropped += 1
        self.spans.append(span)

    def span_summary(self):
        """Per span name: count, wall seconds, CPU seconds (sorted)."""
        rollup = {}
        for span in self.spans:
            entry = rollup.setdefault(span.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += span.duration
            entry[2] += span.cpu
        return sorted(
            ((name, count, wall, cpu)
             for name, (count, wall, cpu) in rollup.items()),
            key=lambda row: row[2], reverse=True,
        )

    # -- profiling hooks (called by instrumented layers) -------------------

    def record_cpu(self, core, thread, seconds, switched):
        """Attribute one scheduling slice of ``thread`` to ``core``."""
        name = thread.name if thread is not None else "<anon>"
        key = (core.name, name)
        self._cpu[key] = self._cpu.get(key, 0.0) + seconds
        if switched:
            self._switches[name] = self._switches.get(name, 0) + 1

    def sample(self, timeline, value):
        """Append ``(now, value)`` to a named timeline (queue depth, dirty).

        Timelines are rings like the event buffer: the most recent
        ``capacity`` samples survive.
        """
        series = self._timelines.get(timeline)
        if series is None:
            series = self._timelines[timeline] = deque(maxlen=self.capacity)
        series.append((self.sim.now if self.sim is not None else 0.0, value))

    def timeline(self, name):
        """The recorded ``(time, value)`` series for ``name`` (may be empty)."""
        return list(self._timelines.get(name, ()))

    def timelines(self):
        return sorted(self._timelines)

    # -- derived profiles ---------------------------------------------------

    def cpu_profile(self):
        """Per-core CPU attribution: {core: {thread: seconds}}."""
        out = {}
        for (core, thread), seconds in self._cpu.items():
            out.setdefault(core, {})[thread] = seconds
        return out

    def ctx_switch_profile(self):
        """Involuntary core-handoff counts per thread name."""
        return dict(self._switches)

    def _pool_names(self):
        pools = set()
        if self.world is not None:
            for host in self.world.hosts:
                for pool in host.engine.pools.values():
                    pools.add(pool.name)
        return pools

    def _core_owners(self):
        """core name -> owning pool name, from the attached world."""
        owners = {}
        if self.world is not None:
            for host in self.world.hosts:
                for pool in host.engine.pools.values():
                    for core in pool.cores:
                        owners[core.name] = pool.name
        return owners

    def core_steal_profile(self):
        """Foreign CPU time per pool-owned core (the paper's Fig. 1a).

        A slice is *foreign* when the running thread does not belong to
        the core's owning pool (pool threads are named ``<pool>.…``) —
        kernel flushers and kworkers burning a reserved neighbour core
        show up here.
        """
        owners = self._core_owners()
        rows = []
        for core, threads in sorted(self.cpu_profile().items()):
            pool = owners.get(core)
            if pool is None:
                continue
            prefix = pool + "."
            busy = sum(threads.values())
            foreign = {
                name: seconds for name, seconds in threads.items()
                if not name.startswith(prefix)
            }
            stolen = sum(foreign.values())
            rows.append({
                "core": core,
                "pool": pool,
                "busy_s": busy,
                "foreign_s": stolen,
                "foreign_pct": 100.0 * stolen / busy if busy else 0.0,
                "top_thieves": sorted(
                    foreign, key=foreign.get, reverse=True
                )[:3],
            })
        return rows

    def lock_table(self):
        """The lock-contention table: wait/hold per lock class, per pool.

        Reads the locks registered on the simulator (kernel lockdep
        classes, Danaus ``client_lock``/per-inode locks) and aggregates
        their :class:`~repro.sim.sync.LockStats` per ``(pool, class)`` —
        the paper's Fig. 1b attribution of ``i_mutex`` versus
        ``client_lock`` wait time.
        """
        from repro.common import units

        pools = self._pool_names()
        merged = {}  # (pool, lock_class) -> [stats fields]
        for scope, lock_class, _instance, lock in (
                self.sim.registered_locks() if self.sim is not None else ()):
            # Scopes look like "fls0.cephk" / "fls0.libceph" (pool-owned
            # mounts) or "kernel" (host-global); the prefix before the
            # first dot is the owning pool when it names one.
            head = scope.split(".", 1)[0]
            pool = head if (not pools or head in pools) and "." in scope \
                else "-"
            stats = lock.stats
            entry = merged.setdefault(
                (pool, lock_class), [0, 0, 0.0, 0.0, 0.0, 0.0]
            )
            entry[0] += stats.acquisitions
            entry[1] += stats.contended
            entry[2] += stats.total_wait
            entry[3] += stats.total_hold
            entry[4] = max(entry[4], stats.max_wait)
            entry[5] = max(entry[5], stats.max_hold)
        rows = []
        for (pool, lock_class), (acq, cont, wait, hold, mw, mh) in sorted(
                merged.items()):
            rows.append({
                "pool": pool,
                "lock_class": lock_class,
                "acquisitions": acq,
                "contended": cont,
                "total_wait_s": wait,
                "total_hold_s": hold,
                "avg_wait_us": (wait / acq / units.USEC) if acq else 0.0,
                "avg_hold_us": (hold / acq / units.USEC) if acq else 0.0,
                "max_wait_us": mw / units.USEC,
                "max_hold_us": mh / units.USEC,
            })
        rows.sort(key=lambda row: row["total_wait_s"], reverse=True)
        return rows

    def dispatch_profile(self):
        """Fan-out dispatch and per-OSD inflight rows (parallel data path).

        One ``client`` row summarises the striped fan-out at the
        dispatch point — how many multi-object calls fanned out, how
        wide, and the inflight-window occupancy high-water — followed by
        one row per ``osdN`` metric scope showing the server side: ops
        inflight high-water and the queue depth seen at op arrival.
        """
        rows = []
        registry = self._scopes.get("dispatch")
        if registry is not None:
            width = registry.histograms.get("width")
            inflight = registry.gauges.get("inflight")
            rows.append({
                "scope": "client",
                "samples": width.count if width is not None else 0,
                "mean": width.mean if width is not None else 0.0,
                "max": width.max if width is not None else 0,
                "inflight_hw": (
                    inflight.high_water if inflight is not None else 0
                ),
            })
        osd_scopes = []
        for scope in self._scopes:
            tail = scope[3:]
            if scope.startswith("osd") and tail.isdigit():
                osd_scopes.append((int(tail), scope))
        for _osd_id, scope in sorted(osd_scopes):
            registry = self._scopes[scope]
            qdepth = registry.histograms.get("qdepth")
            inflight = registry.gauges.get("inflight")
            rows.append({
                "scope": scope,
                "samples": qdepth.count if qdepth is not None else 0,
                "mean": qdepth.mean if qdepth is not None else 0.0,
                "max": qdepth.max if qdepth is not None else 0,
                "inflight_hw": (
                    inflight.high_water if inflight is not None else 0
                ),
            })
        return rows

    def recovery_profile(self):
        """Membership/backfill recovery rows from the ``recovery`` scope.

        One row per metric, counters first (their running totals), then
        gauges (final value plus high-water mark): map-epoch bumps and
        client map refreshes, EOLDEPOCH rejects, backfill bytes/pushes/
        trims and budget deferrals, degraded/misplaced object gauges.
        Empty when the membership lifecycle never armed.
        """
        registry = self._scopes.get("recovery")
        if registry is None:
            return []
        rows = []
        for name in sorted(registry.counters):
            rows.append({
                "metric": name,
                "value": registry.counters[name].value,
                "high_water": None,
            })
        for name in sorted(registry.gauges):
            gauge = registry.gauges[name]
            rows.append({
                "metric": name,
                "value": gauge.value,
                "high_water": gauge.high_water,
            })
        return rows

    def mds_profile(self):
        """Metadata-HA rows from the ``mds`` scope.

        One row per metric, counters first, then gauges (final value
        plus high-water mark): per-rank journal appends, fenced ops,
        dedup hits and replay counts (``r<rank>.*``), service-wide
        failovers and the mdsmap epoch, plus per-rank journal lag /
        session count / replay duration gauges. Empty when metadata HA
        never armed (the scope's ``service_s`` histogram alone does not
        produce rows).
        """
        registry = self._scopes.get("mds")
        if registry is None:
            return []
        rows = []
        for name in sorted(registry.counters):
            rows.append({
                "metric": name,
                "value": registry.counters[name].value,
                "high_water": None,
            })
        for name in sorted(registry.gauges):
            gauge = registry.gauges[name]
            rows.append({
                "metric": name,
                "value": gauge.value,
                "high_water": gauge.high_water,
            })
        return rows

    def locking_profile(self):
        """Adaptive locking-policy rows from the ``locking`` scope.

        One row per metric, counters first, then gauges (final value
        plus high-water mark): mode switches (total and per target
        mode) and the final mode index (0=global, 1=inode, 2=range).
        Empty when no adaptive locking policy ran.
        """
        registry = self._scopes.get("locking")
        if registry is None:
            return []
        rows = []
        for name in sorted(registry.counters):
            rows.append({
                "metric": name,
                "value": registry.counters[name].value,
                "high_water": None,
            })
        for name in sorted(registry.gauges):
            gauge = registry.gauges[name]
            rows.append({
                "metric": name,
                "value": gauge.value,
                "high_water": gauge.high_water,
            })
        return rows

    def fabric_profile(self):
        """Cross-machine RPC rows from the world's fabric edge accounting.

        One row per labeled remote endpoint (``osd3``, ``mds.1``):
        round-trip count plus payload bytes sent/received. This is the
        partition-boundary traffic of the parallel decomposition — the
        RPCs that would cross partitions in a sharded run — and a useful
        per-edge load table on its own. Empty when the observer has no
        world or no RPC carried an edge label.
        """
        world = getattr(self, "world", None)
        if world is None or getattr(world, "fabric", None) is None:
            return []
        return world.fabric.edge_profile()

    def fold(self):
        """Flamegraph-style folded stacks from the completed spans.

        One line per distinct span path: ``a;b;c <self-cpu-usec>`` —
        pipe into any flamegraph renderer.
        """
        folded = {}
        for span in self.spans:
            key = ";".join(span.path)
            folded[key] = folded.get(key, 0.0) + span.self_cpu
        return [
            "%s %d" % (key, round(seconds * 1e6))
            for key, seconds in sorted(folded.items())
        ]

    def chrome_trace(self):
        """The run as a Chrome ``trace_event`` JSON dict (Perfetto-ready)."""
        from repro.obs.export import chrome_trace

        return chrome_trace([self])

    def write_chrome_trace(self, path):
        """Write :meth:`chrome_trace` to ``path``; returns the event count."""
        trace = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(trace, handle)
        return len(trace["traceEvents"])

    def profile_report(self):
        """A JSON-safe bundle of every derived profile."""
        return {
            "lock_contention": self.lock_table(),
            "core_steal": self.core_steal_profile(),
            "dispatch": self.dispatch_profile(),
            "recovery": self.recovery_profile(),
            "mds": self.mds_profile(),
            "locking": self.locking_profile(),
            "cpu_by_core": {
                core: dict(sorted(threads.items()))
                for core, threads in sorted(self.cpu_profile().items())
            },
            "ctx_switches": self.ctx_switch_profile(),
            "span_summary": [
                {"name": name, "count": count, "wall_s": wall, "cpu_s": cpu}
                for name, count, wall, cpu in self.span_summary()
            ],
            "timelines": {
                name: self.timeline(name) for name in self.timelines()
            },
            "trace_summary": [
                {"category": cat, "name": name, "count": count}
                for (cat, name), count in self.summary()
            ],
            "fold": self.fold(),
        }
