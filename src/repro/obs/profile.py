"""Text renderers for the derived profiles.

The CLI prints these after a ``--profile`` run; they are deliberately
plain fixed-width tables so diffs between runs stay readable.
"""

__all__ = [
    "format_lock_table",
    "format_core_steal",
    "format_dispatch_table",
    "format_fabric_table",
    "format_locking_table",
    "format_mds_table",
    "format_partitions_table",
    "format_recovery_table",
    "format_trace_summary",
]


def _render(headers, rows):
    widths = [len(h) for h in headers]
    cells = []
    for row in rows:
        rendered = [str(value) for value in row]
        cells.append(rendered)
        for index, value in enumerate(rendered):
            widths[index] = max(widths[index], len(value))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for rendered in cells:
        lines.append(
            "  ".join(rendered[i].ljust(widths[i]) for i in range(len(rendered)))
        )
    return "\n".join(lines)


def format_lock_table(rows, limit=20):
    """Render lock-contention rows (dicts from ``Observer.lock_table``)."""
    if not rows:
        return "(no locks registered)"
    tagged = any("world" in row for row in rows)
    headers = (["world"] if tagged else []) + [
        "pool", "lock_class", "acq", "contended",
        "wait_ms", "hold_ms", "avg_wait_us", "max_wait_us",
    ]
    body = []
    for row in rows[:limit]:
        body.append(([row.get("world", "-")] if tagged else []) + [
            row.get("pool", "-"),
            row["lock_class"],
            row["acquisitions"],
            row["contended"],
            "%.3f" % (row["total_wait_s"] * 1e3),
            "%.3f" % (row["total_hold_s"] * 1e3),
            "%.2f" % row["avg_wait_us"],
            "%.2f" % row["max_wait_us"],
        ])
    out = _render(headers, body)
    if len(rows) > limit:
        out += "\n(+%d more lock classes)" % (len(rows) - limit)
    return out


def format_core_steal(rows):
    """Render per-core foreign-CPU rows (``Observer.core_steal_profile``)."""
    if not rows:
        return "(no pool-owned cores saw CPU time)"
    tagged = any("world" in row for row in rows)
    headers = (["world"] if tagged else []) + [
        "core", "pool", "busy_ms", "foreign_ms", "foreign_%", "top thieves",
    ]
    body = []
    for row in rows:
        body.append(([row.get("world", "-")] if tagged else []) + [
            row["core"],
            row["pool"],
            "%.3f" % (row["busy_s"] * 1e3),
            "%.3f" % (row["foreign_s"] * 1e3),
            "%.1f" % row["foreign_pct"],
            ", ".join(row["top_thieves"]) or "-",
        ])
    return _render(headers, body)


def format_dispatch_table(rows):
    """Render fan-out dispatch rows (``Observer.dispatch_profile``).

    The ``client`` row's distribution is the dispatch *width* (objects
    per striped call); the ``osdN`` rows' distribution is the queue
    depth each arriving op saw.
    """
    if not rows:
        return "(no fan-out dispatches recorded)"
    tagged = any("world" in row for row in rows)
    headers = (["world"] if tagged else []) + [
        "scope", "samples", "width/qdepth mean", "max", "inflight_hw",
    ]
    body = []
    for row in rows:
        body.append(([row.get("world", "-")] if tagged else []) + [
            row["scope"],
            row["samples"],
            "%.2f" % row["mean"],
            row["max"],
            row["inflight_hw"],
        ])
    return _render(headers, body)


def format_recovery_table(rows):
    """Render recovery rows (dicts from ``Observer.recovery_profile``).

    Counters show their totals; gauges additionally show the high-water
    mark (``-`` for counters, which have none).
    """
    if not rows:
        return "(membership lifecycle never armed)"
    tagged = any("world" in row for row in rows)
    headers = (["world"] if tagged else []) + [
        "metric", "value", "high_water",
    ]
    body = []
    for row in rows:
        high = row.get("high_water")
        body.append(([row.get("world", "-")] if tagged else []) + [
            row["metric"],
            row["value"],
            "-" if high is None else high,
        ])
    return _render(headers, body)


def format_mds_table(rows):
    """Render metadata-HA rows (dicts from ``Observer.mds_profile``).

    Same shape as the recovery table: counters show totals, gauges show
    the final value plus high-water mark.
    """
    if not rows:
        return "(metadata HA never armed)"
    tagged = any("world" in row for row in rows)
    headers = (["world"] if tagged else []) + [
        "metric", "value", "high_water",
    ]
    body = []
    for row in rows:
        high = row.get("high_water")
        body.append(([row.get("world", "-")] if tagged else []) + [
            row["metric"],
            row["value"],
            "-" if high is None else high,
        ])
    return _render(headers, body)


def format_locking_table(rows):
    """Render adaptive-locking rows (dicts from ``Observer.locking_profile``).

    Same shape as the recovery table: counters show totals, gauges show
    the final value plus high-water mark (the ``mode`` gauge is the mode
    index: 0=global, 1=inode, 2=range).
    """
    if not rows:
        return "(no adaptive locking policy ran)"
    tagged = any("world" in row for row in rows)
    headers = (["world"] if tagged else []) + [
        "metric", "value", "high_water",
    ]
    body = []
    for row in rows:
        high = row.get("high_water")
        body.append(([row.get("world", "-")] if tagged else []) + [
            row["metric"],
            row["value"],
            "-" if high is None else high,
        ])
    return _render(headers, body)


def format_fabric_table(rows):
    """Render per-edge RPC rows (dicts from ``Observer.fabric_profile``).

    One row per remote endpoint of a labeled fabric round trip: RPC
    count plus payload bytes in each direction — the traffic that
    crosses partition boundaries in a sharded run.
    """
    if not rows:
        return "(no labeled fabric RPCs)"
    tagged = any("world" in row for row in rows)
    headers = (["world"] if tagged else []) + [
        "edge", "rpcs", "send_bytes", "recv_bytes",
    ]
    body = []
    for row in rows:
        body.append(([row.get("world", "-")] if tagged else []) + [
            row["edge"],
            row["rpcs"],
            row["send_bytes"],
            row["recv_bytes"],
        ])
    return _render(headers, body)


def format_partitions_table(rows):
    """Render per-partition sync rows from a parallel run.

    One row per partition (or per independent machine task): executed
    rounds/events, cross-partition messages in/out, null-message count,
    blocked waits, and busy/wait wall seconds. ``map_tasks`` rows carry
    per-task wall time and worker pid instead of sync counters.
    """
    if not rows:
        return "(sequential run: no partitions)"
    keys = []
    for row in rows:
        for key in row:
            if key != "partition" and key not in keys:
                keys.append(key)
    headers = ["partition"] + keys
    body = []
    for row in rows:
        line = [row["partition"]]
        for key in keys:
            value = row.get(key)
            if value is None:
                line.append("-")
            elif isinstance(value, float):
                line.append("%.4f" % value)
            else:
                line.append(value)
        body.append(line)
    return _render(headers, body)


def format_trace_summary(summary, limit=15):
    """Render (category, name) -> count pairs from ``Observer.summary``."""
    if not summary:
        return "(no trace events)"
    body = [[cat, name, count] for (cat, name), count in summary[:limit]]
    out = _render(["category", "name", "count"], body)
    if len(summary) > limit:
        out += "\n(+%d more event kinds)" % (len(summary) - limit)
    return out
