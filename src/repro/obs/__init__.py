"""``repro.obs`` — the unified observability subsystem.

One API across every layer: attach an :class:`Observer` with
``world.observe(categories=..., capacity=...)`` and get the flat event
stream (what ``repro.trace.Tracer`` used to provide), nested spans with
on-CPU attribution, get-or-create metric registries, and derived
profiles — lock-contention tables, per-core CPU / core-steal
attribution, flamegraph folds and Chrome ``trace_event`` exports.

The module also carries the *default observation spec* the CLI uses to
profile experiments that construct their own :class:`~repro.world.World`
instances internally (the colocation sweeps build one world per row):
``set_default(...)`` arms auto-attachment, each new ``World`` then
observes itself and registers here, and ``attached()`` hands the CLI
every observer the run produced.
"""

from repro.obs.export import chrome_trace, merge_profiles
from repro.obs.observer import Observer, Span, TraceEvent
from repro.obs.profile import (
    format_core_steal,
    format_dispatch_table,
    format_fabric_table,
    format_lock_table,
    format_locking_table,
    format_mds_table,
    format_partitions_table,
    format_recovery_table,
    format_trace_summary,
)

__all__ = [
    "Observer", "Span", "TraceEvent",
    "chrome_trace", "merge_profiles",
    "format_lock_table", "format_core_steal", "format_dispatch_table",
    "format_fabric_table", "format_locking_table", "format_mds_table",
    "format_partitions_table", "format_recovery_table",
    "format_trace_summary",
    "set_default", "clear_default", "default_spec",
    "attached", "reset_attached",
]

_DEFAULT_SPEC = None
_ATTACHED = []


def set_default(categories=None, capacity=100000):
    """Arm auto-observation: every ``World`` built from now on attaches
    an observer with this spec and records it for :func:`attached`."""
    global _DEFAULT_SPEC
    _DEFAULT_SPEC = {"categories": categories, "capacity": capacity}


def clear_default():
    """Disarm auto-observation (new worlds stay unobserved)."""
    global _DEFAULT_SPEC
    _DEFAULT_SPEC = None


def default_spec():
    """The armed spec dict, or None when auto-observation is off."""
    return _DEFAULT_SPEC


def _note_attached(observer):
    _ATTACHED.append(observer)


def attached():
    """Observers auto-attached since the last :func:`reset_attached`."""
    return list(_ATTACHED)


def reset_attached():
    """Forget previously auto-attached observers (start of a run)."""
    del _ATTACHED[:]
