"""Chrome ``trace_event`` export.

Builds the JSON object format understood by ``chrome://tracing`` and
Perfetto: spans become ``"ph": "X"`` complete events, flat trace events
become ``"ph": "i"`` instants, and metadata events name the processes
and threads. Timestamps are microseconds of simulated time.

Multiple observers (experiments that build several worlds, e.g. the
per-symbol colocation sweeps) merge into one trace with a distinct
``pid`` per world.
"""

__all__ = ["chrome_trace", "merge_profiles"]

_USEC = 1e6  # simulated seconds -> trace microseconds


def _tid_of(span):
    if span.thread is not None:
        return span.thread.name
    return "net"


def chrome_trace(observers, labels=None):
    """A ``trace_event`` dict covering every observer's spans and events.

    ``labels`` optionally names each observer's process; the default is
    ``w0``, ``w1``, … when there are several and ``sim`` for a single one.
    """
    observers = [obs for obs in observers if obs is not None]
    events = []
    for pid, obs in enumerate(observers):
        if labels is not None:
            label = labels[pid]
        else:
            label = "sim" if len(observers) == 1 else "w%d" % pid
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": label},
        })
        tids = {}

        def tid_for(name, pid=pid, tids=tids):
            tid = tids.get(name)
            if tid is None:
                tid = tids[name] = len(tids) + 1
                events.append({
                    "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                    "args": {"name": name},
                })
            return tid

        for span in obs.spans:
            args = dict(span.args)
            args["cpu_us"] = round(span.cpu * _USEC, 3)
            events.append({
                "ph": "X",
                "pid": pid,
                "tid": tid_for(_tid_of(span)),
                "ts": span.t0 * _USEC,
                "dur": span.duration * _USEC,
                "name": span.name,
                "cat": span.category,
                "args": args,
            })
        for event in obs.records:
            events.append({
                "ph": "i",
                "pid": pid,
                "tid": tid_for("events/" + event.category),
                "ts": event.time * _USEC,
                "name": event.name,
                "cat": event.category,
                "s": "t",
                "args": dict(event.detail),
            })
        for name in obs.timelines():
            counter_tid = tid_for("timeline/" + name)
            for when, value in obs.timeline(name):
                events.append({
                    "ph": "C",
                    "pid": pid,
                    "tid": counter_tid,
                    "ts": when * _USEC,
                    "name": name,
                    "args": {"value": value},
                })
    events.sort(key=lambda ev: (ev["pid"], ev.get("ts", -1.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merge_profiles(observers):
    """Combine per-world derived profiles into one report dict.

    Lock tables and core-steal rows concatenate with a ``world`` column;
    trace summaries sum per (category, name); folds concatenate.
    """
    observers = [obs for obs in observers if obs is not None]
    lock_rows, steal_rows, dispatch_rows, fold = [], [], [], []
    recovery_rows = []
    mds_rows = []
    locking_rows = []
    fabric_rows = []
    trace_counts = {}
    for index, obs in enumerate(observers):
        tag = "w%d" % index
        for row in obs.lock_table():
            row = dict(row)
            row["world"] = tag
            lock_rows.append(row)
        for row in obs.core_steal_profile():
            row = dict(row)
            row["world"] = tag
            steal_rows.append(row)
        for row in obs.dispatch_profile():
            row = dict(row)
            row["world"] = tag
            dispatch_rows.append(row)
        for row in obs.recovery_profile():
            row = dict(row)
            row["world"] = tag
            recovery_rows.append(row)
        for row in obs.mds_profile():
            row = dict(row)
            row["world"] = tag
            mds_rows.append(row)
        for row in obs.locking_profile():
            row = dict(row)
            row["world"] = tag
            locking_rows.append(row)
        for row in obs.fabric_profile():
            row = dict(row)
            row["world"] = tag
            fabric_rows.append(row)
        for (cat, name), count in obs.summary():
            key = (cat, name)
            trace_counts[key] = trace_counts.get(key, 0) + count
        fold.extend(fold_line for fold_line in obs.fold())
    lock_rows.sort(key=lambda row: row["total_wait_s"], reverse=True)
    return {
        "lock_contention": lock_rows,
        "core_steal": steal_rows,
        "dispatch": dispatch_rows,
        "recovery": recovery_rows,
        "mds": mds_rows,
        "locking": locking_rows,
        "fabric": fabric_rows,
        "trace_summary": [
            {"category": cat, "name": name, "count": count}
            for (cat, name), count in sorted(
                trace_counts.items(), key=lambda kv: kv[1], reverse=True,
            )
        ],
        "fold": fold,
    }
