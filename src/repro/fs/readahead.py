"""Shared sequential-detection and readahead planning.

Every personality that fronts a cache — the user-level Ceph client, the
kernel Ceph client and the local ext4-like filesystem — detects
sequential streams the same way (the next read starts exactly where the
last one ended) and widens cache misses to a readahead window the same
way. The arithmetic lives here once; the personalities keep only their
own cost accounting around it.

:class:`Prefetcher` adds the pipelining half: a registry of detached
next-window prefetch processes, at most one in flight per key, so a
sequential reader can copy out the current window while the next one is
already travelling. Prefetches are advisory — failures are swallowed
(the demand path refetches) and a consumer that reaches a window still
in flight *joins* the existing fetch instead of issuing its own.
"""

__all__ = ["plan_fetch", "next_window", "Prefetcher"]


def plan_fetch(miss_offset, miss_size, file_size, readahead_bytes,
               sequential):
    """Bytes to fetch for one cache miss, readahead included.

    A sequential stream widens the miss to at least ``readahead_bytes``;
    the result is clamped so a widened fetch never runs past EOF (but a
    miss that itself overhangs the known size is fetched as asked — the
    caller's size view may trail buffered appends).
    """
    fetch = miss_size
    if readahead_bytes and sequential:
        fetch = max(miss_size, readahead_bytes)
    return min(fetch, max(file_size - miss_offset, miss_size))


def next_window(end_offset, readahead_bytes, file_size):
    """The ``(offset, size)`` window to prefetch after a read ending at
    ``end_offset``, or ``None`` when there is nothing ahead to fetch."""
    if not readahead_bytes or end_offset >= file_size:
        return None
    return end_offset, min(readahead_bytes, file_size - end_offset)


class Prefetcher(object):
    """At most one detached prefetch process in flight per key."""

    def __init__(self, sim):
        self.sim = sim
        self._inflight = {}  # key -> Process

    def active(self, key):
        return key in self._inflight

    def launch(self, key, gen, name="readahead"):
        """Spawn ``gen`` detached under ``key``; no-op while one runs."""
        if key in self._inflight:
            return None
        cell = []
        proc = self.sim.spawn(self._guard(key, gen, cell), name=name)
        cell.append(proc)
        self._inflight[key] = proc
        return proc

    def _guard(self, key, gen, cell):
        try:
            yield from gen
        except Exception:
            pass  # advisory: the demand path refetches what this missed
        finally:
            if cell and self._inflight.get(key) is cell[0]:
                del self._inflight[key]

    def join(self, key):
        """Generator: wait out an in-flight prefetch of ``key`` (no-op
        when idle; never raises — the guard folds failures)."""
        proc = self._inflight.get(key)
        if proc is not None:
            yield proc

    def forget(self, key):
        """Drop the registry entry (unlink); the process, if any, keeps
        running but its consumer-side guards skip the dead file."""
        self._inflight.pop(key, None)
