"""Path helpers used by every filesystem layer.

Paths are always absolute, '/'-separated, normalised (no '.', '..', or
duplicate slashes). The helpers here are deliberately strict: malformed
paths raise :class:`InvalidArgument` rather than being silently patched,
because path handling bugs are the classic source of union-filesystem
escapes.
"""

from repro.common.errors import InvalidArgument

__all__ = ["normalize", "split", "join", "components", "parent_of", "basename"]


#: normalize() memo — every filesystem layer normalises the same few
#: workload paths millions of times per run. Only successful results are
#: cached; malformed paths take the checked path and raise every time.
_normalized = {}


def normalize(path):
    """Normalise ``path`` to a canonical absolute form.

    Collapses duplicate slashes and '.' components and resolves '..'
    lexically (never escaping the root).
    """
    if type(path) is str:
        cached = _normalized.get(path)
        if cached is not None:
            return cached
    if not isinstance(path, str) or not path:
        raise InvalidArgument("empty path")
    if not path.startswith("/"):
        raise InvalidArgument("relative path", path=path)
    parts = []
    for part in path.split("/"):
        if part in ("", "."):
            continue
        if part == "..":
            if parts:
                parts.pop()
            continue
        parts.append(part)
    result = "/" + "/".join(parts)
    if len(_normalized) >= 4096:
        _normalized.clear()
    _normalized[path] = result
    return result


def components(path):
    """The list of path components of a normalised path ('/' -> [])."""
    path = normalize(path)
    if path == "/":
        return []
    return path[1:].split("/")


def split(path):
    """Return ``(parent, name)``; the root splits to ``('/', '')``."""
    path = normalize(path)
    if path == "/":
        return "/", ""
    parent, _, name = path.rpartition("/")
    return (parent or "/", name)


def parent_of(path):
    """The parent directory of ``path``."""
    return split(path)[0]


def basename(path):
    """The final component of ``path``."""
    return split(path)[1]


def join(*parts):
    """Join path fragments and normalise the result.

    The first fragment must be absolute; later fragments may be relative.
    """
    if not parts:
        raise InvalidArgument("join needs at least one part")
    pieces = [parts[0] if parts[0].startswith("/") else "/" + parts[0]]
    for part in parts[1:]:
        pieces.append(str(part))
    return normalize("/".join(pieces))


def is_ancestor(ancestor, path):
    """True when ``ancestor`` is ``path`` or a lexical ancestor of it."""
    ancestor = normalize(ancestor)
    path = normalize(path)
    if ancestor == "/":
        return True
    return path == ancestor or path.startswith(ancestor + "/")


def relative_to(root, path):
    """The path of ``path`` relative to ``root`` (with leading '/').

    ``relative_to('/mnt', '/mnt/a/b') == '/a/b'``; raises when ``path`` is
    outside ``root``.
    """
    root = normalize(root)
    path = normalize(path)
    if not is_ancestor(root, path):
        raise InvalidArgument("%s is not under %s" % (path, root))
    if root == "/":
        return path
    rest = path[len(root):]
    return rest or "/"
