"""The POSIX-like filesystem interface shared by every layer.

Everything that looks like a filesystem in this reproduction — the local
ext4-like filesystem, the Ceph-like client personalities, the union
filesystem, and the Danaus libservices — implements :class:`Filesystem`.
All operations are *generators* running on the simulation clock: they
consume CPU on the calling task's cores and wait on devices and locks.

The :class:`Task` is the execution context (the calling thread plus its
container pool); passing it explicitly is the simulator's equivalent of
"current process" state.
"""

import enum

from repro.common.errors import InvalidArgument

__all__ = ["OpenFlags", "FileStat", "Task", "FileHandle", "Filesystem"]


class OpenFlags(enum.IntFlag):
    """POSIX-style open(2) flags."""

    RDONLY = 0x0
    WRONLY = 0x1
    RDWR = 0x2
    CREAT = 0x40
    EXCL = 0x80
    TRUNC = 0x200
    APPEND = 0x400
    DIRECTORY = 0x10000

    @property
    def wants_write(self):
        return bool(self & (OpenFlags.WRONLY | OpenFlags.RDWR | OpenFlags.APPEND))

    @property
    def wants_read(self):
        return not (self & OpenFlags.WRONLY)


class FileStat(object):
    """stat(2) result subset used by the workloads and tests."""

    __slots__ = ("ino", "is_dir", "size", "mtime", "nlink")

    def __init__(self, ino, is_dir, size, mtime, nlink=1):
        self.ino = ino
        self.is_dir = is_dir
        self.size = size
        self.mtime = mtime
        self.nlink = nlink

    def __repr__(self):
        kind = "dir" if self.is_dir else "file"
        return "<FileStat ino=%d %s size=%d>" % (self.ino, kind, self.size)


class Task(object):
    """Execution context of a filesystem request.

    Attributes:
        thread: the :class:`~repro.sim.cpu.SimThread` doing the work.
        pool: the container pool (or None for host tasks); carries the
            cgroup RAM account used for page-cache charging.
        pid: process identifier (distinct library state per process).
    """

    _next_pid = [1]

    __slots__ = ("thread", "pool", "pid")

    def __init__(self, thread, pool=None, pid=None):
        self.thread = thread
        self.pool = pool
        if pid is None:
            pid = Task._next_pid[0]
            Task._next_pid[0] += 1
        self.pid = pid

    def cpu(self, seconds):
        """Consume ``seconds`` of CPU on this task's thread.

        Returns the :meth:`SimThread.run` generator directly rather than
        wrapping it — ``yield from task.cpu(x)`` otherwise pays a second
        generator frame on every single CPU charge in the simulation.
        """
        return self.thread.run(seconds)

    def __repr__(self):
        return "<Task pid=%d thread=%s>" % (self.pid, self.thread.name)


class FileHandle(object):
    """An open-file object returned by :meth:`Filesystem.open`.

    Filesystems subclass or wrap this; the base carries the path, the open
    flags and a file position for sequential read/write helpers.
    """

    __slots__ = ("fs", "path", "flags", "pos", "closed")

    def __init__(self, fs, path, flags):
        self.fs = fs
        self.path = path
        self.flags = flags
        self.pos = 0
        self.closed = False

    def __repr__(self):
        state = "closed" if self.closed else "open"
        return "<FileHandle %s %s>" % (self.path, state)


class Filesystem(object):
    """Abstract POSIX-like filesystem; all methods are sim generators.

    Subclasses must implement the primitive operations; the base class
    provides whole-file conveniences on top of them.
    """

    name = "fs"

    # -- primitives (must be overridden) --------------------------------

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        """Open (optionally creating) ``path``; returns a handle."""
        raise NotImplementedError
        yield  # pragma: no cover

    def close(self, task, handle):
        """Close an open handle."""
        raise NotImplementedError
        yield  # pragma: no cover

    def read(self, task, handle, offset, size):
        """Read up to ``size`` bytes at ``offset``; returns bytes."""
        raise NotImplementedError
        yield  # pragma: no cover

    def write(self, task, handle, offset, data):
        """Write ``data`` at ``offset``; returns bytes written."""
        raise NotImplementedError
        yield  # pragma: no cover

    def fsync(self, task, handle):
        """Flush dirty state of the file to stable storage."""
        raise NotImplementedError
        yield  # pragma: no cover

    def stat(self, task, path):
        """Return a :class:`FileStat` for ``path``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def mkdir(self, task, path, mode=0o755):
        raise NotImplementedError
        yield  # pragma: no cover

    def rmdir(self, task, path):
        raise NotImplementedError
        yield  # pragma: no cover

    def unlink(self, task, path):
        raise NotImplementedError
        yield  # pragma: no cover

    def readdir(self, task, path):
        """List entry names of the directory at ``path``."""
        raise NotImplementedError
        yield  # pragma: no cover

    def rename(self, task, old_path, new_path):
        raise NotImplementedError
        yield  # pragma: no cover

    def truncate(self, task, path, size):
        raise NotImplementedError
        yield  # pragma: no cover

    def peek(self, path, offset, size):
        """Zero-cost read of resident data, or None when unsupported.

        Used by caching layers above (the kernel page cache over FUSE) to
        serve *cache hits* without paying the backend's simulated cost: a
        hit means the bytes were already fetched and paid for once. Not a
        sim generator — it must never consume simulated time.
        """
        return None

    # -- conveniences -----------------------------------------------------

    def exists(self, task, path):
        """True when ``path`` resolves (sim generator)."""
        from repro.common.errors import FsError

        try:
            yield from self.stat(task, path)
        except FsError:
            return False
        return True

    def read_file(self, task, path, chunk=1 << 20):
        """Open, read fully in ``chunk`` pieces, close; returns bytes."""
        handle = yield from self.open(task, path, OpenFlags.RDONLY)
        try:
            parts = []
            offset = 0
            while True:
                data = yield from self.read(task, handle, offset, chunk)
                if not data:
                    break
                parts.append(data)
                offset += len(data)
            return b"".join(parts)
        finally:
            yield from self.close(task, handle)

    def write_file(self, task, path, data, chunk=1 << 20, sync=False):
        """Create/overwrite ``path`` with ``data`` in ``chunk`` pieces."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise InvalidArgument("write_file needs bytes")
        handle = yield from self.open(
            task, path, OpenFlags.WRONLY | OpenFlags.CREAT | OpenFlags.TRUNC
        )
        try:
            offset = 0
            view = memoryview(data)
            while offset < len(view):
                piece = view[offset:offset + chunk]
                written = yield from self.write(task, handle, offset, bytes(piece))
                offset += written
            if sync:
                yield from self.fsync(task, handle)
        finally:
            yield from self.close(task, handle)
        return len(data)

    def makedirs(self, task, path):
        """mkdir -p equivalent."""
        from repro.common.errors import FileExists
        from repro.fs import pathutil

        parts = pathutil.components(path)
        current = "/"
        for part in parts:
            current = pathutil.join(current, part)
            try:
                yield from self.mkdir(task, current)
            except FileExists:
                pass
