"""Filesystem abstractions: the POSIX-like API, paths, in-memory trees."""

from repro.fs.api import FileHandle, FileStat, Filesystem, OpenFlags, Task
from repro.fs.memtree import MemTree, Node
from repro.fs.readahead import Prefetcher, next_window, plan_fetch

__all__ = [
    "FileHandle",
    "FileStat",
    "Filesystem",
    "OpenFlags",
    "Task",
    "MemTree",
    "Node",
    "Prefetcher",
    "next_window",
    "plan_fetch",
]
