"""Filesystem abstractions: the POSIX-like API, paths, in-memory trees."""

from repro.fs.api import FileHandle, FileStat, Filesystem, OpenFlags, Task
from repro.fs.memtree import MemTree, Node

__all__ = [
    "FileHandle",
    "FileStat",
    "Filesystem",
    "OpenFlags",
    "Task",
    "MemTree",
    "Node",
]
