"""Subtree view: expose a directory of a filesystem as its own root.

Used everywhere a container sees a private slice of a shared namespace —
the container root under ``/pools/<pool>/<cid>`` of the shared CephFS, or
the legacy FUSE mountpoint inside the host VFS.
"""

from repro.fs import pathutil
from repro.fs.api import Filesystem, OpenFlags

__all__ = ["SubtreeFs"]


class SubtreeFs(Filesystem):
    """Delegates every operation to ``inner`` under a path prefix."""

    def __init__(self, inner, root, name=None):
        self.inner = inner
        self.root = pathutil.normalize(root)
        self.name = name or ("%s@%s" % (inner.name, self.root))

    def _map(self, path):
        path = pathutil.normalize(path)
        return self.root if path == "/" else pathutil.join(self.root, path[1:])

    def open(self, task, path, flags=OpenFlags.RDONLY, mode=0o644):
        return (yield from self.inner.open(task, self._map(path), flags, mode))

    def close(self, task, handle):
        yield from self.inner.close(task, handle)

    def read(self, task, handle, offset, size):
        return (yield from self.inner.read(task, handle, offset, size))

    def write(self, task, handle, offset, data):
        return (yield from self.inner.write(task, handle, offset, data))

    def fsync(self, task, handle):
        yield from self.inner.fsync(task, handle)

    def stat(self, task, path):
        return (yield from self.inner.stat(task, self._map(path)))

    def mkdir(self, task, path, mode=0o755):
        return (yield from self.inner.mkdir(task, self._map(path), mode))

    def rmdir(self, task, path):
        return (yield from self.inner.rmdir(task, self._map(path)))

    def unlink(self, task, path):
        return (yield from self.inner.unlink(task, self._map(path)))

    def readdir(self, task, path):
        return (yield from self.inner.readdir(task, self._map(path)))

    def rename(self, task, old_path, new_path):
        return (
            yield from self.inner.rename(
                task, self._map(old_path), self._map(new_path)
            )
        )

    def truncate(self, task, path, size):
        return (yield from self.inner.truncate(task, self._map(path), size))

    def peek(self, path, offset, size):
        return self.inner.peek(self._map(path), offset, size)
