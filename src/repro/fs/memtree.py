"""An in-memory namespace tree holding real file contents.

This is the common data substrate of the local ext4-like filesystem and
the Ceph-like metadata server: a tree of :class:`Node` objects (inodes)
with directory children, file byte contents and POSIX-ish semantics for
create/unlink/rename. It is a *pure data structure* — it consumes no
simulated time; the filesystems wrapping it add CPU, lock and device
costs.
"""

from repro.common.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.fs import pathutil

__all__ = ["Node", "MemTree"]


class Node(object):
    """One inode: a directory (with children) or a regular file (with data)."""

    __slots__ = (
        "ino",
        "is_dir",
        "children",
        "data",
        "mtime",
        "ctime",
        "nlink",
        "mode",
        "meta_size",
    )

    def __init__(self, ino, is_dir, now=0.0, mode=0o644):
        self.ino = ino
        self.is_dir = is_dir
        self.children = {} if is_dir else None
        self.data = None if is_dir else bytearray()
        self.mtime = now
        self.ctime = now
        self.nlink = 2 if is_dir else 1
        self.mode = mode
        # Metadata-only trees (the MDS) track sizes without holding data:
        # when meta_size is set, it overrides len(data).
        self.meta_size = None

    @property
    def size(self):
        if self.is_dir:
            return 0
        if self.meta_size is not None:
            return self.meta_size
        return len(self.data) if self.data is not None else 0

    def read(self, offset, size):
        """Read up to ``size`` bytes at ``offset`` (b'' past EOF)."""
        if self.is_dir:
            raise IsADirectory()
        if offset < 0 or size < 0:
            raise InvalidArgument("negative offset/size")
        return bytes(self.data[offset:offset + size])

    def write(self, offset, data):
        """Write ``data`` at ``offset``, zero-extending any hole."""
        if self.is_dir:
            raise IsADirectory()
        if offset < 0:
            raise InvalidArgument("negative offset")
        end = offset + len(data)
        if offset > len(self.data):
            self.data.extend(b"\x00" * (offset - len(self.data)))
        self.data[offset:end] = data
        return len(data)

    def truncate(self, size):
        if self.is_dir:
            raise IsADirectory()
        if size < 0:
            raise InvalidArgument("negative truncate size")
        if size <= len(self.data):
            del self.data[size:]
        else:
            self.data.extend(b"\x00" * (size - len(self.data)))


class MemTree(object):
    """A rooted tree of :class:`Node` objects addressed by absolute path."""

    def __init__(self):
        self._next_ino = 2
        self.root = Node(1, is_dir=True)
        self.total_bytes = 0  # sum of file data sizes, for space reports

    def _alloc_ino(self):
        ino = self._next_ino
        self._next_ino += 1
        return ino

    def _use_ino(self, ino):
        """Take a caller-pinned inode number (journal replay must recreate
        nodes under their original inos) or allocate a fresh one."""
        if ino is None:
            return self._alloc_ino()
        if ino >= self._next_ino:
            self._next_ino = ino + 1
        return ino

    # -- lookup -----------------------------------------------------------

    def lookup(self, path):
        """Resolve ``path`` to its :class:`Node` or raise FileNotFound."""
        node = self.root
        for part in pathutil.components(path):
            if not node.is_dir:
                raise NotADirectory(path=path)
            child = node.children.get(part)
            if child is None:
                raise FileNotFound(path=path)
            node = child
        return node

    def try_lookup(self, path):
        """Like :meth:`lookup` but returns None when missing."""
        try:
            return self.lookup(path)
        except (FileNotFound, NotADirectory):
            return None

    def lookup_dir(self, path):
        node = self.lookup(path)
        if not node.is_dir:
            raise NotADirectory(path=path)
        return node

    # -- mutation ----------------------------------------------------------

    def create_file(self, path, now=0.0, exclusive=False, mode=0o644, ino=None):
        """Create a regular file; returns the node (existing one unless
        ``exclusive``)."""
        parent_path, name = pathutil.split(path)
        if not name:
            raise InvalidArgument("cannot create root")
        parent = self.lookup_dir(parent_path)
        existing = parent.children.get(name)
        if existing is not None:
            if exclusive:
                raise FileExists(path=path)
            if existing.is_dir:
                raise IsADirectory(path=path)
            return existing
        node = Node(self._use_ino(ino), is_dir=False, now=now, mode=mode)
        parent.children[name] = node
        parent.mtime = now
        return node

    def mkdir(self, path, now=0.0, mode=0o755, ino=None):
        parent_path, name = pathutil.split(path)
        if not name:
            raise FileExists(path="/")
        parent = self.lookup_dir(parent_path)
        if name in parent.children:
            raise FileExists(path=path)
        node = Node(self._use_ino(ino), is_dir=True, now=now, mode=mode)
        parent.children[name] = node
        parent.nlink += 1
        parent.mtime = now
        return node

    def makedirs(self, path, now=0.0):
        """mkdir -p; returns the leaf directory node."""
        current = "/"
        node = self.root
        for part in pathutil.components(path):
            current = pathutil.join(current, part)
            child = node.children.get(part)
            if child is None:
                child = self.mkdir(current, now=now)
            elif not child.is_dir:
                raise NotADirectory(path=current)
            node = child
        return node

    def unlink(self, path, now=0.0):
        """Remove a regular file; returns the freed byte count."""
        parent_path, name = pathutil.split(path)
        parent = self.lookup_dir(parent_path)
        node = parent.children.get(name)
        if node is None:
            raise FileNotFound(path=path)
        if node.is_dir:
            raise IsADirectory(path=path)
        freed = node.size
        self.total_bytes -= freed
        del parent.children[name]
        parent.mtime = now
        return freed

    def rmdir(self, path, now=0.0):
        parent_path, name = pathutil.split(path)
        if not name:
            raise InvalidArgument("cannot remove root")
        parent = self.lookup_dir(parent_path)
        node = parent.children.get(name)
        if node is None:
            raise FileNotFound(path=path)
        if not node.is_dir:
            raise NotADirectory(path=path)
        if node.children:
            raise DirectoryNotEmpty(path=path)
        del parent.children[name]
        parent.nlink -= 1
        parent.mtime = now

    def rename(self, old_path, new_path, now=0.0):
        old_parent_path, old_name = pathutil.split(old_path)
        new_parent_path, new_name = pathutil.split(new_path)
        if not old_name or not new_name:
            raise InvalidArgument("cannot rename the root")
        if pathutil.is_ancestor(old_path, new_path) and old_path != new_path:
            raise InvalidArgument("cannot move a directory under itself")
        old_parent = self.lookup_dir(old_parent_path)
        node = old_parent.children.get(old_name)
        if node is None:
            raise FileNotFound(path=old_path)
        new_parent = self.lookup_dir(new_parent_path)
        target = new_parent.children.get(new_name)
        if target is not None:
            if target.is_dir and not node.is_dir:
                raise IsADirectory(path=new_path)
            if not target.is_dir and node.is_dir:
                raise NotADirectory(path=new_path)
            if target.is_dir and target.children:
                raise DirectoryNotEmpty(path=new_path)
            if not target.is_dir:
                self.total_bytes -= target.size
        del old_parent.children[old_name]
        new_parent.children[new_name] = node
        old_parent.mtime = now
        new_parent.mtime = now

    def readdir(self, path):
        """Sorted entry names of the directory at ``path``."""
        return sorted(self.lookup_dir(path).children.keys())

    # -- data, with space accounting ---------------------------------------

    def write_node(self, node, offset, data, now=0.0):
        """Write through a node, keeping ``total_bytes`` consistent."""
        before = node.size
        written = node.write(offset, data)
        self.total_bytes += node.size - before
        node.mtime = now
        return written

    def truncate_node(self, node, size, now=0.0):
        before = node.size
        node.truncate(size)
        self.total_bytes += node.size - before
        node.mtime = now

    def walk(self, path="/"):
        """Yield ``(path, node)`` for the subtree rooted at ``path``."""
        start = self.lookup(path)
        stack = [(pathutil.normalize(path), start)]
        while stack:
            current_path, node = stack.pop()
            yield current_path, node
            if node.is_dir:
                for name in sorted(node.children, reverse=True):
                    stack.append(
                        (pathutil.join(current_path, name), node.children[name])
                    )
