"""The testbed composition root.

A :class:`World` wires together everything one experiment needs: the
simulator, one or more client hosts (machine + host kernel + container
engine each), the network fabric and the Ceph-like storage cluster —
mirroring Fig. 5's testbed (client machine on the left, Ceph cluster of
6 OSDs + 1 MDS on ramdisks on the right).

Multiple hosts share the cluster through the same fabric, which is what
makes the paper's future-work scenario (§9) — container migration between
hosts through the shared network filesystem — expressible; see
:mod:`repro.containers.migration`.
"""

from repro import obs
from repro.common import units
from repro.common.errors import ConfigError
from repro.containers import ContainerEngine
from repro.costs import CostModel
from repro.fs.api import Task
from repro.hw import Machine
from repro.kernel import HostKernel
from repro.net import Fabric
from repro.sim import Simulator, SimThread
from repro.storage import CephCluster

__all__ = ["Host", "World"]


class Host(object):
    """One client host: machine, host kernel, container engine."""

    def __init__(self, world, name, num_cores, ram_bytes, num_disks):
        self.world = world
        self.name = name
        # Partition assignment for the parallel simulator: each client
        # host is its own partition (kernel + page cache + containers
        # live machine-local; only fabric RPCs cross to the cluster).
        self.partition = "host:%s" % name
        self.machine = Machine(
            world.sim, name=name, num_cores=num_cores, ram_bytes=ram_bytes,
            num_disks=num_disks,
        )
        self.kernel = HostKernel(world.sim, self.machine, costs=world.costs)
        self.engine = ContainerEngine(world, machine=self.machine)

    def activate_cores(self, count):
        return self.machine.activate_cores(count)

    def __repr__(self):
        return "<Host %s>" % self.name


class World(object):
    """One complete testbed instance."""

    def __init__(
        self,
        num_cores=16,
        ram_bytes=64 * units.GIB,
        num_osds=6,
        replicas=1,
        net_bandwidth=2.5 * units.GIB,
        net_latency=units.usec(40),
        costs=None,
        num_disks=6,
    ):
        self.sim = Simulator()
        self.costs = costs if costs is not None else CostModel()
        self.fabric = Fabric(
            self.sim, bandwidth=net_bandwidth, latency=net_latency
        )
        self.cluster = CephCluster(
            self.sim, self.fabric, self.costs, num_osds=num_osds,
            replicas=replicas,
        )
        self.hosts = []
        primary = self.add_host(
            "client", num_cores=num_cores, ram_bytes=ram_bytes,
            num_disks=num_disks,
        )
        # Compatibility aliases: most experiments use a single host.
        self.machine = primary.machine
        self.kernel = primary.kernel
        self.engine = primary.engine
        self.observer = None
        spec = obs.default_spec()
        if spec is not None:
            # The CLI armed auto-observation (``--trace``/``--profile``):
            # experiments that build worlds internally get observed too.
            obs._note_attached(self.observe(**spec))

    def add_host(self, name, num_cores=16, ram_bytes=64 * units.GIB,
                 num_disks=6):
        """Attach another client host to the same storage cluster."""
        if any(host.name == name for host in self.hosts):
            raise ConfigError("host %r already exists" % name)
        host = Host(self, name, num_cores, ram_bytes, num_disks)
        self.hosts.append(host)
        return host

    def host_of(self, machine):
        """The :class:`Host` owning ``machine``."""
        for host in self.hosts:
            if host.machine is machine:
                return host
        raise ConfigError("machine %r belongs to no host" % machine)

    def kernel_for(self, machine):
        """The host kernel of the host owning ``machine``."""
        return self.host_of(machine).kernel

    def partition_of(self, machine):
        """The partition name of the host owning ``machine``."""
        return self.host_of(machine).partition

    #: the partition holding the OSD/MDS cluster and its fabric endpoint
    CLUSTER_PARTITION = "cluster"

    def partition_plan(self):
        """The per-simulated-machine decomposition of this world.

        Returns ``{"partitions": {name: [member, ...]}, "channels":
        [CrossChannel, ...], "lookahead": seconds}`` — one partition per
        client host plus one for the OSD/MDS cluster, with a duplex
        channel pair per host whose lookahead is the fabric's
        propagation floor. This is the assignment the parallel runner
        consumes and the tests validate: the only simulation state
        shared between a host partition and the cluster partition is
        fabric traffic.
        """
        lookahead = self.fabric.lookahead()
        partitions = {
            self.CLUSTER_PARTITION: (
                ["osd%d" % i for i in range(len(self.cluster.osds))]
                + ["mds"]
            ),
        }
        channels = []
        for host in self.hosts:
            partitions[host.partition] = [
                host.machine.name, "kernel:%s" % host.name,
                "engine:%s" % host.name,
            ]
            channels.append(self.fabric.channel(
                "%s->cluster" % host.partition,
                host.partition, self.CLUSTER_PARTITION,
            ))
            channels.append(self.fabric.channel(
                "cluster->%s" % host.partition,
                self.CLUSTER_PARTITION, host.partition,
            ))
        return {
            "partitions": partitions,
            "channels": channels,
            "lookahead": lookahead,
        }

    def activate_cores(self, count):
        """Enable ``count`` cores on the primary client host."""
        return self.machine.activate_cores(count)

    def observe(self, categories=None, capacity=100000):
        """Attach a fresh :class:`~repro.obs.Observer` to this world.

        The observer becomes both ``sim.observer`` (spans, CPU and lock
        profiling) and ``sim.tracer`` (the flat ``sim.trace`` event
        path), replacing the old manual ``world.sim.tracer = Tracer(...)``
        idiom. Returns the observer.
        """
        observer = obs.Observer(
            sim=self.sim, categories=categories, capacity=capacity,
            world=self,
        )
        self.sim.tracer = observer
        self.sim.observer = observer
        self.observer = observer
        return observer

    def host_task(self, label="host"):
        """A task for host-side setup work (image seeding, pre-population).

        Runs on the primary machine's *full* core set so setup does not
        perturb the activated-core accounting of the experiment.
        """
        thread = SimThread(self.sim, label, self.machine.cores)
        return Task(thread)

    def run(self, until=None):
        return self.sim.run(until=until)
