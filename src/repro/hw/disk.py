"""Block-device models: disks, RAID-0 arrays and ramdisks.

The testbed in the paper has 6 local disks per machine (125-204 MB/s), with
the workloads' local filesystems on a 4-disk RAID-0, and the Ceph OSDs
backed by ramdisks. We model a disk as a single request queue with a
per-request positioning time (much larger for random access) plus a
size-proportional transfer time.
"""

from repro.common import units
from repro.sim.sync import Mutex

__all__ = ["Disk", "Raid0", "RamDisk"]


class Disk(object):
    """A single spindle: one queue, seek/positioning cost, transfer rate."""

    def __init__(
        self,
        sim,
        name="disk",
        bandwidth=160 * units.MIB,
        seq_position_time=units.usec(50),
        rand_position_time=units.msec(6),
    ):
        self.sim = sim
        self.name = name
        self.bandwidth = float(bandwidth)
        self.seq_position_time = seq_position_time
        self.rand_position_time = rand_position_time
        self._queue = Mutex(sim, name="diskq:%s" % name)
        self.bytes_read = 0
        self.bytes_written = 0
        #: service-time multiplier; >1 models a degraded (slow) device —
        #: media errors under retry, a failing controller, a noisy
        #: virtualised neighbour. Set by fault injection.
        self.slow_factor = 1.0

    def set_slow_factor(self, factor):
        """Degrade (or restore, with 1.0) the device service time."""
        if factor < 1.0:
            raise ValueError("slow factor must be >= 1.0")
        self.slow_factor = float(factor)
        self.sim.trace("hw", "disk_degrade", disk=self.name, factor=factor)

    def transfer(self, nbytes, write=False, random_access=False, positions=1):
        """Perform one I/O of ``nbytes``; generator completing when done.

        ``positions`` models an elevator-sorted scatter list: the device
        pays one positioning delay per contiguous run (writeback of a
        randomly-dirtied file) but the request occupies the queue once.
        """
        yield self._queue.acquire()
        try:
            position = (
                self.rand_position_time if random_access else self.seq_position_time
            )
            yield self.sim.timeout(
                (position * max(positions, 1) + nbytes / self.bandwidth)
                * self.slow_factor
            )
        finally:
            self._queue.release()
        if write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes

    @property
    def queue_len(self):
        return self._queue.queue_len + (1 if self._queue.locked else 0)


class RamDisk(Disk):
    """Memory-backed block device (the paper's OSD data/journal store)."""

    def __init__(self, sim, name="ramdisk", bandwidth=2 * units.GIB):
        super().__init__(
            sim,
            name=name,
            bandwidth=bandwidth,
            seq_position_time=units.usec(2),
            rand_position_time=units.usec(4),
        )


class Raid0(object):
    """Stripes I/O across member disks in fixed-size chunks, in parallel."""

    def __init__(self, sim, disks, chunk=64 * units.KIB, name="raid0"):
        if not disks:
            raise ValueError("RAID-0 needs at least one disk")
        self.sim = sim
        self.name = name
        self.disks = list(disks)
        self.chunk = chunk

    @property
    def bandwidth(self):
        return sum(disk.bandwidth for disk in self.disks)

    def transfer(self, nbytes, write=False, random_access=False, offset=0,
                 positions=1):
        """Split the request over the stripes and wait for all of them."""
        per_disk = [0] * len(self.disks)
        stripe = (offset // self.chunk) % len(self.disks)
        remaining = nbytes
        first = min(self.chunk - offset % self.chunk, remaining)
        per_disk[stripe] += first
        remaining -= first
        while remaining > 0:
            stripe = (stripe + 1) % len(self.disks)
            piece = min(self.chunk, remaining)
            per_disk[stripe] += piece
            remaining -= piece
        active = [amount for amount in per_disk if amount > 0]
        per_disk_positions = max(1, positions // max(len(active), 1))
        pending = [
            self.sim.spawn(
                disk.transfer(amount, write=write, random_access=random_access,
                              positions=per_disk_positions),
                name="raid-io",
            )
            for disk, amount in zip(self.disks, per_disk)
            if amount > 0
        ]
        if pending:
            yield self.sim.all_of(pending)
