"""Hardware models: machines, cores, disks, RAM accounting."""

from repro.hw.disk import Disk, Raid0, RamDisk
from repro.hw.machine import CoreGroup, Machine, RamAccount

__all__ = ["Disk", "Raid0", "RamDisk", "CoreGroup", "Machine", "RamAccount"]
