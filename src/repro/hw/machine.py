"""Host machine model: cores, core groups, RAM accounting, local disks.

The client machine in the paper has 64 cores in L2-sharing pairs and 256 GB
RAM; experiments *activate* only a subset of cores (e.g. 4 or 16) and place
each container pool on a dedicated 2-core cpuset. The machine object owns
the cores, the core-pair topology Danaus uses to place its IPC queues, and
a RAM account that backs cgroup memory charging.
"""

from repro.common import units
from repro.common.errors import ConfigError, OutOfMemory
from repro.hw.disk import Disk, Raid0
from repro.metrics import MetricSet
from repro.sim.cpu import Core

__all__ = ["CoreGroup", "RamAccount", "Machine"]


class CoreGroup(object):
    """Cores sharing a same-level cache (an L2 pair on the testbed).

    Danaus keeps one IPC request queue per core group so application and
    service threads communicating through the queue share an L2 (§3.5).
    """

    __slots__ = ("index", "cores")

    def __init__(self, index, cores):
        self.index = index
        self.cores = list(cores)

    def __contains__(self, core):
        return core in self.cores

    def __repr__(self):
        return "<CoreGroup %d cores=%s>" % (
            self.index,
            [core.index for core in self.cores],
        )


class RamAccount(object):
    """Tracks memory usage against a capacity; supports child accounts.

    A child account represents a cgroup memory limit; charging a child also
    charges its parent (the machine). Exceeding a limit raises
    :class:`OutOfMemory` — workloads are sized to avoid it, and tests use it
    to verify the cgroup behaviour.
    """

    def __init__(self, capacity, name="ram", parent=None):
        self.capacity = capacity
        self.name = name
        self.parent = parent
        self.used = 0
        self.high_water = 0

    def charge(self, nbytes):
        if nbytes < 0:
            raise ConfigError("negative memory charge")
        # Validate the whole ancestor chain before mutating any account, so
        # a limit hit partway up leaves every account untouched.
        account = self
        while account is not None:
            if account.used + nbytes > account.capacity:
                raise OutOfMemory(
                    "%s: %d + %d exceeds %d bytes"
                    % (account.name, account.used, nbytes, account.capacity)
                )
            account = account.parent
        account = self
        while account is not None:
            used = account.used + nbytes
            account.used = used
            if used > account.high_water:
                account.high_water = used
            account = account.parent

    def uncharge(self, nbytes):
        account = self
        while account is not None:
            if nbytes > account.used:
                raise ConfigError(
                    "%s: uncharge %d exceeds used %d"
                    % (account.name, nbytes, account.used)
                )
            account.used -= nbytes
            account = account.parent

    def can_charge(self, nbytes):
        """True when ``nbytes`` fits under this account and its ancestors."""
        account = self
        while account is not None:
            if account.used + nbytes > account.capacity:
                return False
            account = account.parent
        return True

    @property
    def available(self):
        return self.capacity - self.used

    def child(self, capacity, name):
        """Create a sub-account (cgroup memory limit)."""
        return RamAccount(capacity, name=name, parent=self)


class Machine(object):
    """A host: cores grouped into L2 pairs, RAM, and local disks."""

    def __init__(
        self,
        sim,
        name="host",
        num_cores=64,
        cores_per_group=2,
        ram_bytes=256 * units.GIB,
        num_disks=6,
        disk_bandwidth=160 * units.MIB,
    ):
        if num_cores <= 0 or cores_per_group <= 0:
            raise ConfigError("machine needs positive core counts")
        self.sim = sim
        self.name = name
        self.cores = [
            Core(sim, index, name="%s.c%d" % (name, index))
            for index in range(num_cores)
        ]
        self.core_groups = [
            CoreGroup(gi, self.cores[gi * cores_per_group:(gi + 1) * cores_per_group])
            for gi in range((num_cores + cores_per_group - 1) // cores_per_group)
        ]
        self.ram = RamAccount(ram_bytes, name="%s.ram" % name)
        self.disks = [
            Disk(sim, name="%s.d%d" % (name, index), bandwidth=disk_bandwidth)
            for index in range(num_disks)
        ]
        self.activated = list(self.cores)
        self.metrics = MetricSet("%s.metrics" % name)
        self._next_alloc = 0

    def activate_cores(self, count):
        """Enable only the first ``count`` cores (the paper enables 4-16)."""
        if not 0 < count <= len(self.cores):
            raise ConfigError("cannot activate %d of %d cores" % (count, len(self.cores)))
        self.activated = self.cores[:count]
        self._next_alloc = 0
        return self.activated

    def allocate_cores(self, count):
        """Reserve the next ``count`` activated cores for a container pool.

        Allocation is sequential so that a 2-core pool lands on one L2 core
        group, matching the testbed layout.
        """
        if self._next_alloc + count > len(self.activated):
            raise ConfigError(
                "out of activated cores: want %d, %d left"
                % (count, len(self.activated) - self._next_alloc)
            )
        cores = self.activated[self._next_alloc:self._next_alloc + count]
        self._next_alloc += count
        return cores

    def group_of(self, core):
        """The :class:`CoreGroup` containing ``core``."""
        for group in self.core_groups:
            if core in group:
                return group
        raise ConfigError("core %r not on machine %s" % (core, self.name))

    def groups_covering(self, cores):
        """Distinct core groups touched by ``cores``, in index order."""
        seen = []
        for core in cores:
            group = self.group_of(core)
            if group not in seen:
                seen.append(group)
        return seen

    def make_raid0(self, num_disks=4, chunk=64 * units.KIB):
        """Build a RAID-0 over the first ``num_disks`` local disks."""
        if num_disks > len(self.disks):
            raise ConfigError("machine has only %d disks" % len(self.disks))
        return Raid0(self.sim, self.disks[:num_disks], chunk=chunk)

    def __repr__(self):
        return "<Machine %s cores=%d activated=%d>" % (
            self.name,
            len(self.cores),
            len(self.activated),
        )
