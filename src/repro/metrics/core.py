"""Metric primitives: counters, gauges and latency histograms.

Every experiment in the paper reports one of a small set of metrics —
throughput (ops/s or bytes/s), latency (mean / p99), core utilisation,
lock wait/hold time, context switches, memory high-water mark. These
classes collect them with negligible overhead and render the summary
tables the benchmark harness prints.
"""

import math

__all__ = ["Counter", "Gauge", "Histogram", "MetricSet"]


class Counter(object):
    """A monotonically increasing count (ops completed, bytes moved)."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def add(self, amount=1):
        if amount < 0:
            raise ValueError("counter %r cannot decrease" % self.name)
        self.value += amount

    def rate(self, elapsed):
        """Value per second over ``elapsed`` seconds."""
        return self.value / elapsed if elapsed > 0 else 0.0

    def __repr__(self):
        return "<Counter %s=%r>" % (self.name, self.value)


class Gauge(object):
    """An instantaneous value with a high-water mark (cache bytes, queue depth)."""

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name):
        self.name = name
        self.value = 0
        self.high_water = 0

    def set(self, value):
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, amount):
        self.set(self.value + amount)

    def __repr__(self):
        return "<Gauge %s=%r hw=%r>" % (self.name, self.value, self.high_water)


class Histogram(object):
    """Records observations and answers mean/percentile queries.

    Stores raw samples (experiments here produce at most a few hundred
    thousand), sorting lazily on the first percentile query.
    """

    __slots__ = ("name", "_samples", "_sorted", "total")

    def __init__(self, name):
        self.name = name
        self._samples = []
        self._sorted = False
        self.total = 0.0

    def observe(self, value):
        self._samples.append(value)
        self._sorted = False
        self.total += value

    @property
    def count(self):
        return len(self._samples)

    @property
    def mean(self):
        return self.total / len(self._samples) if self._samples else 0.0

    @property
    def min(self):
        return min(self._samples) if self._samples else 0.0

    @property
    def max(self):
        return max(self._samples) if self._samples else 0.0

    def percentile(self, pct):
        """Linear-interpolated percentile; ``pct`` in [0, 100]."""
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        if pct <= 0:
            return self._samples[0]
        if pct >= 100:
            return self._samples[-1]
        rank = (pct / 100.0) * (len(self._samples) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return self._samples[low]
        frac = rank - low
        return self._samples[low] * (1 - frac) + self._samples[high] * frac

    @property
    def p50(self):
        return self.percentile(50)

    @property
    def p99(self):
        return self.percentile(99)

    def __repr__(self):
        return "<Histogram %s n=%d mean=%g>" % (self.name, self.count, self.mean)


class MetricSet(object):
    """A named bag of metrics, created on first use.

    Components hold one :class:`MetricSet` each (per pool, per client, per
    workload); the harness rolls them up into report rows.
    """

    def __init__(self, name="metrics"):
        self.name = name
        self.counters = {}
        self.gauges = {}
        self.histograms = {}

    def counter(self, name):
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name):
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name):
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(name)
        return metric

    def snapshot(self):
        """A plain-dict summary used by reports and tests."""
        out = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, gauge in self.gauges.items():
            out[name] = gauge.value
            out[name + ".hw"] = gauge.high_water
        for name, hist in self.histograms.items():
            out[name + ".count"] = hist.count
            out[name + ".mean"] = hist.mean
            out[name + ".p99"] = hist.p99 if hist.count else 0.0
        return out
