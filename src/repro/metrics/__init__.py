"""Metric collection: counters, gauges, histograms, utilisation probes."""

from repro.metrics.core import Counter, Gauge, Histogram, MetricSet

__all__ = ["Counter", "Gauge", "Histogram", "MetricSet"]
