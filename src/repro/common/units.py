"""Unit helpers and constants.

All simulated time is in **seconds** (float) and all sizes in **bytes**
(int). These helpers keep workload and cost-model definitions readable.
"""

# --- sizes ----------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def kib(n):
    """Return ``n`` KiB in bytes."""
    return int(n * KIB)


def mib(n):
    """Return ``n`` MiB in bytes."""
    return int(n * MIB)


def gib(n):
    """Return ``n`` GiB in bytes."""
    return int(n * GIB)


# --- time -----------------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3


def usec(n):
    """Return ``n`` microseconds in seconds."""
    return n * USEC


def msec(n):
    """Return ``n`` milliseconds in seconds."""
    return n * MSEC


def fmt_bytes(n):
    """Format a byte count for human-readable reports."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return "%.1f%s" % (value, unit)
        value /= 1024.0
    return "%dB" % n


def fmt_rate(bytes_per_sec):
    """Format a throughput (bytes/second) for reports."""
    return fmt_bytes(bytes_per_sec) + "/s"


def fmt_time(seconds):
    """Format a duration for reports (picks us/ms/s)."""
    if seconds == 0:
        return "0s"
    if abs(seconds) < 1e-3:
        return "%.1fus" % (seconds / USEC)
    if abs(seconds) < 1.0:
        return "%.2fms" % (seconds / MSEC)
    return "%.2fs" % seconds
