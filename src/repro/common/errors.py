"""Exception hierarchy shared across the Danaus reproduction.

Filesystem errors mirror POSIX errno semantics so that every layer (local
filesystem, Ceph-like client, union filesystem, Danaus library) raises the
same exception types and callers can handle them uniformly.
"""

import errno


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class ConfigError(ReproError):
    """An invalid configuration was supplied."""


class FsError(ReproError):
    """A filesystem operation failed with a POSIX-style errno.

    Attributes:
        errno: numeric errno value (e.g. ``errno.ENOENT``).
        path: the path involved, when known.
    """

    default_errno = errno.EIO

    def __init__(self, message="", path=None, eno=None):
        self.errno = eno if eno is not None else self.default_errno
        self.path = path
        detail = message or errno.errorcode.get(self.errno, "EIO")
        if path is not None:
            detail = "%s: %s" % (detail, path)
        super().__init__(detail)


class FileNotFound(FsError):
    """ENOENT: the file or directory does not exist."""

    default_errno = errno.ENOENT


class FileExists(FsError):
    """EEXIST: the file already exists."""

    default_errno = errno.EEXIST


class NotADirectory(FsError):
    """ENOTDIR: a path component is not a directory."""

    default_errno = errno.ENOTDIR


class IsADirectory(FsError):
    """EISDIR: the operation does not apply to directories."""

    default_errno = errno.EISDIR


class DirectoryNotEmpty(FsError):
    """ENOTEMPTY: rmdir on a non-empty directory."""

    default_errno = errno.ENOTEMPTY


class PermissionDenied(FsError):
    """EACCES: access mode forbids the operation (e.g. read-only branch)."""

    default_errno = errno.EACCES


class ReadOnlyFilesystem(FsError):
    """EROFS: write attempted on a read-only filesystem or branch."""

    default_errno = errno.EROFS


class BadFileDescriptor(FsError):
    """EBADF: unknown or closed file descriptor."""

    default_errno = errno.EBADF


class InvalidArgument(FsError):
    """EINVAL: malformed argument (offset, whence, flags)."""

    default_errno = errno.EINVAL


class NoSpace(FsError):
    """ENOSPC: the backing store is full."""

    default_errno = errno.ENOSPC


class NotMounted(FsError):
    """ENODEV: no filesystem is mounted at the path."""

    default_errno = errno.ENODEV


class CrossDevice(FsError):
    """EXDEV: rename across filesystems or branches."""

    default_errno = errno.EXDEV


class ServiceFailed(ReproError):
    """A Danaus filesystem service crashed and cannot serve requests."""


class OutOfMemory(ReproError):
    """A cgroup memory limit was exceeded (simulated OOM)."""
