"""Exception hierarchy shared across the Danaus reproduction.

Filesystem errors mirror POSIX errno semantics so that every layer (local
filesystem, Ceph-like client, union filesystem, Danaus library) raises the
same exception types and callers can handle them uniformly.

Hierarchy (fault taxonomy in one place):

    =====================  ==========  =========================================
    Exception              errno       Meaning / recovery contract
    =====================  ==========  =========================================
    ReproError             —           base of everything below
    . SimulationError      —           DES engine misuse (a bug, never retried)
    . ConfigError          —           invalid experiment configuration
    . FsError              EIO         POSIX-style filesystem failure (base)
    . . FileNotFound       ENOENT      missing path
    . . FileExists         EEXIST      exclusive create collision
    . . NotADirectory      ENOTDIR     non-directory path component
    . . IsADirectory       EISDIR      op does not apply to directories
    . . DirectoryNotEmpty  ENOTEMPTY   rmdir of a populated directory
    . . PermissionDenied   EACCES      access mode forbids the op
    . . ReadOnlyFilesystem EROFS       write on a read-only branch
    . . BadFileDescriptor  EBADF       unknown/closed descriptor
    . . InvalidArgument    EINVAL      malformed offset/whence/flags
    . . NoSpace            ENOSPC      backing store full
    . . NotMounted         ENODEV      nothing mounted at the path
    . . CrossDevice        EXDEV       rename across filesystems
    . . DataUnavailable    EIO         every replica of an object is down;
                                       retryable once an OSD returns
    . . DataCorrupt        EIO         every replica fails checksum
                                       verification; NOT retryable (only
                                       repair or a fresh write clears it)
    . . OpTimeout          ETIMEDOUT   client-side op timeout expired;
                                       retryable (epoch-aware resend)
    . . OldEpoch           EAGAIN      OSD rejected an op stamped with a
                                       stale osdmap epoch; retryable after
                                       the client refreshes its map
    . . NetworkPartitioned ENETUNREACH link partitioned or message lost;
                                       retryable after the partition heals
    . . ServiceRestarting  EAGAIN      Danaus service is down but supervised;
                                       retryable after the restart completes
    . ServiceFailed        —           Danaus service crashed, no supervisor
    . ThreadKilled         —           owning process died; the thread stops
                                       at its next scheduling point
    . OutOfMemory          —           simulated cgroup OOM
    =====================  ==========  =========================================

``RETRYABLE`` collects the transient subset: layers implementing
retry/backoff (cluster data path, client MDS sessions, Danaus library)
retry exactly these and propagate everything else immediately.
"""

import errno


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class ConfigError(ReproError):
    """An invalid configuration was supplied."""


class FsError(ReproError):
    """A filesystem operation failed with a POSIX-style errno.

    Attributes:
        errno: numeric errno value (e.g. ``errno.ENOENT``).
        path: the path involved, when known.
    """

    default_errno = errno.EIO

    def __init__(self, message="", path=None, eno=None):
        self.errno = eno if eno is not None else self.default_errno
        self.path = path
        detail = message or errno.errorcode.get(self.errno, "EIO")
        if path is not None:
            detail = "%s: %s" % (detail, path)
        super().__init__(detail)


class FileNotFound(FsError):
    """ENOENT: the file or directory does not exist."""

    default_errno = errno.ENOENT


class FileExists(FsError):
    """EEXIST: the file already exists."""

    default_errno = errno.EEXIST


class NotADirectory(FsError):
    """ENOTDIR: a path component is not a directory."""

    default_errno = errno.ENOTDIR


class IsADirectory(FsError):
    """EISDIR: the operation does not apply to directories."""

    default_errno = errno.EISDIR


class DirectoryNotEmpty(FsError):
    """ENOTEMPTY: rmdir on a non-empty directory."""

    default_errno = errno.ENOTEMPTY


class PermissionDenied(FsError):
    """EACCES: access mode forbids the operation (e.g. read-only branch)."""

    default_errno = errno.EACCES


class ReadOnlyFilesystem(FsError):
    """EROFS: write attempted on a read-only filesystem or branch."""

    default_errno = errno.EROFS


class BadFileDescriptor(FsError):
    """EBADF: unknown or closed file descriptor."""

    default_errno = errno.EBADF


class InvalidArgument(FsError):
    """EINVAL: malformed argument (offset, whence, flags)."""

    default_errno = errno.EINVAL


class NoSpace(FsError):
    """ENOSPC: the backing store is full."""

    default_errno = errno.ENOSPC


class NotMounted(FsError):
    """ENODEV: no filesystem is mounted at the path."""

    default_errno = errno.ENODEV


class CrossDevice(FsError):
    """EXDEV: rename across filesystems or branches."""

    default_errno = errno.EXDEV


class DataUnavailable(FsError):
    """EIO: every replica of an object is currently down.

    Raised instead of silently returning truncated data when stored bytes
    exist only on failed OSDs. Retryable: the data reappears when a
    holding OSD restarts or recovery re-replicates the object.
    """

    default_errno = errno.EIO


class DataCorrupt(FsError):
    """EIO: every replica of an object fails checksum verification.

    A single corrupt copy is never user-visible: the verified read path
    fails over to a clean replica and repairs the bad one in the
    background. This error means *no* stored copy matches its recorded
    digests, so returning bytes would mean returning garbage. Unlike
    :class:`DataUnavailable` it is not retryable — resending the read
    cannot make corrupt media honest; only scrub repair or a fresh
    overwrite clears the condition.
    """

    default_errno = errno.EIO


class OpTimeout(FsError):
    """ETIMEDOUT: a client-side operation timeout expired.

    The request may or may not have executed server-side; data-path
    retries are idempotent (same bytes, same offsets), so the client
    resends after a backoff against the current map epoch.
    """

    default_errno = errno.ETIMEDOUT


class OldEpoch(FsError):
    """EAGAIN: an OSD rejected an op carrying a stale osdmap epoch.

    The EOLDEPOCH analogue: every data-path RPC is stamped with the map
    epoch the client resolved placement from, and an OSD holding a newer
    map refuses the op before touching its store — the request may have
    been routed by a map that no longer reflects membership. Retryable:
    the client refreshes its map subscription and re-resolves placement
    on the next attempt. Never raised on the fault-free fast path, which
    sends no epoch stamp at all.
    """

    default_errno = errno.EAGAIN


class NetworkPartitioned(FsError):
    """ENETUNREACH: the fabric is partitioned or dropped the message."""

    default_errno = errno.ENETUNREACH


class ServiceRestarting(FsError):
    """EAGAIN: a supervised Danaus service is down and being restarted."""

    default_errno = errno.EAGAIN


class ServiceFailed(ReproError):
    """A Danaus filesystem service crashed and cannot serve requests."""


class ThreadKilled(ReproError):
    """The process owning this thread died while the thread was running.

    Raised from :meth:`~repro.sim.cpu.SimThread.run` at the thread's next
    scheduling point, so in-flight handler code of a crashed service stops
    executing instead of mutating shared state after the crash — a real
    SIGKILL stops every thread at its current instruction. Handlers abort
    through their ``finally`` blocks (locks release cleanly), and code
    holding not-yet-applied state (e.g. a flusher that took dirty extents)
    must restore it before propagating, exactly as for a backend error.
    """


class OutOfMemory(ReproError):
    """A cgroup memory limit was exceeded (simulated OOM)."""


#: Transient failures that retry/backoff layers resend; everything else
#: propagates to the caller immediately.
RETRYABLE = (DataUnavailable, OpTimeout, OldEpoch, NetworkPartitioned,
             ServiceRestarting)
