"""Shared utilities: errors, units and deterministic randomness."""

from repro.common import errors, rng, units

__all__ = ["errors", "rng", "units"]
