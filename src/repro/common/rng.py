"""Deterministic random-number helpers.

Every stochastic component takes an explicit seed so that simulations are
reproducible: the same seed always produces the same event trace. Seeds are
derived hierarchically (``derive``) so adding a new consumer does not
perturb the streams of existing ones.
"""

import hashlib
import random


def derive(seed, *labels):
    """Derive a child seed from ``seed`` and a label path.

    The derivation hashes the parent seed together with the labels, so each
    (seed, labels) pair maps to a stable, independent child stream.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(seed).encode("utf-8"))
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode("utf-8"))
    return int.from_bytes(h.digest(), "big")


def make_rng(seed, *labels):
    """Return a ``random.Random`` seeded from a derived child seed."""
    return random.Random(derive(seed, *labels))


def pseudo_bytes(size, seed):
    """Generate ``size`` deterministic pseudo-random bytes cheaply.

    Used to fill synthetic file contents; repeated 64-byte blocks derived
    from the seed keep generation O(size) with a small constant.
    """
    if size <= 0:
        return b""
    block = hashlib.blake2b(str(seed).encode("utf-8"), digest_size=64).digest()
    reps = size // len(block) + 1
    return (block * reps)[:size]
