"""Synchronisation primitives for the DES engine.

These mirror the kernel/user-level primitives the paper profiles:

* :class:`Mutex` — a FIFO mutual-exclusion lock that records per-request
  wait and hold times (the paper's Fig. 1b reports exactly these).
* :class:`Semaphore` — a counted resource (run-queue slots, queue depth).
* :class:`Store` — a FIFO message channel used for request queues.
"""

from collections import deque

from repro.common.errors import SimulationError
from repro.sim.engine import Event

__all__ = ["LockStats", "Mutex", "Semaphore", "Store"]


class LockStats(object):
    """Aggregate wait/hold accounting for one lock.

    ``avg_wait``/``avg_hold`` are *per lock request*, matching the metric
    in the paper's motivation figure.
    """

    __slots__ = (
        "acquisitions",
        "contended",
        "total_wait",
        "total_hold",
        "max_wait",
        "max_hold",
    )

    def __init__(self):
        self.acquisitions = 0
        self.contended = 0
        self.total_wait = 0.0
        self.total_hold = 0.0
        self.max_wait = 0.0
        self.max_hold = 0.0

    @property
    def avg_wait(self):
        """Mean wait time per lock request (seconds)."""
        return self.total_wait / self.acquisitions if self.acquisitions else 0.0

    @property
    def avg_hold(self):
        """Mean hold time per lock request (seconds)."""
        return self.total_hold / self.acquisitions if self.acquisitions else 0.0

    def record_wait(self, wait):
        self.acquisitions += 1
        if wait > 0:
            self.contended += 1
            self.total_wait += wait
            if wait > self.max_wait:
                self.max_wait = wait

    def record_hold(self, hold):
        self.total_hold += hold
        if hold > self.max_hold:
            self.max_hold = hold

    def merge(self, other):
        """Fold another :class:`LockStats` into this one (for rollups)."""
        self.acquisitions += other.acquisitions
        self.contended += other.contended
        self.total_wait += other.total_wait
        self.total_hold += other.total_hold
        self.max_wait = max(self.max_wait, other.max_wait)
        self.max_hold = max(self.max_hold, other.max_hold)


class Mutex(object):
    """FIFO mutual exclusion with wait/hold statistics.

    Usage inside a process::

        yield lock.acquire()
        try:
            ...critical section...
        finally:
            lock.release()
    """

    __slots__ = ("sim", "name", "stats", "_owner", "_granted_at", "_waiters",
                 "_acq_name")

    def __init__(self, sim, name="lock"):
        self.sim = sim
        self.name = name
        self.stats = LockStats()
        self._owner = None
        self._granted_at = 0.0
        self._waiters = deque()
        self._acq_name = "acquire:%s" % name  # formatted once, not per call

    @property
    def locked(self):
        return self._owner is not None

    @property
    def queue_len(self):
        """Number of waiters (excluding the current holder)."""
        return len(self._waiters)

    def acquire(self, who=None):
        """Return an event that triggers once the lock is held."""
        event = Event(self.sim, name=self._acq_name)
        if self._owner is None:
            self._grant(event, who, requested_at=self.sim.now)
            event.succeed()
        else:
            self._waiters.append((event, who, self.sim.now))
        return event

    def _grant(self, event, who, requested_at):
        self._owner = who if who is not None else event
        self._granted_at = self.sim.now
        self.stats.record_wait(self.sim.now - requested_at)

    def release(self):
        """Release the lock, handing it to the next FIFO waiter."""
        if self._owner is None:
            raise SimulationError("release of unheld lock %r" % self.name)
        self.stats.record_hold(self.sim.now - self._granted_at)
        if self._waiters:
            event, who, requested_at = self._waiters.popleft()
            self._grant(event, who, requested_at)
            event.succeed()
        else:
            self._owner = None


class Semaphore(object):
    """A counting semaphore with FIFO wakeups."""

    __slots__ = ("sim", "name", "capacity", "_available", "_waiters",
                 "_acq_name")

    def __init__(self, sim, capacity, name="sem"):
        if capacity < 0:
            raise SimulationError("semaphore capacity must be >= 0")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._available = capacity
        self._waiters = deque()
        self._acq_name = "sem:%s" % name

    @property
    def available(self):
        return self._available

    @property
    def queue_len(self):
        return len(self._waiters)

    def acquire(self):
        """Return an event that triggers once a unit is held."""
        event = Event(self.sim, name=self._acq_name)
        if self._available > 0:
            self._available -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Return one unit, waking the oldest waiter if any."""
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._available += 1
            if self._available > self.capacity:
                raise SimulationError(
                    "semaphore %r over-released" % self.name
                )


class Store(object):
    """An unbounded (or bounded) FIFO channel of items.

    ``put`` returns an event that triggers when the item is accepted (always
    immediately for unbounded stores); ``get`` returns an event that triggers
    with the oldest item.
    """

    __slots__ = ("sim", "name", "capacity", "_items", "_getters", "_putters",
                 "_put_name", "_get_name")

    def __init__(self, sim, capacity=None, name="store"):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items = deque()
        self._getters = deque()
        self._putters = deque()  # (event, item)
        self._put_name = "put:%s" % name
        self._get_name = "get:%s" % name

    def __len__(self):
        return len(self._items)

    @property
    def getters_waiting(self):
        return len(self._getters)

    def put(self, item):
        """Offer ``item``; the returned event triggers once it is enqueued."""
        event = Event(self.sim, name=self._put_name)
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self):
        """Take the oldest item; the returned event triggers with it."""
        event = Event(self.sim, name=self._get_name)
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_event, queued = self._putters.popleft()
                self._items.append(queued)
                put_event.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def abort_getters(self, exc):
        """Fail every waiting getter with ``exc``.

        Used to tear down consumer loops when the producer side dies (a
        crashed Danaus service): a blocked ``get()`` raises ``exc`` in
        the waiting process instead of leaking forever.
        """
        getters, self._getters = self._getters, deque()
        for event in getters:
            event.fail(exc)

    def try_get(self):
        """Non-blocking take; returns ``(True, item)`` or ``(False, None)``."""
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_event, queued = self._putters.popleft()
                self._items.append(queued)
                put_event.succeed()
            return True, item
        return False, None
