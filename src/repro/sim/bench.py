"""Engine-level reference scenarios and schedule fingerprints.

The DES engine is the hardware ceiling of every experiment in this
reproduction: VFS calls, writeback rounds, FUSE crossings and OSD RPCs
are all scheduler entries. This module provides two things the perf
work needs:

* **micro scenarios** — pure-engine torture loops (mutex convoys,
  semaphore herds, store pipelines, ``any_of`` races, interrupts) that
  exercise every scheduling path without any of the storage stack on
  top, so scheduler regressions are visible undiluted;
* **schedule fingerprints** — a stable hash over the exact sequence of
  ``(tag, simulated-time)`` observations a scenario produces. Two
  engines that schedule byte-identically produce equal fingerprints;
  any reordering of same-timestamp callbacks, however subtle, changes
  the hash. The determinism tests pin golden values captured from the
  pre-optimization engine, so the fast path is provably
  schedule-equivalent to the original heap-only scheduler.

The fingerprint hash is ``blake2b(repr(log))`` over a log of plain
tuples of strings/ints/floats — ``repr`` of those is stable across
CPython versions for the value ranges used here (times are sums of
exact binary fractions or short decimals; equality of schedules implies
equality of the floats themselves).
"""

import hashlib
import random

from repro.sim.engine import Interrupt, Simulator
from repro.sim.sync import Mutex, Semaphore, Store

__all__ = [
    "torture_scenario",
    "interrupt_scenario",
    "combinator_scenario",
    "schedule_fingerprint",
    "run_reference",
    "stripe_fanout_reference",
    "partitioned_reference",
]


def torture_scenario(sim, log, seed=1, nworkers=24, steps=40):
    """Mutex/semaphore/store contention mix; appends to ``log``.

    Returns the list of spawned processes (callers run the sim).
    """
    rng = random.Random(seed)
    locks = [Mutex(sim, name="m%d" % i) for i in range(3)]
    sem = Semaphore(sim, 2, name="sem")
    store = Store(sim, capacity=8, name="q")
    delays = [rng.randrange(1, 9) * 0.0005 for _ in range(nworkers * steps)]

    def consumer(tag):
        while True:
            item = yield store.get()
            if item is None:
                log.append(("stop", tag, sim.now))
                return
            log.append(("got", tag, item, sim.now))
            yield sim.timeout(0.0005 * ((item % 5) + 1))

    def worker(tag):
        for step in range(steps):
            choice = (tag + step) % 4
            delay = delays[tag * steps + step]
            if choice == 0:
                lock = locks[(tag + step) % 3]
                yield lock.acquire(who=None)
                log.append(("lock", tag, step, sim.now))
                yield sim.timeout(delay)
                lock.release()
            elif choice == 1:
                yield sem.acquire()
                yield sim.timeout(delay)
                sem.release()
                log.append(("sem", tag, step, sim.now))
            elif choice == 2:
                yield store.put(tag * 1000 + step)
                log.append(("put", tag, step, sim.now))
            else:
                gate = sim.event()
                index, _value = yield sim.any_of(
                    [sim.timeout(delay), gate]
                )
                log.append(("race", tag, step, index, sim.now))
        log.append(("done", tag, sim.now))

    def closer(procs):
        yield sim.all_of(procs)
        for _ in range(2):
            yield store.put(None)

    consumers = [sim.spawn(consumer(c), name="cons%d" % c) for c in range(2)]
    workers = [sim.spawn(worker(t), name="w%d" % t) for t in range(nworkers)]
    closer_proc = sim.spawn(closer(list(workers)), name="closer")
    return workers + consumers + [closer_proc]


def interrupt_scenario(sim, log, seed=2, npairs=16):
    """Interrupt storms, including interrupts racing queued resumptions."""
    rng = random.Random(seed)
    plan = [(rng.randrange(1, 7) * 0.001, rng.randrange(0, 3))
            for _ in range(npairs)]

    def sleeper(tag, kind):
        gate = sim.event()
        if kind == 1:
            # Wait on an event that has *already* triggered, so the
            # resumption is queued when the interrupt lands.
            gate.succeed("early")
        try:
            if kind == 2:
                yield sim.timeout(1000.0)
            else:
                value = yield gate
                log.append(("woke", tag, value, sim.now))
        except Interrupt as intr:
            log.append(("intr", tag, intr.cause, sim.now))
        finally:
            log.append(("unwound", tag, sim.now))
        return tag

    def interrupter(tag, target, delay):
        yield sim.timeout(delay)
        target.interrupt(cause="k%d" % tag)
        log.append(("sent", tag, sim.now))

    procs = []
    for tag, (delay, kind) in enumerate(plan):
        target = sim.spawn(sleeper(tag, kind), name="s%d" % tag)
        procs.append(target)
        procs.append(
            sim.spawn(interrupter(tag, target, delay), name="i%d" % tag)
        )
    return procs


def combinator_scenario(sim, log, seed=3, rounds=12):
    """Nested any_of/all_of chains with immediate and delayed members."""
    rng = random.Random(seed)
    spec = [(rng.randrange(0, 4) * 0.0005, rng.randrange(1, 4) * 0.0005)
            for _ in range(rounds)]

    def leaf(tag, delay):
        yield sim.timeout(delay)
        return tag

    def round_proc(tag, fast, slow):
        first = sim.spawn(leaf(tag * 10, fast), name="f%d" % tag)
        second = sim.spawn(leaf(tag * 10 + 1, slow), name="g%d" % tag)
        index, value = yield sim.any_of([first, second])
        log.append(("any", tag, index, value, sim.now))
        values = yield sim.all_of([first, second])
        log.append(("all", tag, tuple(values), sim.now))
        # Zero-delay timeout: lands in the time queue, not the now-queue.
        got = yield sim.timeout(0.0, value="z")
        log.append(("zero", tag, got, sim.now))
        return tag

    return [
        sim.spawn(round_proc(tag, fast, slow), name="r%d" % tag)
        for tag, (fast, slow) in enumerate(spec)
    ]


_SCENARIOS = {
    "torture": torture_scenario,
    "interrupts": interrupt_scenario,
    "combinators": combinator_scenario,
}


def schedule_fingerprint(scenario="torture", seed=1, **kwargs):
    """Run a named micro scenario; return ``(fingerprint_hex, final_time)``.

    The fingerprint hashes the full observation log, so it changes if
    any callback runs at a different simulated time *or in a different
    order* relative to same-time callbacks.
    """
    build = _SCENARIOS[scenario]
    sim = Simulator()
    log = []
    build(sim, log, seed=seed, **kwargs)
    final = sim.run()
    log.append(("final", final))
    digest = hashlib.blake2b(
        repr(log).encode(), digest_size=16
    ).hexdigest()
    return digest, final


def stripe_fanout_reference(inflight=None, num_osds=6, objects=6,
                            fabric_gib=10, ino=3):
    """The striped-data-path reference world: write then read one
    ``objects``-object extent across ``num_osds`` OSDs.

    The fabric runs at ``fabric_gib`` GiB/s — fast enough that a striped
    read is bound by per-object OSD service, not by serialising bytes on
    the link, so dispatch concurrency is what the completion time
    measures. The default ``ino`` is one whose CRUSH placement spreads
    the six objects over five distinct OSDs (ino 1 happens to hash five
    of six objects onto one OSD, which would measure placement luck, not
    dispatch). ``inflight`` overrides ``costs.client_inflight_ops``
    (1 degenerates to the old fully-serial dispatch). Returns a dict of
    schedule-sensitive observations: identical schedules produce
    identical dicts.

    Storage imports are function-local: this module sits below the
    storage stack and the pure-engine scenarios must stay importable
    without it.
    """
    from repro.common import units
    from repro.costs import CostModel
    from repro.net.fabric import Fabric
    from repro.storage.cluster import CephCluster

    costs = CostModel()
    if inflight is not None:
        costs.client_inflight_ops = inflight
    sim = Simulator()
    fabric = Fabric(sim, bandwidth=fabric_gib * units.GIB)
    cluster = CephCluster(sim, fabric, costs, num_osds=num_osds)
    size = objects * costs.object_size
    payload = bytes(size)
    out = {}

    def driver():
        yield from cluster.write_extent(ino, 0, payload)
        out["write_done_s"] = sim.now
        t0 = sim.now
        data = yield from cluster.read_extent(ino, 0, size)
        out["read_s"] = sim.now - t0
        out["read_ok"] = len(data) == size

    sim.spawn(driver(), name="driver")
    out["final_s"] = sim.run()
    return out


def partitioned_reference(hosts=2, requests=24, seed=5, parallel=False):
    """The coupled-partition reference: ``hosts`` client partitions RPC
    a shared cluster partition over lookahead-bounded channels.

    Each host partition paces ``requests`` request messages from a
    seeded stream; the cluster partition serves them through a shared
    mutex (so cross-host arrival order matters — exactly the schedule a
    buggy synchronization protocol would scramble) and replies over the
    return channel. Returns ``(fingerprint_hex, stats_rows)`` where the
    fingerprint hashes every partition's full observation log in
    declaration order. ``parallel`` picks one-OS-process-per-partition
    execution; the fingerprint must be identical either way — this
    scenario exists to prove that.
    """
    from repro.common import units
    from repro.net.fabric import CrossChannel
    from repro.sim.parallel import Partition, run_partitions
    from repro.sim.sync import Mutex

    lookahead = units.usec(40)

    def host_build(host_id):
        def build(sim, ports):
            rng = random.Random(seed * 1000 + host_id)
            gaps = [rng.randrange(1, 9) * 0.0002 for _ in range(requests)]
            services = [rng.randrange(1, 5) * 0.0003 for _ in range(requests)]
            log = []
            out = ports.out("h%d-req" % host_id)

            def on_reply(payload):
                log.append(("reply", payload, sim.now))

            ports.on("h%d-rsp" % host_id, on_reply)

            def issue():
                for req_id in range(requests):
                    yield sim.timeout(gaps[req_id])
                    out.send((host_id, req_id, services[req_id]))
                    log.append(("sent", req_id, sim.now))

            sim.spawn(issue(), name="host%d" % host_id)
            return lambda: log
        return build

    def cluster_build(sim, ports):
        log = []
        disk = Mutex(sim, name="disk")
        outs = [ports.out("h%d-rsp" % h) for h in range(hosts)]

        def serve(host_id, req_id, service_s):
            yield disk.acquire(who=None)
            try:
                yield sim.timeout(service_s)
                log.append(("served", host_id, req_id, sim.now))
                outs[host_id].send((host_id, req_id))
            finally:
                disk.release()

        def on_request(payload):
            host_id, req_id, service_s = payload
            sim.spawn(serve(host_id, req_id, service_s),
                      name="srv-%d-%d" % (host_id, req_id))

        for host_id in range(hosts):
            ports.on("h%d-req" % host_id, on_request)
        return lambda: log

    channels = []
    partitions = [Partition("cluster", cluster_build)]
    for host_id in range(hosts):
        name = "host%d" % host_id
        partitions.append(Partition(name, host_build(host_id)))
        channels.append(CrossChannel("h%d-req" % host_id, name, "cluster",
                                     lookahead))
        channels.append(CrossChannel("h%d-rsp" % host_id, "cluster", name,
                                     lookahead))

    results, stats = run_partitions(partitions, channels, parallel=parallel)
    merged = [(part.name, results[part.name]) for part in partitions]
    digest = hashlib.blake2b(
        repr(merged).encode(), digest_size=16
    ).hexdigest()
    return digest, stats


def run_reference(scenario="torture", seed=1, repeat=1, **kwargs):
    """Run a micro scenario ``repeat`` times (for wall-clock measurement).

    Returns the fingerprint of the last run; all runs are identical by
    construction, so repeating only multiplies wall-clock work.
    """
    digest = None
    for _ in range(repeat):
        digest, _final = schedule_fingerprint(scenario, seed=seed, **kwargs)
    return digest
