"""Discrete-event simulation engine: events, processes, locks and cores."""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.sync import LockStats, Mutex, Semaphore, Store
from repro.sim.cpu import DEFAULT_QUANTUM, Core, SimThread, UtilizationProbe

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Simulator",
    "Timeout",
    "LockStats",
    "Mutex",
    "Semaphore",
    "Store",
    "Core",
    "SimThread",
    "UtilizationProbe",
    "DEFAULT_QUANTUM",
]
